//! The named scenario catalog — marketplace presets addressable by
//! string, in two families: eight **static** parameterisations and four
//! **strategic** scenarios (see [`crate::scenarios`]) that only show
//! their pathology after fixed-point convergence.
//!
//! The paper's validation protocol (§4.1) calls for *controlled
//! experiments* over marketplaces that stress different axioms: spam
//! floods for Axiom 4, interruption-heavy cancellation for Axiom 5,
//! opaque platforms for Axioms 6–7, monopolistic requesters for
//! Axioms 1–2. This module is the single authority mapping scenario
//! names to [`ScenarioConfig`]s, exactly as
//! [`faircrowd_assign::registry`] maps policy names to policies — so
//! the CLI, the sweep grid (`faircrowd::sweep`), examples and tests all
//! agree on what `"spam_campaign"` means.
//!
//! Names are canonicalised with the same rules as the policy registry
//! (case-insensitive, `-` accepted for `_`), and unknown names report a
//! [`FaircrowdError::UnknownScenario`] listing the whole catalog.
//!
//! ```
//! let config = faircrowd_sim::catalog::get("spam-campaign").unwrap();
//! assert!(config.validate().is_ok());
//! assert!(faircrowd_sim::catalog::get("utopia2").is_err());
//! ```

use crate::config::{
    ApprovalPolicy, CampaignSpec, CancellationPolicy, DetectionConfig, PaymentSchemeChoice,
    PolicyChoice, ScenarioConfig, WorkerPopulation,
};
use faircrowd_assign::registry::canonical;
use faircrowd_model::disclosure::{Audience, DisclosureItem, DisclosureSet};
use faircrowd_model::error::FaircrowdError;
use faircrowd_model::money::Credits;
use faircrowd_model::task::TaskConditions;
use faircrowd_model::time::SimDuration;
use faircrowd_pay::scheme::BonusPolicy;
use faircrowd_quality::spam::WorkerArchetype;

/// Canonical names of every catalog scenario — the static family
/// followed by the strategic family — in presentation order.
pub const NAMES: [&str; 12] = [
    "baseline",
    "spam_campaign",
    "worker_churn",
    "skill_skew",
    "requester_monopoly",
    "flash_crowd",
    "budget_starved",
    "transparent_utopia",
    "reform_rush",
    "super_turkers",
    "price_war",
    "undercut_churn",
];

/// The static family: scenarios whose pathology is authored into the
/// configuration. A single simulation pass tells their whole story.
pub const STATIC_NAMES: [&str; 8] = [
    "baseline",
    "spam_campaign",
    "worker_churn",
    "skill_skew",
    "requester_monopoly",
    "flash_crowd",
    "budget_starved",
    "transparent_utopia",
];

/// The strategic family ([`crate::scenarios`]): scenarios that pin a
/// non-static strategy and whose pathology *emerges* from fixed-point
/// iteration ([`crate::converge`]).
pub const STRATEGIC_NAMES: [&str; 4] = [
    "reform_rush",
    "super_turkers",
    "price_war",
    "undercut_churn",
];

/// One-line description of a catalog scenario (by canonical name), used
/// by `faircrowd --help` and the README table.
pub fn describe(name: &str) -> Option<&'static str> {
    let text = match canonical(name).as_str() {
        "baseline" => "healthy two-requester labeling market, fully transparent",
        "spam_campaign" => "40% malicious crowd (Vuurens mix) with detection sweeps on",
        "worker_churn" => "opaque platform, wrongful rejections, retention collapse",
        "skill_skew" => "skill-demanding campaigns over an unevenly skilled crowd",
        "requester_monopoly" => "one requester dominates posting volume and rewards",
        "flash_crowd" => "late surge campaign over a large crowd, cancel-at-target",
        "budget_starved" => "underfunded rewards, reneged bonuses, undisclosed terms",
        "transparent_utopia" => "fair-by-design: parity policy, grace finish, full disclosure",
        "reform_rush" => "reputation-temporal workers stratify a two-tier market (strategic)",
        "super_turkers" => "reservation-wage workers drain the under-priced campaign (strategic)",
        "price_war" => "requesters undercut rewards over an abundant crowd (strategic)",
        "undercut_churn" => "requesters bid for labour an opaque platform churns away (strategic)",
        _ => return None,
    };
    Some(text)
}

/// `(name, description)` for every catalog scenario, in presentation
/// order — the iteration the CLI and docs tables are built from.
pub fn entries() -> impl Iterator<Item = (&'static str, &'static str)> {
    NAMES.into_iter().map(|name| {
        (
            name,
            describe(name).expect("every catalog name has a description"),
        )
    })
}

/// Resolve a (canonicalised) scenario name into its preset configuration.
///
/// Errors with [`FaircrowdError::UnknownScenario`] listing the valid
/// names when the name does not resolve. Every returned configuration
/// passes [`ScenarioConfig::validate`].
pub fn get(name: &str) -> Result<ScenarioConfig, FaircrowdError> {
    let config = match canonical(name).as_str() {
        "baseline" => baseline(),
        "spam_campaign" => spam_campaign(),
        "worker_churn" => worker_churn(),
        "skill_skew" => skill_skew(),
        "requester_monopoly" => requester_monopoly(),
        "flash_crowd" => flash_crowd(),
        "budget_starved" => budget_starved(),
        "transparent_utopia" => transparent_utopia(),
        "reform_rush" => crate::scenarios::s_reform_rush::config(),
        "super_turkers" => crate::scenarios::s_super_turkers::config(),
        "price_war" => crate::scenarios::s_price_war::config(),
        "undercut_churn" => crate::scenarios::s_undercut_churn::config(),
        _ => {
            return Err(FaircrowdError::UnknownScenario {
                name: name.to_owned(),
                available: NAMES.iter().map(|n| (*n).to_owned()).collect(),
            })
        }
    };
    Ok(config)
}

/// The healthy reference market: two comparable requesters, a diligent
/// fully-participating crowd, full disclosure, quality-based approvals
/// with feedback. Matches the scenario the CLI's `run`/`audit` default
/// flags build, so `--scenario baseline` and no flags agree.
fn baseline() -> ScenarioConfig {
    let mut population = WorkerPopulation::diligent(30);
    population.participation = 1.0;
    ScenarioConfig {
        seed: 42,
        rounds: 48,
        n_skills: 6,
        workers: vec![population],
        campaigns: vec![
            CampaignSpec::labeling("acme", 50, 10),
            CampaignSpec::labeling("globex", 50, 10),
        ],
        disclosure: DisclosureSet::fully_transparent(),
        ..Default::default()
    }
}

/// §2.1's Vuurens observation made executable: "nearly 40% of the
/// answers … were from malicious users". A 40-worker crowd where
/// exactly two of five workers (16/40) are spammers of some stripe —
/// plus a few good-faith sloppy workers — with frequent detection
/// sweeps so Axiom 4 has evidence to quantify over.
fn spam_campaign() -> ScenarioConfig {
    ScenarioConfig {
        seed: 42,
        rounds: 48,
        n_skills: 6,
        workers: vec![
            WorkerPopulation::diligent(21),
            WorkerPopulation::of(WorkerArchetype::Sloppy, 3),
            WorkerPopulation::of(WorkerArchetype::RandomSpammer, 6),
            WorkerPopulation::of(WorkerArchetype::UniformSpammer, 5),
            WorkerPopulation::of(WorkerArchetype::SemiRandomSpammer, 5),
        ],
        campaigns: vec![
            CampaignSpec::labeling("acme", 60, 10),
            CampaignSpec::labeling("globex", 40, 12),
        ],
        detection: Some(DetectionConfig {
            every_rounds: 4,
            ..Default::default()
        }),
        ..Default::default()
    }
}

/// The retention-collapse scenario of §3.1.2: an opaque platform that
/// rejects a sixth of all work without explanation. Workers churn out
/// of frustration — the behaviour Axioms 6–7 (and the paper's proposed
/// retention measurements) are meant to catch early.
fn worker_churn() -> ScenarioConfig {
    let mut population = WorkerPopulation::diligent(36);
    population.participation = 0.7;
    ScenarioConfig {
        seed: 42,
        rounds: 60,
        n_skills: 6,
        workers: vec![population],
        campaigns: vec![
            CampaignSpec::labeling("acme", 60, 8),
            CampaignSpec::labeling("initech", 45, 9),
        ],
        disclosure: DisclosureSet::opaque(),
        approval: ApprovalPolicy::RandomReject {
            reject_prob: 0.17,
            give_feedback: false,
        },
        ..Default::default()
    }
}

/// Skill-demanding campaigns over an unevenly skilled crowd: a small
/// expert pool and a large low-skill pool competing for tasks whose
/// requirements are dense. Stresses Axiom 1 (do similar workers see the
/// same tasks?) under genuine qualification pressure.
fn skill_skew() -> ScenarioConfig {
    let mut experts = WorkerPopulation::diligent(8);
    experts.skill_prob = 0.9;
    let mut novices = WorkerPopulation::diligent(28);
    novices.skill_prob = 0.25;
    let mut demanding = CampaignSpec::labeling("acme", 55, 14);
    demanding.skill_req_prob = 0.5;
    let mut open = CampaignSpec::labeling("globex", 35, 9);
    open.skill_req_prob = 0.1;
    ScenarioConfig {
        seed: 42,
        rounds: 48,
        n_skills: 10,
        workers: vec![experts, novices],
        campaigns: vec![demanding, open],
        ..Default::default()
    }
}

/// One requester dominates the market's posting volume and outbids the
/// fringe. Under optimising assignment this is where requester-centric
/// discrimination (§3.1.1) shows: the monopolist's tasks crowd out
/// everyone else's, so Axiom 2 has real violations to find.
fn requester_monopoly() -> ScenarioConfig {
    let mut fringe = CampaignSpec::labeling("smallco", 12, 8);
    fringe.post_round = 4;
    ScenarioConfig {
        seed: 42,
        rounds: 48,
        n_skills: 6,
        workers: vec![WorkerPopulation::diligent(30)],
        campaigns: vec![CampaignSpec::labeling("megacorp", 110, 16), fringe],
        policy: PolicyChoice::RequesterCentric,
        ..Default::default()
    }
}

/// A flash crowd: a large, partially attentive workforce and a huge
/// surge campaign posted mid-run that cancels the moment its target is
/// met, interrupting in-flight work without compensation — the §3.1.1
/// task-completion scenario Axiom 5 prohibits.
fn flash_crowd() -> ScenarioConfig {
    let mut surge = CampaignSpec::labeling("viralco", 90, 12);
    surge.post_round = 8;
    surge.target_approved = Some(120);
    ScenarioConfig {
        seed: 42,
        rounds: 36,
        n_skills: 6,
        workers: vec![WorkerPopulation::diligent(60)],
        campaigns: vec![CampaignSpec::labeling("acme", 25, 10), surge],
        cancellation: CancellationPolicy::CancelAtTarget {
            compensate_partial: false,
        },
        ..Default::default()
    }
}

/// An underfunded market: minimal rewards, a harsh quality-ramped pay
/// scheme, a reneged bonus promise, and working conditions nobody
/// bothered to disclose. Stresses Axiom 3 (equal pay for equal work)
/// and Axiom 6 at once.
fn budget_starved() -> ScenarioConfig {
    let mut campaign = CampaignSpec::labeling("cheapskate", 70, 3);
    campaign.conditions = TaskConditions::default(); // nothing disclosed
    campaign.bonus = Some(BonusPolicy {
        amount: Credits::from_cents(20),
        quality_threshold: 0.8,
        honoured: false,
    });
    let mut rival = CampaignSpec::labeling("pennywise", 40, 4);
    rival.conditions = TaskConditions {
        stated_hourly_wage: Some(Credits::from_dollars(1)),
        ..TaskConditions::default()
    };
    ScenarioConfig {
        seed: 42,
        rounds: 48,
        n_skills: 6,
        workers: vec![WorkerPopulation::diligent(30)],
        campaigns: vec![campaign, rival],
        disclosure: DisclosureSet::opaque().with(DisclosureItem::HourlyWage, Audience::Workers),
        payment: PaymentSchemeChoice::QualityBased {
            floor: 0.6,
            full_quality: 0.95,
        },
        approval: ApprovalPolicy::QualityThreshold {
            threshold: 0.65,
            noise: 0.15,
            give_feedback: false,
        },
        ..Default::default()
    }
}

/// The fair-by-design platform of §3.3.1: exposure parity enforced over
/// the assignment policy, grace-finish cancellation, full disclosure,
/// generous conditions — the configuration every axiom should pass.
fn transparent_utopia() -> ScenarioConfig {
    let mut population = WorkerPopulation::diligent(30);
    population.participation = 1.0;
    let mut campaign = CampaignSpec::labeling("coop", 60, 12);
    campaign.conditions =
        TaskConditions::fully_disclosed(Credits::from_dollars(9), SimDuration::from_hours(12));
    ScenarioConfig {
        seed: 42,
        rounds: 48,
        n_skills: 6,
        workers: vec![population],
        campaigns: vec![campaign, CampaignSpec::labeling("guild", 40, 12)],
        policy: PolicyChoice::ParityOver(Box::new(PolicyChoice::SelfSelection)),
        disclosure: DisclosureSet::fully_transparent(),
        cancellation: CancellationPolicy::GraceFinish,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_and_validates() {
        for name in NAMES {
            let config = get(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            config.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(describe(name).is_some(), "{name} lacks a description");
        }
        assert_eq!(entries().count(), NAMES.len());
    }

    #[test]
    fn names_are_canonicalised() {
        assert_eq!(get("Spam-Campaign").unwrap(), get("spam_campaign").unwrap());
        assert_eq!(get(" BASELINE ").unwrap(), get("baseline").unwrap());
    }

    #[test]
    fn unknown_names_list_the_catalog() {
        match get("utopia2") {
            Err(FaircrowdError::UnknownScenario { name, available }) => {
                assert_eq!(name, "utopia2");
                assert_eq!(available.len(), NAMES.len());
            }
            other => panic!("wrong result: {other:?}"),
        }
    }

    #[test]
    fn families_partition_the_catalog() {
        let rebuilt: Vec<&str> = STATIC_NAMES.into_iter().chain(STRATEGIC_NAMES).collect();
        assert_eq!(rebuilt, NAMES.to_vec());
        for name in STATIC_NAMES {
            assert_eq!(
                get(name).unwrap().strategy,
                crate::strategy::StrategyChoice::Static,
                "{name} should be static"
            );
        }
        for name in STRATEGIC_NAMES {
            assert_ne!(
                get(name).unwrap().strategy,
                crate::strategy::StrategyChoice::Static,
                "{name} should pin a strategic profile"
            );
        }
    }

    #[test]
    fn presets_differ_from_each_other() {
        let configs: Vec<ScenarioConfig> = NAMES.iter().map(|n| get(n).unwrap()).collect();
        for i in 0..configs.len() {
            for j in (i + 1)..configs.len() {
                assert_ne!(configs[i], configs[j], "{} == {}", NAMES[i], NAMES[j]);
            }
        }
    }
}
