//! `price_war`: requester price undercutting over an abundant crowd.
//!
//! Three comparable requesters post into a market with more willing
//! labour than work. Every campaign fills easily, so each requester's
//! proportional controller keeps shaving the posted reward — none needs
//! to pay yesterday's price to fill today's tasks. The fixed point is a
//! race to the floor: rewards pinned at the undercutting bound, the
//! emergent form of the under-compensation dynamics §3.1.1 documents
//! (cf. the requester side of REFORM, PAPERS.md).

use crate::config::{CampaignSpec, ScenarioConfig, StrategyChoice, WorkerPopulation};

/// The `price_war` preset.
pub fn config() -> ScenarioConfig {
    let mut population = WorkerPopulation::diligent(45);
    population.participation = 1.0;
    ScenarioConfig {
        seed: 42,
        rounds: 48,
        n_skills: 6,
        workers: vec![population],
        campaigns: vec![
            CampaignSpec::labeling("acme", 30, 10),
            CampaignSpec::labeling("globex", 30, 10),
            CampaignSpec::labeling("initech", 30, 10),
        ],
        strategy: StrategyChoice::PriceUndercut,
        ..Default::default()
    }
}
