//! Pluggable similarity configuration.
//!
//! The paper is explicit that similarity is a *parameter* of the axioms:
//! "Similarity can be platform-dependent and ranges from perfect equality
//! to threshold-based similarity" (Axiom 1), "skill similarity can be
//! computed using different measures such as cosine similarity" (Axiom 2),
//! and contribution similarity is kind-dependent (Axiom 3). This module
//! packages those choices so an audit can be run under different
//! similarity regimes (the E1 ablation).

use crate::skills::SkillVector;
use serde::{Deserialize, Serialize};

/// Which kernel to use when comparing two skill vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkillMeasure {
    /// Perfect equality (similarity is 1.0 or 0.0).
    Exact,
    /// Cosine over the Boolean vectors (the paper's Axiom 2 suggestion).
    Cosine,
    /// Jaccard set overlap.
    Jaccard,
    /// Dice coefficient.
    Dice,
}

impl SkillMeasure {
    /// All kernels, for ablations.
    pub const ALL: [SkillMeasure; 4] = [
        SkillMeasure::Exact,
        SkillMeasure::Cosine,
        SkillMeasure::Jaccard,
        SkillMeasure::Dice,
    ];

    /// Apply the kernel.
    pub fn score(self, a: &SkillVector, b: &SkillVector) -> f64 {
        match self {
            SkillMeasure::Exact => f64::from(a == b),
            SkillMeasure::Cosine => a.cosine(b),
            SkillMeasure::Jaccard => a.jaccard(b),
            SkillMeasure::Dice => a.dice(b),
        }
    }

    /// Can two vectors with the given set-bit counts possibly score at
    /// least `threshold` under this kernel? This is the **sound blocking
    /// predicate** the audit index uses to prune candidate pairs before
    /// the exact kernel runs: it may admit pairs that score below the
    /// threshold (they are re-checked exactly), but it never rejects a
    /// pair that could reach it, so blocked audits stay bit-identical to
    /// exhaustive ones.
    ///
    /// The bounds follow from `|A ∩ B| ≤ min(|A|, |B|)`:
    /// cosine `≤ √(min/max)`, Jaccard `≤ min/max`, Dice `≤ 2min/(min+max)`.
    pub fn count_admissible(self, a: usize, b: usize, threshold: f64) -> bool {
        if threshold <= 0.0 {
            return true; // every score is ≥ 0
        }
        let (min, max) = (a.min(b), a.max(b));
        if max == 0 {
            return true; // both empty: every kernel scores 1.0
        }
        if min == 0 {
            return false; // one empty: every kernel scores 0.0 < threshold
        }
        // Small slack so float rounding can only over-admit, never prune
        // a pair sitting exactly on the bound.
        const SLACK: f64 = 1e-9;
        let ratio_floor = match self {
            SkillMeasure::Exact => return a == b,
            SkillMeasure::Cosine => threshold * threshold,
            SkillMeasure::Jaccard => threshold,
            SkillMeasure::Dice => threshold / (2.0 - threshold),
        };
        min as f64 >= ratio_floor * max as f64 - SLACK
    }

    /// Name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SkillMeasure::Exact => "exact",
            SkillMeasure::Cosine => "cosine",
            SkillMeasure::Jaccard => "jaccard",
            SkillMeasure::Dice => "dice",
        }
    }
}

/// The similarity regime an audit runs under: one threshold per axiom
/// quantifier, plus the skill kernel. Defaults follow the paper's
/// discussion (cosine for skills, threshold-based elsewhere).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarityConfig {
    /// Kernel for skill-vector comparison.
    pub skill_measure: SkillMeasure,
    /// Two workers are "similar" (Axiom 1) when their composite similarity
    /// is at least this.
    pub worker_threshold: f64,
    /// Two tasks' skill requirements are "similar" (Axiom 2) at or above
    /// this score.
    pub task_skill_threshold: f64,
    /// Two rewards are "comparable" (Axiom 2) within this relative
    /// tolerance.
    pub reward_tolerance: f64,
    /// Two contributions are "similar" (Axiom 3) at or above this score.
    pub contribution_threshold: f64,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig {
            skill_measure: SkillMeasure::Cosine,
            worker_threshold: 0.9,
            task_skill_threshold: 0.9,
            reward_tolerance: 0.1,
            contribution_threshold: 0.85,
        }
    }
}

impl SimilarityConfig {
    /// The strictest regime: perfect equality everywhere. Under this
    /// config the axioms only constrain *identical* workers/tasks — the
    /// weakest fairness demand.
    pub fn exact() -> Self {
        SimilarityConfig {
            skill_measure: SkillMeasure::Exact,
            worker_threshold: 1.0,
            task_skill_threshold: 1.0,
            reward_tolerance: 0.0,
            contribution_threshold: 1.0,
        }
    }

    /// A lenient regime that groups broadly (more pairs are "similar", so
    /// fairness is harder to satisfy).
    pub fn lenient() -> Self {
        SimilarityConfig {
            skill_measure: SkillMeasure::Cosine,
            worker_threshold: 0.7,
            task_skill_threshold: 0.7,
            reward_tolerance: 0.25,
            contribution_threshold: 0.7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(bits: &[u8]) -> SkillVector {
        SkillVector::from_bools(bits.iter().map(|&b| b == 1))
    }

    #[test]
    fn exact_measure_is_equality() {
        let a = v(&[1, 0, 1]);
        let b = v(&[1, 0, 1]);
        let c = v(&[1, 1, 1]);
        assert_eq!(SkillMeasure::Exact.score(&a, &b), 1.0);
        assert_eq!(SkillMeasure::Exact.score(&a, &c), 0.0);
    }

    #[test]
    fn kernels_agree_on_identical_inputs() {
        let a = v(&[1, 1, 0, 1]);
        for m in SkillMeasure::ALL {
            assert!(
                (m.score(&a, &a) - 1.0).abs() < 1e-12,
                "{} should be 1 on identical vectors",
                m.name()
            );
        }
    }

    #[test]
    fn kernels_are_bounded_and_symmetric() {
        let xs = [v(&[1, 0, 0]), v(&[1, 1, 0]), v(&[0, 0, 0]), v(&[1, 1, 1])];
        for m in SkillMeasure::ALL {
            for a in &xs {
                for b in &xs {
                    let s = m.score(a, b);
                    assert!((0.0..=1.0).contains(&s));
                    assert!((s - m.score(b, a)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn count_admissibility_never_prunes_reachable_pairs() {
        // Exhaustive over 6-bit vectors: whenever the kernel score
        // reaches the threshold, the count predicate must admit the pair.
        let vecs: Vec<SkillVector> = (0u8..64)
            .map(|x| {
                v(&[
                    x & 1,
                    (x >> 1) & 1,
                    (x >> 2) & 1,
                    (x >> 3) & 1,
                    (x >> 4) & 1,
                    (x >> 5) & 1,
                ])
            })
            .collect();
        for m in SkillMeasure::ALL {
            for t in [0.0, 0.3, 0.7, 0.85, 0.9, 1.0] {
                for a in &vecs {
                    for b in &vecs {
                        if m.score(a, b) >= t {
                            assert!(
                                m.count_admissible(a.count(), b.count(), t),
                                "{} pruned a pair scoring ≥ {t}",
                                m.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn count_admissibility_prunes_something() {
        // 1 bit vs 6 bits cannot reach cosine 0.9.
        assert!(!SkillMeasure::Cosine.count_admissible(1, 6, 0.9));
        assert!(!SkillMeasure::Jaccard.count_admissible(2, 6, 0.9));
        assert!(!SkillMeasure::Dice.count_admissible(2, 6, 0.9));
        assert!(!SkillMeasure::Exact.count_admissible(2, 3, 0.5));
        // Zero thresholds admit everything; empty-vs-empty is similar.
        assert!(SkillMeasure::Cosine.count_admissible(0, 9, 0.0));
        assert!(SkillMeasure::Cosine.count_admissible(0, 0, 1.0));
        assert!(!SkillMeasure::Cosine.count_admissible(0, 3, 0.5));
    }

    #[test]
    fn default_config_is_threshold_based() {
        let c = SimilarityConfig::default();
        assert_eq!(c.skill_measure, SkillMeasure::Cosine);
        assert!(c.worker_threshold < 1.0);
        assert!(c.reward_tolerance > 0.0);
    }

    #[test]
    fn exact_config_is_strictest() {
        let e = SimilarityConfig::exact();
        let l = SimilarityConfig::lenient();
        assert!(e.worker_threshold >= l.worker_threshold);
        assert!(e.reward_tolerance <= l.reward_tolerance);
        assert_eq!(e.skill_measure, SkillMeasure::Exact);
    }
}
