//! Semantic checking and compilation.
//!
//! Resolves the parsed AST against the platform schema: disclosure item
//! paths must name real [`DisclosureItem`]s, audiences must be built-in or
//! defined, roles and contexts must exist, and `require` rules must name
//! requester-side items. The output, [`CompiledPolicy`], is what the
//! evaluator, renderer and comparator work with.

use crate::ast::{AudienceExpr, Condition, Decl, Policy};
use crate::error::{LangError, Phase, Span};
use faircrowd_model::disclosure::{Audience, DisclosureCategory, DisclosureItem, DisclosureSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The lifecycle contexts a disclosure can be scoped to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Context {
    /// While a worker browses available tasks.
    Browsing,
    /// When a worker accepts a task.
    Accepting,
    /// While working on a task.
    Working,
    /// When a requester posts a task.
    Posting,
    /// Around payment time.
    Payment,
    /// At session start.
    SessionStart,
}

impl Context {
    /// All contexts.
    pub const ALL: [Context; 6] = [
        Context::Browsing,
        Context::Accepting,
        Context::Working,
        Context::Posting,
        Context::Payment,
        Context::SessionStart,
    ];

    /// The name used in TPL source.
    pub fn name(self) -> &'static str {
        match self {
            Context::Browsing => "browsing",
            Context::Accepting => "accepting",
            Context::Working => "working",
            Context::Posting => "posting",
            Context::Payment => "payment",
            Context::SessionStart => "session_start",
        }
    }

    /// Parse a TPL context name.
    pub fn from_name(s: &str) -> Option<Context> {
        Context::ALL.into_iter().find(|c| c.name() == s)
    }
}

/// A compiled condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompiledCondition {
    /// Applies in every context.
    Always,
    /// Applies only in one context.
    When(Context),
}

impl CompiledCondition {
    /// Does the condition apply in `ctx`?
    pub fn applies_in(self, ctx: Context) -> bool {
        match self {
            CompiledCondition::Always => true,
            CompiledCondition::When(c) => c == ctx,
        }
    }
}

/// A compiled `disclose` rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompiledRule {
    /// What is disclosed.
    pub item: DisclosureItem,
    /// To whom.
    pub audience: Audience,
    /// When.
    pub condition: CompiledCondition,
}

/// A compiled `require requester discloses …` rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Requirement {
    /// The requester-side item that must be disclosed.
    pub item: DisclosureItem,
    /// The phase before which it must be available.
    pub before: Option<Context>,
}

/// A checked, resolved policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledPolicy {
    /// Policy name.
    pub name: String,
    /// Disclose rules in source order.
    pub rules: Vec<CompiledRule>,
    /// Requirements in source order.
    pub requirements: Vec<Requirement>,
}

impl CompiledPolicy {
    /// The full disclosure set the policy grants. `require` rules count
    /// as worker-visible grants: an obligation on requesters makes the
    /// information available to workers.
    pub fn disclosure_set(&self) -> DisclosureSet {
        let mut set = DisclosureSet::opaque();
        for rule in &self.rules {
            set.grant(rule.item, rule.audience);
        }
        for req in &self.requirements {
            set.grant(req.item, Audience::Workers);
        }
        set
    }

    /// The disclosures active in one lifecycle context.
    pub fn disclosures_at(&self, ctx: Context) -> DisclosureSet {
        let mut set = DisclosureSet::opaque();
        for rule in &self.rules {
            if rule.condition.applies_in(ctx) {
                set.grant(rule.item, rule.audience);
            }
        }
        for req in &self.requirements {
            let active = match req.before {
                // a "before posting" requirement is live from posting on
                None => true,
                Some(_) => true,
            };
            if active {
                set.grant(req.item, Audience::Workers);
            }
        }
        set
    }

    /// Number of rules plus requirements.
    pub fn rule_count(&self) -> usize {
        self.rules.len() + self.requirements.len()
    }
}

/// Resolve the short item names allowed in `require` rules.
fn resolve_requirement_item(name: &str) -> Option<DisclosureItem> {
    match name {
        "hourly_wage" => Some(DisclosureItem::HourlyWage),
        "payment_delay" | "payment_schedule" => Some(DisclosureItem::PaymentDelay),
        "recruitment_criteria" => Some(DisclosureItem::RecruitmentCriteria),
        "rejection_criteria" => Some(DisclosureItem::RejectionCriteria),
        "evaluation_scheme" => Some(DisclosureItem::EvaluationScheme),
        dotted => DisclosureItem::from_name(dotted),
    }
}

/// Check one parsed policy against the schema.
pub fn check(policy: &Policy, source: &str) -> Result<CompiledPolicy, LangError> {
    let mut audiences: BTreeMap<String, Audience> = BTreeMap::new();
    // Built-ins.
    audiences.insert("public".into(), Audience::Public);
    audiences.insert("subject".into(), Audience::Subject);
    audiences.insert("workers".into(), Audience::Workers);
    audiences.insert("requesters".into(), Audience::Requesters);

    let err =
        |msg: String, span: Span| -> LangError { LangError::at(Phase::Check, msg, span, source) };

    let mut rules = Vec::new();
    let mut requirements = Vec::new();
    for decl in &policy.decls {
        match decl {
            Decl::AudienceDef {
                name,
                name_span,
                expr,
            } => {
                if matches!(
                    name.as_str(),
                    "public" | "subject" | "workers" | "requesters"
                ) {
                    return Err(err(
                        format!("cannot redefine built-in audience `{name}`"),
                        *name_span,
                    ));
                }
                if audiences.contains_key(name) {
                    return Err(err(format!("audience `{name}` defined twice"), *name_span));
                }
                let resolved = match expr {
                    AudienceExpr::Public => Audience::Public,
                    AudienceExpr::Subject => Audience::Subject,
                    AudienceExpr::Role { role, span } => match role.as_str() {
                        "worker" | "workers" => Audience::Workers,
                        "requester" | "requesters" => Audience::Requesters,
                        other => {
                            return Err(err(
                                format!(
                                    "unknown role `{other}` (expected `worker` or `requester`)"
                                ),
                                *span,
                            ))
                        }
                    },
                };
                audiences.insert(name.clone(), resolved);
            }
            Decl::Disclose {
                item,
                item_span,
                audience,
                condition,
            } => {
                let resolved_item = DisclosureItem::from_name(item).ok_or_else(|| {
                    err(
                        format!(
                            "unknown disclosure item `{item}` (see the schema for valid \
                             dotted names, e.g. `worker.acceptance_ratio`)"
                        ),
                        *item_span,
                    )
                })?;
                let resolved_audience =
                    audiences.get(&audience.name).copied().ok_or_else(|| {
                        err(
                            format!("unknown audience `{}`", audience.name),
                            audience.span,
                        )
                    })?;
                let resolved_condition = match condition {
                    Condition::Always => CompiledCondition::Always,
                    Condition::When { context, span } => {
                        let ctx = Context::from_name(context).ok_or_else(|| {
                            err(
                                format!(
                                    "unknown context `{context}` (valid: {})",
                                    Context::ALL
                                        .iter()
                                        .map(|c| c.name())
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                ),
                                *span,
                            )
                        })?;
                        CompiledCondition::When(ctx)
                    }
                };
                rules.push(CompiledRule {
                    item: resolved_item,
                    audience: resolved_audience,
                    condition: resolved_condition,
                });
            }
            Decl::Require {
                item,
                item_span,
                before,
            } => {
                let resolved = resolve_requirement_item(item)
                    .ok_or_else(|| err(format!("unknown requirement item `{item}`"), *item_span))?;
                if resolved.category() != DisclosureCategory::Requester {
                    return Err(err(
                        format!(
                            "`require requester discloses` needs a requester-side item, \
                             but `{item}` is platform-side"
                        ),
                        *item_span,
                    ));
                }
                let before_ctx = match before {
                    None => None,
                    Some(phase) => Some(
                        Context::from_name(phase)
                            .ok_or_else(|| err(format!("unknown phase `{phase}`"), *item_span))?,
                    ),
                };
                requirements.push(Requirement {
                    item: resolved,
                    before: before_ctx,
                });
            }
        }
    }

    Ok(CompiledPolicy {
        name: policy.name.clone(),
        rules,
        requirements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_one;

    #[test]
    fn compiles_and_grants() {
        let p = compile_one(
            r#"
            policy "p" {
                audience everyone = public;
                disclose task.rating to everyone when browsing;
                disclose worker.acceptance_ratio to subject;
                require requester discloses rejection_criteria before posting;
            }
            "#,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.requirements.len(), 1);
        assert_eq!(p.rule_count(), 3);
        let set = p.disclosure_set();
        assert!(set.allows(DisclosureItem::TaskRating, Audience::Public));
        assert!(set.allows(DisclosureItem::WorkerAcceptanceRatio, Audience::Subject));
        assert!(set.allows(DisclosureItem::RejectionCriteria, Audience::Workers));
    }

    #[test]
    fn conditions_scope_disclosures() {
        let p = compile_one(
            r#"
            policy "p" {
                disclose task.rating to public when browsing;
                disclose worker.history to subject always;
            }
            "#,
        )
        .unwrap();
        let browsing = p.disclosures_at(Context::Browsing);
        assert!(browsing.allows(DisclosureItem::TaskRating, Audience::Public));
        let working = p.disclosures_at(Context::Working);
        assert!(!working.allows(DisclosureItem::TaskRating, Audience::Public));
        assert!(working.allows(DisclosureItem::WorkerHistory, Audience::Subject));
    }

    #[test]
    fn unknown_item_rejected_with_span() {
        let err =
            compile_one(r#"policy "p" { disclose worker.shoe_size to public; }"#).unwrap_err();
        assert!(err.message.contains("worker.shoe_size"));
        assert!(err.context.is_some());
    }

    #[test]
    fn unknown_audience_rejected() {
        let err = compile_one(r#"policy "p" { disclose task.rating to martians; }"#).unwrap_err();
        assert!(err.message.contains("unknown audience `martians`"));
    }

    #[test]
    fn unknown_context_rejected_and_lists_valid() {
        let err = compile_one(r#"policy "p" { disclose task.rating to public when dreaming; }"#)
            .unwrap_err();
        assert!(err.message.contains("dreaming"));
        assert!(err.message.contains("browsing"));
    }

    #[test]
    fn builtin_audience_cannot_be_redefined() {
        // `public`/`subject` are keywords (parse error); `workers` and
        // `requesters` lex as identifiers and hit the semantic guard.
        let err = compile_one(r#"policy "p" { audience workers = role(requester); }"#).unwrap_err();
        assert!(err.message.contains("built-in"), "{}", err.message);
        let kw = compile_one(r#"policy "p" { audience public = role(worker); }"#).unwrap_err();
        assert!(kw.message.contains("expected an audience name"));
    }

    #[test]
    fn duplicate_audience_rejected() {
        let err = compile_one(
            r#"policy "p" {
                audience a = role(worker);
                audience a = public;
            }"#,
        )
        .unwrap_err();
        assert!(err.message.contains("defined twice"));
    }

    #[test]
    fn unknown_role_rejected() {
        let err = compile_one(r#"policy "p" { audience a = role(wizard); }"#).unwrap_err();
        assert!(err.message.contains("wizard"));
    }

    #[test]
    fn require_platform_item_rejected() {
        let err = compile_one(r#"policy "p" { require requester discloses worker.history; }"#)
            .unwrap_err();
        assert!(err.message.contains("platform-side"));
    }

    #[test]
    fn requirement_short_names_resolve() {
        for (short, item) in [
            ("hourly_wage", DisclosureItem::HourlyWage),
            ("payment_schedule", DisclosureItem::PaymentDelay),
            ("payment_delay", DisclosureItem::PaymentDelay),
            ("recruitment_criteria", DisclosureItem::RecruitmentCriteria),
            ("rejection_criteria", DisclosureItem::RejectionCriteria),
            ("evaluation_scheme", DisclosureItem::EvaluationScheme),
        ] {
            let src = format!(r#"policy "p" {{ require requester discloses {short}; }}"#);
            let p = compile_one(&src).unwrap();
            assert_eq!(p.requirements[0].item, item, "{short}");
        }
    }

    #[test]
    fn user_audience_resolves_roles() {
        let p = compile_one(
            r#"policy "p" {
                audience crowd = role(worker);
                audience posters = role(requester);
                disclose requester.rating to crowd;
                disclose requester.campaign_progress to posters;
            }"#,
        )
        .unwrap();
        assert_eq!(p.rules[0].audience, Audience::Workers);
        assert_eq!(p.rules[1].audience, Audience::Requesters);
    }

    #[test]
    fn context_names_roundtrip() {
        for c in Context::ALL {
            assert_eq!(Context::from_name(c.name()), Some(c));
        }
        assert_eq!(Context::from_name("nope"), None);
    }
}
