//! The `faircrowd` command-line tool: run the scenario → simulate →
//! audit → enforce → report pipeline and work with transparency policies
//! from the shell.
//!
//! ```text
//! faircrowd axioms                         print the paper's seven axioms
//! faircrowd run   [OPTS] [--enforce E]...  full pipeline incl. enforcement re-audit
//! faircrowd audit [OPTS]                   simulate a market and audit it
//! faircrowd sweep [OPTS]                   audit every registry policy, one table
//! faircrowd policies                       list the TPL platform catalog
//! faircrowd render <policy>                human-readable policy description
//! faircrowd compare <a> <b>                diff two catalog policies
//! ```
//!
//! Every market command goes through [`faircrowd::Pipeline`] and selects
//! assignment policies via the registry
//! ([`faircrowd::assign::registry`]), so the CLI, examples and tests
//! exercise the same code path.

use faircrowd::assign::registry;
use faircrowd::core::report::TextTable;
use faircrowd::lang::{catalog, compare, printer, render};
use faircrowd::model::disclosure::DisclosureSet;
use faircrowd::model::FaircrowdError;
use faircrowd::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str);
    let result = match command {
        Some("axioms") => axioms(),
        Some("run") => run_cmd(&args[1..], true),
        Some("audit") => run_cmd(&args[1..], false),
        Some("sweep") => sweep(&args[1..]),
        Some("policies") => policies(),
        Some("render") => render_cmd(&args[1..]),
        Some("compare") => compare_cmd(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            usage();
            Ok(())
        }
        Some(other) => Err(FaircrowdError::usage(format!("unknown command `{other}`"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            if matches!(err, FaircrowdError::Usage { .. }) {
                eprintln!();
                usage();
            }
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    println!(
        "faircrowd — fairness and transparency auditing for crowdsourcing\n\n\
         USAGE:\n  \
         faircrowd axioms                         print the paper's seven axioms\n  \
         faircrowd run   [OPTS] [--enforce E]...  full pipeline incl. enforcement re-audit\n  \
         faircrowd audit [OPTS]                   simulate a market and audit it\n  \
         faircrowd sweep [OPTS]                   audit every registry policy, one table\n  \
         faircrowd policies                       list the TPL platform catalog\n  \
         faircrowd render <policy>                human-readable policy description\n  \
         faircrowd compare <a> <b>                diff two catalog policies\n\n\
         OPTS:\n  \
         --policy NAME    assignment policy (default self_selection)\n  \
         --seed N         simulation seed (default 42)\n  \
         --rounds N       market rounds (default 48)\n  \
         --workers N      diligent workers (default 30)\n  \
         --opaque         run the platform with an opaque disclosure set\n\n\
         enforcements for --enforce (repeatable):\n  \
         parity | floor:N | transparency | grace\n\n\
         assignment policies (registry names):\n  {}",
        registry::NAMES.join(" | ")
    );
}

fn axioms() -> Result<(), FaircrowdError> {
    for id in AxiomId::ALL {
        println!("{}\n  {}\n", id.label(), id.statement());
    }
    Ok(())
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, FaircrowdError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| FaircrowdError::usage(format!("invalid value `{raw}` for {flag}"))),
    }
}

fn parse_enforcement(raw: &str) -> Result<Enforcement, FaircrowdError> {
    if let Some(min) = raw.strip_prefix("floor:") {
        let min = min
            .parse()
            .map_err(|_| FaircrowdError::usage(format!("invalid floor size in `{raw}`")))?;
        return Ok(Enforcement::ExposureFloor(min));
    }
    match raw {
        "parity" => Ok(Enforcement::ExposureParity),
        "transparency" => Ok(Enforcement::MinimalTransparency),
        "grace" => Ok(Enforcement::GraceFinish),
        _ => Err(FaircrowdError::usage(format!(
            "unknown enforcement `{raw}`; expected parity | floor:N | transparency | grace"
        ))),
    }
}

/// The shared market scenario behind `run`, `audit` and `sweep`: two
/// comparable labeling campaigns over a full-participation diligent
/// population, so Axioms 1–3 have pairs to quantify over.
fn scenario_from_flags(args: &[String]) -> Result<ScenarioConfig, FaircrowdError> {
    let seed = parse_flag(args, "--seed", 42u64)?;
    let rounds = parse_flag(args, "--rounds", 48u32)?;
    let workers = parse_flag(args, "--workers", 30u32)?;
    let opaque = args.iter().any(|a| a == "--opaque");

    let mut population = WorkerPopulation::diligent(workers);
    population.participation = 1.0;
    Ok(ScenarioConfig {
        seed,
        rounds,
        n_skills: 6,
        workers: vec![population],
        campaigns: vec![
            CampaignSpec::labeling("acme", 50, 10),
            CampaignSpec::labeling("globex", 50, 10),
        ],
        disclosure: if opaque {
            DisclosureSet::opaque()
        } else {
            DisclosureSet::fully_transparent()
        },
        ..Default::default()
    })
}

fn pipeline_from_flags(args: &[String], with_enforce: bool) -> Result<Pipeline, FaircrowdError> {
    let policy_name = flag_value(args, "--policy").unwrap_or("self_selection");
    let mut pipeline = Pipeline::new()
        .scenario(scenario_from_flags(args)?)
        .policy_name(policy_name)?;
    if with_enforce {
        let mut rest = args;
        while let Some(i) = rest.iter().position(|a| a == "--enforce") {
            let raw = rest.get(i + 1).ok_or_else(|| {
                FaircrowdError::usage(
                    "--enforce requires a value (parity | floor:N | transparency | grace)",
                )
            })?;
            pipeline = pipeline.enforce(parse_enforcement(raw)?);
            rest = &rest[i + 2..];
        }
    } else if args.iter().any(|a| a == "--enforce") {
        return Err(FaircrowdError::usage(
            "--enforce is only valid with `faircrowd run`; `audit` never enforces",
        ));
    }
    Ok(pipeline)
}

fn run_cmd(args: &[String], with_enforce: bool) -> Result<(), FaircrowdError> {
    let pipeline = pipeline_from_flags(args, with_enforce)?;
    let result = pipeline.run()?;
    println!(
        "auditing: policy={}, seed={}, rounds={}\n",
        result.config.policy.label(),
        result.config.seed,
        result.config.rounds
    );
    print!("{}", result.render());
    Ok(())
}

fn sweep(args: &[String]) -> Result<(), FaircrowdError> {
    let base = Pipeline::new().scenario(scenario_from_flags(args)?);
    let results = base.sweep_policies(&registry::NAMES)?;

    let mut table = TextTable::new([
        "policy",
        "fairness",
        "transparency",
        "overall",
        "violations",
        "retention",
    ])
    .numeric();
    for (name, result) in &results {
        let report = &result.baseline.report;
        table.row([
            name.clone(),
            format!("{:.3}", report.fairness_score()),
            format!("{:.3}", report.transparency_score()),
            format!("{:.3}", report.overall_score()),
            format!("{}", report.total_violations()),
            format!("{:.1}%", result.baseline.summary.retention * 100.0),
        ]);
    }
    // Report the seed/rounds the pipelines actually ran under (identical
    // across the sweep) rather than re-deriving them from the flags.
    let ran = &results.first().expect("registry is non-empty").1.config;
    println!("policy sweep: seed={}, rounds={}\n", ran.seed, ran.rounds);
    print!("{}", table.render());
    Ok(())
}

fn policies() -> Result<(), FaircrowdError> {
    println!("catalog policies (TPL sources in faircrowd-lang::catalog):\n");
    for (name, _) in catalog::sources() {
        let policy = catalog::get(name)?;
        let set = policy.disclosure_set();
        println!(
            "  {:<16} rules {:>2}   axiom-6 {:>4.0}%   axiom-7 {:>4.0}%",
            policy.name,
            policy.rule_count(),
            set.axiom6_coverage() * 100.0,
            set.axiom7_coverage() * 100.0
        );
    }
    println!("\nuse `faircrowd render <policy>` for the worker-facing description");
    Ok(())
}

fn render_cmd(args: &[String]) -> Result<(), FaircrowdError> {
    let name = args
        .first()
        .ok_or_else(|| FaircrowdError::usage("usage: faircrowd render <policy>"))?;
    let policy = catalog::get(name)?;
    print!("{}", render::render_policy(&policy));
    println!(
        "\ncanonical TPL source:\n\n{}",
        printer::print_policy(&policy)
    );
    Ok(())
}

fn compare_cmd(args: &[String]) -> Result<(), FaircrowdError> {
    let (Some(a), Some(b)) = (args.first(), args.get(1)) else {
        return Err(FaircrowdError::usage("usage: faircrowd compare <a> <b>"));
    };
    let (pa, pb) = (catalog::get(a)?, catalog::get(b)?);
    print!("{}", compare(&pa, &pb).render());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn every_registry_name_builds_a_pipeline() {
        for name in registry::NAMES {
            let args = argv(&["--policy", name, "--rounds", "6"]);
            assert!(pipeline_from_flags(&args, false).is_ok(), "{name}");
        }
        // Hyphen spellings from the old CLI still resolve.
        let args = argv(&["--policy", "round-robin"]);
        assert!(pipeline_from_flags(&args, false).is_ok());
        let args = argv(&["--policy", "magic"]);
        assert!(matches!(
            pipeline_from_flags(&args, false),
            Err(FaircrowdError::UnknownPolicy { .. })
        ));
    }

    #[test]
    fn flag_value_extracts_pairs() {
        let args = argv(&["--seed", "7", "--policy", "kos"]);
        assert_eq!(flag_value(&args, "--seed"), Some("7"));
        assert_eq!(flag_value(&args, "--policy"), Some("kos"));
        assert_eq!(flag_value(&args, "--rounds"), None);
        // flag at the end with no value
        let dangling = argv(&["--seed"]);
        assert_eq!(flag_value(&dangling, "--seed"), None);
    }

    #[test]
    fn enforcements_parse_and_reject() {
        assert_eq!(
            parse_enforcement("parity").unwrap(),
            Enforcement::ExposureParity
        );
        assert_eq!(
            parse_enforcement("floor:5").unwrap(),
            Enforcement::ExposureFloor(5)
        );
        assert_eq!(
            parse_enforcement("transparency").unwrap(),
            Enforcement::MinimalTransparency
        );
        assert_eq!(
            parse_enforcement("grace").unwrap(),
            Enforcement::GraceFinish
        );
        assert!(parse_enforcement("floor:x").is_err());
        assert!(parse_enforcement("magic").is_err());
    }

    #[test]
    fn repeated_enforce_flags_accumulate() {
        let args = argv(&["--enforce", "parity", "--rounds", "6", "--enforce", "grace"]);
        let pipeline = pipeline_from_flags(&args, true).unwrap();
        let result = pipeline.run().unwrap();
        assert_eq!(result.enforced.unwrap().applied.len(), 2);
    }

    #[test]
    fn audit_rejects_enforce_instead_of_ignoring_it() {
        let args = argv(&["--enforce", "parity"]);
        let err = pipeline_from_flags(&args, false).unwrap_err();
        assert!(matches!(err, FaircrowdError::Usage { .. }), "{err}");
        assert!(err.to_string().contains("faircrowd run"));
    }

    #[test]
    fn bad_numeric_flags_are_usage_errors() {
        let args = argv(&["--seed", "pony"]);
        assert!(matches!(
            scenario_from_flags(&args),
            Err(FaircrowdError::Usage { .. })
        ));
    }
}
