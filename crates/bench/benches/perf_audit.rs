//! P1 — Audit-engine throughput: naive vs indexed, serial vs parallel.
//!
//! Full seven-axiom audits over the `baseline` catalog scenario at
//! scales 1 / 4 / 16, through the three execution paths the engine
//! offers:
//!
//! * `naive` — the retained reference implementation
//!   ([`faircrowd_core::axioms::naive`]): per-axiom map re-derivation
//!   and exhaustive pairwise scans;
//! * `indexed_serial` — one shared [`TraceIndex`] (single event-log
//!   replay, shared qualification matrices, blocked candidate pairs),
//!   axioms run back to back;
//! * `indexed_parallel` — the same index with the axioms fanned out
//!   over a scoped thread pool.
//!
//! All three produce bit-identical reports (pinned by the
//! `index_equivalence` property suite), so every gap measured here is
//! pure overhead removed. `cargo run --release --bin audit_baseline`
//! writes the same comparison as `BENCH_audit.json` at the repo root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faircrowd_core::{AuditConfig, AuditEngine, AxiomId, TraceIndex};
use faircrowd_model::trace::Trace;
use faircrowd_sim::{catalog, Simulation};
use std::hint::black_box;

fn trace_at_scale(scale: f64) -> Trace {
    let cfg = catalog::get("baseline")
        .expect("baseline is in the catalog")
        .at_scale(scale);
    Simulation::new(cfg).run()
}

fn bench_audit_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit_paths");
    group.sample_size(10);
    let parallel = AuditEngine::with_defaults();
    let serial = AuditEngine::new(AuditConfig {
        parallel: false,
        ..AuditConfig::default()
    });
    for scale in [1u32, 4, 16] {
        let trace = trace_at_scale(f64::from(scale));
        group.bench_with_input(BenchmarkId::new("naive", scale), &trace, |b, t| {
            b.iter(|| black_box(parallel.run_naive(black_box(t), &AxiomId::ALL)))
        });
        group.bench_with_input(BenchmarkId::new("indexed_serial", scale), &trace, |b, t| {
            b.iter(|| black_box(serial.run(black_box(t))))
        });
        group.bench_with_input(
            BenchmarkId::new("indexed_parallel", scale),
            &trace,
            |b, t| b.iter(|| black_box(parallel.run(black_box(t)))),
        );
    }
    group.finish();
}

fn bench_index_build_vs_audit(c: &mut Criterion) {
    // How much of an audit is index construction vs axiom checking —
    // the case for sharing one index across audit, metrics and re-audit.
    let trace = trace_at_scale(4.0);
    let engine = AuditEngine::with_defaults();
    let mut group = c.benchmark_group("audit_index_reuse");
    group.sample_size(10);
    group.bench_function("index_build_only", |b| {
        b.iter(|| black_box(TraceIndex::new(black_box(&trace))))
    });
    group.bench_function("audit_over_prebuilt_index", |b| {
        let ix = TraceIndex::new(&trace);
        // Warm every lazy slice (dense matrices, buckets, positions) by
        // running one full audit before measuring.
        let _ = engine.run_indexed(&ix, &AxiomId::ALL);
        b.iter(|| black_box(engine.run_indexed(black_box(&ix), &AxiomId::ALL)))
    });
    group.finish();
}

fn bench_single_axioms(c: &mut Criterion) {
    let trace = trace_at_scale(4.0);
    let engine = AuditEngine::with_defaults();
    let ix = TraceIndex::new(&trace);
    let mut group = c.benchmark_group("audit_single_axiom");
    group.sample_size(10);
    for id in AxiomId::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(id.label()), &id, |b, &id| {
            b.iter(|| black_box(engine.run_indexed(black_box(&ix), &[id])))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_audit_paths,
    bench_index_build_vs_audit,
    bench_single_axioms
);
criterion_main!(benches);
