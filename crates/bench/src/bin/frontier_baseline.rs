//! Writes the policy-frontier perf baseline (`BENCH_frontier.json`).
//!
//! Runs the quality/fairness Pareto analysis
//! ([`faircrowd::frontier`]) over the **whole 12-scenario catalog** at
//! scales 1 and 4 — a policy × aggregator × enforcement contrast per
//! scenario — and asserts the subsystem's claims in-binary before a
//! number is printed:
//!
//! * **the frontier exists and is sound** — at each scale the Pareto
//!   set is non-empty, no point dominates a frontier member, every
//!   measured off-frontier point is dominated by someone, and
//!   unmeasured points never sit on the frontier;
//! * **coverage** — frontier rows span ≥ 2 distinct scenarios (the
//!   catalog's trade-offs differ, so one scenario must not monopolise
//!   the chart);
//! * **determinism** — the analysis renders byte-identical tables and
//!   JSON for `jobs = 1` and the host's core count.
//!
//! ```text
//! cargo run --release --bin frontier_baseline > BENCH_frontier.json
//! ```

use faircrowd::frontier::{run_frontier, FrontierResult};
use faircrowd::FaircrowdError;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// The catalog-wide contrast grid at one scale: every scenario, three
/// policies spanning the assignment spectrum (self-selection →
/// requester-centric → inference-aware), the plain vs
/// parity-constrained aggregator contrast, and the none vs parity
/// enforcement contrast. Strategic scenarios converge before auditing.
fn grid_spec(scale: u32) -> String {
    format!(
        "scenario=*;policy=self_selection,round_robin,kos;\
         aggregator=majority,parity_constrained;enforce=none,parity;\
         seed=0;scale={scale}"
    )
}

/// Median wall-clock milliseconds of `runs` executions of `f`.
fn median_ms<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Assert the frontier invariants the module promises, plus the bench's
/// own coverage floor (≥ 2 scenarios on the frontier).
fn assert_sound(result: &FrontierResult, what: &str) {
    let frontier = result.frontier();
    assert!(!frontier.is_empty(), "{what}: empty Pareto frontier");
    for f in &frontier {
        assert!(f.measured(), "{what}: unmeasured point on the frontier");
        assert!(
            !result.points.iter().any(|p| p.dominates(f)),
            "{what}: frontier member {}/{}/{} is dominated",
            f.scenario,
            f.policy,
            f.aggregator
        );
    }
    for p in result
        .points
        .iter()
        .filter(|p| p.measured() && !p.on_frontier)
    {
        assert!(
            result.points.iter().any(|q| q.dominates(p)),
            "{what}: off-frontier point {}/{}/{} is undominated",
            p.scenario,
            p.policy,
            p.aggregator
        );
    }
    let scenarios: BTreeSet<&str> = frontier.iter().map(|p| p.scenario.as_str()).collect();
    assert!(
        scenarios.len() >= 2,
        "acceptance: frontier rows must span ≥ 2 scenarios (got {scenarios:?})"
    );
}

fn main() -> Result<(), FaircrowdError> {
    let jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut scale_rows = String::new();

    for (si, scale) in [1u32, 4].into_iter().enumerate() {
        let grid = faircrowd::frontier::frontier_grid(&grid_spec(scale))?;
        let cells = grid.expand()?.len();
        let result = run_frontier(&grid, jobs)?;
        assert_sound(&result, &format!("scale {scale}"));

        // Determinism: the serial analysis must render the same bytes.
        let serial = run_frontier(&grid, 1)?;
        assert_eq!(
            serial.render_table(),
            result.render_table(),
            "scale {scale}: table differs between --jobs 1 and --jobs {jobs}"
        );
        assert_eq!(
            serial.to_json(),
            result.to_json(),
            "scale {scale}: json differs between --jobs 1 and --jobs {jobs}"
        );

        let wall_ms = median_ms(3, || {
            black_box(run_frontier(black_box(&grid), jobs).expect("frontier run"));
        });

        let mut frontier_rows = String::new();
        for (fi, p) in result.frontier().into_iter().enumerate() {
            if fi > 0 {
                frontier_rows.push_str(",\n");
            }
            let _ = write!(
                frontier_rows,
                "        {{\"scenario\": \"{}\", \"policy\": \"{}\", \"aggregator\": \"{}\", \
                 \"enforce\": \"{}\", \"quality\": {:.4}, \"wage_gini\": {:.4}, \
                 \"violations\": {}}}",
                p.scenario,
                p.policy,
                p.aggregator,
                p.enforce,
                p.quality.expect("frontier members are measured"),
                p.wage_gini.expect("frontier members are measured"),
                p.violations
            );
        }

        if si > 0 {
            scale_rows.push_str(",\n");
        }
        let _ = write!(
            scale_rows,
            "    {{\"scale\": {scale}, \"cells\": {cells}, \"points\": {}, \
             \"frontier_size\": {}, \"wall_ms\": {wall_ms:.1}, \
             \"deterministic_across_jobs\": true,\n      \"frontier\": [\n\
             {frontier_rows}\n      ]}}",
            result.points.len(),
            result.frontier().len()
        );
    }

    println!("{{");
    println!("  \"bench\": \"policy_frontier\",");
    println!("  \"unit\": \"ms (median)\",");
    println!("  \"host_jobs\": {jobs},");
    println!(
        "  \"note\": \"12-scenario catalog x 3 policies x 2 aggregators x 2 enforcement \
         stacks per scale; frontier rows are the Pareto-dominant cells (quality up, \
         wage-gini down, violations down); soundness, >=2-scenario coverage and \
         jobs-independence asserted in-binary before printing\","
    );
    println!("  \"scales\": [");
    println!("{scale_rows}");
    println!("  ]");
    println!("}}");
    Ok(())
}
