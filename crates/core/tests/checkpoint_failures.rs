//! Failure modes of the checkpoint persistence layer.
//!
//! Every way a checkpoint file can be bad — truncated mid-value,
//! foreign schema, a version this build doesn't read, a header seq that
//! disagrees with its mirror, monitor state that doesn't cover its
//! entity tables — must surface as a descriptive [`FaircrowdError`],
//! never a panic. These tests drive [`faircrowd_core::checkpoint::load`]
//! (the path untrusted files come through) over systematically
//! corrupted copies of a real mid-stream snapshot.

use faircrowd_core::checkpoint;
use faircrowd_core::{AuditConfig, LiveAuditor};
use faircrowd_model::error::FaircrowdError;
use faircrowd_sim::{CampaignSpec, ScenarioConfig, Simulation, WorkerPopulation};
use std::path::PathBuf;

/// A real mid-stream checkpoint: a small simulator trace streamed
/// halfway into a live auditor, then snapshotted.
fn mid_stream_checkpoint() -> checkpoint::Checkpoint {
    let trace = Simulation::new(ScenarioConfig {
        seed: 7,
        rounds: 10,
        workers: vec![WorkerPopulation::diligent(6)],
        campaigns: vec![CampaignSpec::labeling("acme", 8, 6)],
        ..Default::default()
    })
    .run();
    let mut auditor = LiveAuditor::new(AuditConfig::default());
    auditor.set_horizon(trace.horizon);
    auditor.set_disclosure(trace.disclosure.clone());
    auditor.set_ground_truth(trace.ground_truth.clone());
    for w in &trace.workers {
        auditor.add_worker(w.clone());
    }
    for t in &trace.tasks {
        auditor.add_task(t.clone());
    }
    for r in &trace.requesters {
        auditor.add_requester(r.clone());
    }
    for s in &trace.submissions {
        auditor.add_submission(s.clone());
    }
    for e in trace.events.iter().take(trace.events.len() / 2) {
        auditor.ingest(e.clone()).unwrap();
    }
    auditor.checkpoint(40)
}

/// Write `text` to a fresh temp file and load it back.
fn load_text(name: &str, text: &str) -> Result<checkpoint::Checkpoint, FaircrowdError> {
    let path: PathBuf = std::env::temp_dir().join(format!("fc_ckfail_{name}"));
    std::fs::write(&path, text).unwrap();
    let result = checkpoint::load(&path);
    std::fs::remove_file(&path).ok();
    result
}

#[test]
fn a_valid_checkpoint_loads_and_resumes() {
    let ckpt = mid_stream_checkpoint();
    let loaded = load_text("ok.json", &checkpoint::encode(&ckpt)).unwrap();
    assert_eq!(loaded, ckpt);
    let auditor = LiveAuditor::resume(AuditConfig::default(), &loaded).unwrap();
    assert_eq!(auditor.resumed_events(), ckpt.seq());
}

#[test]
fn truncated_checkpoints_error_at_every_depth() {
    let text = checkpoint::encode(&mid_stream_checkpoint());
    for fraction in [0.05, 0.3, 0.6, 0.9, 0.999] {
        let cut = (text.len() as f64 * fraction) as usize;
        let cut = (0..=cut).rev().find(|&i| text.is_char_boundary(i)).unwrap();
        let err = load_text("trunc.json", &text[..cut]).unwrap_err();
        assert!(
            matches!(err, FaircrowdError::Persist { .. }),
            "cut at {cut}: {err:?}"
        );
        // The error names the file it refused.
        assert!(err.to_string().contains("fc_ckfail_trunc.json"), "{err}");
    }
}

#[test]
fn foreign_schema_is_named_not_guessed() {
    // A perfectly valid JSON document of the wrong kind.
    let err = load_text(
        "foreign.json",
        "{\"schema\": \"someone-elses\", \"version\": 1}",
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("someone-elses"), "{msg}");
    assert!(msg.contains("faircrowd-checkpoint"), "{msg}");

    // A trace file is not a checkpoint file, even though both are ours.
    let err = load_text(
        "trace-not-ckpt.json",
        "{\"schema\": \"faircrowd-trace\", \"version\": 1}",
    )
    .unwrap_err();
    assert!(err.to_string().contains("faircrowd-trace"), "{}", err);

    // No schema field at all.
    let err = load_text("schemaless.json", "{\"version\": 1}").unwrap_err();
    assert!(
        err.to_string().contains("not a faircrowd checkpoint"),
        "{}",
        err
    );
}

#[test]
fn future_versions_are_refused_with_both_numbers() {
    let mut text = checkpoint::encode(&mid_stream_checkpoint());
    text = text.replacen("\"version\": 1", "\"version\": 99", 1);
    let err = load_text("future.json", &text).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("99"), "{msg}");
    assert!(
        msg.contains("version 1") || msg.contains("reads version 1"),
        "{msg}"
    );
}

#[test]
fn header_seq_disagreeing_with_mirror_is_refused() {
    // A checkpoint stitched from two moments: the header claims one
    // seq, the serialized mirror another. Must fail the cross-check
    // gate with both numbers named, never resume into skewed state.
    let ckpt = mid_stream_checkpoint();
    let seq = ckpt.seq();
    let text = checkpoint::encode(&ckpt);
    let skewed = text.replacen(
        &format!("\"seq\": {seq}"),
        &format!("\"seq\": {}", seq + 3),
        1,
    );
    assert_ne!(skewed, text, "the header seq field was found and bumped");
    let err = load_text("skewed.json", &skewed).unwrap_err();
    let msg = err.to_string();
    assert!(matches!(err, FaircrowdError::Persist { .. }), "{err:?}");
    assert!(msg.contains(&format!("{}", seq + 3)), "{msg}");
    assert!(msg.contains(&format!("{seq}")), "{msg}");
    assert!(msg.contains("disagrees"), "{msg}");
}

#[test]
fn monitor_state_must_cover_the_entity_tables() {
    // Drop one qualification row: the integrity gate must refuse the
    // checkpoint (its monitor state no longer covers the worker table)
    // rather than let `resume` index out of bounds.
    let ckpt = mid_stream_checkpoint();
    let text = checkpoint::encode(&ckpt);
    let start = text.find("\"qual_tasks\": [").expect("field present");
    let open = start + "\"qual_tasks\": ".len();
    // Find the matching close bracket of the qual_tasks array.
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    let mut end = open;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            _ => {}
        }
    }
    let gutted = format!("{}[]{}", &text[..open], &text[end + 1..]);
    let err = load_text("uncovered.json", &gutted).unwrap_err();
    let msg = err.to_string();
    assert!(matches!(err, FaircrowdError::Persist { .. }), "{err:?}");
    assert!(msg.contains("integrity"), "{msg}");
}

#[test]
fn missing_checkpoint_file_is_an_io_error() {
    let err = checkpoint::load("/no/such/fc_checkpoint.json").unwrap_err();
    assert!(matches!(err, FaircrowdError::Io { .. }), "{err:?}");
    assert!(err.to_string().contains("fc_checkpoint.json"), "{err}");
}
