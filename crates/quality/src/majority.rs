//! Majority-vote aggregation.
//!
//! The baseline truth-inference scheme: each task's answer is the label
//! most workers gave. The weighted variant scales each worker's vote by a
//! reliability weight (e.g. a gold-question accuracy or a Dawid–Skene
//! estimate), which is how detection feeds back into aggregation in E3.

use crate::answers::AnswerSet;
use faircrowd_model::ids::{TaskId, WorkerId};
use std::collections::BTreeMap;

/// Plain majority vote. Ties break toward the smallest label so results
/// are deterministic. Tasks with no answers are absent from the result.
pub fn majority_vote(answers: &AnswerSet) -> BTreeMap<TaskId, u8> {
    weighted_majority_vote(answers, &BTreeMap::new())
}

/// Majority vote with per-worker weights; missing workers weigh 1.0.
/// Non-positive weights silence a worker entirely.
pub fn weighted_majority_vote(
    answers: &AnswerSet,
    weights: &BTreeMap<WorkerId, f64>,
) -> BTreeMap<TaskId, u8> {
    let classes = answers.classes() as usize;
    let mut tallies: BTreeMap<TaskId, Vec<f64>> = BTreeMap::new();
    for a in answers.answers() {
        let weight = weights.get(&a.worker).copied().unwrap_or(1.0);
        if weight <= 0.0 {
            continue;
        }
        let tally = tallies.entry(a.task).or_insert_with(|| vec![0.0; classes]);
        tally[a.label as usize] += weight;
    }
    tallies
        .into_iter()
        .filter_map(|(task, tally)| {
            let best = argmax(&tally)?;
            // A task whose every answer was silenced has an all-zero tally
            // and carries no information.
            if tally[best] <= 0.0 {
                return None;
            }
            Some((task, best as u8))
        })
        .collect()
}

/// Index of the maximum (first on ties); `None` on empty input.
fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        match best {
            Some((_, bx)) if x <= bx => {}
            _ => {
                if best.is_none() || x > best.unwrap().1 {
                    best = Some((i, x));
                }
            }
        }
    }
    best.map(|(i, _)| i)
}

/// Per-task agreement rate: the fraction of answers matching the majority
/// label. High mean agreement indicates an easy/clean task set; per-worker
/// *dis*agreement is the core spam signal (see [`crate::spam`]).
pub fn agreement_rates(answers: &AnswerSet) -> BTreeMap<TaskId, f64> {
    let consensus = majority_vote(answers);
    let mut rates = BTreeMap::new();
    for (task, group) in answers.by_task() {
        if let Some(&label) = consensus.get(&task) {
            let agree = group.iter().filter(|a| a.label == label).count();
            rates.insert(task, agree as f64 / group.len() as f64);
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u32) -> WorkerId {
        WorkerId::new(i)
    }
    fn t(i: u32) -> TaskId {
        TaskId::new(i)
    }

    fn set(rows: &[(u32, u32, u8)], classes: u8) -> AnswerSet {
        let mut s = AnswerSet::new(classes);
        for &(wi, ti, l) in rows {
            s.record(w(wi), t(ti), l);
        }
        s
    }

    #[test]
    fn simple_majority() {
        let s = set(&[(0, 0, 1), (1, 0, 1), (2, 0, 0)], 2);
        let mv = majority_vote(&s);
        assert_eq!(mv[&t(0)], 1);
    }

    #[test]
    fn tie_breaks_to_smallest_label() {
        let s = set(&[(0, 0, 1), (1, 0, 0)], 2);
        assert_eq!(majority_vote(&s)[&t(0)], 0);
    }

    #[test]
    fn weights_can_flip_the_outcome() {
        let s = set(&[(0, 0, 1), (1, 0, 0), (2, 0, 0)], 2);
        assert_eq!(majority_vote(&s)[&t(0)], 0);
        let mut weights = BTreeMap::new();
        weights.insert(w(0), 5.0);
        assert_eq!(weighted_majority_vote(&s, &weights)[&t(0)], 1);
    }

    #[test]
    fn zero_weight_silences_worker() {
        let s = set(&[(0, 0, 1), (1, 0, 0)], 2);
        let mut weights = BTreeMap::new();
        weights.insert(w(0), 0.0);
        assert_eq!(weighted_majority_vote(&s, &weights)[&t(0)], 0);
        // silencing everyone drops the task
        weights.insert(w(1), 0.0);
        assert!(weighted_majority_vote(&s, &weights).is_empty());
    }

    #[test]
    fn empty_answerset_yields_empty_result() {
        let s = AnswerSet::new(2);
        assert!(majority_vote(&s).is_empty());
    }

    #[test]
    fn agreement_rates_computed() {
        let s = set(&[(0, 0, 1), (1, 0, 1), (2, 0, 0), (0, 1, 0)], 2);
        let rates = agreement_rates(&s);
        assert!((rates[&t(0)] - 2.0 / 3.0).abs() < 1e-12);
        assert!((rates[&t(1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_edge_cases() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0]), Some(0));
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
    }
}
