//! Pluggable agent strategies: the decision layer of the simulator.
//!
//! The platform loop in [`crate::platform`] used to hard-code two agent
//! decisions: *workers take every assignment the policy hands them* and
//! *requesters post exactly the reward their campaign spec states*.
//! This module extracts both behind a trait pair —
//! [`WorkerStrategy`] / [`RequesterStrategy`] — so the same marketplace
//! engine can run **strategic** agents whose decisions respond to what
//! the market actually paid them (see [`crate::converge`] for the outer
//! fixed-point loop that feeds realized wages back into
//! [`StrategyState`]).
//!
//! The original behaviour is the named [`StrategyChoice::Static`]
//! strategy, and it is preserved **bit-identical**: the static
//! implementations accept every offer and pass the spec reward through
//! unchanged, make **zero RNG draws**, and therefore leave the platform's
//! random stream — and every existing trace — byte-for-byte untouched.
//!
//! Strategic decisions are deliberately RNG-free as well: they read only
//! the numeric [`StrategyState`] the convergence controller sets
//! *between* iterations, so each simulation pass stays a pure function
//! of `(ScenarioConfig, StrategyState)` and the whole loop is a pure
//! function of the seed.
//!
//! The three strategic profiles (PAPERS.md):
//!
//! * [`StrategyChoice::ReputationTemporal`] — REFORM-style
//!   reputation-temporal reward seeking: a worker's asking wage scales
//!   with her platform-computed standing, so well-reputed workers stop
//!   taking under-priced work.
//! * [`StrategyChoice::SuperTurker`] — the "Super Turker" selection
//!   strategy (Savage et al.): workers learn a reservation hourly wage
//!   from what tasks actually paid and decline offers below it.
//! * [`StrategyChoice::PriceUndercut`] — requester price undercutting:
//!   a requester whose tasks fill easily shaves the posted reward, one
//!   whose tasks starve raises it.

use crate::config::ScenarioConfig;
use faircrowd_model::error::FaircrowdError;
use faircrowd_model::money::Credits;
use faircrowd_model::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Canonical names of the strategy registry, in presentation order.
pub const NAMES: [&str; 4] = [
    "static",
    "reputation_temporal",
    "super_turker",
    "price_undercut",
];

/// Which strategy profile a scenario's agents follow. An enum (rather
/// than trait objects in the config) so configurations stay
/// serialisable and sweepable, exactly like
/// [`crate::config::PolicyChoice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StrategyChoice {
    /// The pre-strategy behaviour: workers accept everything, requesters
    /// post spec rewards. Bit-identical to the simulator before the
    /// strategy layer existed.
    #[default]
    Static,
    /// REFORM-style reputation-temporal reward seeking (workers).
    ReputationTemporal,
    /// Super-Turker reservation-wage task selection (workers).
    SuperTurker,
    /// Requester price undercutting (requesters).
    PriceUndercut,
}

impl StrategyChoice {
    /// Resolve a registry name into a strategy choice, with the same
    /// canonicalisation as the policy and scenario registries
    /// (case-insensitive, `-` accepted for `_`, trimmed). Unknown names
    /// report [`FaircrowdError::UnknownStrategy`] listing [`NAMES`].
    pub fn by_name(name: &str) -> Result<Self, FaircrowdError> {
        use faircrowd_assign::registry::canonical;
        let choice = match canonical(name).as_str() {
            "static" => StrategyChoice::Static,
            "reputation_temporal" => StrategyChoice::ReputationTemporal,
            "super_turker" => StrategyChoice::SuperTurker,
            "price_undercut" => StrategyChoice::PriceUndercut,
            _ => {
                return Err(FaircrowdError::UnknownStrategy {
                    name: name.to_owned(),
                    available: NAMES.iter().map(|n| (*n).to_owned()).collect(),
                })
            }
        };
        Ok(choice)
    }

    /// The canonical registry name.
    pub fn label(&self) -> &'static str {
        match self {
            StrategyChoice::Static => "static",
            StrategyChoice::ReputationTemporal => "reputation_temporal",
            StrategyChoice::SuperTurker => "super_turker",
            StrategyChoice::PriceUndercut => "price_undercut",
        }
    }

    /// One-line description for `--help` and the `scenarios` listing.
    pub fn describe(&self) -> &'static str {
        match self {
            StrategyChoice::Static => "fixed behaviour; converges in one iteration",
            StrategyChoice::ReputationTemporal => {
                "workers demand wages commensurate with their reputation (REFORM)"
            }
            StrategyChoice::SuperTurker => {
                "workers learn a reservation hourly wage and decline work below it"
            }
            StrategyChoice::PriceUndercut => {
                "requesters undercut prices when their tasks fill too easily"
            }
        }
    }

    /// Build the worker-side strategy implementation.
    pub fn worker_strategy(&self) -> Box<dyn WorkerStrategy> {
        match self {
            StrategyChoice::ReputationTemporal => Box::new(ReputationTemporalWorker),
            StrategyChoice::SuperTurker => Box::new(SuperTurkerWorker),
            _ => Box::new(StaticWorker),
        }
    }

    /// Build the requester-side strategy implementation.
    pub fn requester_strategy(&self) -> Box<dyn RequesterStrategy> {
        match self {
            StrategyChoice::PriceUndercut => Box::new(PriceUndercutRequester),
            _ => Box::new(StaticRequester),
        }
    }
}

/// What a worker sees when the assignment policy hands her a task: the
/// offer terms plus her own platform-computed standing.
#[derive(Debug, Clone, Copy)]
pub struct TaskOffer {
    /// The posted reward for one assignment.
    pub reward: Credits,
    /// The honest completion-time estimate.
    pub est_duration: SimDuration,
    /// The worker's platform-computed quality estimate in `[0, 1]`.
    pub quality_estimate: f64,
    /// The worker's acceptance ratio (approved / judged, 1.0 when fresh).
    pub acceptance_ratio: f64,
}

impl TaskOffer {
    /// The offer's implied hourly rate in dollars per hour (the
    /// Super-Turker selection signal). An instantaneous task counts as
    /// arbitrarily well paid.
    pub fn hourly_rate(&self) -> f64 {
        let hours = self.est_duration.as_secs() as f64 / 3600.0;
        if hours <= 0.0 {
            f64::INFINITY
        } else {
            self.reward.as_dollars_f64() / hours
        }
    }
}

/// The worker side of a strategy: whether to take an offered assignment.
///
/// Implementations must be deterministic and RNG-free — decisions read
/// only the offer and the iteration-frozen [`StrategyState`].
pub trait WorkerStrategy: Send + Sync {
    /// Registry name of the profile this implementation belongs to.
    fn name(&self) -> &'static str;
    /// Does worker `worker` (dense index) take this offer? The static
    /// strategy always says yes.
    fn accepts(&self, state: &StrategyState, worker: usize, offer: &TaskOffer) -> bool;
}

/// The requester side of a strategy: what reward to actually post for a
/// task whose campaign spec says `base`.
///
/// Implementations must be deterministic and RNG-free.
pub trait RequesterStrategy: Send + Sync {
    /// Registry name of the profile this implementation belongs to.
    fn name(&self) -> &'static str;
    /// The reward requester `requester` (dense index) posts. The static
    /// strategy returns `base` unchanged — the exact same `Credits`.
    fn post_reward(&self, state: &StrategyState, requester: usize, base: Credits) -> Credits;
}

/// Pre-strategy worker behaviour: take everything.
#[derive(Debug, Clone, Copy)]
pub struct StaticWorker;

impl WorkerStrategy for StaticWorker {
    fn name(&self) -> &'static str {
        "static"
    }
    fn accepts(&self, _state: &StrategyState, _worker: usize, _offer: &TaskOffer) -> bool {
        true
    }
}

/// Pre-strategy requester behaviour: post the spec reward.
#[derive(Debug, Clone, Copy)]
pub struct StaticRequester;

impl RequesterStrategy for StaticRequester {
    fn name(&self) -> &'static str {
        "static"
    }
    fn post_reward(&self, _state: &StrategyState, _requester: usize, base: Credits) -> Credits {
        base
    }
}

/// Super-Turker task selection: decline offers whose hourly rate falls
/// below the worker's learned reservation wage. Reservations start at
/// zero (accept everything — exactly the static behaviour on the first
/// convergence iteration) and are moved by the controller toward a
/// fraction of the wage the worker actually realized.
#[derive(Debug, Clone, Copy)]
pub struct SuperTurkerWorker;

impl WorkerStrategy for SuperTurkerWorker {
    fn name(&self) -> &'static str {
        "super_turker"
    }
    fn accepts(&self, state: &StrategyState, worker: usize, offer: &TaskOffer) -> bool {
        offer.hourly_rate() >= state.reservation(worker)
    }
}

/// REFORM-style reputation-temporal reward seeking: the worker's
/// effective asking wage is her learned aspiration scaled by her current
/// platform standing (the mean of quality estimate and acceptance
/// ratio), so reputation earned *during* a run immediately raises the
/// bar for the offers she will still take.
#[derive(Debug, Clone, Copy)]
pub struct ReputationTemporalWorker;

impl ReputationTemporalWorker {
    /// How strongly standing scales the asking wage: a zero-reputation
    /// worker asks 40% of her aspiration, a perfect one asks 100%.
    pub const STANDING_FLOOR: f64 = 0.4;
}

impl WorkerStrategy for ReputationTemporalWorker {
    fn name(&self) -> &'static str {
        "reputation_temporal"
    }
    fn accepts(&self, state: &StrategyState, worker: usize, offer: &TaskOffer) -> bool {
        let standing = 0.5 * (offer.quality_estimate + offer.acceptance_ratio);
        let asking = state.reservation(worker)
            * (Self::STANDING_FLOOR + (1.0 - Self::STANDING_FLOOR) * standing.clamp(0.0, 1.0));
        offer.hourly_rate() >= asking
    }
}

/// Requester price undercutting: post the spec reward scaled by the
/// requester's learned multiplier. Multipliers start at 1.0 (the exact
/// spec reward — static behaviour on the first convergence iteration)
/// and are nudged down while the requester's tasks over-fill, up while
/// they starve, clamped to [`PriceUndercutRequester::MIN_MULTIPLIER`] ..
/// [`PriceUndercutRequester::MAX_MULTIPLIER`].
#[derive(Debug, Clone, Copy)]
pub struct PriceUndercutRequester;

impl PriceUndercutRequester {
    /// A requester never undercuts below half the spec reward.
    pub const MIN_MULTIPLIER: f64 = 0.5;
    /// Nor bids above 1.5× the spec reward.
    pub const MAX_MULTIPLIER: f64 = 1.5;
}

impl RequesterStrategy for PriceUndercutRequester {
    fn name(&self) -> &'static str {
        "price_undercut"
    }
    fn post_reward(&self, state: &StrategyState, requester: usize, base: Credits) -> Credits {
        let m = state.multiplier(requester);
        if m == 1.0 {
            // Exact passthrough at the neutral multiplier, so iteration 1
            // posts the same `Credits` the static simulator would.
            base
        } else {
            base.mul_f64(m)
        }
    }
}

/// The numeric state strategic decisions read — per-worker reservation
/// wages (dollars per hour) and per-requester price multipliers. The
/// convergence controller ([`crate::converge`]) is the only writer; the
/// simulation itself never mutates it, which keeps each pass a pure
/// function of `(config, state)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyState {
    /// Per-worker reservation/aspiration hourly wage in dollars. All
    /// zeros initially: every offer clears the bar, so iteration 1 is
    /// exactly the static run.
    pub reservation: Vec<f64>,
    /// Per-requester posted-price multiplier. All 1.0 initially.
    pub multiplier: Vec<f64>,
}

impl StrategyState {
    /// The neutral state for a scenario: one zero reservation per worker
    /// (populations in config order) and one 1.0 multiplier per distinct
    /// requester name (first-seen order, matching the simulator's
    /// requester numbering).
    pub fn initial(cfg: &ScenarioConfig) -> StrategyState {
        let n_workers: usize = cfg.workers.iter().map(|p| p.count as usize).sum();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let n_requesters = cfg
            .campaigns
            .iter()
            .filter(|c| seen.insert(c.requester.as_str()))
            .count();
        StrategyState {
            reservation: vec![0.0; n_workers],
            multiplier: vec![1.0; n_requesters],
        }
    }

    /// Worker `w`'s reservation wage (0.0 when out of range — a scaled
    /// or hand-built config with more workers than the state was sized
    /// for behaves statically for the extras rather than panicking).
    pub fn reservation(&self, w: usize) -> f64 {
        self.reservation.get(w).copied().unwrap_or(0.0)
    }

    /// Requester `r`'s price multiplier (1.0 when out of range).
    pub fn multiplier(&self, r: usize) -> f64 {
        self.multiplier.get(r).copied().unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CampaignSpec;

    fn offer(cents: i64, mins: u64) -> TaskOffer {
        TaskOffer {
            reward: Credits::from_cents(cents),
            est_duration: SimDuration::from_mins(mins),
            quality_estimate: 0.8,
            acceptance_ratio: 0.9,
        }
    }

    #[test]
    fn names_resolve_and_canonicalise() {
        assert_eq!(
            StrategyChoice::by_name("Super-Turker").unwrap(),
            StrategyChoice::SuperTurker
        );
        assert_eq!(
            StrategyChoice::by_name(" STATIC ").unwrap(),
            StrategyChoice::Static
        );
        for name in NAMES {
            let c = StrategyChoice::by_name(name).unwrap();
            assert_eq!(c.label(), name);
            assert!(!c.describe().is_empty());
        }
        match StrategyChoice::by_name("greedy") {
            Err(FaircrowdError::UnknownStrategy { name, available }) => {
                assert_eq!(name, "greedy");
                assert_eq!(available.len(), NAMES.len());
            }
            other => panic!("wrong result: {other:?}"),
        }
    }

    #[test]
    fn static_pair_is_passthrough() {
        let state = StrategyState {
            reservation: vec![99.0],
            multiplier: vec![0.5],
        };
        // Even over a hostile state, the static pair ignores it.
        assert!(StaticWorker.accepts(&state, 0, &offer(1, 600)));
        let base = Credits::from_cents(7);
        assert_eq!(StaticRequester.post_reward(&state, 0, base), base);
    }

    #[test]
    fn super_turker_declines_below_reservation() {
        let mut state = StrategyState {
            reservation: vec![0.0],
            multiplier: vec![],
        };
        // 10¢ / 5 min = $1.20/h.
        assert!(SuperTurkerWorker.accepts(&state, 0, &offer(10, 5)));
        state.reservation[0] = 2.0;
        assert!(!SuperTurkerWorker.accepts(&state, 0, &offer(10, 5)));
        assert!(SuperTurkerWorker.accepts(&state, 0, &offer(20, 5)));
        // Out-of-range workers behave statically.
        assert!(SuperTurkerWorker.accepts(&state, 7, &offer(1, 600)));
    }

    #[test]
    fn reputation_scales_the_asking_wage() {
        let state = StrategyState {
            reservation: vec![2.0],
            multiplier: vec![],
        };
        // $1.20/h offer, $2/h aspiration: a low-standing worker asks
        // 0.4 × 2 = $0.80/h and takes it; a perfect-standing worker
        // asks the full $2/h and declines.
        let mut low = offer(10, 5);
        low.quality_estimate = 0.0;
        low.acceptance_ratio = 0.0;
        assert!(ReputationTemporalWorker.accepts(&state, 0, &low));
        let mut high = offer(10, 5);
        high.quality_estimate = 1.0;
        high.acceptance_ratio = 1.0;
        assert!(!ReputationTemporalWorker.accepts(&state, 0, &high));
    }

    #[test]
    fn undercut_scales_reward_and_is_exact_at_neutral() {
        let state = StrategyState {
            reservation: vec![],
            multiplier: vec![1.0, 0.8],
        };
        let base = Credits::from_cents(10);
        assert_eq!(PriceUndercutRequester.post_reward(&state, 0, base), base);
        assert_eq!(
            PriceUndercutRequester.post_reward(&state, 1, base),
            Credits::from_cents(8)
        );
        // Out-of-range requesters behave statically.
        assert_eq!(PriceUndercutRequester.post_reward(&state, 9, base), base);
    }

    #[test]
    fn initial_state_matches_population_and_requester_counts() {
        let cfg = ScenarioConfig {
            campaigns: vec![
                CampaignSpec::labeling("acme", 5, 10),
                CampaignSpec::labeling("globex", 5, 10),
                CampaignSpec::labeling("acme", 5, 12),
            ],
            ..Default::default()
        };
        let state = StrategyState::initial(&cfg);
        assert_eq!(state.reservation.len(), 20);
        assert_eq!(state.multiplier.len(), 2, "acme posts twice, counts once");
        assert!(state.reservation.iter().all(|&r| r == 0.0));
        assert!(state.multiplier.iter().all(|&m| m == 1.0));
    }

    #[test]
    fn zero_duration_offers_are_infinitely_paid() {
        let o = TaskOffer {
            reward: Credits::from_cents(1),
            est_duration: SimDuration::ZERO,
            quality_estimate: 0.5,
            acceptance_ratio: 0.5,
        };
        assert!(o.hourly_rate().is_infinite());
    }
}
