//! Requester-centric assignment.
//!
//! "Requester-centric task assignment allocates tasks to workers so as to
//! maximize the total gain of the requester. This could be discriminatory
//! to workers" (§3.1.1). This policy is the discrimination generator of
//! E1: it greedily gives every slot to the highest-quality qualified
//! worker, and — crucially — only *shows* tasks to the workers it picked.
//! Low-reputation workers never even see the well-paid work, the
//! information asymmetry the paper's fairness axioms are designed to
//! expose.

use crate::policy::{AssignInput, AssignmentOutcome, AssignmentPolicy};
use rand::RngCore;
use std::collections::BTreeMap;

/// Greedy requester-utility maximisation with need-to-know visibility.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequesterCentric;

impl AssignmentPolicy for RequesterCentric {
    fn name(&self) -> &'static str {
        "requester-centric"
    }

    fn assign(&mut self, input: &AssignInput, _rng: &mut dyn RngCore) -> AssignmentOutcome {
        let mut outcome = AssignmentOutcome::default();
        let mut capacity: BTreeMap<_, u32> =
            input.workers.iter().map(|w| (w.id, w.capacity)).collect();

        // Most valuable tasks first: the requester protects her highest
        // rewards with her best workers.
        let mut task_order: Vec<usize> = (0..input.tasks.len()).collect();
        task_order.sort_by(|&a, &b| {
            input.tasks[b]
                .reward
                .cmp(&input.tasks[a].reward)
                .then(input.tasks[a].id.cmp(&input.tasks[b].id))
        });

        for ti in task_order {
            let t = &input.tasks[ti];
            // Redundancy slots must go to distinct workers — the whole
            // point of multiple assignments is independent answers.
            let mut on_task: std::collections::BTreeSet<_> = std::collections::BTreeSet::new();
            for _slot in 0..t.slots {
                // best remaining qualified worker by quality
                let best = input
                    .workers
                    .iter()
                    .filter(|w| capacity[&w.id] > 0 && !on_task.contains(&w.id) && w.qualifies(t))
                    .max_by(|a, b| {
                        a.quality
                            .partial_cmp(&b.quality)
                            .expect("NaN quality")
                            .then(b.id.cmp(&a.id))
                    });
                match best {
                    Some(w) => {
                        *capacity.get_mut(&w.id).expect("capacity entry") -= 1;
                        on_task.insert(w.id);
                        outcome.assign(w.id, t.id);
                    }
                    None => break, // nobody left for this task
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::fixtures::small_market;
    use crate::policy::requester_utility;
    use crate::SelfSelection;
    use faircrowd_model::ids::WorkerId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn feasible() {
        let m = small_market();
        let o = RequesterCentric.assign(&m, &mut StdRng::seed_from_u64(0));
        assert!(o.check_feasible(&m).is_empty());
    }

    #[test]
    fn prefers_high_quality_workers() {
        let m = small_market();
        let o = RequesterCentric.assign(&m, &mut StdRng::seed_from_u64(0));
        // the $0.30 task (t2) must go to the best qualified worker (w0,
        // quality .95; w2 also qualifies at .60)
        let t2_workers: Vec<WorkerId> = o
            .assignments
            .iter()
            .filter(|(_, t)| t.raw() == 2)
            .map(|(w, _)| *w)
            .collect();
        assert_eq!(t2_workers, vec![WorkerId::new(0)]);
    }

    #[test]
    fn visibility_is_need_to_know() {
        let m = small_market();
        let o = RequesterCentric.assign(&m, &mut StdRng::seed_from_u64(0));
        // w3 (quality .40) only qualifies for t0; with better workers
        // available she may see at most t0 — and crucially, every worker's
        // visibility equals exactly her assignments.
        for (w, vis) in &o.visibility {
            let assigned: std::collections::BTreeSet<_> = o
                .assignments
                .iter()
                .filter(|(aw, _)| aw == w)
                .map(|(_, t)| *t)
                .collect();
            assert_eq!(vis, &assigned, "visibility leaks beyond assignments");
        }
    }

    #[test]
    fn maximizes_requester_utility_vs_self_selection() {
        let m = small_market();
        let rc = RequesterCentric.assign(&m, &mut StdRng::seed_from_u64(5));
        // self-selection with an adversarial seed can misallocate; over a
        // few seeds requester-centric should never lose on its own metric
        for seed in 0..5 {
            let ss = SelfSelection.assign(&m, &mut StdRng::seed_from_u64(seed));
            assert!(
                requester_utility(&m, &rc) >= requester_utility(&m, &ss) - 1e-9,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let m = small_market();
        let a = RequesterCentric.assign(&m, &mut StdRng::seed_from_u64(1));
        let b = RequesterCentric.assign(&m, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b, "no RNG dependence");
    }
}
