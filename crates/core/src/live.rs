//! The streaming-audit engine: incremental fairness monitoring over a
//! live event stream.
//!
//! Every other audit path in this crate is **batch**: it sees a finished
//! [`Trace`] and builds a [`TraceIndex`] over the whole world before the
//! first axiom runs. A production platform cannot wait for the world to
//! finish — REFORM-style temporal reward computation and online task
//! allocation both demand that fairness be checked *as work arrives*.
//! [`LiveAuditor`] is that path. It ingests [`Event`]s one at a time
//! (from a running simulation via `Pipeline::run_live`, or from an
//! incrementally decoded JSONL trace via
//! [`faircrowd_model::trace_io::JsonlReader`] — the `faircrowd watch`
//! verb), and per event it:
//!
//! 1. **validates arrival order** — a sparse sequence number or a
//!    regressing timestamp halts ingestion with the exact [`LogDefect`]
//!    (which seq, which position), instead of auditing a log that batch
//!    validation would later reject;
//! 2. **updates incremental mirrors** of the [`TraceIndex`] state: the
//!    visibility/audience maps, per-submission payments and per-worker
//!    earnings, the flagged/session/informed worker sets, submission
//!    groupings, and **lazily-dirtied qualification rows** (a new task
//!    marks every worker's qualified-task row stale; rows are extended
//!    only when a monitor actually reads them);
//! 3. **runs monitor forms of the seven axiom checkers** scoped to the
//!    entities the event touched, emitting each fresh [`Violation`] as a
//!    [`LiveFinding`] tagged with the seq at which it *first became
//!    true* — the first-violation attribution a batch audit structurally
//!    cannot give, because by the time it runs, every prefix looks the
//!    same.
//!
//! At end of stream, [`LiveAuditor::finalize`] emits the findings only an
//! end state can decide (a malicious worker *never* flagged, an active
//! worker *never* shown a disclosure), and [`LiveAuditor::final_report`]
//! runs the real axiom checkers over a [`TraceIndex`] built around the
//! incrementally maintained mirror — no second replay of the log — so
//! the closing report is **bit-identical** to
//! [`AuditEngine::run_indexed`] on the same trace (pinned by the
//! `live_stream` oracle tests across the whole scenario catalog and on
//! random proptest traces).
//!
//! ## Monitor semantics
//!
//! A monitor emits a finding the first time its axiom's condition holds
//! **on the stream prefix seen so far**, and never retracts: a pair of
//! similar workers whose access diverges at seq 17 is reported at seq
//! 17 even if later events re-equalise them. For Axioms 1–3 and 5 the
//! monitors are *prefix-complete* when every entity is declared before
//! the events that touch its pairs — which every JSONL stream
//! guarantees, since entity records precede all events: every violation
//! present in the final batch report was emitted at the event that
//! introduced it, because access overlap changes only at `TaskVisible`,
//! payment equality only at `SubmissionReceived` / `PaymentIssued`, and
//! every interruption is its own witness. When an entity is declared
//! **mid-stream** (a task posted in a later `run_live` round), exposure
//! history predating the pair's candidacy is not in its overlap
//! counters; such cross-declaration pairs may fire later than their
//! true first divergence or only surface in the closing report — but
//! never spuriously, and stale history can never *suppress* a fresh
//! divergence (a shared access is credited only once both sides have
//! been counted). Axiom 4 "never flagged", Axiom 7 delivery evidence,
//! and Axiom 6 for tasks that never saw a `TaskPosted` event are
//! end-state quantifiers and surface from [`LiveAuditor::finalize`]
//! with [`FindingOrigin::EndOfStream`]; the Axiom 4 wrong-flag monitor
//! fires only once a malicious worker is *active* — the batch
//! checker's quantifier — deferring earlier flags to finalize. Static
//! policy defects (Axiom 7 coverage, Axiom 6 per-task disclosure)
//! carry [`FindingOrigin::Setup`]. Under `Pipeline::run_live`, worker
//! computed attributes still evolve while monitors run, so mid-stream
//! similarity is judged on current knowledge — the final report is
//! always computed from the end state and stays the authority.

use crate::audit::{AuditConfig, AuditEngine, FairnessReport};
use crate::axiom::{AxiomId, Violation};
use crate::axioms::{a1_witness, a2_witness, a6::obligation_coverage, worker_similarity};
use crate::checkpoint::Checkpoint;
use crate::index::{AccessOverlap, TraceIndex};
use faircrowd_model::arena::{ArenaKey, DenseIdMap};
use faircrowd_model::contribution::Submission;
use faircrowd_model::disclosure::{Audience, DisclosureItem, DisclosureSet};
use faircrowd_model::error::FaircrowdError;
use faircrowd_model::event::{Event, EventKind, LogDefect};
use faircrowd_model::ids::{SubmissionId, TaskId, WorkerId};
use faircrowd_model::money::Credits;
use faircrowd_model::requester::Requester;
use faircrowd_model::task::Task;
use faircrowd_model::time::SimTime;
use faircrowd_model::trace::{EventIndex, GroundTruth, Trace};
use faircrowd_model::trace_io::{JsonlHeader, JsonlRecord};
use faircrowd_model::worker::Worker;
use faircrowd_pay::wage::WageStats;
use std::collections::{BTreeMap, BTreeSet};

/// Where in the stream a live finding came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingOrigin {
    /// True from stream setup — a static policy or task-conditions
    /// defect that no event introduced.
    Setup,
    /// First became true at this event.
    Event {
        /// Sequence number of the introducing event.
        seq: u64,
        /// Its timestamp.
        time: SimTime,
    },
    /// Only decidable once the stream ended (an end-state quantifier
    /// like "was *never* flagged").
    EndOfStream {
        /// The last ingested seq, if any event arrived at all.
        last_seq: Option<u64>,
    },
}

/// One violation observed live, tagged with the point in the stream at
/// which it first became true.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveFinding {
    /// Where the finding came from.
    pub origin: FindingOrigin,
    /// The violation, in the same shape the batch checkers emit.
    pub violation: Violation,
}

impl LiveFinding {
    /// The introducing seq, when an event (rather than setup or the end
    /// of the stream) made the violation true.
    pub fn seq(&self) -> Option<u64> {
        match self.origin {
            FindingOrigin::Event { seq, .. } => Some(seq),
            FindingOrigin::Setup | FindingOrigin::EndOfStream { .. } => None,
        }
    }
}

impl std::fmt::Display for LiveFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.origin {
            FindingOrigin::Setup => write!(f, "[setup]")?,
            FindingOrigin::Event { seq, time } => write!(f, "[seq {seq} @ {time}]")?,
            FindingOrigin::EndOfStream { .. } => write!(f, "[end-of-stream]")?,
        }
        write!(
            f,
            " {} {}",
            self.violation.axiom.label(),
            self.violation.description
        )
    }
}

/// A qualification row extended lazily: `seen` entities of the opposite
/// table have been folded in; anything appended since is "dirt" paid
/// for only when a monitor reads the row.
///
/// Membership is double-booked: the ordered `set` serves iteration,
/// intersection and checkpoint encoding, while `bits` mirrors it as a
/// bit-per-raw-id vector so the pair scans' per-event probes are one
/// shift and a mask instead of a tree descent. The bit region grows
/// under the same occupancy bound as [`DenseIdMap`]; outlier ids
/// (hostile sparse id spaces) live only in `set` and are caught by the
/// fallback probe.
#[derive(Debug, Clone)]
struct LazyRow<T: ArenaKey + Ord> {
    set: BTreeSet<T>,
    bits: Vec<u64>,
    seen: usize,
}

impl<T: ArenaKey + Ord> Default for LazyRow<T> {
    fn default() -> Self {
        LazyRow {
            set: BTreeSet::new(),
            bits: Vec::new(),
            seen: 0,
        }
    }
}

impl<T: ArenaKey + Ord> LazyRow<T> {
    fn insert(&mut self, id: T) {
        let raw = id.raw_index() as usize;
        let word = raw / 64;
        if word < self.bits.len() {
            self.bits[word] |= 1 << (raw % 64);
        } else if raw < 16 * (self.set.len() + 64) {
            self.grow_to(word + 1);
            self.bits[word] |= 1 << (raw % 64);
        }
        self.set.insert(id);
    }

    /// Extend the bit region, backfilling any members it now covers
    /// (ids inserted as outliers before the occupancy bound reached
    /// them) — the invariant `contains` relies on: every member with a
    /// raw id inside the region has its bit set.
    fn grow_to(&mut self, words: usize) {
        let old = self.bits.len() * 64;
        self.bits.resize(words, 0);
        let hi = self.bits.len() * 64;
        let lo = T::from_raw_index(old.min(u32::MAX as usize) as u32);
        for id in self.set.range(lo..) {
            let raw = id.raw_index() as usize;
            if raw >= hi {
                break;
            }
            self.bits[raw / 64] |= 1 << (raw % 64);
        }
    }

    #[inline]
    fn contains(&self, id: T) -> bool {
        let raw = id.raw_index() as usize;
        match self.bits.get(raw / 64) {
            Some(word) => word & (1 << (raw % 64)) != 0,
            None => self.set.contains(&id),
        }
    }

    fn clear(&mut self) {
        self.set.clear();
        self.bits.clear();
    }
}

/// An entity's monitor candidates (similar workers / comparable tasks),
/// computed on first need and extended incrementally as new entities
/// are declared — so the quadratic similarity scan is paid **once per
/// entity over the stream's lifetime**, not once per event.
#[derive(Debug, Clone, Default)]
struct PartnerCache {
    partners: Vec<Partner>,
    seen: usize,
}

/// One candidate on a partner list: the partner's table position plus
/// the pair's slot in the [`PairTable`], resolved on this side's first
/// touch and then read as a plain array index on every later event.
#[derive(Debug, Clone, Copy)]
struct Partner {
    /// The partner's entity-table position (ids are `u32`, so positions
    /// fit; 8 bytes per entry keeps the per-event scan cache-friendly).
    pos: u32,
    slot: u32,
}

/// Sentinel slot for a partner this side has not yet touched (the cold
/// [`PairTable`] index is consulted exactly once to replace it).
const PAIR_UNRESOLVED: u32 = u32::MAX;

impl Partner {
    fn fresh(pos: usize) -> Self {
        Partner {
            pos: pos as u32,
            slot: PAIR_UNRESOLVED,
        }
    }
}

/// Running restricted-access counters for one monitored pair:
/// `left`/`right` are each side's accesses within the pair's common
/// qualified set, `inter` the shared ones. Updated in O(1) per
/// visibility event, so a monitor never re-intersects whole sets — the
/// pair violates exactly when `left + right > 2 · inter` (Jaccard < 1).
#[derive(Debug, Clone, Copy, Default)]
struct PairCounters {
    left: usize,
    right: usize,
    inter: usize,
}

/// All monitored pairs of one axiom, counters in a flat slot vector.
/// The per-event hot path reaches a pair through the slot id cached on
/// the triggering entity's partner list — a plain array index, no
/// hashing, no tree descent. The ordered `index` is cold: consulted
/// once per pair side to resolve the slot (and by checkpointing, which
/// wants pairs in canonical key order anyway).
#[derive(Debug, Clone, Default)]
struct PairTable {
    slots: Vec<PairSlot>,
    index: BTreeMap<(usize, usize), u32>,
}

/// One monitored pair: its running counters and whether its finding has
/// already been emitted (settled slots persist so a partner list
/// rebuilt after [`LiveAuditor::adopt_end_state`] can never re-emit).
#[derive(Debug, Clone)]
struct PairSlot {
    counters: PairCounters,
    settled: bool,
}

impl PairTable {
    /// The pair's slot id, allocating one on first touch.
    fn slot_of(&mut self, key: (usize, usize)) -> u32 {
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = self.slots.len() as u32;
        self.slots.push(PairSlot {
            counters: PairCounters::default(),
            settled: false,
        });
        self.index.insert(key, id);
        id
    }

    /// Unsettled pairs with their counters, in canonical key order —
    /// the checkpoint row shape.
    fn live_rows(&self) -> Vec<[u64; 5]> {
        self.index
            .iter()
            .filter(|&(_, &s)| !self.slots[s as usize].settled)
            .map(|(&(i, j), &s)| {
                let c = self.slots[s as usize].counters;
                [
                    i as u64,
                    j as u64,
                    c.left as u64,
                    c.right as u64,
                    c.inter as u64,
                ]
            })
            .collect()
    }

    /// Settled pairs in canonical key order — the checkpoint's emitted
    /// list.
    fn settled_keys(&self) -> Vec<(u64, u64)> {
        self.index
            .iter()
            .filter(|&(_, &s)| self.slots[s as usize].settled)
            .map(|(&(i, j), _)| (i as u64, j as u64))
            .collect()
    }

    /// Rebuild the table from checkpoint rows: live pairs restore their
    /// counters, emitted pairs restore as settled slots.
    fn restore(live: &[[u64; 5]], settled: &[(u64, u64)]) -> Self {
        let mut table = PairTable::default();
        for &[i, j, left, right, inter] in live {
            let id = table.slot_of((i as usize, j as usize));
            table.slots[id as usize].counters = PairCounters {
                left: left as usize,
                right: right as usize,
                inter: inter as usize,
            };
        }
        for &(i, j) in settled {
            let id = table.slot_of((i as usize, j as usize));
            table.slots[id as usize].settled = true;
        }
        table
    }
}

/// The streaming auditor. See the [module docs](self) for the contract.
///
/// Feed entity records first (or let [`LiveAuditor::apply_record`] route
/// a decoded JSONL stream), then events through [`LiveAuditor::ingest`];
/// close with [`LiveAuditor::finalize`] and read
/// [`LiveAuditor::final_report`].
#[derive(Debug)]
pub struct LiveAuditor {
    config: AuditConfig,
    /// The world as declared so far (entity tables + accepted events).
    trace: Trace,
    /// Incremental mirror of every log-derived structure the audit
    /// layer reads — [`Trace::event_index`] maintained one event at a
    /// time instead of replayed at the end.
    events: EventIndex,
    /// Submission indices grouped by task (the Axiom 3 quantifier).
    subs_by_task: DenseIdMap<TaskId, Vec<usize>>,
    /// Workers who submitted at least once (the Axiom 4 active set).
    submitters: BTreeSet<WorkerId>,
    worker_pos: DenseIdMap<WorkerId, usize>,
    task_pos: DenseIdMap<TaskId, usize>,
    sub_pos: DenseIdMap<SubmissionId, usize>,
    /// Per worker: the tasks she qualifies for (lazily extended).
    qual_tasks: Vec<LazyRow<TaskId>>,
    /// Per task: the workers qualified for it (lazily extended).
    qual_workers: Vec<LazyRow<WorkerId>>,
    /// Per worker: positions of her similar partners (Axiom 1).
    similar_partners: Vec<PartnerCache>,
    /// Per task: positions of its comparable cross-requester partners
    /// (Axiom 2).
    comparable_partners: Vec<PartnerCache>,
    /// Counters and settled flags per monitored worker pair.
    a1_pairs: PairTable,
    /// Counters and settled flags per monitored task pair.
    a2_pairs: PairTable,
    last_time: SimTime,
    a3_emitted: BTreeSet<(SubmissionId, SubmissionId)>,
    a4_emitted: BTreeSet<WorkerId>,
    a6_emitted: BTreeSet<TaskId>,
    policy_scanned: bool,
    findings: Vec<LiveFinding>,
    suppressed: usize,
    max_findings: usize,
    finalized: bool,
    /// Events consumed before this auditor's own log began — zero for a
    /// fresh auditor, the checkpoint seq for one restored via
    /// [`LiveAuditor::resume`]. The internal log then holds only the
    /// tail ingested since; every absolute position (expected seqs,
    /// end-of-stream attribution, event counts) offsets by this base.
    resumed_events: u64,
}

impl LiveAuditor {
    /// A fresh auditor with nothing ingested. The audit configuration
    /// governs both the monitors' similarity regime and the closing
    /// report (witness caps, axiom fan-out).
    pub fn new(config: AuditConfig) -> Self {
        LiveAuditor {
            config,
            trace: Trace::default(),
            events: EventIndex::default(),
            subs_by_task: DenseIdMap::new(),
            submitters: BTreeSet::new(),
            worker_pos: DenseIdMap::new(),
            task_pos: DenseIdMap::new(),
            sub_pos: DenseIdMap::new(),
            qual_tasks: Vec::new(),
            qual_workers: Vec::new(),
            similar_partners: Vec::new(),
            comparable_partners: Vec::new(),
            a1_pairs: PairTable::default(),
            a2_pairs: PairTable::default(),
            last_time: SimTime::ZERO,
            a3_emitted: BTreeSet::new(),
            a4_emitted: BTreeSet::new(),
            a6_emitted: BTreeSet::new(),
            policy_scanned: false,
            findings: Vec::new(),
            suppressed: 0,
            max_findings: 10_000,
            finalized: false,
            resumed_events: 0,
        }
    }

    /// Cap the number of findings retained in memory (the stream still
    /// sees every finding as it is returned from ingestion; findings
    /// beyond the cap only bump [`LiveAuditor::suppressed_findings`]).
    pub fn max_live_findings(mut self, cap: usize) -> Self {
        self.max_findings = cap;
        self
    }

    /// The active audit configuration.
    pub fn config(&self) -> &AuditConfig {
        &self.config
    }

    /// Declare the disclosure configuration the platform runs under.
    /// Must precede ingestion — the Axiom 6/7 monitors read it.
    pub fn set_disclosure(&mut self, disclosure: DisclosureSet) {
        self.trace.disclosure = disclosure;
    }

    /// Declare the evaluation-only ground truth (the Axiom 4 monitor
    /// scores flags against it). Must precede ingestion.
    pub fn set_ground_truth(&mut self, ground_truth: GroundTruth) {
        self.trace.ground_truth = ground_truth;
    }

    /// Declare the stream horizon (end time), carried into the final
    /// trace.
    pub fn set_horizon(&mut self, horizon: SimTime) {
        self.trace.horizon = horizon;
    }

    /// Adopt a decoded JSONL header: horizon, disclosure set and ground
    /// truth in one call.
    pub fn apply_header(&mut self, header: &JsonlHeader) {
        self.trace.horizon = header.horizon;
        self.trace.disclosure = header.disclosure.clone();
        self.trace.ground_truth = header.ground_truth.clone();
    }

    /// Declare a worker. Seeds her mirror rows (an empty visibility set
    /// and zero earnings — "no access at all" must be visible to the
    /// audit) and a fresh lazy qualification row.
    pub fn add_worker(&mut self, worker: Worker) {
        let id = worker.id;
        self.worker_pos.insert(id, self.trace.workers.len());
        self.trace.workers.push(worker);
        self.qual_tasks.push(LazyRow::default());
        self.similar_partners.push(PartnerCache::default());
        self.events.visibility.entry(id);
        self.events.earnings.entry(id);
    }

    /// Declare a task. Seeds its audience row and dirties every
    /// worker's qualification row (paid for lazily, on first read).
    pub fn add_task(&mut self, task: Task) {
        let id = task.id;
        self.task_pos.insert(id, self.trace.tasks.len());
        self.trace.tasks.push(task);
        self.qual_workers.push(LazyRow::default());
        self.comparable_partners.push(PartnerCache::default());
        self.events.audience.entry(id);
    }

    /// Declare a requester.
    pub fn add_requester(&mut self, requester: Requester) {
        self.trace.requesters.push(requester);
    }

    /// Declare a submission (its `SubmissionReceived` event triggers the
    /// Axiom 3 monitor; the record itself just joins the tables).
    pub fn add_submission(&mut self, submission: Submission) {
        let ix = self.trace.submissions.len();
        self.sub_pos.insert(submission.id, ix);
        self.subs_by_task.entry(submission.task).push(ix);
        self.submitters.insert(submission.worker);
        self.trace.submissions.push(submission);
    }

    /// Route one decoded JSONL record: entity records join the tables,
    /// event records go through [`LiveAuditor::ingest`].
    pub fn apply_record(
        &mut self,
        record: JsonlRecord,
    ) -> Result<Vec<LiveFinding>, FaircrowdError> {
        match record {
            JsonlRecord::Worker(w) => self.add_worker(w),
            JsonlRecord::Task(t) => self.add_task(t),
            JsonlRecord::Requester(r) => self.add_requester(r),
            JsonlRecord::Submission(s) => self.add_submission(s),
            JsonlRecord::Event(e) => return self.ingest(e),
        }
        Ok(Vec::new())
    }

    /// Ingest one event: validate its arrival order, update every
    /// mirror, run the monitors it triggers, and return the findings
    /// that first became true at it.
    ///
    /// Arrival-order validation is the streaming form of
    /// [`faircrowd_model::event::EventLog::validate`]: a sparse seq or a
    /// regressing timestamp is rejected **at the event**, with the
    /// offending seq and position named, rather than accepted into a log
    /// that batch validation would later refuse wholesale.
    pub fn ingest(&mut self, event: Event) -> Result<Vec<LiveFinding>, FaircrowdError> {
        if self.finalized {
            return Err(FaircrowdError::usage(
                "LiveAuditor is finalized; no further events can be ingested",
            ));
        }
        let position = self.events_seen();
        let expected = position as u64;
        let defect = if event.seq != expected {
            Some(LogDefect::SparseSeq {
                index: position,
                expected,
                found: event.seq,
            })
        } else if event.time < self.last_time {
            Some(LogDefect::TimeRegression {
                index: position,
                seq: event.seq,
                previous: self.last_time,
                found: event.time,
            })
        } else {
            None
        };
        if let Some(defect) = defect {
            return Err(FaircrowdError::InvalidTrace {
                problems: vec![format!("streaming ingestion halted: {defect}")],
            });
        }

        let mut out = Vec::new();
        if !self.policy_scanned {
            self.scan_policy(&mut out);
        }

        let fresh = self.mirror(&event);

        let seq = event.seq;
        let time = event.time;
        let origin = FindingOrigin::Event { seq, time };
        match &event.kind {
            // A repeated show (`!fresh`) changes no access set: the pair
            // counters must see each (worker, task) exposure once.
            EventKind::TaskVisible { task, worker } if fresh => {
                let (task, worker) = (*task, *worker);
                self.monitor_a1(task, worker, origin, &mut out);
                self.monitor_a2(task, worker, origin, &mut out);
            }
            EventKind::SubmissionReceived {
                submission, task, ..
            }
            | EventKind::PaymentIssued {
                submission, task, ..
            } => {
                let (submission, task) = (*submission, *task);
                self.monitor_a3(task, submission, origin, &mut out);
            }
            EventKind::WorkerFlagged { worker, .. } => {
                let worker = *worker;
                self.monitor_a4_flag(worker, origin, &mut out);
            }
            EventKind::WorkInterrupted { .. } => self.monitor_a5(origin, &mut out),
            EventKind::TaskPosted { task, .. } => {
                let task = *task;
                self.monitor_a6(task, origin, &mut out);
            }
            _ => {}
        }

        self.last_time = time;
        self.trace.events.push_event(event);
        Ok(out)
    }

    /// Convenience: declare a whole recorded trace's header and entity
    /// tables, then ingest its events in order — the in-memory form of
    /// streaming a JSONL file. Does **not** finalize.
    pub fn ingest_trace(&mut self, trace: &Trace) -> Result<Vec<LiveFinding>, FaircrowdError> {
        self.set_horizon(trace.horizon);
        self.set_disclosure(trace.disclosure.clone());
        self.set_ground_truth(trace.ground_truth.clone());
        for w in &trace.workers {
            self.add_worker(w.clone());
        }
        for t in &trace.tasks {
            self.add_task(t.clone());
        }
        for r in &trace.requesters {
            self.add_requester(r.clone());
        }
        for s in &trace.submissions {
            self.add_submission(s.clone());
        }
        let mut out = Vec::new();
        for e in &trace.events {
            out.extend(self.ingest(e.clone())?);
        }
        Ok(out)
    }

    /// Number of events accepted over the stream's whole lifetime —
    /// across every process life, for a restored auditor.
    pub fn events_seen(&self) -> usize {
        self.resumed_events as usize + self.trace.events.len()
    }

    /// The checkpoint seq this auditor resumed from (zero when it has
    /// watched its stream from the beginning).
    pub fn resumed_events(&self) -> u64 {
        self.resumed_events
    }

    /// Every finding retained so far, in emission order.
    pub fn findings(&self) -> &[LiveFinding] {
        &self.findings
    }

    /// Findings dropped past the in-memory cap (they were still returned
    /// to the streaming caller when they fired).
    pub fn suppressed_findings(&self) -> usize {
        self.suppressed
    }

    /// The world as ingested so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consume the auditor, keeping the accumulated trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Replace the entity tables with their **end-of-run** state — the
    /// `Pipeline::run_live` closing step, where worker computed
    /// attributes kept evolving while the monitors watched. The stream
    /// shape (task/submission/event counts) must match what this auditor
    /// ingested; qualification rows are cleared so nothing stale
    /// survives the swap.
    pub fn adopt_end_state(&mut self, end: &Trace) -> Result<(), FaircrowdError> {
        if end.workers.len() != self.trace.workers.len()
            || end.tasks.len() != self.trace.tasks.len()
            || end.submissions.len() != self.trace.submissions.len()
            || end.events.len() != self.events_seen()
        {
            return Err(FaircrowdError::InvalidTrace {
                problems: vec![
                    "end-state trace does not match the stream this auditor ingested".to_owned(),
                ],
            });
        }
        self.trace.workers = end.workers.clone();
        self.trace.tasks = end.tasks.clone();
        self.trace.requesters = end.requesters.clone();
        self.trace.ground_truth = end.ground_truth.clone();
        self.trace.disclosure = end.disclosure.clone();
        self.trace.horizon = end.horizon;
        for row in &mut self.qual_tasks {
            row.clear();
            row.seen = 0;
        }
        for row in &mut self.qual_workers {
            row.clear();
            row.seen = 0;
        }
        for cache in self
            .similar_partners
            .iter_mut()
            .chain(self.comparable_partners.iter_mut())
        {
            cache.partners.clear();
            cache.seen = 0;
        }
        Ok(())
    }

    /// Close the stream: emit the findings only an end state can decide
    /// (Axiom 4 "never flagged" / no-detection, Axiom 7 delivery
    /// evidence, Axiom 6 for tasks that never saw a `TaskPosted`
    /// event). Idempotent; returns only the newly emitted findings.
    pub fn finalize(&mut self) -> Vec<LiveFinding> {
        if self.finalized {
            return Vec::new();
        }
        self.finalized = true;
        let mut out = Vec::new();
        if !self.policy_scanned {
            self.scan_policy(&mut out);
        }
        let last_seq = self.events_seen().checked_sub(1).map(|i| i as u64);
        let origin = FindingOrigin::EndOfStream { last_seq };

        // Axiom 6: tasks the event stream never announced.
        for ti in 0..self.trace.tasks.len() {
            let id = self.trace.tasks[ti].id;
            if !self.a6_emitted.contains(&id) {
                self.emit_a6(ti, origin, &mut out);
            }
        }

        // Axiom 4 end state, mirroring the batch checker's quantifiers.
        let active_malicious: BTreeSet<WorkerId> = self
            .trace
            .ground_truth
            .malicious_workers
            .intersection(&self.submitters)
            .copied()
            .collect();
        if !active_malicious.is_empty() {
            if self.events.flagged.is_empty() {
                self.record(
                    LiveFinding {
                        origin,
                        violation: Violation {
                            axiom: AxiomId::A4MaliceDetection,
                            severity: 1.0,
                            description: format!(
                                "platform emitted no detection events while {} malicious \
                                 worker(s) were active",
                                active_malicious.len()
                            ),
                        },
                    },
                    &mut out,
                );
            } else {
                let missed: Vec<WorkerId> = active_malicious
                    .difference(&self.events.flagged)
                    .copied()
                    .collect();
                for w in missed {
                    self.record(
                        LiveFinding {
                            origin,
                            violation: Violation {
                                axiom: AxiomId::A4MaliceDetection,
                                severity: 0.8,
                                description: format!("malicious worker {w} was never flagged"),
                            },
                        },
                        &mut out,
                    );
                }
                let wrong: Vec<WorkerId> = self
                    .events
                    .flagged
                    .difference(&self.trace.ground_truth.malicious_workers)
                    .filter(|w| !self.a4_emitted.contains(w))
                    .copied()
                    .collect();
                for w in wrong {
                    self.a4_emitted.insert(w);
                    self.record(
                        LiveFinding {
                            origin,
                            violation: Violation {
                                axiom: AxiomId::A4MaliceDetection,
                                severity: 0.4,
                                description: format!("honest worker {w} was wrongly flagged"),
                            },
                        },
                        &mut out,
                    );
                }
            }
        }

        // Axiom 7 delivery evidence.
        let coverage = self.trace.disclosure.axiom7_coverage();
        let active = &self.events.session_workers;
        if coverage > 0.0 && !active.is_empty() {
            let informed = &self.events.informed_workers;
            let evidence = active.intersection(informed).count() as f64 / active.len() as f64;
            if evidence < 1.0 {
                let uninformed = active.difference(informed).count();
                self.record(
                    LiveFinding {
                        origin,
                        violation: Violation {
                            axiom: AxiomId::A7PlatformTransparency,
                            severity: (1.0 - evidence).min(1.0),
                            description: format!(
                                "{uninformed} active worker(s) never saw any disclosure despite \
                                 a non-empty policy"
                            ),
                        },
                    },
                    &mut out,
                );
            }
        }
        out
    }

    /// The closing audit over all seven axioms — bit-identical to
    /// [`AuditEngine::run_indexed`] on the accumulated trace, because it
    /// *is* that engine, run over a [`TraceIndex`] assembled around the
    /// incrementally maintained event mirror (the log this auditor
    /// already watched is never replayed).
    pub fn final_report(&self) -> FairnessReport {
        self.final_report_for(&AxiomId::ALL)
    }

    /// [`LiveAuditor::final_report`] for a chosen axiom subset, in the
    /// given order.
    pub fn final_report_for(&self, ids: &[AxiomId]) -> FairnessReport {
        self.final_artifacts(ids).0
    }

    /// Effective hourly-wage statistics of the accumulated trace, off
    /// the same mirror-backed index the final report uses.
    pub fn final_wages(&self) -> Option<WageStats> {
        let ix = self.closing_index();
        crate::metrics::wage_stats(&ix)
    }

    /// The closing report **and** wage statistics off one shared
    /// mirror-backed index — what the CLI closing paths use, so the
    /// mirror handover and submission groupings are paid once, like the
    /// batch pipeline's single index per trace.
    pub fn final_artifacts(&self, ids: &[AxiomId]) -> (FairnessReport, Option<WageStats>) {
        let ix = self.closing_index();
        let report = AuditEngine::new(self.config.clone()).run_indexed(&ix, ids);
        let wages = crate::metrics::wage_stats(&ix);
        (report, wages)
    }

    /// The mirror-backed index every closing artifact reads. An auditor
    /// that watched its whole stream keeps the debug-asserted handover;
    /// a restored one holds only the log tail, so replaying it could
    /// never equal the full-stream mirror and the assertion-free
    /// constructor is the correct one (the checkpoint load gates own
    /// that integrity contract).
    fn closing_index(&self) -> TraceIndex<'_> {
        if self.resumed_events == 0 {
            TraceIndex::with_event_index(&self.trace, self.events.clone())
        } else {
            TraceIndex::with_restored_event_index(&self.trace, self.events.clone())
        }
    }

    /// Snapshot every incremental structure into a [`Checkpoint`] that
    /// [`LiveAuditor::resume`] can restore without replaying the log.
    /// `source_lines` records how many physical lines of the backing
    /// JSONL file produced the state (header, blank and entity lines
    /// included), so a resumed tailer knows how far to skip; pass `0`
    /// for auditors not fed from a line stream.
    ///
    /// Pair tables are walked through their ordered key index, so the
    /// same auditor state always snapshots to the same checkpoint —
    /// byte-identical once encoded.
    pub fn checkpoint(&self, source_lines: u64) -> Checkpoint {
        let mut world = self.trace.clone();
        world.events = faircrowd_model::event::EventLog::new();
        Checkpoint {
            world,
            mirror: self.events.clone(),
            events_seen: self.events_seen() as u64,
            source_lines,
            last_time: self.last_time,
            policy_scanned: self.policy_scanned,
            finalized: self.finalized,
            max_findings: self.max_findings,
            suppressed: self.suppressed as u64,
            qual_tasks: self
                .qual_tasks
                .iter()
                .map(|r| (r.seen, r.set.iter().copied().collect()))
                .collect(),
            qual_workers: self
                .qual_workers
                .iter()
                .map(|r| (r.seen, r.set.iter().copied().collect()))
                .collect(),
            similar_partners: self
                .similar_partners
                .iter()
                .map(|c| (c.seen, c.partners.iter().map(|p| p.pos as usize).collect()))
                .collect(),
            comparable_partners: self
                .comparable_partners
                .iter()
                .map(|c| (c.seen, c.partners.iter().map(|p| p.pos as usize).collect()))
                .collect(),
            a1_pairs: self.a1_pairs.live_rows(),
            a2_pairs: self.a2_pairs.live_rows(),
            a1_emitted: self.a1_pairs.settled_keys(),
            a2_emitted: self.a2_pairs.settled_keys(),
            a3_emitted: self.a3_emitted.iter().copied().collect(),
            a4_emitted: self.a4_emitted.iter().copied().collect(),
            a6_emitted: self.a6_emitted.iter().copied().collect(),
            findings: self.findings.clone(),
        }
    }

    /// Rebuild an auditor from a [`Checkpoint`], ready to ingest the
    /// event at the checkpoint seq: positional maps and submission
    /// groupings are re-derived from the checkpointed entity tables
    /// (their order is the position), then the incremental mirrors are
    /// restored verbatim. Finishing the stream from here is
    /// bit-identical — findings, final report, wages — to never having
    /// stopped (pinned by the `checkpoint_resume` oracle tests).
    ///
    /// The audit configuration is not part of the checkpoint; resuming
    /// under a different similarity regime than the one that produced
    /// the snapshot is the caller's responsibility to avoid.
    pub fn resume(config: AuditConfig, ckpt: &Checkpoint) -> Result<Self, FaircrowdError> {
        let n_workers = ckpt.world.workers.len();
        let n_tasks = ckpt.world.tasks.len();
        if ckpt.qual_tasks.len() != n_workers
            || ckpt.similar_partners.len() != n_workers
            || ckpt.qual_workers.len() != n_tasks
            || ckpt.comparable_partners.len() != n_tasks
        {
            return Err(FaircrowdError::persist(
                "checkpoint monitor state does not cover its entity tables \
                 (was it decoded through `checkpoint::load`?)",
            ));
        }
        let mut auditor = LiveAuditor::new(config);
        auditor.set_horizon(ckpt.world.horizon);
        auditor.set_disclosure(ckpt.world.disclosure.clone());
        auditor.set_ground_truth(ckpt.world.ground_truth.clone());
        for w in &ckpt.world.workers {
            auditor.add_worker(w.clone());
        }
        for t in &ckpt.world.tasks {
            auditor.add_task(t.clone());
        }
        for r in &ckpt.world.requesters {
            auditor.add_requester(r.clone());
        }
        for s in &ckpt.world.submissions {
            auditor.add_submission(s.clone());
        }
        auditor.events = ckpt.mirror.clone();
        for (row, (seen, ids)) in auditor.qual_tasks.iter_mut().zip(&ckpt.qual_tasks) {
            row.seen = *seen;
            for &id in ids {
                row.insert(id);
            }
        }
        for (row, (seen, ids)) in auditor.qual_workers.iter_mut().zip(&ckpt.qual_workers) {
            row.seen = *seen;
            for &id in ids {
                row.insert(id);
            }
        }
        for (cache, (seen, partners)) in auditor
            .similar_partners
            .iter_mut()
            .zip(&ckpt.similar_partners)
        {
            cache.seen = *seen;
            cache.partners = partners.iter().copied().map(Partner::fresh).collect();
        }
        for (cache, (seen, partners)) in auditor
            .comparable_partners
            .iter_mut()
            .zip(&ckpt.comparable_partners)
        {
            cache.seen = *seen;
            cache.partners = partners.iter().copied().map(Partner::fresh).collect();
        }
        auditor.a1_pairs = PairTable::restore(&ckpt.a1_pairs, &ckpt.a1_emitted);
        auditor.a2_pairs = PairTable::restore(&ckpt.a2_pairs, &ckpt.a2_emitted);
        auditor.a3_emitted = ckpt.a3_emitted.iter().copied().collect();
        auditor.a4_emitted = ckpt.a4_emitted.iter().copied().collect();
        auditor.a6_emitted = ckpt.a6_emitted.iter().copied().collect();
        auditor.last_time = ckpt.last_time;
        auditor.policy_scanned = ckpt.policy_scanned;
        auditor.finalized = ckpt.finalized;
        auditor.max_findings = ckpt.max_findings;
        auditor.suppressed = ckpt.suppressed as usize;
        auditor.findings = ckpt.findings.clone();
        auditor.resumed_events = ckpt.events_seen;
        Ok(auditor)
    }

    // ---- internals --------------------------------------------------

    fn record(&mut self, finding: LiveFinding, out: &mut Vec<LiveFinding>) {
        if self.findings.len() < self.max_findings {
            self.findings.push(finding.clone());
        } else {
            self.suppressed += 1;
        }
        out.push(finding);
    }

    /// Fold one event into the incremental [`EventIndex`] mirror — the
    /// per-event form of [`Trace::event_index`]'s replay loop. Returns
    /// whether the event changed the mirror's access state (false only
    /// for a `TaskVisible` repeating an exposure already recorded).
    fn mirror(&mut self, event: &Event) -> bool {
        match &event.kind {
            EventKind::TaskVisible { task, worker } => {
                let fresh = self.events.visibility.entry(*worker).insert(*task);
                self.events.audience.entry(*task).insert(*worker);
                return fresh;
            }
            EventKind::PaymentIssued {
                submission,
                worker,
                amount,
                ..
            } => {
                *self.events.payments.entry(*submission) += *amount;
                *self.events.earnings.entry(*worker) += *amount;
            }
            EventKind::BonusPaid { worker, amount, .. } => {
                *self.events.earnings.entry(*worker) += *amount;
            }
            EventKind::WorkerFlagged { worker, .. } => {
                self.events.flagged.insert(*worker);
            }
            EventKind::SessionStarted { worker } => {
                self.events.session_workers.insert(*worker);
            }
            EventKind::DisclosureShown { worker, .. } => {
                self.events.informed_workers.insert(*worker);
            }
            EventKind::WorkStarted { .. } => self.events.work_started += 1,
            EventKind::WorkInterrupted {
                task,
                worker,
                invested,
                compensated,
            } => self
                .events
                .interruptions
                .push(faircrowd_model::trace::Interruption {
                    task: *task,
                    worker: *worker,
                    invested: *invested,
                    compensated: *compensated,
                }),
            EventKind::WorkerQuit { worker, reason } => {
                self.events.quits.push((*worker, *reason, event.time));
            }
            _ => {}
        }
        true
    }

    /// Extend a worker's qualified-task row over any tasks appended
    /// since it was last read.
    fn ensure_worker_row(&mut self, wi: usize) {
        let row = &mut self.qual_tasks[wi];
        if row.seen == self.trace.tasks.len() {
            return;
        }
        let worker = &self.trace.workers[wi];
        for t in &self.trace.tasks[row.seen..] {
            if worker.qualifies_for(t) {
                row.insert(t.id);
            }
        }
        row.seen = self.trace.tasks.len();
    }

    /// Extend a task's qualified-worker row over any workers appended
    /// since it was last read.
    fn ensure_task_row(&mut self, ti: usize) {
        let row = &mut self.qual_workers[ti];
        if row.seen == self.trace.workers.len() {
            return;
        }
        let task = &self.trace.tasks[ti];
        for w in &self.trace.workers[row.seen..] {
            if w.qualifies_for(task) {
                row.insert(w.id);
            }
        }
        row.seen = self.trace.workers.len();
    }

    /// Extend a worker's similar-partner cache over any workers declared
    /// since it was last read — the one place the monitor pays for
    /// worker-to-worker similarity, once per (ordered) pair over the
    /// stream's whole lifetime.
    fn ensure_similar_partners(&mut self, wi: usize) {
        let seen = self.similar_partners[wi].seen;
        let total = self.trace.workers.len();
        if seen == total {
            return;
        }
        let cfg = &self.config.similarity;
        let me = &self.trace.workers[wi];
        let mut fresh = Vec::new();
        for (j, other) in self.trace.workers.iter().enumerate().skip(seen) {
            if j != wi && worker_similarity(me, other, cfg) >= cfg.worker_threshold {
                fresh.push(Partner::fresh(j));
            }
        }
        let cache = &mut self.similar_partners[wi];
        cache.partners.extend(fresh);
        cache.seen = total;
    }

    /// Extend a task's comparable-partner cache (different requester,
    /// similar skill requirements, comparable reward) over any tasks
    /// declared since it was last read.
    fn ensure_comparable_partners(&mut self, ti: usize) {
        let seen = self.comparable_partners[ti].seen;
        let total = self.trace.tasks.len();
        if seen == total {
            return;
        }
        let cfg = &self.config.similarity;
        let me = &self.trace.tasks[ti];
        let mut fresh = Vec::new();
        for (j, other) in self.trace.tasks.iter().enumerate().skip(seen) {
            if j != ti
                && me.requester != other.requester
                && cfg.skill_measure.score(&me.skills, &other.skills) >= cfg.task_skill_threshold
                && me.reward_comparable(other, cfg.reward_tolerance)
            {
                fresh.push(Partner::fresh(j));
            }
        }
        let cache = &mut self.comparable_partners[ti];
        cache.partners.extend(fresh);
        cache.seen = total;
    }

    /// Axiom 1 monitor: a fresh `TaskVisible` shifts the restricted
    /// access overlap only for pairs that both qualify for the shown
    /// task, and only by one count — so each similar partner costs two
    /// set probes and an O(1) counter update, with the full
    /// intersection computed exactly once, at emission, for the
    /// witness text.
    fn monitor_a1(
        &mut self,
        task: TaskId,
        worker: WorkerId,
        origin: FindingOrigin,
        out: &mut Vec<LiveFinding>,
    ) {
        let Some(&wi) = self.worker_pos.get(worker) else {
            return; // monitors skip events about undeclared entities
        };
        self.ensure_worker_row(wi);
        if !self.qual_tasks[wi].contains(task) {
            return; // the shown task is outside every common-qualified set
        }
        self.ensure_similar_partners(wi);
        // Take the candidate list out for the scan: the loop iterates a
        // local slice (no re-borrowed double indexing the optimizer
        // can't hoist) and writes resolved slot ids straight into it.
        let mut partners = std::mem::take(&mut self.similar_partners[wi].partners);
        let mut settled_any = false;
        for p in partners.iter_mut() {
            let wj = p.pos as usize;
            if p.slot != PAIR_UNRESOLVED && self.a1_pairs.slots[p.slot as usize].settled {
                settled_any = true; // stale entry; swept below
                continue;
            }
            self.ensure_worker_row(wj);
            if !self.qual_tasks[wj].contains(task) {
                continue; // outside the pair's common qualified set
            }
            let key = (wi.min(wj), wi.max(wj));
            // Resolve the pair's slot once per side — and only once the
            // partner actually qualifies, so pairs that never share a
            // qualified task never allocate a slot; every later event
            // reaches the counters by plain index.
            if p.slot == PAIR_UNRESOLVED {
                p.slot = self.a1_pairs.slot_of(key);
                if self.a1_pairs.slots[p.slot as usize].settled {
                    settled_any = true; // settled from the other side
                    continue;
                }
            }
            let slot = p.slot as usize;
            let partner_saw = self
                .events
                .visibility
                .get(self.trace.workers[wj].id)
                .is_some_and(|seen| seen.contains(&task));
            let counters = &mut self.a1_pairs.slots[slot].counters;
            let partner_credited = if wi == key.0 {
                counters.right > 0
            } else {
                counters.left > 0
            };
            if wi == key.0 {
                counters.left += 1;
            } else {
                counters.right += 1;
            }
            // `inter` is credited only when the partner's own side has
            // been counted: a shared access the counters never saw (the
            // partner was exposed before this pair entered candidacy,
            // e.g. an entity declared mid-stream) must not suppress a
            // fresh divergence. On streams whose entities all precede
            // their events — every JSONL stream — the guard is a no-op.
            if partner_saw && partner_credited {
                counters.inter += 1;
            }
            let c = *counters;
            if c.left + c.right <= 2 * c.inter {
                continue; // still perfectly equal access
            }
            self.a1_pairs.slots[slot].settled = true;
            settled_any = true;
            let (a, b) = (&self.trace.workers[key.0], &self.trace.workers[key.1]);
            let sim = worker_similarity(a, b, &self.config.similarity);
            let o = AccessOverlap {
                common: self.qual_tasks[key.0]
                    .set
                    .intersection(&self.qual_tasks[key.1].set)
                    .count(),
                left: c.left,
                right: c.right,
                inter: c.inter,
            };
            let overlap = o.jaccard();
            self.record(
                LiveFinding {
                    origin,
                    violation: Violation {
                        axiom: AxiomId::A1WorkerAssignment,
                        severity: 1.0 - overlap,
                        description: a1_witness(a.id, b.id, sim, &o, overlap),
                    },
                },
                out,
            );
        }
        if settled_any {
            // Settled pairs stop costing per-event work: one sweep
            // drops every already-reported partner from this worker's
            // candidate list (the settled slot still guards re-emission
            // should a later cache rebuild re-include the partner).
            let table = &self.a1_pairs;
            partners.retain(|p| p.slot == PAIR_UNRESOLVED || !table.slots[p.slot as usize].settled);
        }
        self.similar_partners[wi].partners = partners;
    }

    /// Axiom 2 monitor: the same counter scheme transposed — a fresh
    /// exposure shifts a task pair's restricted audience overlap only
    /// when the receiving worker qualifies for both tasks.
    fn monitor_a2(
        &mut self,
        task: TaskId,
        worker: WorkerId,
        origin: FindingOrigin,
        out: &mut Vec<LiveFinding>,
    ) {
        let Some(&tp) = self.task_pos.get(task) else {
            return;
        };
        self.ensure_task_row(tp);
        if !self.qual_workers[tp].contains(worker) {
            return;
        }
        self.ensure_comparable_partners(tp);
        // Same take-out-and-scan shape as the A1 monitor.
        let mut partners = std::mem::take(&mut self.comparable_partners[tp].partners);
        let mut settled_any = false;
        for p in partners.iter_mut() {
            let tj = p.pos as usize;
            if p.slot != PAIR_UNRESOLVED && self.a2_pairs.slots[p.slot as usize].settled {
                settled_any = true; // stale entry; swept below
                continue;
            }
            self.ensure_task_row(tj);
            if !self.qual_workers[tj].contains(worker) {
                continue;
            }
            let key = (tp.min(tj), tp.max(tj));
            if p.slot == PAIR_UNRESOLVED {
                p.slot = self.a2_pairs.slot_of(key);
                if self.a2_pairs.slots[p.slot as usize].settled {
                    settled_any = true; // settled from the other side
                    continue;
                }
            }
            let slot = p.slot as usize;
            let partner_reached = self
                .events
                .audience
                .get(self.trace.tasks[tj].id)
                .is_some_and(|seen| seen.contains(&worker));
            let counters = &mut self.a2_pairs.slots[slot].counters;
            let partner_credited = if tp == key.0 {
                counters.right > 0
            } else {
                counters.left > 0
            };
            if tp == key.0 {
                counters.left += 1;
            } else {
                counters.right += 1;
            }
            // Same crediting guard as the A1 monitor: audience history
            // predating the pair's candidacy (a task posted in a later
            // round) must not suppress a fresh divergence.
            if partner_reached && partner_credited {
                counters.inter += 1;
            }
            let c = *counters;
            if c.left + c.right <= 2 * c.inter {
                continue;
            }
            self.a2_pairs.slots[slot].settled = true;
            settled_any = true;
            let (a, b) = (&self.trace.tasks[key.0], &self.trace.tasks[key.1]);
            let skill_sim = self
                .config
                .similarity
                .skill_measure
                .score(&a.skills, &b.skills);
            // The witness text never shows the common-qualified size, so
            // no set intersection is paid here — this emission path runs
            // once per comparable pair on busy markets.
            let overlap = c.inter as f64 / (c.left + c.right - c.inter) as f64;
            self.record(
                LiveFinding {
                    origin,
                    violation: Violation {
                        axiom: AxiomId::A2RequesterAssignment,
                        severity: 1.0 - overlap,
                        description: a2_witness(a, b, skill_sim, c.left, c.right, overlap),
                    },
                },
                out,
            );
        }
        if settled_any {
            let table = &self.a2_pairs;
            partners.retain(|p| p.slot == PAIR_UNRESOLVED || !table.slots[p.slot as usize].settled);
        }
        self.comparable_partners[tp].partners = partners;
    }

    /// Axiom 3 monitor: payment equality of a same-task pair can only
    /// change at the pair's creation (`SubmissionReceived`) or at a
    /// `PaymentIssued` touching one side, so each trigger compares just
    /// the touched submission against its task siblings.
    fn monitor_a3(
        &mut self,
        task: TaskId,
        submission: SubmissionId,
        origin: FindingOrigin,
        out: &mut Vec<LiveFinding>,
    ) {
        let Some(&sp) = self.sub_pos.get(submission) else {
            return;
        };
        let Some(siblings) = self.subs_by_task.get(task) else {
            return;
        };
        let threshold = self.config.similarity.contribution_threshold;
        let mut fresh = Vec::new();
        for &other in siblings {
            if other == sp {
                continue;
            }
            let (a, b) = (&self.trace.submissions[sp], &self.trace.submissions[other]);
            if a.worker == b.worker {
                continue;
            }
            let key = if b.id < a.id {
                (b.id, a.id)
            } else {
                (a.id, b.id)
            };
            if self.a3_emitted.contains(&key) {
                continue;
            }
            let sim = a.contribution.similarity(&b.contribution);
            if sim < threshold {
                continue;
            }
            let pay = |id: SubmissionId| {
                self.events
                    .payments
                    .get(id)
                    .copied()
                    .unwrap_or(Credits::ZERO)
            };
            // Report in submission order, like the batch pair scan.
            let (first, second) = if other < sp { (other, sp) } else { (sp, other) };
            let (sa, sb) = (
                &self.trace.submissions[first],
                &self.trace.submissions[second],
            );
            let (pa, pb) = (pay(sa.id), pay(sb.id));
            if pa == pb {
                continue;
            }
            let max = pa.max(pb).millicents().max(1) as f64;
            let severity = pa.abs_diff(pb).millicents() as f64 / max;
            fresh.push((
                key,
                LiveFinding {
                    origin,
                    violation: Violation {
                        axiom: AxiomId::A3Compensation,
                        severity,
                        description: format!(
                            "task {task}: workers {} and {} made similar contributions \
                             (sim {sim:.2}) but were paid {pa} vs {pb}",
                            sa.worker, sb.worker
                        ),
                    },
                },
            ));
        }
        for (key, finding) in fresh {
            self.a3_emitted.insert(key);
            self.record(finding, out);
        }
    }

    /// Axiom 4 monitor (flag side): an honest worker wrongly flagged is
    /// a violation the moment the flag event lands — but only once a
    /// malicious worker is *active* (has submitted), matching the batch
    /// checker's quantifier exactly (a workforce with no active
    /// malicious workers takes the vacuous branch, where false alarms
    /// are a score note, not a violation). Flags that precede the first
    /// malicious submission are swept up at finalize, where the batch
    /// quantifier is decidable.
    fn monitor_a4_flag(
        &mut self,
        worker: WorkerId,
        origin: FindingOrigin,
        out: &mut Vec<LiveFinding>,
    ) {
        let no_active_malicious = self
            .trace
            .ground_truth
            .malicious_workers
            .intersection(&self.submitters)
            .next()
            .is_none();
        if no_active_malicious
            || self.trace.ground_truth.malicious_workers.contains(&worker)
            || self.a4_emitted.contains(&worker)
        {
            return;
        }
        self.a4_emitted.insert(worker);
        self.record(
            LiveFinding {
                origin,
                violation: Violation {
                    axiom: AxiomId::A4MaliceDetection,
                    severity: 0.4,
                    description: format!("honest worker {worker} was wrongly flagged"),
                },
            },
            out,
        );
    }

    /// Axiom 5 monitor: every `WorkInterrupted` is its own witness; the
    /// mirror has already recorded it, so the newest interruption is the
    /// finding.
    fn monitor_a5(&mut self, origin: FindingOrigin, out: &mut Vec<LiveFinding>) {
        let Some(intr) = self.events.interruptions.last().copied() else {
            return;
        };
        self.record(
            LiveFinding {
                origin,
                violation: Violation {
                    axiom: AxiomId::A5NoInterruption,
                    severity: if intr.compensated { 0.5 } else { 1.0 },
                    description: format!(
                        "worker {} was interrupted on task {} after investing {}{}",
                        intr.worker,
                        intr.task,
                        intr.invested,
                        if intr.compensated {
                            " (partially compensated)"
                        } else {
                            " (unpaid)"
                        }
                    ),
                },
            },
            out,
        );
    }

    /// Axiom 6 monitor: a task's working-conditions disclosure is static
    /// from the moment it is posted, so its obligations are checked at
    /// its `TaskPosted` event (tasks announced by no event are swept at
    /// finalize).
    fn monitor_a6(&mut self, task: TaskId, origin: FindingOrigin, out: &mut Vec<LiveFinding>) {
        let Some(&tp) = self.task_pos.get(task) else {
            return;
        };
        if self.a6_emitted.contains(&task) {
            return;
        }
        self.emit_a6(tp, origin, out);
    }

    fn emit_a6(&mut self, tp: usize, origin: FindingOrigin, out: &mut Vec<LiveFinding>) {
        let task = &self.trace.tasks[tp];
        self.a6_emitted.insert(task.id);
        // The shared coverage helper keeps the monitor and the batch
        // checker agreeing on what a task owes, by construction.
        let (coverage, missing) = obligation_coverage(task, &self.trace.disclosure);
        if missing.is_empty() {
            return;
        }
        let description = format!(
            "task {} (requester {}) does not disclose: {}",
            task.id,
            task.requester,
            missing.join(", ")
        );
        self.record(
            LiveFinding {
                origin,
                violation: Violation {
                    axiom: AxiomId::A6RequesterTransparency,
                    severity: 1.0 - coverage,
                    description,
                },
            },
            out,
        );
    }

    /// Axiom 7 monitor (policy side): the required computed attributes
    /// the disclosure set withholds are defects from stream setup.
    fn scan_policy(&mut self, out: &mut Vec<LiveFinding>) {
        self.policy_scanned = true;
        for item in DisclosureItem::AXIOM7_REQUIRED {
            if !self.trace.disclosure.allows(item, Audience::Subject) {
                self.record(
                    LiveFinding {
                        origin: FindingOrigin::Setup,
                        violation: Violation {
                            axiom: AxiomId::A7PlatformTransparency,
                            severity: 1.0 / DisclosureItem::AXIOM7_REQUIRED.len() as f64,
                            description: format!(
                                "computed attribute {item} is not disclosed to the worker"
                            ),
                        },
                    },
                    out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::fixtures::*;
    use faircrowd_model::time::SimDuration;

    fn stream(trace: &Trace) -> (LiveAuditor, Vec<LiveFinding>) {
        let mut auditor = LiveAuditor::new(AuditConfig::default());
        let mut findings = auditor.ingest_trace(trace).expect("well-formed stream");
        findings.extend(auditor.finalize());
        (auditor, findings)
    }

    #[test]
    fn final_report_is_bit_identical_to_batch() {
        use faircrowd_model::contribution::Contribution;
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10), task(1, 1, &[0, 0], 10)]);
        show(&mut trace, 1, 0, 0);
        let s0 = submit(&mut trace, 100, 0, 0, Contribution::Label(1));
        let _s1 = submit(&mut trace, 110, 0, 1, Contribution::Label(1));
        pay(&mut trace, 200, s0, 0, 10);
        let (auditor, _) = stream(&trace);
        let live = auditor.final_report();
        let batch = AuditEngine::with_defaults().run(&trace);
        assert_eq!(live, batch);
        assert!(batch.total_violations() > 0, "fixture must violate");
    }

    #[test]
    fn a1_finding_fires_at_the_introducing_event() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        // seq 0 shows t0 to w0: w1 (similar, qualified) now lags behind.
        show(&mut trace, 1, 0, 0);
        let (_, findings) = stream(&trace);
        let a1: Vec<&LiveFinding> = findings
            .iter()
            .filter(|f| f.violation.axiom == AxiomId::A1WorkerAssignment)
            .collect();
        assert_eq!(a1.len(), 1);
        assert_eq!(a1[0].seq(), Some(0), "attributed to the introducing event");
        assert!(a1[0].violation.description.contains("w0"));
        assert!(a1[0].violation.description.contains("w1"));
    }

    #[test]
    fn a1_findings_are_not_repeated_per_event() {
        let mut trace = skeleton(vec![
            task(0, 0, &[0, 0], 10),
            task(1, 1, &[0, 0], 10),
            task(2, 0, &[0, 0], 10),
        ]);
        // w0 pulls ahead three times; the pair is reported once, at the
        // first divergence.
        show(&mut trace, 1, 0, 0);
        show(&mut trace, 2, 1, 0);
        show(&mut trace, 3, 2, 0);
        let (_, findings) = stream(&trace);
        let a1_count = findings
            .iter()
            .filter(|f| f.violation.axiom == AxiomId::A1WorkerAssignment)
            .count();
        assert_eq!(a1_count, 1, "one finding per first-violating pair");
    }

    #[test]
    fn a3_finding_fires_at_the_unequal_payment() {
        use faircrowd_model::contribution::Contribution;
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        let s0 = submit(&mut trace, 100, 0, 0, Contribution::Label(1)); // seq 0
        let _s1 = submit(&mut trace, 110, 0, 1, Contribution::Label(1)); // seq 1
        pay(&mut trace, 200, s0, 0, 10); // seq 2 introduces the inequality
        let (_, findings) = stream(&trace);
        let a3: Vec<&LiveFinding> = findings
            .iter()
            .filter(|f| f.violation.axiom == AxiomId::A3Compensation)
            .collect();
        assert_eq!(a3.len(), 1);
        assert_eq!(a3[0].seq(), Some(2), "the payment event introduced it");
        assert!(a3[0].violation.description.contains("paid"));
    }

    #[test]
    fn a5_and_a4_monitors_attribute_seqs() {
        use faircrowd_model::contribution::Contribution;
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        trace.ground_truth.malicious_workers.insert(w(1));
        let _ = submit(&mut trace, 50, 0, 1, Contribution::Label(0)); // seq 0
        trace.events.push(
            SimTime::from_secs(60),
            EventKind::WorkStarted {
                task: t(0),
                worker: w(0),
            },
        ); // seq 1
        trace.events.push(
            SimTime::from_secs(70),
            EventKind::WorkInterrupted {
                task: t(0),
                worker: w(0),
                invested: SimDuration::from_mins(3),
                compensated: false,
            },
        ); // seq 2
        trace.events.push(
            SimTime::from_secs(80),
            EventKind::WorkerFlagged {
                worker: w(0), // honest!
                score: 0.9,
                detector: "test".into(),
            },
        ); // seq 3
        let (_, findings) = stream(&trace);
        let a5 = findings
            .iter()
            .find(|f| f.violation.axiom == AxiomId::A5NoInterruption)
            .expect("interruption reported");
        assert_eq!(a5.seq(), Some(2));
        let a4_flag = findings
            .iter()
            .find(|f| f.violation.description.contains("wrongly flagged"))
            .expect("wrong flag reported");
        assert_eq!(a4_flag.seq(), Some(3));
        // The malicious w1 was never flagged: an end-of-stream finding.
        let missed = findings
            .iter()
            .find(|f| f.violation.description.contains("never flagged"))
            .expect("missed spammer reported");
        assert_eq!(missed.seq(), None);
        assert!(matches!(
            missed.origin,
            FindingOrigin::EndOfStream { last_seq: Some(3) }
        ));
    }

    #[test]
    fn setup_findings_cover_policy_and_task_conditions() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        trace.events.push(
            SimTime::from_secs(0),
            EventKind::TaskPosted {
                task: t(0),
                requester: faircrowd_model::ids::RequesterId::new(0),
            },
        );
        let (_, findings) = stream(&trace);
        // Opaque platform: every required A7 attribute is a setup defect.
        let a7_policy = findings
            .iter()
            .filter(|f| matches!(f.origin, FindingOrigin::Setup))
            .filter(|f| f.violation.axiom == AxiomId::A7PlatformTransparency)
            .count();
        assert_eq!(a7_policy, DisclosureItem::AXIOM7_REQUIRED.len());
        // The undisclosed task is reported at its TaskPosted event.
        let a6 = findings
            .iter()
            .find(|f| f.violation.axiom == AxiomId::A6RequesterTransparency)
            .expect("opaque task reported");
        assert_eq!(a6.seq(), Some(0));
        assert!(a6.violation.description.contains("does not disclose"));
    }

    #[test]
    fn a2_fires_for_pairs_spanning_mid_stream_task_declarations() {
        // t0 is declared and shown to both workers; comparable t1 is
        // declared only later (a later round) and shown to w0 alone.
        // The pair's counters never saw t0's exposures — that stale
        // history must not suppress the fresh divergence.
        use faircrowd_model::ids::RequesterId;
        use faircrowd_model::requester::Requester;
        let mut auditor = LiveAuditor::new(AuditConfig::default());
        auditor.add_worker(worker(0, &[1, 1]));
        auditor.add_worker(worker(1, &[1, 1]));
        auditor.add_requester(Requester::new(RequesterId::new(0), "r0"));
        auditor.add_requester(Requester::new(RequesterId::new(1), "r1"));
        auditor.add_task(task(0, 0, &[0, 0], 10));
        let mut seq = 0u64;
        let mut send = |auditor: &mut LiveAuditor, kind: EventKind| {
            let out = auditor
                .ingest(Event {
                    time: SimTime::from_secs(seq),
                    seq,
                    kind,
                })
                .unwrap();
            seq += 1;
            out
        };
        send(
            &mut auditor,
            EventKind::TaskPosted {
                task: t(0),
                requester: RequesterId::new(0),
            },
        );
        send(
            &mut auditor,
            EventKind::TaskVisible {
                task: t(0),
                worker: w(0),
            },
        );
        send(
            &mut auditor,
            EventKind::TaskVisible {
                task: t(0),
                worker: w(1),
            },
        );
        // A later "round": the comparable rival enters the market.
        auditor.add_task(task(1, 1, &[0, 0], 10));
        send(
            &mut auditor,
            EventKind::TaskPosted {
                task: t(1),
                requester: RequesterId::new(1),
            },
        );
        let findings = send(
            &mut auditor,
            EventKind::TaskVisible {
                task: t(1),
                worker: w(0),
            },
        );
        let a2 = findings
            .iter()
            .find(|f| f.violation.axiom == AxiomId::A2RequesterAssignment)
            .expect("the cross-declaration pair must fire live");
        assert_eq!(a2.seq(), Some(4));
        auditor.finalize();
        // …and the closing report still equals the batch audit.
        let batch = AuditEngine::with_defaults().run(auditor.trace());
        assert_eq!(auditor.final_report(), batch);
        assert!(
            batch
                .axiom(AxiomId::A2RequesterAssignment)
                .is_some_and(|r| r.violation_count > 0),
            "the batch report confirms the violation"
        );
    }

    #[test]
    fn early_wrong_flag_defers_to_the_batch_quantifier() {
        // An honest worker flagged BEFORE any malicious worker has
        // submitted is not yet a batch A4 violation (the quantifier is
        // over *active* malicious workers); it must surface at finalize
        // — never mid-stream, where it would contradict a batch report
        // whose malicious set stayed inactive.
        use faircrowd_model::contribution::Contribution;
        use faircrowd_model::contribution::Submission;
        let mut auditor = LiveAuditor::new(AuditConfig::default());
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        trace.ground_truth.malicious_workers.insert(w(1));
        auditor.set_ground_truth(trace.ground_truth.clone());
        for worker in &trace.workers {
            auditor.add_worker(worker.clone());
        }
        for task in &trace.tasks {
            auditor.add_task(task.clone());
        }
        let flagged_early = auditor
            .ingest(Event {
                time: SimTime::from_secs(0),
                seq: 0,
                kind: EventKind::WorkerFlagged {
                    worker: w(0), // honest
                    score: 0.9,
                    detector: "test".into(),
                },
            })
            .unwrap();
        assert!(
            !flagged_early
                .iter()
                .any(|f| f.violation.axiom == AxiomId::A4MaliceDetection),
            "no active malicious worker yet: {flagged_early:?}"
        );
        // The malicious worker becomes active afterwards.
        auditor.add_submission(Submission {
            id: sub(0),
            task: t(0),
            worker: w(1),
            contribution: Contribution::Label(0),
            started_at: SimTime::from_secs(1),
            submitted_at: SimTime::from_secs(2),
        });
        auditor
            .ingest(Event {
                time: SimTime::from_secs(2),
                seq: 1,
                kind: EventKind::SubmissionReceived {
                    submission: sub(0),
                    task: t(0),
                    worker: w(1),
                },
            })
            .unwrap();
        let closing = auditor.finalize();
        let wrong = closing
            .iter()
            .find(|f| f.violation.description.contains("wrongly flagged"))
            .expect("the early flag surfaces once the quantifier is decidable");
        assert!(matches!(wrong.origin, FindingOrigin::EndOfStream { .. }));
    }

    #[test]
    fn sparse_seq_is_rejected_at_the_event_with_positions() {
        let mut auditor = LiveAuditor::new(AuditConfig::default());
        auditor
            .ingest(Event {
                time: SimTime::from_secs(1),
                seq: 0,
                kind: EventKind::SessionStarted { worker: w(0) },
            })
            .unwrap();
        let err = auditor
            .ingest(Event {
                time: SimTime::from_secs(2),
                seq: 5, // sparse, arriving mid-stream
                kind: EventKind::SessionEnded { worker: w(0) },
            })
            .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("seq 5"), "{text}");
        assert!(text.contains("position 1"), "{text}");
        assert!(text.contains("expected the dense seq 1"), "{text}");
        // The stream can continue with the *correct* seq.
        assert!(auditor
            .ingest(Event {
                time: SimTime::from_secs(2),
                seq: 1,
                kind: EventKind::SessionEnded { worker: w(0) },
            })
            .is_ok());
    }

    #[test]
    fn time_regression_is_rejected_at_the_event_with_positions() {
        let mut auditor = LiveAuditor::new(AuditConfig::default());
        auditor
            .ingest(Event {
                time: SimTime::from_secs(10),
                seq: 0,
                kind: EventKind::SessionStarted { worker: w(0) },
            })
            .unwrap();
        let err = auditor
            .ingest(Event {
                time: SimTime::from_secs(4), // regresses mid-stream
                seq: 1,
                kind: EventKind::SessionEnded { worker: w(0) },
            })
            .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("seq 1"), "{text}");
        assert!(text.contains("regressing"), "{text}");
    }

    #[test]
    fn finalize_is_idempotent_and_seals_ingestion() {
        let trace = skeleton(vec![]);
        let mut auditor = LiveAuditor::new(AuditConfig::default());
        auditor.ingest_trace(&trace).unwrap();
        let first = auditor.finalize();
        assert!(auditor.finalize().is_empty());
        let _ = first;
        let err = auditor
            .ingest(Event {
                time: SimTime::ZERO,
                seq: 0,
                kind: EventKind::SessionStarted { worker: w(0) },
            })
            .unwrap_err();
        assert!(err.to_string().contains("finalized"), "{err}");
    }

    #[test]
    fn findings_cap_suppresses_storage_not_the_stream() {
        let mut trace = skeleton(vec![]);
        trace.workers = (0..6).map(|i| worker(i, &[1, 1])).collect();
        trace.tasks = vec![task(0, 0, &[0, 0], 10)];
        show(&mut trace, 1, 0, 0); // 5 violating pairs at one event
        let mut auditor = LiveAuditor::new(AuditConfig::default()).max_live_findings(2);
        let streamed = auditor.ingest_trace(&trace).unwrap();
        let live_a1 = streamed
            .iter()
            .filter(|f| f.violation.axiom == AxiomId::A1WorkerAssignment)
            .count();
        assert_eq!(live_a1, 5, "the stream sees every finding");
        assert_eq!(auditor.findings().len(), 2, "storage is capped");
        assert!(auditor.suppressed_findings() >= 3);
    }
}
