//! The shared audit index: one pass over a trace, consumed by everything.
//!
//! All seven axiom checkers (and the objective metrics) are functions of
//! the same [`Trace`], yet they used to re-derive their own visibility /
//! audience / payment maps and run naive `O(n²)` scans over all worker,
//! task and submission pairs. A [`TraceIndex`] is built **once** per
//! trace and owns every derived structure the audit layer reads:
//!
//! * the log-derived maps ([`faircrowd_model::trace::EventIndex`],
//!   replayed from the event log in a single pass);
//! * submission groupings by task and by worker;
//! * the worker ⇄ task qualification matrices Axioms 1–2 intersect
//!   against (computed lazily, shared between both axioms);
//! * **similarity blocking buckets**: workers and tasks keyed by the
//!   coarse skill-vector signature (set-bit count), so the pairwise
//!   axioms only compare pairs whose buckets could possibly clear the
//!   configured similarity threshold
//!   ([`SkillMeasure::count_admissible`]).
//!
//! Blocking here is **lossless**: the bucket predicate is a necessary
//! condition for the exact kernel to reach the threshold, every
//! surviving candidate is re-checked with the exact kernel, and
//! candidates are emitted in the same `(i, j)` order the naive double
//! loop visits. Reports produced through the index are therefore
//! bit-identical to the retained naive reference implementation
//! ([`crate::axioms::naive`]) — pinned by the `index_equivalence`
//! property tests. Small traces skip the bucket machinery entirely
//! ([`EXACT_SCAN_MAX`]) since an exhaustive scan is cheaper than
//! building buckets for a handful of entities.
//!
//! For the A1/A2 inner loops the index additionally holds the
//! qualification and access relations as **dense bit matrices**
//! (64-entity words, rows per worker/task position), so each surviving
//! candidate pair costs a few word-AND + popcount passes instead of
//! `BTreeSet` intersections — the dominant cost of the naive scan at
//! scale. Precondition shared with the naive path's id-keyed maps:
//! entity ids in `trace.workers` / `trace.tasks` are unique (simulator
//! traces and well-formed hand-built traces always are).

use faircrowd_model::arena::DenseIdMap;
use faircrowd_model::contribution::{Contribution, Submission};
use faircrowd_model::ids::{SubmissionId, TaskId, WorkerId};
use faircrowd_model::money::Credits;
use faircrowd_model::similarity::{SimilarityConfig, SkillMeasure};
use faircrowd_model::time::SimTime;
use faircrowd_model::trace::{EventIndex, Interruption, Trace};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;

/// Below this many entities the pairwise axioms scan all pairs directly:
/// the exact fallback path for small traces, where bucket bookkeeping
/// costs more than it prunes.
pub const EXACT_SCAN_MAX: usize = 32;

/// The worker ⇄ task qualification matrices, shared by Axioms 1 and 2.
#[derive(Debug, Clone)]
struct Qualification {
    /// Per worker (by position in `trace.workers`), the tasks she
    /// qualifies for.
    tasks_per_worker: Vec<BTreeSet<TaskId>>,
    /// Per task (by position in `trace.tasks`), the qualified workers.
    workers_per_task: Vec<BTreeSet<WorkerId>>,
}

/// Dense id → position maps for the bit-row scans — arena-backed, so a
/// probe is an array index rather than a tree descent.
#[derive(Debug)]
struct Positions {
    worker: DenseIdMap<WorkerId, usize>,
    task: DenseIdMap<TaskId, usize>,
}

/// The qualification relation as two dense bit matrices (row-major,
/// 64-bit words): per worker a row over task positions, per task a row
/// over worker positions. This is what makes the A1/A2 per-pair work a
/// handful of word-AND + popcount passes instead of `BTreeSet`
/// intersections — the dominant cost of the naive scan at scale.
#[derive(Debug, Clone)]
struct DenseQualified {
    task_width: usize,
    worker_width: usize,
    by_worker: Vec<u64>,
    by_task: Vec<u64>,
}

/// The access relation (visibility / audience) as dense bit matrices
/// with the same layout as [`DenseQualified`]. Event-derived, so never
/// carried across traces.
#[derive(Debug)]
struct DenseAccess {
    visible: Vec<u64>,
    audience: Vec<u64>,
}

/// Overlap counts for one candidate pair, read off the dense bit rows.
/// `left`/`right` are the two access sets restricted to the pair's
/// common qualified entities; `inter` their intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOverlap {
    /// `|qualified(i) ∩ qualified(j)|`.
    pub common: usize,
    /// `|access(i) ∩ common|`.
    pub left: usize,
    /// `|access(j) ∩ common|`.
    pub right: usize,
    /// `|access(i) ∩ access(j) ∩ common|`.
    pub inter: usize,
}

impl AccessOverlap {
    /// Jaccard overlap of the two restricted access sets.
    ///
    /// The empty-set case is **defined**, not derived: when both
    /// restricted access sets are empty, materialising them and dividing
    /// `|∩|` by `|∪|` would be `0/0` — a NaN that every threshold
    /// comparison downstream silently absorbs (NaN compares false, so a
    /// poisoned pair is neither a violation nor a satisfaction and the
    /// mean score goes NaN with it). This method pins that case to
    /// `1.0`: two workers (or tasks) that were both shown *nothing* of
    /// their common-qualified universe received identical — equally
    /// empty — access, which is exactly what Axioms 1–2 ask for. The
    /// result is always finite and in `[0, 1]`; regression-tested
    /// end-to-end through `similar_worker_candidates` with zero-access
    /// worker pairs.
    pub fn jaccard(&self) -> f64 {
        if self.left == 0 && self.right == 0 {
            return 1.0;
        }
        self.inter as f64 / (self.left + self.right - self.inter) as f64
    }
}

/// Blocking buckets: entity positions grouped by skill-vector set-bit
/// count, counts ascending, members ascending within a bucket.
#[derive(Debug, Clone)]
struct Buckets(Vec<(usize, Vec<usize>)>);

impl Buckets {
    fn group_by_count<I: Iterator<Item = usize>>(counts: I) -> Buckets {
        let mut map: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, c) in counts.enumerate() {
            map.entry(c).or_default().push(i);
        }
        Buckets(map.into_iter().collect())
    }

    /// Candidate pairs `(i, j)` with `i < j`, restricted to bucket pairs
    /// the kernel could score at or above `threshold`, in ascending
    /// `(i, j)` order — exactly the order of the naive double loop over
    /// the surviving pairs.
    fn admissible_pairs(&self, measure: SkillMeasure, threshold: f64) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for (a, (ca, members_a)) in self.0.iter().enumerate() {
            for (cb, members_b) in &self.0[a..] {
                if !measure.count_admissible(*ca, *cb, threshold) {
                    continue;
                }
                if *cb == *ca {
                    for (x, &i) in members_a.iter().enumerate() {
                        for &j in &members_a[x + 1..] {
                            pairs.push((i, j));
                        }
                    }
                } else {
                    for &i in members_a {
                        for &j in members_b {
                            pairs.push((i.min(j), i.max(j)));
                        }
                    }
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }
}

/// Every derived structure an audit reads, built once per trace.
///
/// Cheap slices (log replay, submission groupings) are built eagerly in
/// [`TraceIndex::new`]; the quadratic-ish ones (qualification matrices,
/// blocking buckets) are built lazily on first use and shared across the
/// axioms — and across threads, since the audit engine fans the seven
/// checkers out over a scoped pool against one `&TraceIndex`.
#[derive(Debug)]
pub struct TraceIndex<'a> {
    trace: &'a Trace,
    events: EventIndex,
    subs_by_task: BTreeMap<TaskId, Vec<&'a Submission>>,
    subs_by_worker: BTreeMap<WorkerId, Vec<&'a Submission>>,
    qualification: OnceLock<Qualification>,
    positions: OnceLock<Positions>,
    dense_qualified: OnceLock<DenseQualified>,
    dense_access: OnceLock<DenseAccess>,
    worker_buckets: OnceLock<Buckets>,
    task_buckets: OnceLock<Buckets>,
}

impl<'a> TraceIndex<'a> {
    /// Index a trace: one pass over the event log, one over the
    /// submissions. Qualification matrices and blocking buckets are
    /// deferred until an axiom asks for them.
    pub fn new(trace: &'a Trace) -> TraceIndex<'a> {
        Self::build(trace, trace.event_index())
    }

    /// Index a trace around a **pre-built** event-derived state — the
    /// streaming-audit path. `faircrowd_core::live`'s `LiveAuditor`
    /// maintains an [`EventIndex`] mirror incrementally, one event at a
    /// time; at finalisation it hands that mirror here so the closing
    /// audit never replays the log it already watched. The caller owns
    /// the contract that `events` equals `trace.event_index()` (the
    /// live auditor's ingest rules guarantee it; debug builds
    /// re-derive and assert — only on this handover path, so
    /// [`TraceIndex::new`] never pays for a tautological
    /// self-comparison).
    pub(crate) fn with_event_index(trace: &'a Trace, events: EventIndex) -> TraceIndex<'a> {
        debug_assert_eq!(
            events,
            trace.event_index(),
            "pre-built event index must equal a fresh log replay"
        );
        Self::build(trace, events)
    }

    /// [`with_event_index`](Self::with_event_index) for a **restored**
    /// auditor, whose trace holds only the log tail ingested since its
    /// checkpoint: the mirror covers the full stream, but replaying the
    /// truncated log cannot reproduce it, so the debug assertion of the
    /// uninterrupted handover would be wrong here, not just expensive.
    /// The checkpoint load gates own the integrity contract instead.
    pub(crate) fn with_restored_event_index(
        trace: &'a Trace,
        events: EventIndex,
    ) -> TraceIndex<'a> {
        Self::build(trace, events)
    }

    fn build(trace: &'a Trace, events: EventIndex) -> TraceIndex<'a> {
        let mut subs_by_task: BTreeMap<TaskId, Vec<&'a Submission>> = BTreeMap::new();
        let mut subs_by_worker: BTreeMap<WorkerId, Vec<&'a Submission>> = BTreeMap::new();
        for s in &trace.submissions {
            subs_by_task.entry(s.task).or_default().push(s);
            subs_by_worker.entry(s.worker).or_default().push(s);
        }
        TraceIndex {
            trace,
            events,
            subs_by_task,
            subs_by_worker,
            qualification: OnceLock::new(),
            positions: OnceLock::new(),
            dense_qualified: OnceLock::new(),
            dense_access: OnceLock::new(),
            worker_buckets: OnceLock::new(),
            task_buckets: OnceLock::new(),
        }
    }

    /// Re-index a follow-up trace (the pipeline's enforce → re-audit
    /// pass), carrying over every slice the change did not touch: the
    /// qualification matrices when both entity tables are unchanged, and
    /// each blocking-bucket family when its entity table is unchanged.
    /// Log-derived slices are always replayed — comparing the log costs
    /// as much as replaying it.
    pub fn rebuilt_for<'b>(&self, trace: &'b Trace) -> TraceIndex<'b> {
        let ix = TraceIndex::new(trace);
        let workers_same = self.trace.workers == trace.workers;
        let tasks_same = self.trace.tasks == trace.tasks;
        if workers_same && tasks_same {
            if let Some(q) = self.qualification.get() {
                let _ = ix.qualification.set(q.clone());
            }
            if let Some(d) = self.dense_qualified.get() {
                let _ = ix.dense_qualified.set(d.clone());
            }
        }
        if workers_same {
            if let Some(b) = self.worker_buckets.get() {
                let _ = ix.worker_buckets.set(b.clone());
            }
        }
        if tasks_same {
            if let Some(b) = self.task_buckets.get() {
                let _ = ix.task_buckets.set(b.clone());
            }
        }
        ix
    }

    /// The indexed trace.
    pub fn trace(&self) -> &'a Trace {
        self.trace
    }

    /// Per worker, the tasks made visible to her (every worker appears).
    pub fn visibility(&self) -> &DenseIdMap<WorkerId, BTreeSet<TaskId>> {
        &self.events.visibility
    }

    /// Per task, the workers it was shown to (every task appears).
    pub fn audience(&self) -> &DenseIdMap<TaskId, BTreeSet<WorkerId>> {
        &self.events.audience
    }

    /// Total amount actually paid per submission.
    pub fn payments(&self) -> &DenseIdMap<SubmissionId, Credits> {
        &self.events.payments
    }

    /// Total earnings per worker (payments plus honoured bonuses).
    pub fn earnings(&self) -> &DenseIdMap<WorkerId, Credits> {
        &self.events.earnings
    }

    /// Workers flagged by any detector.
    pub fn flagged(&self) -> &BTreeSet<WorkerId> {
        &self.events.flagged
    }

    /// Workers who had at least one session.
    pub fn session_workers(&self) -> &BTreeSet<WorkerId> {
        &self.events.session_workers
    }

    /// Workers who were shown at least one disclosure.
    pub fn informed_workers(&self) -> &BTreeSet<WorkerId> {
        &self.events.informed_workers
    }

    /// Number of `WorkStarted` events.
    pub fn work_started(&self) -> usize {
        self.events.work_started
    }

    /// Every interruption, in log order.
    pub fn interruptions(&self) -> &[Interruption] {
        &self.events.interruptions
    }

    /// Workers who quit, with reasons, in log order.
    pub fn quits(&self) -> &[(WorkerId, faircrowd_model::event::QuitReason, SimTime)] {
        &self.events.quits
    }

    /// Submissions grouped by task, in submission order.
    pub fn submissions_by_task(&self) -> &BTreeMap<TaskId, Vec<&'a Submission>> {
        &self.subs_by_task
    }

    /// Submissions grouped by worker, in submission order.
    pub fn submissions_by_worker(&self) -> &BTreeMap<WorkerId, Vec<&'a Submission>> {
        &self.subs_by_worker
    }

    /// Workers who submitted at least once (the Axiom 4 "active" set).
    pub fn submitters(&self) -> BTreeSet<WorkerId> {
        self.subs_by_worker.keys().copied().collect()
    }

    fn qualification(&self) -> &Qualification {
        self.qualification.get_or_init(|| {
            let workers = &self.trace.workers;
            let tasks = &self.trace.tasks;
            let mut tasks_per_worker = vec![BTreeSet::new(); workers.len()];
            let mut workers_per_task = vec![BTreeSet::new(); tasks.len()];
            for (wi, w) in workers.iter().enumerate() {
                for (ti, t) in tasks.iter().enumerate() {
                    if w.qualifies_for(t) {
                        tasks_per_worker[wi].insert(t.id);
                        workers_per_task[ti].insert(w.id);
                    }
                }
            }
            Qualification {
                tasks_per_worker,
                workers_per_task,
            }
        })
    }

    /// Per worker (by position in `trace.workers`), the tasks she
    /// qualifies for.
    pub fn qualified_tasks(&self) -> &[BTreeSet<TaskId>] {
        &self.qualification().tasks_per_worker
    }

    /// Per task (by position in `trace.tasks`), the qualified workers.
    pub fn qualified_workers(&self) -> &[BTreeSet<WorkerId>] {
        &self.qualification().workers_per_task
    }

    fn positions(&self) -> &Positions {
        self.positions.get_or_init(|| Positions {
            worker: self
                .trace
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| (w.id, i))
                .collect(),
            task: self
                .trace
                .tasks
                .iter()
                .enumerate()
                .map(|(i, t)| (t.id, i))
                .collect(),
        })
    }

    fn dense_qualified(&self) -> &DenseQualified {
        self.dense_qualified.get_or_init(|| {
            let workers = &self.trace.workers;
            let tasks = &self.trace.tasks;
            let task_width = tasks.len().div_ceil(64).max(1);
            let worker_width = workers.len().div_ceil(64).max(1);
            let mut by_worker = vec![0u64; workers.len() * task_width];
            let mut by_task = vec![0u64; tasks.len() * worker_width];
            for (wi, w) in workers.iter().enumerate() {
                for (ti, t) in tasks.iter().enumerate() {
                    if w.qualifies_for(t) {
                        by_worker[wi * task_width + ti / 64] |= 1u64 << (ti % 64);
                        by_task[ti * worker_width + wi / 64] |= 1u64 << (wi % 64);
                    }
                }
            }
            DenseQualified {
                task_width,
                worker_width,
                by_worker,
                by_task,
            }
        })
    }

    fn dense_access(&self) -> &DenseAccess {
        self.dense_access.get_or_init(|| {
            let dq = self.dense_qualified();
            let pos = self.positions();
            let mut visible = vec![0u64; self.trace.workers.len() * dq.task_width];
            let mut audience = vec![0u64; self.trace.tasks.len() * dq.worker_width];
            // Rows are filled per entity *position* (looked up by id), so
            // every position sees exactly the access set the id-keyed
            // maps hold. Access events referencing entities outside the
            // tables never survive the intersection with the qualified
            // rows, so dropping them here is exact.
            for (wi, w) in self.trace.workers.iter().enumerate() {
                if let Some(tasks) = self.events.visibility.get(w.id) {
                    for t in tasks {
                        if let Some(&ti) = pos.task.get(*t) {
                            visible[wi * dq.task_width + ti / 64] |= 1u64 << (ti % 64);
                        }
                    }
                }
            }
            for (ti, t) in self.trace.tasks.iter().enumerate() {
                if let Some(workers) = self.events.audience.get(t.id) {
                    for w in workers {
                        if let Some(&wi) = pos.worker.get(*w) {
                            audience[ti * dq.worker_width + wi / 64] |= 1u64 << (wi % 64);
                        }
                    }
                }
            }
            DenseAccess { visible, audience }
        })
    }

    /// The Axiom 1 per-pair quantities for workers at positions `i` and
    /// `j`: sizes of the common qualified task set, each worker's
    /// visible tasks restricted to it, and their intersection — four
    /// AND/popcount passes over the dense bit rows, no allocation.
    pub fn worker_access_overlap(&self, i: usize, j: usize) -> AccessOverlap {
        let dq = self.dense_qualified();
        let da = self.dense_access();
        overlap_of(
            dq.task_width,
            &dq.by_worker[i * dq.task_width..(i + 1) * dq.task_width],
            &dq.by_worker[j * dq.task_width..(j + 1) * dq.task_width],
            &da.visible[i * dq.task_width..(i + 1) * dq.task_width],
            &da.visible[j * dq.task_width..(j + 1) * dq.task_width],
        )
    }

    /// The Axiom 2 per-pair quantities for tasks at positions `i` and
    /// `j`: common qualified workers, each task's audience restricted to
    /// them, and the intersection.
    pub fn task_audience_overlap(&self, i: usize, j: usize) -> AccessOverlap {
        let dq = self.dense_qualified();
        let da = self.dense_access();
        overlap_of(
            dq.worker_width,
            &dq.by_task[i * dq.worker_width..(i + 1) * dq.worker_width],
            &dq.by_task[j * dq.worker_width..(j + 1) * dq.worker_width],
            &da.audience[i * dq.worker_width..(i + 1) * dq.worker_width],
            &da.audience[j * dq.worker_width..(j + 1) * dq.worker_width],
        )
    }

    /// Candidate worker pairs for Axiom 1: every pair whose skill-count
    /// buckets could clear `cfg.worker_threshold` under the configured
    /// kernel, ascending. A superset of the truly similar pairs — the
    /// checker still applies the exact composite similarity — and the
    /// full pair set below [`EXACT_SCAN_MAX`] workers.
    pub fn similar_worker_candidates(&self, cfg: &SimilarityConfig) -> Vec<(usize, usize)> {
        let n = self.trace.workers.len();
        if n <= EXACT_SCAN_MAX {
            return all_pairs(n);
        }
        self.worker_buckets
            .get_or_init(|| {
                Buckets::group_by_count(self.trace.workers.iter().map(|w| w.skills.count()))
            })
            .admissible_pairs(cfg.skill_measure, cfg.worker_threshold)
    }

    /// Candidate task pairs for Axiom 2, blocked the same way under
    /// `cfg.task_skill_threshold`. Requester identity and reward
    /// comparability stay with the checker.
    pub fn comparable_task_candidates(&self, cfg: &SimilarityConfig) -> Vec<(usize, usize)> {
        let n = self.trace.tasks.len();
        if n <= EXACT_SCAN_MAX {
            return all_pairs(n);
        }
        self.task_buckets
            .get_or_init(|| {
                Buckets::group_by_count(self.trace.tasks.iter().map(|t| t.skills.count()))
            })
            .admissible_pairs(cfg.skill_measure, cfg.task_skill_threshold)
    }
}

fn overlap_of(width: usize, qi: &[u64], qj: &[u64], ai: &[u64], aj: &[u64]) -> AccessOverlap {
    let mut o = AccessOverlap {
        common: 0,
        left: 0,
        right: 0,
        inter: 0,
    };
    for k in 0..width {
        let common = qi[k] & qj[k];
        o.common += common.count_ones() as usize;
        o.left += (ai[k] & common).count_ones() as usize;
        o.right += (aj[k] & common).count_ones() as usize;
        o.inter += (ai[k] & aj[k] & common).count_ones() as usize;
    }
    o
}

fn all_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            pairs.push((i, j));
        }
    }
    pairs
}

/// Candidate item pairs for contribution-similarity scans (Axiom 3, the
/// payment equaliser): pairs that could score at or above `threshold`
/// under [`Contribution::similarity`], ascending. Cross-kind pairs and
/// unequal-label pairs score exactly 0, so for any positive threshold
/// they are pruned without being evaluated; everything else is kept and
/// re-checked exactly by the caller.
pub fn contribution_candidates<T, F>(items: &[T], key: F, threshold: f64) -> Vec<(usize, usize)>
where
    F: Fn(&T) -> &Contribution,
{
    if threshold <= 0.0 || items.len() <= EXACT_SCAN_MAX {
        return all_pairs(items.len());
    }
    // Coarse key: contributions in different groups have similarity 0.
    let coarse = |c: &Contribution| -> (u8, u32) {
        match c {
            Contribution::Label(l) => (0, u32::from(*l)),
            Contribution::Text(_) => (1, 0),
            Contribution::Ranking(_) => (2, 0),
            Contribution::Numeric(_) => (3, 0),
        }
    };
    let mut groups: BTreeMap<(u8, u32), Vec<usize>> = BTreeMap::new();
    for (i, item) in items.iter().enumerate() {
        groups.entry(coarse(key(item))).or_default().push(i);
    }
    let mut pairs = Vec::new();
    for members in groups.values() {
        for (x, &i) in members.iter().enumerate() {
            for &j in &members[x + 1..] {
                pairs.push((i, j));
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircrowd_model::attributes::DeclaredAttrs;
    use faircrowd_model::event::EventKind;
    use faircrowd_model::ids::{RequesterId, SkillId};
    use faircrowd_model::skills::SkillVector;
    use faircrowd_model::task::TaskBuilder;
    use faircrowd_model::worker::Worker;

    fn skills(n_set: usize, len: usize) -> SkillVector {
        let mut v = SkillVector::with_len(len);
        for i in 0..n_set {
            v.set(SkillId::new(i as u32), true);
        }
        v
    }

    fn trace_with_counts(counts: &[usize]) -> Trace {
        let mut trace = Trace::default();
        for (i, &c) in counts.iter().enumerate() {
            trace.workers.push(Worker::new(
                WorkerId::new(i as u32),
                DeclaredAttrs::new(),
                skills(c, 8),
            ));
            trace.tasks.push(
                TaskBuilder::new(
                    TaskId::new(i as u32),
                    RequesterId::new(0),
                    skills(c, 8),
                    Credits::from_cents(10),
                )
                .build(),
            );
        }
        trace
    }

    #[test]
    fn small_traces_use_the_exhaustive_fallback() {
        let trace = trace_with_counts(&[1, 4, 8]);
        let ix = TraceIndex::new(&trace);
        let cfg = SimilarityConfig::default();
        assert_eq!(
            ix.similar_worker_candidates(&cfg),
            vec![(0, 1), (0, 2), (1, 2)]
        );
        assert_eq!(
            ix.comparable_task_candidates(&cfg),
            vec![(0, 1), (0, 2), (1, 2)]
        );
    }

    #[test]
    fn blocking_is_a_superset_of_threshold_pairs_and_sorted() {
        // > EXACT_SCAN_MAX workers with spread-out skill counts.
        let counts: Vec<usize> = (0..40).map(|i| i % 9).collect();
        let trace = trace_with_counts(&counts);
        let ix = TraceIndex::new(&trace);
        let cfg = SimilarityConfig::default();
        let candidates = ix.similar_worker_candidates(&cfg);
        let mut sorted = candidates.clone();
        sorted.sort_unstable();
        assert_eq!(candidates, sorted, "candidates must be in scan order");
        // No pair clearing the kernel threshold may be missing.
        let set: BTreeSet<(usize, usize)> = candidates.iter().copied().collect();
        let mut pruned_any = false;
        for i in 0..trace.workers.len() {
            for j in (i + 1)..trace.workers.len() {
                let score = cfg
                    .skill_measure
                    .score(&trace.workers[i].skills, &trace.workers[j].skills);
                if score >= cfg.worker_threshold {
                    assert!(set.contains(&(i, j)), "blocked a similar pair ({i},{j})");
                } else if !set.contains(&(i, j)) {
                    pruned_any = true;
                }
            }
        }
        assert!(pruned_any, "blocking should prune something at this size");
    }

    #[test]
    fn contribution_blocking_prunes_only_zero_similarity_pairs() {
        let items: Vec<Contribution> = (0..40)
            .map(|i| match i % 3 {
                0 => Contribution::Label(u8::from(i % 2 == 0)),
                1 => Contribution::Text(format!("text {i}")),
                _ => Contribution::Numeric(f64::from(i)),
            })
            .collect();
        let candidates = contribution_candidates(&items, |c| c, 0.85);
        let set: BTreeSet<(usize, usize)> = candidates.iter().copied().collect();
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                if !set.contains(&(i, j)) {
                    assert_eq!(
                        items[i].similarity(&items[j]),
                        0.0,
                        "pruned pair ({i},{j}) must be provably dissimilar"
                    );
                }
            }
        }
        // Zero threshold means no pruning at all.
        assert_eq!(
            contribution_candidates(&items, |c| c, 0.0).len(),
            items.len() * (items.len() - 1) / 2
        );
    }

    #[test]
    fn rebuilt_for_carries_untouched_slices_over() {
        let trace = trace_with_counts(&[1, 2, 3, 4]);
        let ix = TraceIndex::new(&trace);
        let _ = ix.qualified_tasks(); // force the lazy build
        let mut paid = trace.clone();
        paid.events.push(
            SimTime::from_secs(1),
            EventKind::PaymentIssued {
                submission: SubmissionId::new(0),
                task: TaskId::new(0),
                worker: WorkerId::new(0),
                amount: Credits::from_cents(5),
            },
        );
        // Entities unchanged: the qualification matrices carry over …
        let reused = ix.rebuilt_for(&paid);
        assert!(reused.qualification.get().is_some());
        // … while the log-derived slices reflect the new event.
        assert_eq!(
            reused.payments().get(SubmissionId::new(0)),
            Some(&Credits::from_cents(5))
        );
        // Touch the worker table and the matrices are invalidated.
        let mut reworked = trace.clone();
        reworked.workers[0].skills = skills(7, 8);
        let fresh = ix.rebuilt_for(&reworked);
        assert!(fresh.qualification.get().is_none());
    }

    #[test]
    fn jaccard_empty_set_semantics_are_pinned() {
        // The 0/0 case must be a defined 1.0 (identical — equally empty —
        // access), never the NaN a literal |∩|/|∪| division would
        // produce: a NaN here compares false against every threshold and
        // silently poisons pair selection and the mean axiom score.
        let o = AccessOverlap {
            common: 0,
            left: 0,
            right: 0,
            inter: 0,
        };
        assert_eq!(o.jaccard(), 1.0);
        let o = AccessOverlap {
            common: 3,
            left: 0,
            right: 0,
            inter: 0,
        };
        assert_eq!(
            o.jaccard(),
            1.0,
            "common-qualified tasks that neither worker saw are equal (empty) access"
        );
        assert!(!o.jaccard().is_nan());
    }

    #[test]
    fn zero_access_pairs_flow_through_candidate_selection_without_nan() {
        // End-to-end regression via `similar_worker_candidates`: a trace
        // with > EXACT_SCAN_MAX workers where many similar pairs saw
        // nothing at all. Every candidate pair's overlap must be finite,
        // and the all-empty pairs must score exactly 1.0.
        let counts: Vec<usize> = (0..40).map(|i| i % 5).collect();
        let mut trace = trace_with_counts(&counts);
        // Show a single task to a single worker; every other pair's
        // restricted access sets stay empty on both sides.
        trace.events.push(
            SimTime::from_secs(1),
            EventKind::TaskVisible {
                task: TaskId::new(0),
                worker: WorkerId::new(0),
            },
        );
        let ix = TraceIndex::new(&trace);
        let cfg = SimilarityConfig::default();
        let candidates = ix.similar_worker_candidates(&cfg);
        assert!(!candidates.is_empty());
        let mut saw_empty_pair = false;
        for (i, j) in candidates {
            let o = ix.worker_access_overlap(i, j);
            let jac = o.jaccard();
            assert!(
                jac.is_finite(),
                "pair ({i},{j}) produced a non-finite overlap"
            );
            assert!((0.0..=1.0).contains(&jac));
            if o.left == 0 && o.right == 0 {
                saw_empty_pair = true;
                assert_eq!(jac, 1.0);
            }
        }
        assert!(saw_empty_pair, "fixture must exercise the 0/0 case");
        // The full A1 checker over this trace keeps a finite score too.
        use crate::axiom::Axiom;
        let report = crate::axioms::WorkerAssignmentFairness.check(&ix, &cfg, 10);
        assert!(report.score.is_finite(), "A1 score must never be NaN");
    }

    #[test]
    fn with_event_index_accepts_the_replayed_state() {
        let trace = trace_with_counts(&[1, 2, 3]);
        let ix = TraceIndex::with_event_index(&trace, trace.event_index());
        assert_eq!(ix.visibility().len(), 3);
    }

    #[test]
    fn qualification_matrices_are_mutually_consistent() {
        let trace = trace_with_counts(&[0, 3, 8]);
        let ix = TraceIndex::new(&trace);
        for (wi, w) in trace.workers.iter().enumerate() {
            for (ti, t) in trace.tasks.iter().enumerate() {
                assert_eq!(
                    ix.qualified_tasks()[wi].contains(&t.id),
                    ix.qualified_workers()[ti].contains(&w.id)
                );
            }
        }
    }
}
