//! `super_turkers`: reservation-wage task selection.
//!
//! The "Super Turker" strategy (Savage et al., PAPERS.md): experienced
//! workers learn what their time is worth and simply stop taking work
//! below it. This market posts a fairly paid campaign next to a
//! sweatshop-priced one with the same advertised effort. Iteration 1 is
//! the naive market — everyone takes everything; by the fixed point the
//! crowd's learned reservation wages have drained the under-priced
//! campaign of labour, the emergent version of §3.1.1's
//! under-compensation complaint.

use crate::config::{CampaignSpec, ScenarioConfig, StrategyChoice, WorkerPopulation};

/// The `super_turkers` preset.
pub fn config() -> ScenarioConfig {
    let mut population = WorkerPopulation::diligent(30);
    population.participation = 1.0;
    ScenarioConfig {
        seed: 42,
        rounds: 48,
        n_skills: 6,
        workers: vec![population],
        campaigns: vec![
            CampaignSpec::labeling("acme", 40, 14),
            CampaignSpec::labeling("gigmill", 60, 4),
        ],
        strategy: StrategyChoice::SuperTurker,
        ..Default::default()
    }
}
