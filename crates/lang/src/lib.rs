//! # faircrowd-lang
//!
//! **TPL** — the Transparency Policy Language.
//!
//! §3.3.2 of the paper: *"We advocate the use of a declarative high-level
//! language to specify fairness rules. Such rules can be used by
//! requesters to disclose task requirements, recruitment criteria,
//! evaluation scheme, and payment schedule. Platform designers can use
//! these rules to disclose relevant information … Rules can also be
//! translated into human-readable descriptions for workers' consumption.
//! Last but not least, the declarative nature of those rules will allow
//! easy comparison across platforms."*
//!
//! This crate delivers all four promises:
//!
//! 1. a small declarative language (lexer → parser → semantic checker);
//! 2. compilation into [`faircrowd_model::DisclosureSet`]s that the
//!    simulator enacts and the Axiom-6/7 checkers audit;
//! 3. a [`render`] back-end producing human-readable descriptions;
//! 4. a [`mod@compare`] back-end diffing policies across platforms, plus a
//!    [`catalog`] of policies modelling AMT, AMT+Turkopticon, CrowdFlower
//!    and MobileWorks as the paper describes them.
//!
//! ## Example
//!
//! ```
//! let source = r#"
//!     policy "demo" {
//!         audience everyone = public;
//!         disclose task.rating to everyone when browsing;
//!         disclose worker.acceptance_ratio to subject always;
//!         require requester discloses rejection_criteria before posting;
//!     }
//! "#;
//! let policy = faircrowd_lang::compile_one(source).expect("valid policy");
//! assert_eq!(policy.name, "demo");
//! assert!(policy.disclosure_set().axiom7_coverage() > 0.0);
//! println!("{}", faircrowd_lang::render::render_policy(&policy));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod catalog;
pub mod compare;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod render;
pub mod sema;

pub use compare::{compare, PolicyComparison};
pub use error::LangError;
pub use sema::{CompiledPolicy, Requirement};

/// Parse and check a TPL document (one or more policies).
pub fn compile(source: &str) -> Result<Vec<CompiledPolicy>, LangError> {
    let tokens = lexer::lex(source)?;
    let document = parser::parse(&tokens, source)?;
    document
        .policies
        .iter()
        .map(|p| sema::check(p, source))
        .collect()
}

/// Parse and check a document expected to contain exactly one policy.
pub fn compile_one(source: &str) -> Result<CompiledPolicy, LangError> {
    let mut policies = compile(source)?;
    match policies.len() {
        1 => Ok(policies.remove(0)),
        n => Err(LangError::other(format!(
            "expected exactly one policy, found {n}"
        ))),
    }
}
