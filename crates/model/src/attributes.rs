//! Worker attributes.
//!
//! The paper splits worker attributes into **self-declared** attributes
//! `A_w` "such as demographics and location" and **computed** attributes
//! `C_w` "such as a worker's acceptance ratio" (§3.2). Axiom 1 compares
//! workers on both sets; Axiom 7 requires the platform to disclose `C_w`.
//!
//! Declared attributes are an open map of typed values. Computed attributes
//! are a struct with the canonical statistics every crowd platform derives,
//! plus an open extension map.

use crate::money::Credits;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// Boolean flag (e.g. `adult = true`).
    Bool(bool),
    /// Integer (e.g. `age = 34`).
    Int(i64),
    /// Real number (e.g. `hours_per_week = 12.5`).
    Real(f64),
    /// Free text (e.g. `country = "PH"`).
    Text(String),
}

impl AttrValue {
    /// Similarity between two values in `[0, 1]`.
    ///
    /// * Booleans and text compare by equality.
    /// * Numbers compare by relative closeness: `1 - |a-b| / max(|a|,|b|)`
    ///   (1.0 when both are zero), clamped to `[0, 1]`.
    ///
    /// Values of different types have similarity 0. This implements the
    /// paper's "similarity can be platform-dependent and ranges from perfect
    /// equality to threshold-based similarity" for the attribute leaves.
    pub fn similarity(&self, other: &AttrValue) -> f64 {
        match (self, other) {
            (AttrValue::Bool(a), AttrValue::Bool(b)) => f64::from(a == b),
            (AttrValue::Text(a), AttrValue::Text(b)) => f64::from(a == b),
            (AttrValue::Int(a), AttrValue::Int(b)) => numeric_sim(*a as f64, *b as f64),
            (AttrValue::Real(a), AttrValue::Real(b)) => numeric_sim(*a, *b),
            (AttrValue::Int(a), AttrValue::Real(b)) | (AttrValue::Real(b), AttrValue::Int(a)) => {
                numeric_sim(*a as f64, *b)
            }
            _ => 0.0,
        }
    }
}

fn numeric_sim(a: f64, b: f64) -> f64 {
    if a == b {
        return 1.0;
    }
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        return 1.0;
    }
    (1.0 - (a - b).abs() / denom).clamp(0.0, 1.0)
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Bool(b) => write!(f, "{b}"),
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Real(r) => write!(f, "{r}"),
            AttrValue::Text(s) => write!(f, "{s:?}"),
        }
    }
}

/// Self-declared worker attributes `A_w` (demographics, location, …).
///
/// A sorted map keeps audit reports and serialisations deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeclaredAttrs {
    attrs: BTreeMap<String, AttrValue>,
}

impl DeclaredAttrs {
    /// Empty attribute set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion.
    pub fn with(mut self, key: &str, value: AttrValue) -> Self {
        self.set(key, value);
        self
    }

    /// Insert or replace an attribute.
    pub fn set(&mut self, key: &str, value: AttrValue) {
        self.attrs.insert(key.to_owned(), value);
    }

    /// Look up an attribute.
    pub fn get(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.get(key)
    }

    /// Number of declared attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when nothing is declared.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterate in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The worker's group along one declared axis: the attribute's
    /// value rendered as a stable grouping key, or `None` when the
    /// attribute is absent. Text values key by their raw contents
    /// (no quotes); other types key by their display form. Diversity-
    /// constrained selection and demographic-parity aggregation both
    /// partition workers by this key.
    pub fn group_key(&self, attr: &str) -> Option<String> {
        self.get(attr).map(|v| match v {
            AttrValue::Text(s) => s.clone(),
            other => other.to_string(),
        })
    }

    /// Mean per-key similarity over the union of keys (missing keys count
    /// as similarity 0). Returns 1.0 when both sets are empty.
    pub fn similarity(&self, other: &DeclaredAttrs) -> f64 {
        let keys: std::collections::BTreeSet<&str> = self
            .attrs
            .keys()
            .chain(other.attrs.keys())
            .map(String::as_str)
            .collect();
        if keys.is_empty() {
            return 1.0;
        }
        let total: f64 = keys
            .iter()
            .map(|k| match (self.get(k), other.get(k)) {
                (Some(a), Some(b)) => a.similarity(b),
                _ => 0.0,
            })
            .sum();
        total / keys.len() as f64
    }
}

/// Platform-computed worker attributes `C_w`.
///
/// These are the statistics the platform derives from a worker's history;
/// Axiom 7 requires them to be disclosed to the worker, and Axiom 1 uses
/// them to decide whether two workers are "similar". The paper names the
/// acceptance ratio explicitly; the remaining fields are the standard
/// derived statistics on AMT-like platforms.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ComputedAttrs {
    /// Submissions approved / submissions judged (the paper's example).
    pub acceptance_ratio: f64,
    /// Total approved submissions.
    pub tasks_approved: u64,
    /// Total rejected submissions.
    pub tasks_rejected: u64,
    /// Total submissions made.
    pub tasks_submitted: u64,
    /// Platform's running estimate of contribution quality in `[0, 1]`.
    pub quality_estimate: f64,
    /// Mean latency between submission and approval/rejection.
    pub mean_approval_latency: SimDuration,
    /// Lifetime earnings actually paid out.
    pub total_earnings: Credits,
    /// Sessions the worker has had on the platform.
    pub sessions: u64,
    /// Open extension attributes (platform-specific).
    pub extra: BTreeMap<String, f64>,
}

impl ComputedAttrs {
    /// A fresh record for a new worker: no history yet. By convention a
    /// fresh worker has acceptance ratio and quality estimate 1.0 (the
    /// platform has no evidence against them).
    pub fn fresh() -> Self {
        ComputedAttrs {
            acceptance_ratio: 1.0,
            quality_estimate: 1.0,
            ..Default::default()
        }
    }

    /// Recompute the acceptance ratio from the counters. Workers with no
    /// judged work keep ratio 1.0.
    pub fn refresh_acceptance_ratio(&mut self) {
        let judged = self.tasks_approved + self.tasks_rejected;
        self.acceptance_ratio = if judged == 0 {
            1.0
        } else {
            self.tasks_approved as f64 / judged as f64
        };
    }

    /// Similarity in `[0, 1]` between two computed-attribute records, the
    /// `C_wi ~ C_wj` test of Axiom 1: mean of per-field numeric closeness
    /// over (acceptance ratio, quality estimate, log-scaled experience).
    pub fn similarity(&self, other: &ComputedAttrs) -> f64 {
        let r = 1.0 - (self.acceptance_ratio - other.acceptance_ratio).abs();
        let q = 1.0 - (self.quality_estimate - other.quality_estimate).abs();
        // Experience on log scale: 100 vs 110 tasks is similar, 0 vs 100 is not.
        let ea = (1.0 + self.tasks_submitted as f64).ln();
        let eb = (1.0 + other.tasks_submitted as f64).ln();
        let e = if ea == 0.0 && eb == 0.0 {
            1.0
        } else {
            1.0 - (ea - eb).abs() / ea.max(eb)
        };
        ((r + q + e) / 3.0).clamp(0.0, 1.0)
    }

    /// The canonical list of computed-attribute names, used by the
    /// transparency axioms ("the platform must disclose, for each worker w,
    /// computed attributes C_w").
    pub const CANONICAL_FIELDS: [&'static str; 8] = [
        "acceptance_ratio",
        "tasks_approved",
        "tasks_rejected",
        "tasks_submitted",
        "quality_estimate",
        "mean_approval_latency",
        "total_earnings",
        "sessions",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_value_similarity() {
        assert_eq!(
            AttrValue::Bool(true).similarity(&AttrValue::Bool(true)),
            1.0
        );
        assert_eq!(
            AttrValue::Bool(true).similarity(&AttrValue::Bool(false)),
            0.0
        );
        assert_eq!(
            AttrValue::Text("PH".into()).similarity(&AttrValue::Text("PH".into())),
            1.0
        );
        assert_eq!(
            AttrValue::Text("PH".into()).similarity(&AttrValue::Text("FR".into())),
            0.0
        );
        // numeric closeness
        let s = AttrValue::Int(90).similarity(&AttrValue::Int(100));
        assert!((s - 0.9).abs() < 1e-12);
        assert_eq!(AttrValue::Int(0).similarity(&AttrValue::Int(0)), 1.0);
        // cross-type
        assert_eq!(AttrValue::Bool(true).similarity(&AttrValue::Int(1)), 0.0);
        // int/real mix
        assert!((AttrValue::Int(1).similarity(&AttrValue::Real(1.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn declared_similarity_over_union_of_keys() {
        let a = DeclaredAttrs::new()
            .with("country", AttrValue::Text("PH".into()))
            .with("age", AttrValue::Int(30));
        let b = DeclaredAttrs::new()
            .with("country", AttrValue::Text("PH".into()))
            .with("age", AttrValue::Int(30));
        assert!((a.similarity(&b) - 1.0).abs() < 1e-12);

        let c = DeclaredAttrs::new().with("country", AttrValue::Text("PH".into()));
        // union keys = {country, age}; country 1.0, age missing -> 0.0
        assert!((a.similarity(&c) - 0.5).abs() < 1e-12);

        assert_eq!(DeclaredAttrs::new().similarity(&DeclaredAttrs::new()), 1.0);
    }

    #[test]
    fn declared_attrs_accessors() {
        let mut a = DeclaredAttrs::new();
        assert!(a.is_empty());
        a.set("k", AttrValue::Bool(true));
        assert_eq!(a.len(), 1);
        assert_eq!(a.get("k"), Some(&AttrValue::Bool(true)));
        let keys: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["k"]);
    }

    #[test]
    fn group_key_partitions_on_raw_text() {
        let a = DeclaredAttrs::new()
            .with("region", AttrValue::Text("south".into()))
            .with("age", AttrValue::Int(30));
        assert_eq!(a.group_key("region").as_deref(), Some("south"));
        assert_eq!(a.group_key("age").as_deref(), Some("30"));
        assert_eq!(a.group_key("country"), None);
    }

    #[test]
    fn fresh_computed_attrs() {
        let c = ComputedAttrs::fresh();
        assert_eq!(c.acceptance_ratio, 1.0);
        assert_eq!(c.quality_estimate, 1.0);
        assert_eq!(c.tasks_submitted, 0);
    }

    #[test]
    fn acceptance_ratio_refresh() {
        let mut c = ComputedAttrs::fresh();
        c.tasks_approved = 3;
        c.tasks_rejected = 1;
        c.refresh_acceptance_ratio();
        assert!((c.acceptance_ratio - 0.75).abs() < 1e-12);

        let mut fresh = ComputedAttrs::fresh();
        fresh.refresh_acceptance_ratio();
        assert_eq!(fresh.acceptance_ratio, 1.0);
    }

    #[test]
    fn computed_similarity_identical_is_one() {
        let mut a = ComputedAttrs::fresh();
        a.tasks_submitted = 50;
        a.acceptance_ratio = 0.9;
        a.quality_estimate = 0.8;
        let b = a.clone();
        assert!((a.similarity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn computed_similarity_decreases_with_distance() {
        let mut a = ComputedAttrs::fresh();
        a.acceptance_ratio = 1.0;
        a.quality_estimate = 1.0;
        a.tasks_submitted = 100;
        let mut b = a.clone();
        b.acceptance_ratio = 0.5;
        let mut c = a.clone();
        c.acceptance_ratio = 0.5;
        c.quality_estimate = 0.2;
        let sab = a.similarity(&b);
        let sac = a.similarity(&c);
        assert!(sab > sac);
        assert!((0.0..=1.0).contains(&sab));
        assert!((0.0..=1.0).contains(&sac));
    }

    #[test]
    fn display_attr_values() {
        assert_eq!(AttrValue::Bool(true).to_string(), "true");
        assert_eq!(AttrValue::Int(5).to_string(), "5");
        assert_eq!(AttrValue::Text("x".into()).to_string(), "\"x\"");
    }
}
