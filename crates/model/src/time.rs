//! Simulated time.
//!
//! The marketplace simulator is a deterministic discrete-event system; all
//! timestamps are integer **ticks** where one tick is one simulated second.
//! Integer time keeps event ordering total and reproducible across
//! platforms (no floating-point agenda keys).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (seconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time in seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`; saturates to zero if `earlier` is
    /// in the future (clock skew cannot occur in the simulator, but callers
    /// should not panic on malformed traces).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3600)
    }

    /// Construct from whole days (24h).
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400)
    }

    /// Length in seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Length in (fractional) hours, for wage computations.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Saturating duration addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Scale a duration by a non-negative factor, rounding to nearest.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "durations cannot be negative");
        SimDuration((self.0 as f64 * factor).round().max(0.0) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        self.saturating_add(rhs)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

/// Shared `D+HH:MM:SS` formatting for both time types.
macro_rules! fmt_hms {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let total = self.0;
            let days = total / 86_400;
            let h = (total % 86_400) / 3600;
            let m = (total % 3600) / 60;
            let s = total % 60;
            if days > 0 {
                write!(f, "{days}d{h:02}:{m:02}:{s:02}")
            } else {
                write!(f, "{h:02}:{m:02}:{s:02}")
            }
        }
    };
}

impl fmt::Display for SimTime {
    fmt_hms!();
}

impl fmt::Display for SimDuration {
    fmt_hms!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t0 = SimTime::from_secs(100);
        let t1 = t0 + SimDuration::from_secs(50);
        assert_eq!(t1.as_secs(), 150);
        assert_eq!((t1 - t0).as_secs(), 50);
        // saturating: earlier.since(later) == 0
        assert_eq!(t0.since(t1), SimDuration::ZERO);
    }

    #[test]
    fn constructors() {
        assert_eq!(SimDuration::from_mins(2).as_secs(), 120);
        assert_eq!(SimDuration::from_hours(1).as_secs(), 3600);
        assert_eq!(SimDuration::from_days(1).as_secs(), 86_400);
    }

    #[test]
    fn hours_f64() {
        assert!((SimDuration::from_mins(90).as_hours_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(3723).to_string(), "01:02:03");
        assert_eq!(
            (SimTime::from_secs(90_000)).to_string(),
            "1d01:00:00".to_string()
        );
        assert_eq!(SimDuration::from_secs(59).to_string(), "00:00:59");
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration::from_secs(10).mul_f64(1.26).as_secs(), 13);
        assert_eq!(SimDuration::from_secs(10).mul_f64(0.0).as_secs(), 0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(5),
            SimTime::from_secs(1),
            SimTime::from_secs(3),
        ];
        v.sort();
        assert_eq!(v[0].as_secs(), 1);
        assert_eq!(v[2].as_secs(), 5);
    }
}
