//! Fair-allocation task delivery (Basık et al., fair task distribution
//! in crowdsourcing): balance accumulated worker utility instead of
//! maximising requester gain.
//!
//! Each open slot (tasks in id order, best-paid first within a round)
//! goes to the qualified worker with the **lowest utility delivered so
//! far** — utility being the preference score of the tasks she was
//! already handed this round plus a carry-over of past rounds. The
//! policy is an online water-filling of worker utility: nobody is handed
//! a second helping while a qualified, available worker is still at a
//! lower level. Deterministic: ties break on worker id and the injected
//! RNG is never consulted.

use crate::policy::{preference_score, AssignInput, AssignmentOutcome, AssignmentPolicy};
use faircrowd_model::ids::WorkerId;
use rand::RngCore;
use std::collections::BTreeMap;

/// The registered `fair_delivery` policy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FairDelivery {
    /// Utility already delivered to each worker in earlier rounds; the
    /// balancing carries across rounds so a worker starved early is
    /// first in line later.
    pub delivered: BTreeMap<WorkerId, f64>,
}

impl FairDelivery {
    /// Stable registry/report name.
    pub const NAME: &'static str = "fair-delivery";
}

impl AssignmentPolicy for FairDelivery {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn assign(&mut self, input: &AssignInput, _rng: &mut dyn RngCore) -> AssignmentOutcome {
        let mut outcome = AssignmentOutcome::default();
        let mut remaining: BTreeMap<WorkerId, u32> =
            input.workers.iter().map(|w| (w.id, w.capacity)).collect();
        let mut level: BTreeMap<WorkerId, f64> = input
            .workers
            .iter()
            .map(|w| (w.id, self.delivered.get(&w.id).copied().unwrap_or(0.0)))
            .collect();

        // Self-selection-style exposure: every qualified worker sees the
        // task. The balancing binds only the delivery (assignments).
        for task in &input.tasks {
            for w in &input.workers {
                if w.qualifies(task) {
                    outcome.show(w.id, task.id);
                }
            }
        }

        // Best-paid tasks first: high-utility slots are the contested
        // resource, so they are levelled first.
        let mut order: Vec<&crate::policy::TaskView> = input.tasks.iter().collect();
        order.sort_by(|a, b| b.reward.cmp(&a.reward).then(a.id.cmp(&b.id)));
        for task in order {
            for _slot in 0..task.slots {
                let pick = input
                    .workers
                    .iter()
                    .filter(|w| {
                        w.qualifies(task)
                            && remaining[&w.id] > 0
                            && !outcome.assignments.contains(&(w.id, task.id))
                    })
                    .min_by(|a, b| {
                        level[&a.id]
                            .partial_cmp(&level[&b.id])
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.id.cmp(&b.id))
                    });
                let Some(w) = pick else { break };
                outcome.assign(w.id, task.id);
                *remaining.get_mut(&w.id).expect("known worker") -= 1;
                *level.get_mut(&w.id).expect("known worker") += preference_score(w, task);
            }
        }
        self.delivered = level;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::fixtures::small_market;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn delivery_is_feasible_and_deterministic() {
        let market = small_market();
        let a = FairDelivery::default().assign(&market, &mut StdRng::seed_from_u64(3));
        assert!(a.check_feasible(&market).is_empty());
        let b = FairDelivery::default().assign(&market, &mut StdRng::seed_from_u64(77));
        assert_eq!(a, b, "policy must ignore the RNG");
        assert!(!a.assignments.is_empty());
    }

    #[test]
    fn no_second_helping_while_someone_is_empty_handed() {
        let market = small_market();
        let outcome = FairDelivery::default().assign(&market, &mut StdRng::seed_from_u64(0));
        // Capacity allows 5 assignments over 4 open slots; the balancer
        // must spread them: no worker gets 2 tasks while another
        // qualified worker with spare capacity got none.
        let mut counts: BTreeMap<WorkerId, usize> = BTreeMap::new();
        for (w, _) in &outcome.assignments {
            *counts.entry(*w).or_insert(0) += 1;
        }
        // t0 is open to everyone; every worker must have been delivered
        // something before anyone is double-served on it.
        assert!(
            market
                .workers
                .iter()
                .all(|w| counts.get(&w.id).copied().unwrap_or(0) >= 1),
            "starved worker under fair delivery: {counts:?}"
        );
    }

    #[test]
    fn carry_over_prioritises_previously_starved_workers() {
        let market = small_market();
        let mut policy = FairDelivery::default();
        policy.assign(&market, &mut StdRng::seed_from_u64(0));
        let after_round_one = policy.delivered.clone();
        assert!(!after_round_one.is_empty());
        // Pre-load one worker with a huge delivered utility: she must
        // not be picked for the contested single-slot tasks again.
        let heavy = WorkerId::new(0);
        policy.delivered.insert(heavy, 1e9);
        let o = policy.assign(&market, &mut StdRng::seed_from_u64(0));
        assert!(
            o.assignments.iter().filter(|(w, _)| *w == heavy).count() <= 1,
            "over-served worker kept winning contested slots"
        );
    }
}
