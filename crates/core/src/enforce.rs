//! Fairness enforcement — "enforcing them by design in newly developed
//! systems" (§1, §3.3.1).
//!
//! Three levers, one per axiom family:
//!
//! * **assignment** — re-exported exposure wrappers from
//!   `faircrowd-assign` ([`ExposureParity`], [`ExposureFloor`]) repair
//!   Axiom 1/2 violations of any base policy;
//! * **compensation** — [`equalize_payments`] repairs a planned payment
//!   map so Axiom 3 holds: workers with similar contributions to a task
//!   are raised to the group's maximum payment (never lowered: repairs
//!   must not harm workers);
//! * **transparency** — [`minimal_transparent_set`] is the smallest
//!   disclosure set satisfying Axioms 6 and 7, the floor a fair-by-design
//!   platform ships with.

pub use faircrowd_assign::{ExposureFloor, ExposureParity};

use faircrowd_model::contribution::Contribution;
use faircrowd_model::disclosure::{Audience, DisclosureItem, DisclosureSet};
use faircrowd_model::ids::SubmissionId;
use faircrowd_model::money::Credits;
use std::collections::BTreeMap;

/// Raise payments within similarity groups so similar contributions earn
/// the same amount. Input: each submission's contribution and planned
/// payment. Output: the adjusted payment map (only increases).
///
/// Groups are the connected components of the "similar at or above
/// `threshold`" graph: if a~b and b~c, all three are paid alike even when
/// a and c fall just below the threshold — fairness repairs should not
/// depend on comparison order. The pair scan reuses the audit layer's
/// contribution blocking ([`crate::index::contribution_candidates`]):
/// pruned pairs have similarity exactly 0, which for a positive
/// threshold can never be a union edge, so the components are identical
/// to the exhaustive scan's.
pub fn equalize_payments(
    submissions: &[(SubmissionId, Contribution, Credits)],
    threshold: f64,
) -> BTreeMap<SubmissionId, Credits> {
    let n = submissions.len();
    // Union-find over submission indices.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for (i, j) in crate::index::contribution_candidates(submissions, |(_, c, _)| c, threshold) {
        let sim = submissions[i].1.similarity(&submissions[j].1);
        if sim >= threshold {
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            if ri != rj {
                parent[ri] = rj;
            }
        }
    }
    // Group maxima.
    let mut group_max: BTreeMap<usize, Credits> = BTreeMap::new();
    for (i, (_, _, paid)) in submissions.iter().enumerate() {
        let root = find(&mut parent, i);
        let entry = group_max.entry(root).or_insert(Credits::ZERO);
        *entry = (*entry).max(*paid);
    }
    submissions
        .iter()
        .enumerate()
        .map(|(i, (id, _, _))| {
            let root = find(&mut parent, i);
            (*id, group_max[&root])
        })
        .collect()
}

/// Grant the Axiom-6/7 disclosure floor on top of an existing set.
/// Grants are additive, so the set is only ever widened — this is the
/// repair the `Pipeline`'s minimal-transparency enforcement applies.
pub fn grant_minimal_transparency(set: &mut DisclosureSet) {
    for item in DisclosureItem::AXIOM6_REQUIRED {
        set.grant(item, Audience::Workers);
    }
    for item in DisclosureItem::AXIOM7_REQUIRED {
        set.grant(item, Audience::Subject);
    }
}

/// The smallest disclosure set that satisfies Axiom 6 (working conditions
/// visible to workers) and Axiom 7 (computed attributes visible to the
/// worker herself).
pub fn minimal_transparent_set() -> DisclosureSet {
    let mut set = DisclosureSet::opaque();
    grant_minimal_transparency(&mut set);
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(i: u32) -> SubmissionId {
        SubmissionId::new(i)
    }

    #[test]
    fn identical_labels_get_equal_max_pay() {
        let subs = vec![
            (sid(0), Contribution::Label(1), Credits::from_cents(10)),
            (sid(1), Contribution::Label(1), Credits::ZERO), // wrongly unpaid
            (sid(2), Contribution::Label(0), Credits::from_cents(4)),
        ];
        let adjusted = equalize_payments(&subs, 0.9);
        assert_eq!(adjusted[&sid(0)], Credits::from_cents(10));
        assert_eq!(
            adjusted[&sid(1)],
            Credits::from_cents(10),
            "raised to group max"
        );
        assert_eq!(
            adjusted[&sid(2)],
            Credits::from_cents(4),
            "different answer untouched"
        );
    }

    #[test]
    fn repair_never_lowers_payments() {
        let subs = vec![
            (sid(0), Contribution::Label(1), Credits::from_cents(12)),
            (sid(1), Contribution::Label(1), Credits::from_cents(10)),
        ];
        let adjusted = equalize_payments(&subs, 0.9);
        for (i, (_, _, before)) in subs.iter().enumerate() {
            assert!(adjusted[&sid(i as u32)] >= *before);
        }
        assert_eq!(adjusted[&sid(1)], Credits::from_cents(12));
    }

    #[test]
    fn transitivity_links_chains() {
        // a~b and b~c but a/c slightly less similar: all one group anyway
        let a = Contribution::Text("the quick brown fox jumps over the lazy dog".into());
        let b = Contribution::Text("the quick brown fox jumps over the lazy dogs".into());
        let c = Contribution::Text("the quick brown fox jumped over the lazy dogs".into());
        let threshold = {
            // pick a threshold between sim(a,c) and min(sim(a,b), sim(b,c))
            let ab = a.similarity(&b);
            let bc = b.similarity(&c);
            let ac = a.similarity(&c);
            assert!(ac < ab.min(bc), "fixture must form a chain");
            (ac + ab.min(bc)) / 2.0
        };
        let subs = vec![
            (sid(0), a, Credits::from_cents(10)),
            (sid(1), b, Credits::from_cents(5)),
            (sid(2), c, Credits::ZERO),
        ];
        let adjusted = equalize_payments(&subs, threshold);
        assert_eq!(adjusted[&sid(0)], Credits::from_cents(10));
        assert_eq!(adjusted[&sid(1)], Credits::from_cents(10));
        assert_eq!(adjusted[&sid(2)], Credits::from_cents(10));
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(equalize_payments(&[], 0.9).is_empty());
    }

    #[test]
    fn minimal_set_satisfies_both_axioms() {
        let set = minimal_transparent_set();
        assert!((set.axiom6_coverage() - 1.0).abs() < 1e-12);
        assert!((set.axiom7_coverage() - 1.0).abs() < 1e-12);
        // and it is minimal: nothing is public
        for item in DisclosureItem::ALL {
            assert!(!set.allows(item, Audience::Public));
        }
    }
}
