//! Sharded, resumable sweeps: split a grid into work units, persist
//! per-cell results, merge byte-identical.
//!
//! A thousand-cell grid does not fit one machine's patience. This
//! module splits a [`SweepGrid`]'s expanded case list into `N`
//! deterministic shards, runs one shard per process
//! (`sweep --shard i/N --out part.json`), streams each finished cell
//! into a versioned **part file**, and folds any complete set of parts
//! back into the exact [`SweepResult`] the single-process
//! [`run_grid`](super::run_grid) would have produced — table, JSON and
//! CSV byte-identical for any shard count and any completion
//! interleaving ([`merge_paths`]).
//!
//! ## Partition: round-robin over baseline clusters
//!
//! Cases are not dealt out cell-by-cell. The sweep's dominant cost is
//! simulation, and cases differing only on the `enforce` axis share one
//! baseline trace through the per-run simulation cache
//! (`SweepCase::sim_key`) — a cache that lives inside one process.
//! Dealing cells round-robin would scatter each baseline's enforce
//! variants across shards and re-simulate the baseline once *per
//! shard*, silently forfeiting the cache's ~1.65× win. Instead the
//! partition groups cases into **clusters** sharing a `sim_key`
//! (clusters are numbered in first-occurrence order over the
//! expansion) and deals whole clusters round-robin:
//! `shard(case) = cluster(case) % N`. Every cluster has exactly one
//! case per enforcement stack, so shards stay balanced to within one
//! cluster, and each shard's private cache sees every enforce variant
//! of its baselines. The tradeoff: a grid with fewer clusters than
//! shards leaves trailing shards empty — acceptable, because such grids
//! are too small to shard profitably in the first place.
//!
//! ## Part files: `faircrowd-sweep-part` v1
//!
//! A part file is JSONL: a schema header line, then one compact record
//! per completed cell, appended and flushed as each cell finishes — a
//! cell is durable once its line is written. Loading walks the same
//! three never-panicking gates as every persisted schema here
//! (`trace_io`, `checkpoint`): **positioned parse** (errors name the
//! line; only a torn final line — the artifact of a kill mid-append —
//! is dropped), **schema** (name + version), and **integrity** (header
//! `grid_hash` must match the grid the loader expands, cell indexes
//! must be in range, un-duplicated, owned by the declared shard, and
//! each record's case must equal the grid's case at that index).
//! Resuming is therefore just: load the part, skip its cells, run the
//! rest, append ([`run_shard`]).
//!
//! The header's `grid_hash` is an FNV-1a 64 over the canonical JSON of
//! every expanded case in order — the identity of the *work list*, so
//! a part written for yesterday's grid cannot quietly merge into
//! today's.

use super::{fold_groups, CaseOutcome, SweepCase, SweepGrid, SweepResult};
use crate::core::results;
use crate::model::json::Json;
use crate::model::FaircrowdError;
use crate::pipeline::Enforcement;
use crate::sim::TraceSummary;
use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

/// Schema name of a sweep part file.
pub const SCHEMA: &str = "faircrowd-sweep-part";
/// Current schema version. v2 added the `strategy`/`strategy_label`
/// case fields alongside the strategy sweep axis; v3 added the
/// `aggregator`/`aggregator_label` case fields and the per-cell
/// `consensus` score alongside the aggregator axis. Earlier versions
/// are rejected rather than guessed at.
pub const VERSION: u64 = 3;

/// Which shard of how many — the CLI's `--shard i/N`, 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard, 1-based: `1 ≤ index ≤ count`.
    pub index: usize,
    /// Total shards, ≥ 1.
    pub count: usize,
}

impl ShardSpec {
    /// Parse the CLI spelling `i/N`. Zero, reversed or malformed specs
    /// are usage errors naming the expected form.
    pub fn parse(raw: &str) -> Result<ShardSpec, FaircrowdError> {
        let bad = || {
            FaircrowdError::usage(format!(
                "invalid shard spec `{raw}`: expected i/N with 1 <= i <= N (e.g. --shard 2/4)"
            ))
        };
        let (i, n) = raw.split_once('/').ok_or_else(bad)?;
        let index: usize = i.trim().parse().map_err(|_| bad())?;
        let count: usize = n.trim().parse().map_err(|_| bad())?;
        if index == 0 || count == 0 || index > count {
            return Err(bad());
        }
        Ok(ShardSpec { index, count })
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Map every expanded case to its shard (0-based), dealing whole
/// baseline clusters round-robin — see [the module docs](self) for why
/// clusters and not cells.
pub fn partition(cases: &[SweepCase], shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    let mut cluster_of_key = HashMap::new();
    cases
        .iter()
        .map(|case| {
            let next = cluster_of_key.len();
            let cluster = *cluster_of_key.entry(case.sim_key()).or_insert(next);
            cluster % shards
        })
        .collect()
}

/// FNV-1a 64 over the canonical encoding of every case in expansion
/// order: the identity of the work list a part file belongs to.
pub fn grid_hash(cases: &[SweepCase]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for case in cases {
        for byte in case_to_json(case).to_compact().bytes() {
            hash = (hash ^ u64::from(byte)).wrapping_mul(PRIME);
        }
        hash = (hash ^ u64::from(b'\n')).wrapping_mul(PRIME);
    }
    hash
}

/// A part file's header line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartHeader {
    /// [`grid_hash`] of the grid this part belongs to.
    pub grid_hash: u64,
    /// Total cases in the whole grid (all shards).
    pub cases: usize,
    /// The grid's seeds-per-group, so `merge` can fold without `--grid`.
    pub seeds_per_group: usize,
    /// Which shard wrote this part, 1-based.
    pub shard: usize,
    /// Total shards in the partition.
    pub shards: usize,
}

/// A loaded part file: its header and every durable cell, in file
/// order. Produced by [`load_part`]; consumed by [`run_shard`] (resume)
/// and [`merge_parts`].
#[derive(Debug, Clone)]
pub struct PartFile {
    /// The schema header.
    pub header: PartHeader,
    /// `(cell index, outcome)` for every complete record.
    pub cells: Vec<(usize, CaseOutcome)>,
    /// Byte length of the durable prefix. Anything past it is a torn
    /// final line (a kill mid-append); a resuming writer truncates to
    /// this before appending, so the next record starts a fresh line.
    pub clean_bytes: u64,
}

/// What one [`run_shard`] invocation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRun {
    /// Cells in the whole grid.
    pub total_cells: usize,
    /// Cells owned by this shard.
    pub shard_cells: usize,
    /// Cells loaded from an existing part file and skipped.
    pub resumed: usize,
    /// Cells computed (and appended) by this invocation.
    pub ran: usize,
}

/// Run shard `spec` of `grid`, streaming each completed cell to the
/// part file at `out`. If `out` already holds a part for this exact
/// grid and shard, its cells are **resumed** — loaded, skipped, never
/// re-run — and only the missing cells execute (on the usual worker
/// pool, with the per-process simulation cache keyed over just this
/// shard's cases). A part for a *different* grid or shard is rejected
/// with a named error, not overwritten.
pub fn run_shard(
    grid: &SweepGrid,
    spec: ShardSpec,
    out: &Path,
    jobs: usize,
) -> Result<ShardRun, FaircrowdError> {
    run_shard_opts(grid, spec, out, jobs, true, None)
}

/// [`run_shard`] with the simulation cache switchable (for the bench;
/// output is identical either way) and a per-cell completion hook
/// (the CLI's `--progress`), called with each cell's **grid** index as
/// it finishes. The hook fires only for cells computed now, not for
/// resumed ones.
pub fn run_shard_opts(
    grid: &SweepGrid,
    spec: ShardSpec,
    out: &Path,
    jobs: usize,
    reuse_sim: bool,
    progress: super::CellHook<'_>,
) -> Result<ShardRun, FaircrowdError> {
    let cases = grid.expand()?;
    let header = PartHeader {
        grid_hash: grid_hash(&cases),
        cases: cases.len(),
        seeds_per_group: grid.seeds_per_group(),
        shard: spec.index,
        shards: spec.count,
    };
    let shard_of = partition(&cases, spec.count);
    let mine: Vec<usize> = (0..cases.len())
        .filter(|&i| shard_of[i] == spec.index - 1)
        .collect();

    // Resume: an existing non-empty file must be this part, exactly.
    let existing = match std::fs::metadata(out) {
        Ok(meta) if meta.len() > 0 => {
            let part = load_part(out)?;
            ensure_part_matches(&part, &header, &cases, &shard_of, out)?;
            if part.clean_bytes < meta.len() {
                // Drop the torn final line a kill left behind, so the
                // next append starts on a fresh line instead of gluing
                // onto half a record.
                truncate_to(out, part.clean_bytes)?;
            }
            part.cells
        }
        _ => {
            append_line(out, &header_to_json(&header).to_compact())?;
            Vec::new()
        }
    };
    let done: HashSet<usize> = existing.iter().map(|(i, _)| *i).collect();
    let missing: Vec<usize> = mine.iter().copied().filter(|i| !done.contains(i)).collect();
    let missing_cases: Vec<SweepCase> = missing.iter().map(|&i| cases[i].clone()).collect();

    // Stream completions straight to disk: one flushed line per cell,
    // so a kill loses at most the cell being appended (a torn final
    // line, which the loader drops). The first write failure is kept
    // and surfaced after the pool drains — later cells compute but
    // must not be trusted as durable.
    let file = Mutex::new(open_append(out)?);
    let write_err: Mutex<Option<FaircrowdError>> = Mutex::new(None);
    let on_done = |subset_index: usize, outcome: &CaseOutcome| {
        let cell = missing[subset_index];
        let line = cell_to_json(cell, outcome).to_compact();
        let mut file = file.lock().expect("part writer poisoned");
        let result = writeln!(file, "{line}").and_then(|()| file.flush());
        if let Err(e) = result {
            let mut slot = write_err.lock().expect("write-error slot poisoned");
            if slot.is_none() {
                *slot = Some(FaircrowdError::Io {
                    path: out.display().to_string(),
                    message: e.to_string(),
                });
            }
        }
        if let Some(progress) = progress {
            progress(cell, outcome);
        }
    };
    super::run_cases(&missing_cases, jobs, reuse_sim, Some(&on_done))?;
    if let Some(err) = write_err.into_inner().expect("write-error slot poisoned") {
        return Err(err);
    }
    Ok(ShardRun {
        total_cells: cases.len(),
        shard_cells: mine.len(),
        resumed: existing.len(),
        ran: missing.len(),
    })
}

/// Load a part file through the three gates (positioned parse, schema,
/// per-record integrity). Cross-grid integrity — does this part belong
/// to *that* grid — is the caller's second step ([`run_shard`] checks
/// against its expansion; [`merge_parts`] checks parts against each
/// other and the merged case list against the declared hash).
pub fn load_part(path: &Path) -> Result<PartFile, FaircrowdError> {
    let bytes = std::fs::read(path).map_err(|e| FaircrowdError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    // A kill can land mid-character, not just mid-line. Invalid UTF-8
    // confined to the final line is the same torn-tail artifact and is
    // dropped with it; invalid bytes before a newline are corruption.
    let text = match std::str::from_utf8(&bytes) {
        Ok(text) => text,
        Err(e) if !bytes[e.valid_up_to()..].contains(&b'\n') => {
            std::str::from_utf8(&bytes[..e.valid_up_to()]).expect("valid prefix")
        }
        Err(e) => {
            return Err(FaircrowdError::persist(format!(
                "part file {} has invalid UTF-8 at byte {} (before the final line)",
                path.display(),
                e.valid_up_to()
            )))
        }
    };
    let ctx = |line: usize| format!("part file {} line {line}", path.display());

    // Walk raw lines with byte offsets so the durable prefix is known.
    // `(line number, start offset, end offset incl. newline, content)`.
    let mut raw_lines = Vec::new();
    let mut offset = 0;
    for (index, raw) in text.split_inclusive('\n').enumerate() {
        let content = raw.trim_end_matches(['\n', '\r']);
        raw_lines.push((index + 1, offset, offset + raw.len(), content));
        offset += raw.len();
    }
    let mut entries = raw_lines.iter().filter(|(_, _, _, l)| !l.trim().is_empty());

    let &(header_line, _, header_end, header_text) = entries
        .next()
        .ok_or_else(|| FaircrowdError::persist(format!("part file {} is empty", path.display())))?;
    let header_json = Json::parse(header_text)
        .map_err(|e| FaircrowdError::persist(format!("{}: {e}", ctx(header_line))))?;
    let header = header_from_json(&header_json, ctx(header_line))?;
    let mut clean_bytes = header_end;

    let records: Vec<_> = entries.collect();
    let last = records.len().checked_sub(1);
    let mut cells = Vec::with_capacity(records.len());
    let mut seen: HashSet<usize> = HashSet::new();
    for (k, &(line_number, _, line_end, line)) in records.into_iter().enumerate() {
        let ctx = ctx(line_number);
        let json = match Json::parse(line) {
            Ok(json) => json,
            // A torn *final* line is the signature of a kill mid-append:
            // the cell was not durable yet, so drop it. Anywhere else,
            // a parse failure is corruption and must be said.
            Err(_) if Some(k) == last => break,
            Err(e) => return Err(FaircrowdError::persist(format!("{ctx}: {e}"))),
        };
        let (cell, outcome) = cell_from_json(&json, &ctx)?;
        if cell >= header.cases {
            return Err(FaircrowdError::persist(format!(
                "{ctx}: cell {cell} out of range (grid has {} cases)",
                header.cases
            )));
        }
        if !seen.insert(cell) {
            return Err(FaircrowdError::persist(format!(
                "{ctx}: duplicate record for cell {cell}"
            )));
        }
        cells.push((cell, outcome));
        clean_bytes = line_end;
    }
    Ok(PartFile {
        header,
        cells,
        clean_bytes: clean_bytes as u64,
    })
}

/// Resume gate: the part at `out` must describe exactly the shard we
/// are about to run — same grid hash, same partition, every cell owned
/// by this shard and equal to the grid's case at its index.
fn ensure_part_matches(
    part: &PartFile,
    header: &PartHeader,
    cases: &[SweepCase],
    shard_of: &[usize],
    out: &Path,
) -> Result<(), FaircrowdError> {
    let at = |what: String| FaircrowdError::persist(format!("part file {}: {what}", out.display()));
    if part.header.grid_hash != header.grid_hash {
        return Err(at(format!(
            "written for a different grid (grid hash {:#018x}, expected {:#018x}); \
             refusing to resume into it",
            part.header.grid_hash, header.grid_hash
        )));
    }
    if (part.header.cases, part.header.seeds_per_group) != (header.cases, header.seeds_per_group) {
        return Err(at(format!(
            "grid shape mismatch: part has {} case(s) / {} seed(s) per group, \
             expected {} / {}",
            part.header.cases, part.header.seeds_per_group, header.cases, header.seeds_per_group
        )));
    }
    if (part.header.shard, part.header.shards) != (header.shard, header.shards) {
        return Err(at(format!(
            "written by shard {}/{}, but this run is shard {}/{}",
            part.header.shard, part.header.shards, header.shard, header.shards
        )));
    }
    for (cell, outcome) in &part.cells {
        if shard_of[*cell] != header.shard - 1 {
            return Err(at(format!(
                "cell {cell} belongs to shard {}/{}, not this part's shard {}/{}",
                shard_of[*cell] + 1,
                header.shards,
                header.shard,
                header.shards
            )));
        }
        if outcome.case != cases[*cell] {
            return Err(at(format!(
                "cell {cell} does not match the grid's case at that index \
                 (was the grid edited since this part was written?)"
            )));
        }
    }
    Ok(())
}

/// Fold a complete set of loaded parts into the [`SweepResult`] the
/// single-process sweep would have produced. All parts must agree on
/// the grid (hash, case count, seeds per group, shard count), declare
/// pairwise-distinct shards, and together cover every cell exactly
/// once; the merged case list is re-hashed and must equal the declared
/// grid hash. Table, JSON and CSV of the returned result are
/// byte-identical to [`run_grid`](super::run_grid) on the same grid.
pub fn merge_parts(parts: &[PartFile]) -> Result<SweepResult, FaircrowdError> {
    let first = parts
        .first()
        .map(|p| p.header)
        .ok_or_else(|| FaircrowdError::usage("merge needs at least one part file"))?;
    let mut shards_seen: HashMap<usize, usize> = HashMap::new();
    let mut outcomes: Vec<Option<CaseOutcome>> = vec![None; first.cases];
    for (k, part) in parts.iter().enumerate() {
        let h = part.header;
        if (h.grid_hash, h.cases, h.seeds_per_group, h.shards)
            != (
                first.grid_hash,
                first.cases,
                first.seeds_per_group,
                first.shards,
            )
        {
            return Err(FaircrowdError::persist(format!(
                "part {} disagrees with part 1 on the grid: \
                 hash {:#018x} vs {:#018x}, {} vs {} case(s), {} vs {} seed(s) per group, \
                 {} vs {} shard(s) — parts of different sweeps cannot merge",
                k + 1,
                h.grid_hash,
                first.grid_hash,
                h.cases,
                first.cases,
                h.seeds_per_group,
                first.seeds_per_group,
                h.shards,
                first.shards,
            )));
        }
        if let Some(prev) = shards_seen.insert(h.shard, k + 1) {
            return Err(FaircrowdError::persist(format!(
                "part {} and part {prev} are both shard {}/{} — merge each shard once",
                k + 1,
                h.shard,
                h.shards
            )));
        }
        for (cell, outcome) in &part.cells {
            if outcomes[*cell].is_some() {
                return Err(FaircrowdError::persist(format!(
                    "cell {cell} appears in more than one part"
                )));
            }
            outcomes[*cell] = Some(outcome.clone());
        }
    }
    let missing = outcomes.iter().filter(|o| o.is_none()).count();
    if missing > 0 {
        let example = outcomes.iter().position(Option::is_none).unwrap_or(0);
        return Err(FaircrowdError::persist(format!(
            "parts cover {} of {} cell(s); {missing} missing (e.g. cell {example}) — \
             did every shard finish?",
            first.cases - missing,
            first.cases
        )));
    }
    let outcomes: Vec<CaseOutcome> = outcomes.into_iter().flatten().collect();
    let merged_cases: Vec<SweepCase> = outcomes.iter().map(|o| o.case.clone()).collect();
    let rehash = grid_hash(&merged_cases);
    if rehash != first.grid_hash {
        return Err(FaircrowdError::persist(format!(
            "merged cases hash to {rehash:#018x}, but the parts declare {:#018x} — \
             a part carries records for a different grid",
            first.grid_hash
        )));
    }
    Ok(SweepResult {
        groups: fold_groups(&outcomes, first.seeds_per_group),
        cases: outcomes,
    })
}

/// [`merge_parts`] from paths: load each file through the gates, then
/// merge. Errors carry the offending path.
pub fn merge_paths<P: AsRef<Path>>(paths: &[P]) -> Result<SweepResult, FaircrowdError> {
    let parts = paths
        .iter()
        .map(|p| load_part(p.as_ref()))
        .collect::<Result<Vec<_>, _>>()?;
    merge_parts(&parts)
}

// ---- codecs ---------------------------------------------------------

fn header_to_json(h: &PartHeader) -> Json {
    Json::Obj(vec![
        ("schema".to_owned(), Json::str(SCHEMA)),
        ("version".to_owned(), Json::uint(VERSION)),
        ("grid_hash".to_owned(), Json::uint(h.grid_hash)),
        ("cases".to_owned(), Json::uint(h.cases as u64)),
        (
            "seeds_per_group".to_owned(),
            Json::uint(h.seeds_per_group as u64),
        ),
        ("shard".to_owned(), Json::uint(h.shard as u64)),
        ("shards".to_owned(), Json::uint(h.shards as u64)),
    ])
}

fn header_from_json(
    json: &Json,
    ctx: impl std::fmt::Display,
) -> Result<PartHeader, FaircrowdError> {
    let schema = json.get("schema").and_then(Json::as_str).ok_or_else(|| {
        FaircrowdError::persist(format!("{ctx}: not a sweep part file (no `schema` field)"))
    })?;
    if schema != SCHEMA {
        return Err(FaircrowdError::persist(format!(
            "{ctx}: expected schema `{SCHEMA}`, got `{schema}`"
        )));
    }
    let version = json
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| FaircrowdError::persist(format!("{ctx}: missing schema `version`")))?;
    if version != VERSION {
        return Err(FaircrowdError::persist(format!(
            "{ctx}: unsupported {SCHEMA} version {version} (this build reads version {VERSION})"
        )));
    }
    let count = |key: &str| -> Result<usize, FaircrowdError> {
        json.get(key)
            .and_then(Json::as_u64)
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| {
                FaircrowdError::persist(format!("{ctx}: header field `{key}` should be a count"))
            })
    };
    let header = PartHeader {
        grid_hash: json
            .get("grid_hash")
            .and_then(Json::as_u64)
            .ok_or_else(|| {
                FaircrowdError::persist(format!(
                    "{ctx}: header field `grid_hash` should be an unsigned integer"
                ))
            })?,
        cases: count("cases")?,
        seeds_per_group: count("seeds_per_group")?,
        shard: count("shard")?,
        shards: count("shards")?,
    };
    if header.shard == 0 || header.shards == 0 || header.shard > header.shards {
        return Err(FaircrowdError::persist(format!(
            "{ctx}: header declares shard {}/{}, which is not a valid 1-based shard",
            header.shard, header.shards
        )));
    }
    if header.seeds_per_group == 0 {
        return Err(FaircrowdError::persist(format!(
            "{ctx}: header declares zero seeds per group"
        )));
    }
    Ok(header)
}

/// The grid/CLI spelling of an enforcement — re-parseable by
/// [`Enforcement::parse`], unlike the display [`Enforcement::label`].
fn enforce_spec(e: &Enforcement) -> String {
    match e {
        Enforcement::ExposureParity => "parity".to_owned(),
        Enforcement::ExposureFloor(n) => format!("floor:{n}"),
        Enforcement::MinimalTransparency => "transparency".to_owned(),
        Enforcement::GraceFinish => "grace".to_owned(),
    }
}

fn case_to_json(case: &SweepCase) -> Json {
    Json::Obj(vec![
        ("scenario".to_owned(), Json::str(&*case.scenario)),
        (
            "policy".to_owned(),
            match &case.policy {
                Some(p) => Json::str(&**p),
                None => Json::Null,
            },
        ),
        ("policy_label".to_owned(), Json::str(&*case.policy_label)),
        (
            "strategy".to_owned(),
            match &case.strategy {
                Some(s) => Json::str(&**s),
                None => Json::Null,
            },
        ),
        (
            "strategy_label".to_owned(),
            Json::str(&*case.strategy_label),
        ),
        ("seed".to_owned(), Json::uint(case.seed)),
        ("scale".to_owned(), Json::float(case.scale)),
        ("rounds".to_owned(), Json::uint(u64::from(case.rounds))),
        (
            "aggregator".to_owned(),
            match &case.aggregator {
                Some(a) => Json::str(&**a),
                None => Json::Null,
            },
        ),
        (
            "aggregator_label".to_owned(),
            Json::str(&*case.aggregator_label),
        ),
        (
            "enforce".to_owned(),
            Json::Arr(
                case.enforcements
                    .iter()
                    .map(|e| Json::str(enforce_spec(e)))
                    .collect(),
            ),
        ),
    ])
}

fn case_from_json(json: &Json, ctx: impl std::fmt::Display) -> Result<SweepCase, FaircrowdError> {
    let field = |key: &str| -> Result<&Json, FaircrowdError> {
        json.get(key)
            .ok_or_else(|| FaircrowdError::persist(format!("{ctx}: case is missing field `{key}`")))
    };
    let str_of = |key: &str| -> Result<String, FaircrowdError> {
        field(key)?.as_str().map(str::to_owned).ok_or_else(|| {
            FaircrowdError::persist(format!("{ctx}: case field `{key}` should be a string"))
        })
    };
    let policy = match field("policy")? {
        Json::Null => None,
        other => Some(other.as_str().map(str::to_owned).ok_or_else(|| {
            FaircrowdError::persist(format!(
                "{ctx}: case field `policy` should be a string or null"
            ))
        })?),
    };
    let strategy = match field("strategy")? {
        Json::Null => None,
        other => Some(other.as_str().map(str::to_owned).ok_or_else(|| {
            FaircrowdError::persist(format!(
                "{ctx}: case field `strategy` should be a string or null"
            ))
        })?),
    };
    let aggregator = match field("aggregator")? {
        Json::Null => None,
        other => Some(other.as_str().map(str::to_owned).ok_or_else(|| {
            FaircrowdError::persist(format!(
                "{ctx}: case field `aggregator` should be a string or null"
            ))
        })?),
    };
    let enforcements = field("enforce")?
        .as_arr()
        .ok_or_else(|| {
            FaircrowdError::persist(format!("{ctx}: case field `enforce` should be an array"))
        })?
        .iter()
        .map(|e| {
            let spec = e.as_str().ok_or_else(|| {
                FaircrowdError::persist(format!("{ctx}: enforcement entry should be a string"))
            })?;
            Enforcement::parse(spec).map_err(|e| FaircrowdError::persist(format!("{ctx}: {e}")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SweepCase {
        scenario: str_of("scenario")?,
        policy,
        policy_label: str_of("policy_label")?,
        strategy,
        strategy_label: str_of("strategy_label")?,
        seed: field("seed")?.as_u64().ok_or_else(|| {
            FaircrowdError::persist(format!("{ctx}: case field `seed` should be an integer"))
        })?,
        scale: field("scale")?.as_f64().ok_or_else(|| {
            FaircrowdError::persist(format!("{ctx}: case field `scale` should be a number"))
        })?,
        rounds: field("rounds")?
            .as_u64()
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| {
                FaircrowdError::persist(format!(
                    "{ctx}: case field `rounds` should be a round count"
                ))
            })?,
        enforcements,
        aggregator,
        aggregator_label: str_of("aggregator_label")?,
    })
}

fn cell_to_json(cell: usize, outcome: &CaseOutcome) -> Json {
    Json::Obj(vec![
        ("cell".to_owned(), Json::uint(cell as u64)),
        ("case".to_owned(), case_to_json(&outcome.case)),
        (
            "report".to_owned(),
            results::report_to_json(&outcome.report),
        ),
        ("summary".to_owned(), outcome.summary.to_json()),
        (
            "wages".to_owned(),
            match &outcome.wages {
                Some(w) => results::wages_to_json(w),
                None => Json::Null,
            },
        ),
        (
            "consensus".to_owned(),
            match outcome.consensus {
                Some(a) => Json::float(a),
                None => Json::Null,
            },
        ),
    ])
}

fn cell_from_json(
    json: &Json,
    ctx: impl std::fmt::Display,
) -> Result<(usize, CaseOutcome), FaircrowdError> {
    let cell = json
        .get("cell")
        .and_then(Json::as_u64)
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| {
            FaircrowdError::persist(format!("{ctx}: record field `cell` should be a cell index"))
        })?;
    let field = |key: &str| -> Result<&Json, FaircrowdError> {
        json.get(key)
            .ok_or_else(|| FaircrowdError::persist(format!("{ctx}: missing field `{key}`")))
    };
    let wages = match field("wages")? {
        Json::Null => None,
        other => Some(results::wages_from_json(other, &ctx)?),
    };
    let consensus = match field("consensus")? {
        Json::Null => None,
        other => Some(other.as_f64().ok_or_else(|| {
            FaircrowdError::persist(format!(
                "{ctx}: record field `consensus` should be a number or null"
            ))
        })?),
    };
    Ok((
        cell,
        CaseOutcome {
            case: case_from_json(field("case")?, &ctx)?,
            report: results::report_from_json(field("report")?, &ctx)?,
            summary: TraceSummary::from_json(field("summary")?, &ctx)?,
            wages,
            consensus,
        },
    ))
}

// ---- file plumbing --------------------------------------------------

fn open_append(path: &Path) -> Result<std::fs::File, FaircrowdError> {
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| FaircrowdError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
}

fn truncate_to(path: &Path, len: u64) -> Result<(), FaircrowdError> {
    std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .and_then(|f| f.set_len(len))
        .map_err(|e| FaircrowdError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
}

fn append_line(path: &Path, line: &str) -> Result<(), FaircrowdError> {
    let mut file = open_append(path)?;
    writeln!(file, "{line}")
        .and_then(|()| file.flush())
        .map_err(|e| FaircrowdError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::run_grid;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fc_shard_{}_{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("part.json")
    }

    fn grid() -> SweepGrid {
        SweepGrid::parse("policy=round_robin,kos;seed=1,2;rounds=6;enforce=none,grace").unwrap()
    }

    #[test]
    fn shard_spec_parses_and_rejects() {
        assert_eq!(
            ShardSpec::parse("2/4").unwrap(),
            ShardSpec { index: 2, count: 4 }
        );
        assert_eq!(ShardSpec::parse("1/1").unwrap().to_string(), "1/1");
        for bad in ["", "3", "0/2", "3/2", "1/0", "a/b", "1/2/3", "-1/2"] {
            let err = ShardSpec::parse(bad).unwrap_err();
            assert!(
                matches!(err, FaircrowdError::Usage { .. }),
                "`{bad}`: {err:?}"
            );
            assert!(err.to_string().contains("i/N"), "{err}");
        }
    }

    #[test]
    fn partition_keeps_enforce_clusters_together_and_balances() {
        let cases = grid().expand().unwrap();
        let shard_of = partition(&cases, 3);
        // Cases sharing a sim key (differing only on `enforce`) must
        // land on the same shard — that is what keeps the baseline
        // cache effective under sharding.
        let mut shard_of_key: HashMap<_, usize> = HashMap::new();
        for (i, case) in cases.iter().enumerate() {
            let prev = shard_of_key.entry(case.sim_key()).or_insert(shard_of[i]);
            assert_eq!(
                *prev, shard_of[i],
                "cluster split across shards at case {i}"
            );
        }
        // Clusters deal round-robin, so shard loads differ by at most
        // one cluster (= the number of enforcement stacks).
        let mut load = [0usize; 3];
        for &s in &shard_of {
            load[s] += 1;
        }
        let (min, max) = (load.iter().min().unwrap(), load.iter().max().unwrap());
        assert!(max - min <= 2, "unbalanced shard loads: {load:?}");
    }

    #[test]
    fn grid_hash_is_stable_and_discriminating() {
        let cases = grid().expand().unwrap();
        assert_eq!(grid_hash(&cases), grid_hash(&cases));
        let other = SweepGrid::parse("policy=round_robin,kos;seed=1,3;rounds=6;enforce=none,grace")
            .unwrap()
            .expand()
            .unwrap();
        assert_ne!(grid_hash(&cases), grid_hash(&other));
    }

    #[test]
    fn shard_run_resume_and_merge_are_byte_identical() {
        let grid = grid();
        let single = run_grid(&grid, 2).unwrap();
        let spec1 = ShardSpec { index: 1, count: 2 };
        let spec2 = ShardSpec { index: 2, count: 2 };
        let (p1, p2) = (temp_path("m1"), temp_path("m2"));
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
        let r1 = run_shard(&grid, spec1, &p1, 2).unwrap();
        let r2 = run_shard(&grid, spec2, &p2, 2).unwrap();
        assert_eq!(r1.total_cells, 8);
        assert_eq!(r1.shard_cells + r2.shard_cells, 8);
        assert_eq!(r1.ran, r1.shard_cells);
        assert_eq!(r1.resumed, 0);

        let merged = merge_paths(&[&p1, &p2]).unwrap();
        assert_eq!(merged.render_table(), single.render_table());
        assert_eq!(merged.to_json(), single.to_json());
        assert_eq!(merged.to_csv(), single.to_csv());

        // Re-running a finished shard resumes every cell and runs none.
        let again = run_shard(&grid, spec1, &p1, 2).unwrap();
        assert_eq!(again.resumed, r1.shard_cells);
        assert_eq!(again.ran, 0);

        // Kill simulation: truncate the part mid-final-line. The torn
        // line is dropped, the resumed run recomputes exactly that
        // cell, and the merge is still byte-identical.
        let text = std::fs::read_to_string(&p1).unwrap();
        let cut = text.trim_end().rfind('\n').unwrap() + 30;
        std::fs::write(&p1, &text[..cut]).unwrap();
        let resumed = run_shard(&grid, spec1, &p1, 2).unwrap();
        assert_eq!(resumed.resumed, r1.shard_cells - 1);
        assert_eq!(resumed.ran, 1);
        let merged = merge_paths(&[&p2, &p1]).unwrap();
        assert_eq!(merged.to_json(), single.to_json());
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn aggregator_grids_shard_and_merge_byte_identical() {
        // The aggregator axis rides the part codec (schema v3): a
        // sharded sweep over it must fold back byte-identical, and the
        // axis must not split sim-key clusters across shards.
        let grid =
            SweepGrid::parse("rounds=6;seed=1,2;aggregator=majority,parity_constrained").unwrap();
        let cases = grid.expand().unwrap();
        let shard_of = partition(&cases, 2);
        for (i, case) in cases.iter().enumerate() {
            for (j, other) in cases.iter().enumerate() {
                if case.sim_key() == other.sim_key() {
                    assert_eq!(shard_of[i], shard_of[j], "cluster split at {i}/{j}");
                }
            }
        }
        let single = run_grid(&grid, 2).unwrap();
        let (p1, p2) = (temp_path("agg1"), temp_path("agg2"));
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
        run_shard(&grid, ShardSpec { index: 1, count: 2 }, &p1, 2).unwrap();
        run_shard(&grid, ShardSpec { index: 2, count: 2 }, &p2, 2).unwrap();
        let merged = merge_paths(&[&p1, &p2]).unwrap();
        assert_eq!(merged.to_json(), single.to_json());
        assert_eq!(merged.render_table(), single.render_table());
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn resume_rejects_a_part_for_a_different_grid_or_shard() {
        let grid = grid();
        let path = temp_path("wrong");
        std::fs::remove_file(&path).ok();
        let spec = ShardSpec { index: 1, count: 2 };
        run_shard(&grid, spec, &path, 2).unwrap();

        let other = SweepGrid::parse("policy=round_robin;seed=1,2;rounds=6").unwrap();
        let err = run_shard(&other, spec, &path, 2).unwrap_err();
        assert!(err.to_string().contains("different grid"), "{err}");

        let err = run_shard(&grid, ShardSpec { index: 2, count: 2 }, &path, 2).unwrap_err();
        assert!(err.to_string().contains("shard 1/2"), "{err}");
        assert!(err.to_string().contains("shard 2/2"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_gates_reject_incomplete_duplicate_and_foreign_parts() {
        let grid = grid();
        let (p1, p2) = (temp_path("g1"), temp_path("g2"));
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
        run_shard(&grid, ShardSpec { index: 1, count: 2 }, &p1, 2).unwrap();
        run_shard(&grid, ShardSpec { index: 2, count: 2 }, &p2, 2).unwrap();

        // Incomplete: one part alone names the missing coverage.
        let err = merge_paths(&[&p1]).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");

        // Duplicate shard.
        let err = merge_paths(&[&p1, &p1]).unwrap_err();
        assert!(err.to_string().contains("both shard 1/2"), "{err}");

        // Foreign part: different grid → hash disagreement, named.
        let p3 = temp_path("g3");
        std::fs::remove_file(&p3).ok();
        let other = SweepGrid::parse("policy=round_robin;seed=1,2;rounds=6").unwrap();
        run_shard(&other, ShardSpec { index: 1, count: 2 }, &p3, 2).unwrap();
        let err = merge_paths(&[&p1, &p3]).unwrap_err();
        assert!(err.to_string().contains("disagrees"), "{err}");

        for p in [&p1, &p2, &p3] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn load_rejects_wrong_schema_version_and_midfile_corruption() {
        let path = temp_path("gate");
        std::fs::remove_file(&path).ok();

        std::fs::write(&path, "{\"format\": \"jsonl\"}\n").unwrap();
        let err = load_part(&path).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");

        std::fs::write(
            &path,
            format!("{{\"schema\": \"{SCHEMA}\", \"version\": 99}}\n"),
        )
        .unwrap();
        let err = load_part(&path).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");

        // Resuming over a wrong-version part is the same gate.
        let grid = grid();
        let err = run_shard(&grid, ShardSpec { index: 1, count: 1 }, &path, 2).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");

        // Corruption before the final line is an error that names the
        // line; only a torn last line is forgiven.
        std::fs::remove_file(&path).ok();
        run_shard(&grid, ShardSpec { index: 1, count: 1 }, &path, 2).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.insert(2, "{\"cell\": 3, \"cas");
        std::fs::write(&path, lines.join("\n")).unwrap();
        let err = load_part(&path).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
