//! Axiom 2 — requester fairness in task assignment.
//!
//! *"Given two tasks ti and tj posted by different requesters idri and
//! idrj, if the required skills for the two tasks Sti and Stj are similar,
//! and the two tasks offer comparable rewards dti and dtj, then ti and tj
//! should be shown to the same set of workers."*
//!
//! The quantifier domain is the set of cross-requester task pairs with
//! similar skill requirements (kernel from the config — the paper suggests
//! cosine) and comparable rewards (relative tolerance). The per-pair score
//! is the Jaccard overlap of the two tasks' audiences, restricted to
//! workers qualified for both.

use crate::axiom::{Axiom, AxiomId, AxiomReport, ViolationCollector};
use crate::index::TraceIndex;
use faircrowd_model::similarity::SimilarityConfig;
use faircrowd_model::stats;

/// Checker for Axiom 2.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequesterAssignmentFairness;

impl Axiom for RequesterAssignmentFairness {
    fn id(&self) -> AxiomId {
        AxiomId::A2RequesterAssignment
    }

    fn check(
        &self,
        ix: &TraceIndex<'_>,
        cfg: &SimilarityConfig,
        max_witnesses: usize,
    ) -> AxiomReport {
        let trace = ix.trace();

        let mut overlaps = Vec::new();
        let mut collector = ViolationCollector::new(self.id(), max_witnesses);
        for (i, j) in ix.comparable_task_candidates(cfg) {
            let (ti, tj) = (&trace.tasks[i], &trace.tasks[j]);
            if ti.requester == tj.requester {
                continue; // the axiom compares *different* requesters
            }
            let skill_sim = cfg.skill_measure.score(&ti.skills, &tj.skills);
            if skill_sim < cfg.task_skill_threshold
                || !ti.reward_comparable(tj, cfg.reward_tolerance)
            {
                continue;
            }
            let o = ix.task_audience_overlap(i, j);
            let overlap = o.jaccard();
            overlaps.push(overlap);
            if overlap < 1.0 - 1e-9 {
                collector.push(
                    1.0 - overlap,
                    crate::axioms::a2_witness(ti, tj, skill_sim, o.left, o.right, overlap),
                );
            }
        }

        if overlaps.is_empty() {
            return AxiomReport::vacuous(
                self.id(),
                "no comparable cross-requester task pairs in the trace",
            );
        }
        AxiomReport {
            axiom: self.id(),
            score: stats::mean(&overlaps),
            checked: overlaps.len(),
            violation_count: collector.total,
            truncated: collector.truncated(),
            violations: collector.items,
            notes: vec![format!(
                "skill kernel {} ≥ {:.2}, reward tolerance {:.0}%",
                cfg.skill_measure.name(),
                cfg.task_skill_threshold,
                cfg.reward_tolerance * 100.0
            )],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::fixtures::*;

    fn cfg() -> SimilarityConfig {
        SimilarityConfig::default()
    }

    #[test]
    fn equal_audiences_score_one() {
        let mut trace = skeleton(vec![task(0, 0, &[1, 0], 10), task(1, 1, &[1, 0], 10)]);
        for tid in 0..2 {
            show(&mut trace, 1, tid, 0);
            show(&mut trace, 1, tid, 1);
        }
        let r = RequesterAssignmentFairness.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.checked, 1);
        assert!((r.score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hidden_competitor_task_is_a_violation() {
        let mut trace = skeleton(vec![task(0, 0, &[1, 0], 10), task(1, 1, &[1, 0], 10)]);
        // r0's task shown to both workers; r1's comparable task shown to none
        show(&mut trace, 1, 0, 0);
        show(&mut trace, 1, 0, 1);
        let r = RequesterAssignmentFairness.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.violation_count, 1);
        assert_eq!(r.score, 0.0);
        assert!(r.violations[0].description.contains("r1"));
    }

    #[test]
    fn same_requester_pairs_skipped() {
        let mut trace = skeleton(vec![task(0, 0, &[1, 0], 10), task(1, 0, &[1, 0], 10)]);
        show(&mut trace, 1, 0, 0);
        let r = RequesterAssignmentFairness.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.checked, 0, "same-requester pairs are out of scope");
    }

    #[test]
    fn incomparable_rewards_skipped() {
        let mut trace = skeleton(vec![task(0, 0, &[1, 0], 10), task(1, 1, &[1, 0], 50)]);
        show(&mut trace, 1, 0, 0);
        let r = RequesterAssignmentFairness.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.checked, 0, "5x reward difference is not comparable");
    }

    #[test]
    fn dissimilar_skills_skipped() {
        let mut trace = skeleton(vec![task(0, 0, &[1, 0], 10), task(1, 1, &[0, 1], 10)]);
        show(&mut trace, 1, 0, 0);
        let r = RequesterAssignmentFairness.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.checked, 0);
    }

    #[test]
    fn audience_restricted_to_qualified_workers() {
        // w1 lacks the needed skill; her absence from audiences is fine
        let mut trace = skeleton(vec![task(0, 0, &[1, 0], 10), task(1, 1, &[1, 0], 10)]);
        trace.workers[1] = worker(1, &[0, 1]);
        show(&mut trace, 1, 0, 0);
        show(&mut trace, 1, 1, 0);
        let r = RequesterAssignmentFairness.check_trace(&trace, &cfg(), 10);
        assert!((r.score - 1.0).abs() < 1e-12);
    }
}
