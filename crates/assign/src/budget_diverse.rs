//! Budget- and diversity-constrained worker selection (Goel & Faltings,
//! *Crowdsourcing with Fairness, Diversity and Budget Constraints*).
//!
//! Per task, the policy picks the highest-quality qualified workers
//! subject to two constraints:
//!
//! * **budget** — the cumulative reward committed across the round may
//!   not exceed [`BudgetDiverse::round_budget`];
//! * **diversity** — the selected set must honour per-group minimum
//!   quotas over the workers' declared [`WorkerView::group`].
//!
//! The policy derives a quota that is feasible *by construction* (one
//! pick from each of the most numerous groups, capped by the slots and
//! the groups actually present), so [`AssignmentPolicy::assign`] never
//! fails; the raw selection routine [`select_budget_diverse`] takes an
//! arbitrary caller quota and reports
//! [`FaircrowdError::InfeasibleAssignment`] — never a panic — when that
//! quota cannot be met.

use crate::policy::{AssignInput, AssignmentOutcome, AssignmentPolicy, WorkerView};
use faircrowd_model::error::FaircrowdError;
use faircrowd_model::money::Credits;
use rand::RngCore;
use std::collections::BTreeMap;

/// One selectable candidate handed to [`select_budget_diverse`].
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Caller-side index (returned in the selection).
    pub index: usize,
    /// Estimated quality, higher is better.
    pub quality: f64,
    /// Cost of selecting this candidate.
    pub cost: Credits,
    /// Diversity group, `None` for ungrouped candidates.
    pub group: Option<String>,
}

/// Select up to `slots` candidates maximising quality subject to a
/// total budget and per-group minimum quotas.
///
/// The quota map demands, per group key, a minimum number of selected
/// candidates from that group. Selection is greedy and deterministic:
/// quota picks first (best quality within each group, groups in key
/// order), then free picks by quality; ties break on the caller index.
///
/// Errors with [`FaircrowdError::InfeasibleAssignment`] when the quotas
/// cannot possibly be met — they demand more picks than `slots`, more
/// members of a group than exist, or a combined cost above `budget`
/// even in the cheapest quota-satisfying pick.
pub fn select_budget_diverse(
    candidates: &[Candidate],
    slots: usize,
    budget: Credits,
    quota: &BTreeMap<String, usize>,
) -> Result<Vec<usize>, FaircrowdError> {
    let mut problems = Vec::new();
    let demanded: usize = quota.values().sum();
    if demanded > slots {
        problems.push(format!(
            "quotas demand {demanded} picks but only {slots} slots are open"
        ));
    }
    let mut by_group: BTreeMap<&str, Vec<&Candidate>> = BTreeMap::new();
    for c in candidates {
        if let Some(g) = &c.group {
            by_group.entry(g.as_str()).or_default().push(c);
        }
    }
    for (group, min) in quota {
        let have = by_group.get(group.as_str()).map_or(0, |v| v.len());
        if have < *min {
            problems.push(format!(
                "group `{group}` quota is {min} but only {have} candidates declare it"
            ));
        }
    }
    if !problems.is_empty() {
        return Err(FaircrowdError::InfeasibleAssignment {
            policy: BudgetDiverse::NAME.to_owned(),
            problems,
        });
    }

    // Stable quality order: best quality first, caller index breaks ties.
    let rank = |a: &&Candidate, b: &&Candidate| {
        b.quality
            .partial_cmp(&a.quality)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index.cmp(&b.index))
    };

    // Quota picks: cheapest-satisfying check uses the same greedy order,
    // so "the greedy quota picks fit the budget" is the feasibility test.
    let mut picked: Vec<&Candidate> = Vec::new();
    let mut spent = Credits::ZERO;
    for (group, min) in quota {
        let mut members: Vec<&Candidate> = by_group
            .get(group.as_str())
            .map(|v| v.to_vec())
            .unwrap_or_default();
        members.sort_by(rank);
        for c in members.into_iter().take(*min) {
            spent += c.cost;
            picked.push(c);
        }
    }
    if spent > budget {
        return Err(FaircrowdError::InfeasibleAssignment {
            policy: BudgetDiverse::NAME.to_owned(),
            problems: vec![format!(
                "meeting the quotas costs {spent} but the budget is {budget}"
            )],
        });
    }

    // Free picks: best remaining quality that still fits the budget.
    let mut rest: Vec<&Candidate> = candidates
        .iter()
        .filter(|c| !picked.iter().any(|p| p.index == c.index))
        .collect();
    rest.sort_by(rank);
    for c in rest {
        if picked.len() >= slots {
            break;
        }
        if spent + c.cost > budget {
            continue;
        }
        spent += c.cost;
        picked.push(c);
    }
    let mut indices: Vec<usize> = picked.into_iter().map(|c| c.index).collect();
    indices.sort_unstable();
    Ok(indices)
}

/// The registered `budget_diverse` policy. Deterministic: the injected
/// RNG is never consulted.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetDiverse {
    /// Total reward the policy may commit per round across all tasks.
    pub round_budget: Credits,
    /// Distinct groups each task's selection should draw from (capped
    /// by the slots and the groups present among qualified candidates,
    /// so the derived quota is always feasible).
    pub group_spread: usize,
}

impl BudgetDiverse {
    /// Stable registry/report name.
    pub const NAME: &'static str = "budget-diverse";
}

impl Default for BudgetDiverse {
    fn default() -> Self {
        BudgetDiverse {
            round_budget: Credits::from_dollars(50),
            group_spread: 2,
        }
    }
}

impl AssignmentPolicy for BudgetDiverse {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn assign(&mut self, input: &AssignInput, _rng: &mut dyn RngCore) -> AssignmentOutcome {
        let mut outcome = AssignmentOutcome::default();
        let mut remaining: BTreeMap<_, u32> =
            input.workers.iter().map(|w| (w.id, w.capacity)).collect();
        let mut budget_left = self.round_budget;
        for task in &input.tasks {
            let candidates: Vec<(&WorkerView, Candidate)> = input
                .workers
                .iter()
                .enumerate()
                .filter(|(_, w)| w.qualifies(task) && remaining[&w.id] > 0)
                .map(|(wi, w)| {
                    (
                        w,
                        Candidate {
                            index: wi,
                            quality: w.quality,
                            cost: task.reward,
                            group: w.group.clone(),
                        },
                    )
                })
                .collect();
            // Every candidate sees the task (self-selection-style
            // exposure); the constraints bind only the assignments.
            for (w, _) in &candidates {
                outcome.show(w.id, task.id);
            }
            let quota = feasible_quota(
                candidates.iter().map(|(_, c)| c),
                task.slots as usize,
                self.group_spread,
            );
            let flat: Vec<Candidate> = candidates.iter().map(|(_, c)| c.clone()).collect();
            // The derived quota is feasible and quota picks are free of
            // budget pressure only when the budget allows; an exhausted
            // budget is not an error — the task simply goes unstaffed.
            let picks = select_budget_diverse(&flat, task.slots as usize, budget_left, &quota)
                .unwrap_or_default();
            for wi in picks {
                let w = &input.workers[wi];
                outcome.assign(w.id, task.id);
                *remaining.get_mut(&w.id).expect("candidate has capacity") -= 1;
                budget_left -= task.reward;
            }
        }
        outcome
    }
}

/// Derive a quota demanding one pick from each of the `spread` largest
/// groups among the candidates — feasible by construction (each quota'd
/// group has ≥ 1 member and the total demand never exceeds `slots`).
fn feasible_quota<'a>(
    candidates: impl Iterator<Item = &'a Candidate>,
    slots: usize,
    spread: usize,
) -> BTreeMap<String, usize> {
    let mut sizes: BTreeMap<&str, usize> = BTreeMap::new();
    for c in candidates {
        if let Some(g) = &c.group {
            *sizes.entry(g.as_str()).or_insert(0) += 1;
        }
    }
    let mut groups: Vec<(&str, usize)> = sizes.into_iter().collect();
    // Largest groups first; name order breaks ties deterministically.
    groups.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    groups
        .into_iter()
        .take(spread.min(slots))
        .map(|(g, _)| (g.to_owned(), 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::fixtures::small_market;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cand(index: usize, quality: f64, cents: i64, group: &str) -> Candidate {
        Candidate {
            index,
            quality,
            cost: Credits::from_cents(cents),
            group: Some(group.to_owned()),
        }
    }

    #[test]
    fn selection_meets_quota_before_quality() {
        let candidates = vec![
            cand(0, 0.99, 10, "north"),
            cand(1, 0.98, 10, "north"),
            cand(2, 0.10, 10, "south"),
        ];
        let quota = BTreeMap::from([("south".to_owned(), 1)]);
        let picks =
            select_budget_diverse(&candidates, 2, Credits::from_dollars(1), &quota).unwrap();
        assert!(picks.contains(&2), "quota'd low-quality pick must be in");
        assert_eq!(picks, vec![0, 2]);
    }

    #[test]
    fn selection_respects_budget() {
        let candidates = vec![
            cand(0, 0.9, 60, "north"),
            cand(1, 0.8, 60, "north"),
            cand(2, 0.7, 60, "south"),
        ];
        // Budget admits two 60¢ picks, not three.
        let picks =
            select_budget_diverse(&candidates, 3, Credits::from_cents(120), &BTreeMap::new())
                .unwrap();
        assert_eq!(picks, vec![0, 1]);
    }

    #[test]
    fn infeasible_quotas_are_named_errors() {
        let candidates = vec![cand(0, 0.9, 10, "north")];
        // More demanded than slots.
        let quota = BTreeMap::from([("north".to_owned(), 2)]);
        let err =
            select_budget_diverse(&candidates, 1, Credits::from_dollars(1), &quota).unwrap_err();
        assert!(
            matches!(err, FaircrowdError::InfeasibleAssignment { .. }),
            "{err}"
        );
        // A group nobody declares.
        let quota = BTreeMap::from([("mars".to_owned(), 1)]);
        let err =
            select_budget_diverse(&candidates, 1, Credits::from_dollars(1), &quota).unwrap_err();
        assert!(err.to_string().contains("mars"), "{err}");
        // Quota picks alone blow the budget.
        let quota = BTreeMap::from([("north".to_owned(), 1)]);
        let err =
            select_budget_diverse(&candidates, 1, Credits::from_cents(5), &quota).unwrap_err();
        assert!(err.to_string().contains("budget"), "{err}");
    }

    #[test]
    fn policy_is_feasible_and_deterministic_on_the_fixture() {
        let market = small_market();
        let mut policy = BudgetDiverse::default();
        let a = policy.assign(&market, &mut StdRng::seed_from_u64(1));
        assert!(
            a.check_feasible(&market).is_empty(),
            "{:?}",
            a.check_feasible(&market)
        );
        let b = BudgetDiverse::default().assign(&market, &mut StdRng::seed_from_u64(999));
        assert_eq!(a, b, "policy must ignore the RNG");
        assert!(!a.assignments.is_empty());
    }

    #[test]
    fn policy_spreads_across_groups_when_slots_allow() {
        let market = small_market();
        let outcome = BudgetDiverse::default().assign(&market, &mut StdRng::seed_from_u64(0));
        // t0 has 2 slots and both groups qualify: the selection must
        // draw from both regions rather than the two best northerners.
        let t0 = faircrowd_model::ids::TaskId::new(0);
        let groups: std::collections::BTreeSet<&str> = outcome
            .assignments
            .iter()
            .filter(|(_, t)| *t == t0)
            .filter_map(|(w, _)| {
                market
                    .workers
                    .iter()
                    .find(|v| v.id == *w)
                    .and_then(|v| v.group.as_deref())
            })
            .collect();
        assert_eq!(groups.len(), 2, "both groups must be represented on t0");
    }

    #[test]
    fn exhausted_budget_stops_assigning_without_panicking() {
        let market = small_market();
        let mut policy = BudgetDiverse {
            round_budget: Credits::ZERO,
            group_spread: 2,
        };
        let outcome = policy.assign(&market, &mut StdRng::seed_from_u64(0));
        assert!(outcome.assignments.is_empty());
        // Exposure is unaffected by the budget.
        assert!(!outcome.visibility.is_empty());
    }
}
