//! Online task assignment.
//!
//! After Ho & Vaughan, *Online task assignment in crowdsourcing markets*
//! (AAAI 2012 — cited as \[8\]): workers arrive one at a time and must be
//! assigned on arrival, the scheme "accounting for worker skills to
//! maximize the requester's total gain from the completed work". We
//! implement the greedy marginal-utility rule (the standard practical
//! variant): an arriving worker is routed to the open task where her
//! expected contribution `quality × reward` is largest.
//!
//! Like [`crate::RequesterCentric`], the worker is shown only what she is
//! offered — online platforms that route work do not reveal the queue.

use crate::policy::{AssignInput, AssignmentOutcome, AssignmentPolicy};
use rand::seq::SliceRandom;
use rand::RngCore;
use std::collections::BTreeMap;

/// Greedy online assignment with arrival order drawn from the RNG.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineMatching;

impl AssignmentPolicy for OnlineMatching {
    fn name(&self) -> &'static str {
        "online-greedy"
    }

    fn assign(&mut self, input: &AssignInput, rng: &mut dyn RngCore) -> AssignmentOutcome {
        let mut outcome = AssignmentOutcome::default();
        let mut slots: BTreeMap<_, u32> = input.tasks.iter().map(|t| (t.id, t.slots)).collect();

        let mut arrivals: Vec<usize> = (0..input.workers.len()).collect();
        arrivals.shuffle(rng);

        for wi in arrivals {
            let w = &input.workers[wi];
            // A worker answers any given task at most once (redundancy
            // slots need distinct workers).
            let mut taken: std::collections::BTreeSet<_> = std::collections::BTreeSet::new();
            for _ in 0..w.capacity {
                // marginal utility of routing w to each open task
                let best = input
                    .tasks
                    .iter()
                    .filter(|t| slots[&t.id] > 0 && !taken.contains(&t.id) && w.qualifies(t))
                    .max_by(|a, b| {
                        let ua = w.quality * a.reward.as_dollars_f64();
                        let ub = w.quality * b.reward.as_dollars_f64();
                        ua.partial_cmp(&ub)
                            .expect("NaN utility")
                            .then(b.id.cmp(&a.id))
                    });
                match best {
                    Some(t) => {
                        *slots.get_mut(&t.id).expect("slot entry") -= 1;
                        taken.insert(t.id);
                        outcome.assign(w.id, t.id);
                    }
                    None => break,
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::fixtures::small_market;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn feasible() {
        let m = small_market();
        let o = OnlineMatching.assign(&m, &mut StdRng::seed_from_u64(0));
        assert!(o.check_feasible(&m).is_empty());
    }

    #[test]
    fn routes_arrivals_to_highest_value_open_task() {
        let m = small_market();
        let o = OnlineMatching.assign(&m, &mut StdRng::seed_from_u64(0));
        // every assignment must be to the best open task at that moment;
        // structurally we can at least require full slot usage given
        // abundant capacity
        assert_eq!(o.assignments.len(), 4);
    }

    #[test]
    fn visibility_limited_to_offers() {
        let m = small_market();
        let o = OnlineMatching.assign(&m, &mut StdRng::seed_from_u64(1));
        for (w, vis) in &o.visibility {
            let assigned: std::collections::BTreeSet<_> = o
                .assignments
                .iter()
                .filter(|(aw, _)| aw == w)
                .map(|(_, t)| *t)
                .collect();
            assert_eq!(vis, &assigned);
        }
    }

    #[test]
    fn arrival_order_matters() {
        let m = small_market();
        let outcomes: Vec<_> = (0..10)
            .map(|s| OnlineMatching.assign(&m, &mut StdRng::seed_from_u64(s)))
            .collect();
        let distinct: std::collections::BTreeSet<String> = outcomes
            .iter()
            .map(|o| format!("{:?}", o.assignments))
            .collect();
        assert!(
            distinct.len() > 1,
            "online outcomes should vary with arrival order"
        );
    }
}
