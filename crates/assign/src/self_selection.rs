//! Self-selection (post-and-browse).
//!
//! "In platforms such as AMT and CrowdFlower, requesters post tasks, and
//! qualified workers choose the ones they like. This simple task
//! assignment mechanism could be characterized as fair because workers
//! have access to the same set of tasks" (§3.1.1). Every qualified worker
//! sees every open task; workers then claim tasks by their own preference
//! in random arrival order.

use crate::policy::{preference_score, AssignInput, AssignmentOutcome, AssignmentPolicy};
use rand::seq::SliceRandom;
use rand::RngCore;
use std::collections::BTreeMap;

/// The post-and-browse baseline. Fair in exposure by construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct SelfSelection;

impl AssignmentPolicy for SelfSelection {
    fn name(&self) -> &'static str {
        "self-selection"
    }

    fn assign(&mut self, input: &AssignInput, rng: &mut dyn RngCore) -> AssignmentOutcome {
        let mut outcome = AssignmentOutcome::default();
        // Full visibility for the qualified.
        for w in &input.workers {
            for t in &input.tasks {
                if w.qualifies(t) {
                    outcome.show(w.id, t.id);
                }
            }
        }
        // Workers arrive in random order and claim by preference.
        let mut slots: BTreeMap<_, u32> = input.tasks.iter().map(|t| (t.id, t.slots)).collect();
        let mut order: Vec<usize> = (0..input.workers.len()).collect();
        order.shuffle(rng);
        for wi in order {
            let w = &input.workers[wi];
            // rank qualified open tasks by the worker's own preference
            let mut prefs: Vec<(f64, usize)> = input
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| w.qualifies(t) && slots[&t.id] > 0)
                .map(|(ti, t)| (preference_score(w, t), ti))
                .collect();
            prefs.sort_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .expect("NaN preference")
                    .then(a.1.cmp(&b.1))
            });
            for &(_, ti) in prefs.iter().take(w.capacity as usize) {
                let t = &input.tasks[ti];
                let s = slots.get_mut(&t.id).expect("slot entry");
                if *s > 0 {
                    *s -= 1;
                    outcome.assign(w.id, t.id);
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::fixtures::small_market;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exposure_is_complete_for_qualified() {
        let m = small_market();
        let mut rng = StdRng::seed_from_u64(1);
        let o = SelfSelection.assign(&m, &mut rng);
        // every qualified (worker, task) pair is visible
        for w in &m.workers {
            for t in &m.tasks {
                assert_eq!(
                    o.visibility
                        .get(&w.id)
                        .map(|v| v.contains(&t.id))
                        .unwrap_or(false),
                    w.qualifies(t),
                    "visibility must exactly match qualification"
                );
            }
        }
    }

    #[test]
    fn outcome_is_feasible() {
        let m = small_market();
        let mut rng = StdRng::seed_from_u64(2);
        let o = SelfSelection.assign(&m, &mut rng);
        assert!(o.check_feasible(&m).is_empty());
    }

    #[test]
    fn fills_available_slots() {
        let m = small_market();
        let mut rng = StdRng::seed_from_u64(3);
        let o = SelfSelection.assign(&m, &mut rng);
        // market has 4 slots and 5 capacity with broad qualification:
        // self-selection should fill all 4
        assert_eq!(o.assignments.len(), 4);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let m = small_market();
        let o1 = SelfSelection.assign(&m, &mut StdRng::seed_from_u64(9));
        let o2 = SelfSelection.assign(&m, &mut StdRng::seed_from_u64(9));
        assert_eq!(o1, o2);
    }
}
