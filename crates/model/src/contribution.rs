//! Contributions and submissions.
//!
//! Axiom 3 (fairness in worker compensation) compares **contributions** to
//! the same task: "if their contributions are similar, they should receive
//! the same reward". The paper prescribes kind-specific similarity
//! measures: n-grams for textual contributions [Damashek 95], Discounted
//! Cumulative Gain for ranked lists [Järvelin–Kekäläinen 02]. This module
//! ties those measures (implemented in [`crate::text`] and
//! [`crate::ranking`]) to a contribution enum.

use crate::ids::{SubmissionId, TaskId, WorkerId};
use crate::ranking;
use crate::text;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One worker's answer to one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Contribution {
    /// A categorical label (image class, sentiment, …).
    Label(u8),
    /// Free text (summary, translation, …).
    Text(String),
    /// A ranked list of item indices, best first.
    Ranking(Vec<u16>),
    /// A numeric estimate.
    Numeric(f64),
}

impl Contribution {
    /// Similarity between two contributions in `[0, 1]`, using the
    /// kind-appropriate measure from the paper:
    ///
    /// * labels — exact equality;
    /// * text — cosine over character n-gram profiles (Damashek);
    /// * rankings — normalised-DCG agreement, symmetrised;
    /// * numerics — relative closeness.
    ///
    /// Contributions of different kinds have similarity 0.
    pub fn similarity(&self, other: &Contribution) -> f64 {
        match (self, other) {
            (Contribution::Label(a), Contribution::Label(b)) => f64::from(a == b),
            (Contribution::Text(a), Contribution::Text(b)) => text::ngram_cosine(a, b, 3),
            (Contribution::Ranking(a), Contribution::Ranking(b)) => {
                ranking::ranking_similarity(a, b)
            }
            (Contribution::Numeric(a), Contribution::Numeric(b)) => {
                if a == b {
                    1.0
                } else {
                    let denom = a.abs().max(b.abs());
                    if denom == 0.0 {
                        1.0
                    } else {
                        (1.0 - (a - b).abs() / denom).clamp(0.0, 1.0)
                    }
                }
            }
            _ => 0.0,
        }
    }

    /// Short kind name for reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Contribution::Label(_) => "label",
            Contribution::Text(_) => "text",
            Contribution::Ranking(_) => "ranking",
            Contribution::Numeric(_) => "numeric",
        }
    }
}

/// A submission: a contribution with its provenance and timing. The
/// interval `started_at..submitted_at` is the worker's invested time, which
/// wage fairness (effective hourly wage) and Axiom 5 (interruption) care
/// about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Submission {
    /// Unique submission id.
    pub id: SubmissionId,
    /// The task answered.
    pub task: TaskId,
    /// The answering worker.
    pub worker: WorkerId,
    /// The answer.
    pub contribution: Contribution,
    /// When the worker started working.
    pub started_at: SimTime,
    /// When the work was submitted.
    pub submitted_at: SimTime,
}

impl Submission {
    /// Time the worker invested in this submission.
    pub fn work_duration(&self) -> crate::time::SimDuration {
        self.submitted_at.since(self.started_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn label_similarity_is_equality() {
        assert_eq!(
            Contribution::Label(1).similarity(&Contribution::Label(1)),
            1.0
        );
        assert_eq!(
            Contribution::Label(1).similarity(&Contribution::Label(2)),
            0.0
        );
    }

    #[test]
    fn text_similarity_uses_ngrams() {
        let a = Contribution::Text("the quick brown fox jumps over the lazy dog".into());
        let b = Contribution::Text("the quick brown fox jumped over the lazy dog".into());
        let c = Contribution::Text("completely unrelated gibberish zzz qqq".into());
        let sab = a.similarity(&b);
        let sac = a.similarity(&c);
        assert!(sab > 0.8, "near-identical texts should be similar: {sab}");
        assert!(sac < 0.3, "unrelated texts should differ: {sac}");
        assert!((a.similarity(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_similarity_monotone() {
        let truth = Contribution::Ranking(vec![0, 1, 2, 3, 4]);
        let close = Contribution::Ranking(vec![0, 1, 2, 4, 3]);
        let far = Contribution::Ranking(vec![4, 3, 2, 1, 0]);
        let sc = truth.similarity(&close);
        let sf = truth.similarity(&far);
        assert!(sc > sf);
        assert!((truth.similarity(&truth) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn numeric_similarity() {
        let a = Contribution::Numeric(100.0);
        let b = Contribution::Numeric(90.0);
        assert!((a.similarity(&b) - 0.9).abs() < 1e-12);
        assert_eq!(
            Contribution::Numeric(0.0).similarity(&Contribution::Numeric(0.0)),
            1.0
        );
    }

    #[test]
    fn cross_kind_similarity_is_zero() {
        assert_eq!(
            Contribution::Label(0).similarity(&Contribution::Text("x".into())),
            0.0
        );
        assert_eq!(
            Contribution::Ranking(vec![0]).similarity(&Contribution::Numeric(1.0)),
            0.0
        );
    }

    #[test]
    fn submission_duration() {
        let s = Submission {
            id: SubmissionId::new(0),
            task: TaskId::new(0),
            worker: WorkerId::new(0),
            contribution: Contribution::Label(1),
            started_at: SimTime::from_secs(100),
            submitted_at: SimTime::from_secs(400),
        };
        assert_eq!(s.work_duration(), SimDuration::from_secs(300));
    }

    #[test]
    fn kind_names() {
        assert_eq!(Contribution::Label(0).kind_name(), "label");
        assert_eq!(Contribution::Text(String::new()).kind_name(), "text");
        assert_eq!(Contribution::Ranking(vec![]).kind_name(), "ranking");
        assert_eq!(Contribution::Numeric(0.0).kind_name(), "numeric");
    }
}
