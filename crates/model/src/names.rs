//! Registry-name canonicalisation, shared by every string-keyed
//! registry in the workspace.
//!
//! Four registries resolve user-supplied names — assignment policies
//! ([`faircrowd-assign`]'s `registry`), scenario presets (the simulator
//! catalog), agent strategies, and label aggregators — and all of them
//! must accept the same spellings: `Round-Robin`, `round_robin` and
//! `  ROUND_ROBIN ` are one name. [`canonical`] is that single rule;
//! registries match on its output so a spelling accepted by one lookup
//! is accepted by all of them.
//!
//! [`faircrowd-assign`]: https://docs.rs/faircrowd-assign

/// Canonical form of a registry name: trimmed, ASCII-lowercased, with
/// hyphens folded to underscores.
///
/// ```
/// use faircrowd_model::names::canonical;
///
/// assert_eq!(canonical("Round-Robin"), "round_robin");
/// assert_eq!(canonical("  kos "), "kos");
/// assert_eq!(canonical("PARITY_CONSTRAINED"), "parity_constrained");
/// ```
pub fn canonical(name: &str) -> String {
    name.trim().to_ascii_lowercase().replace('-', "_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_folds_case_hyphens_and_whitespace() {
        // Pins the exact behaviour every registry match arm assumes.
        assert_eq!(canonical("round_robin"), "round_robin");
        assert_eq!(canonical("Round-Robin"), "round_robin");
        assert_eq!(canonical(" ROUND-ROBIN\t"), "round_robin");
        assert_eq!(canonical("budget-diverse"), "budget_diverse");
        assert_eq!(canonical(""), "");
        // Interior whitespace is not folded — only the ends are trimmed.
        assert_eq!(canonical("round robin"), "round robin");
        // Non-ASCII case is left alone (registry names are ASCII).
        assert_eq!(canonical("É"), "É");
    }
}
