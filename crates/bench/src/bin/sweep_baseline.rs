//! Writes the sharded-sweep perf baseline (`BENCH_sweep.json`).
//!
//! Measures the four claims the shard engine makes, each asserted
//! in-binary before a number is printed:
//!
//! * **merge is byte-identical** — every grid is swept single-process
//!   (in-process `run_grid`) and as 2 / 4 / 8 *separate OS processes*
//!   (the real `faircrowd sweep --shard i/N --out part` binary, spawned
//!   concurrently); the merged parts must render the same table, JSON
//!   and CSV bytes as the single-process sweep;
//! * **resume beats cold** — a part truncated to ~80 % of its records
//!   (what a SIGKILL leaves) must re-run only the missing tail: resume
//!   is asserted ≥ 2× faster than the cold shard run;
//! * **the shard-aware cache holds** — on the stacked-enforce grid the
//!   cluster partition keeps every enforce-variant of a baseline
//!   simulation on one shard, so the per-shard `OnceLock` cache still
//!   pays each simulation once: summed 2-shard runs with the cache are
//!   asserted ≥ 1.5× faster than without it;
//! * **scale** — wall-clock for the shard fan-out at 2 / 4 / 8
//!   processes on an 8-cell stacked-enforce grid and a 1000-cell grid
//!   (ratios are hardware-honest; on a 1-core host the fan-out buys
//!   durability, not wall-clock).
//!
//! ```text
//! cargo build --release && \
//! cargo run --release --bin sweep_baseline > BENCH_sweep.json
//! ```
//!
//! The shard runs exec the sibling `faircrowd` binary, so the release
//! CLI must be built first.

use faircrowd::sweep::shard::{merge_paths, run_shard_opts, ShardSpec};
use faircrowd::sweep::{run_grid, SweepGrid, SweepResult};
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

/// 8 cells: 2 seeds × 4 enforcement stacks — the grid whose enforce
/// axis exercises the baseline-simulation cache hardest.
const STACKED: &str =
    "scenario=baseline;seed=0..2;scale=4;enforce=none,transparency,grace,transparency+grace";

/// 1000 cells: 250 seeds × 2 policies × 2 stacks of a cheap market.
const WIDE: &str =
    "scenario=baseline;policy=round_robin,kos;seed=0..250;rounds=8;enforce=none,grace";

/// Median wall-clock milliseconds of `runs` executions of `f`.
fn median_ms<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// The `faircrowd` CLI next to this bench binary.
fn cli_binary() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let cli = me
        .parent()
        .expect("bench binary has a parent dir")
        .join(format!("faircrowd{}", std::env::consts::EXE_SUFFIX));
    assert!(
        cli.is_file(),
        "{} not found — build the CLI first: cargo build --release",
        cli.display()
    );
    cli
}

/// A scratch directory under the system temp dir, wiped on entry.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fc_sweep_baseline_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Spawn `shards` concurrent `faircrowd sweep --shard i/N` processes,
/// wait for all, and return (wall ms, part paths).
fn shard_processes(cli: &Path, grid: &str, shards: usize, dir: &Path) -> (f64, Vec<PathBuf>) {
    let paths: Vec<PathBuf> = (1..=shards)
        .map(|i| dir.join(format!("part-{i}.json")))
        .collect();
    let t0 = Instant::now();
    let children: Vec<_> = paths
        .iter()
        .enumerate()
        .map(|(i, path)| {
            Command::new(cli)
                .args([
                    "sweep",
                    "--grid",
                    grid,
                    "--shard",
                    &format!("{}/{shards}", i + 1),
                    "--out",
                ])
                .arg(path)
                .stdout(std::process::Stdio::null())
                .spawn()
                .expect("spawn shard process")
        })
        .collect();
    for (i, mut child) in children.into_iter().enumerate() {
        let status = child.wait().expect("wait for shard process");
        assert!(
            status.success(),
            "shard {}/{shards} failed: {status}",
            i + 1
        );
    }
    (t0.elapsed().as_secs_f64() * 1e3, paths)
}

/// Assert the merged parts render exactly the single-process bytes.
fn assert_byte_identical(merged: &SweepResult, single: &SweepResult, what: &str) {
    assert_eq!(
        merged.render_table(),
        single.render_table(),
        "{what}: table"
    );
    assert_eq!(merged.to_json(), single.to_json(), "{what}: json");
    assert_eq!(merged.to_csv(), single.to_csv(), "{what}: csv");
}

fn main() {
    let cli = cli_binary();
    let jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut grid_rows = String::new();

    for (gi, (name, spec, single_runs)) in [("stacked_enforce", STACKED, 5), ("wide_1000", WIDE, 3)]
        .into_iter()
        .enumerate()
    {
        let grid = SweepGrid::parse(spec).expect("bench grid parses");
        let cells = grid.expand().expect("bench grid expands").len();
        let single = run_grid(&grid, jobs).expect("single-process sweep");
        let single_ms = median_ms(single_runs, || {
            black_box(run_grid(black_box(&grid), jobs).expect("sweep"));
        });

        let mut shard_rows = String::new();
        for (si, shards) in [2usize, 4, 8].into_iter().enumerate() {
            let dir = scratch(&format!("{name}_{shards}"));
            let (wall_ms, paths) = shard_processes(&cli, spec, shards, &dir);
            let merged = merge_paths(&paths).expect("merge parts");
            assert_byte_identical(&merged, &single, &format!("{name} × {shards} shards"));
            let merge_ms = median_ms(3, || {
                black_box(merge_paths(black_box(&paths)).expect("merge"));
            });
            if si > 0 {
                shard_rows.push_str(",\n");
            }
            let _ = write!(
                shard_rows,
                "        {{\"shards\": {shards}, \"wall_ms\": {wall_ms:.1}, \
                 \"merge_ms\": {merge_ms:.2}, \"merged_byte_identical\": true}}"
            );
            std::fs::remove_dir_all(&dir).ok();
        }

        if gi > 0 {
            grid_rows.push_str(",\n");
        }
        let _ = write!(
            grid_rows,
            "    {{\"name\": \"{name}\", \"grid\": \"{spec}\", \"cells\": {cells}, \
             \"groups\": {}, \"single_process_ms\": {single_ms:.1},\n      \"shard_runs\": [\n\
             {shard_rows}\n      ]}}",
            single.cases.len()
        );
    }

    // Resume-after-kill: complete shard 1/2 of the wide grid once, keep
    // the first ~80 % of its records (a SIGKILL survivor), and compare
    // re-running from that file against running from nothing.
    let wide = SweepGrid::parse(WIDE).expect("grid parses");
    let spec = ShardSpec { index: 1, count: 2 };
    let dir = scratch("resume");
    let part = dir.join("part.json");
    let full = run_shard_opts(&wide, spec, &part, jobs, true, None).expect("full shard run");
    let text = std::fs::read_to_string(&part).expect("read part");
    let line_ends: Vec<usize> = text
        .char_indices()
        .filter(|(_, c)| *c == '\n')
        .map(|(i, _)| i + 1)
        .collect();
    let durable = (full.shard_cells * 4) / 5;
    let truncated = text[..line_ends[durable]].to_owned();

    let cold_ms = median_ms(3, || {
        std::fs::remove_file(&part).ok();
        black_box(run_shard_opts(&wide, spec, &part, jobs, true, None).expect("cold run"));
    });
    let resume_ms = median_ms(3, || {
        std::fs::write(&part, &truncated).expect("restore truncated part");
        let run = run_shard_opts(&wide, spec, &part, jobs, true, None).expect("resume run");
        assert_eq!(run.resumed, durable, "resume must skip every durable cell");
        black_box(run);
    });
    std::fs::remove_dir_all(&dir).ok();
    let resume_speedup = cold_ms / resume_ms;
    assert!(
        resume_speedup >= 2.0,
        "acceptance: resuming a part with 80% of its cells durable must be ≥ 2× \
         faster than a cold run (measured {resume_speedup:.1}×)"
    );

    // Shard-aware cache: sweep the stacked-enforce grid as 2 in-process
    // shard runs with and without the baseline-simulation cache. The
    // cluster partition keeps all four enforce-variants of a (scenario,
    // policy, seed, scale, rounds) baseline on one shard, so each
    // shard's private cache still pays that simulation exactly once.
    let stacked = SweepGrid::parse(STACKED).expect("grid parses");
    let dir = scratch("cache");
    let timed = |reuse: bool| {
        median_ms(5, || {
            for index in 1..=2usize {
                let part = dir.join(format!("part-{index}.json"));
                std::fs::remove_file(&part).ok();
                let spec = ShardSpec { index, count: 2 };
                black_box(
                    run_shard_opts(&stacked, spec, &part, jobs, reuse, None).expect("shard run"),
                );
            }
        })
    };
    let cached_ms = timed(true);
    let uncached_ms = timed(false);
    std::fs::remove_dir_all(&dir).ok();
    let cache_speedup = uncached_ms / cached_ms;
    assert!(
        cache_speedup >= 1.5,
        "acceptance: the shard-aware baseline-simulation cache must keep a ≥ 1.5× \
         win on the stacked-enforce grid (measured {cache_speedup:.2}×)"
    );

    println!("{{");
    println!("  \"bench\": \"sweep_shard\",");
    println!("  \"unit\": \"ms (median)\",");
    println!("  \"host_jobs\": {jobs},");
    println!(
        "  \"note\": \"shard_runs spawn that many concurrent `faircrowd sweep --shard` OS \
         processes and include process startup; merged_byte_identical compares the merged \
         parts' table, JSON and CSV against the in-process single-run bytes; resume keeps \
         80% of a completed part and re-runs only the tail; cache times 2 in-process shard \
         runs with/without the per-shard baseline-simulation cache\","
    );
    println!("  \"grids\": [");
    println!("{grid_rows}");
    println!("  ],");
    println!(
        "  \"resume\": {{\"grid\": \"wide_1000\", \"shard\": \"1/2\", \"shard_cells\": {}, \
         \"durable_cells\": {durable}, \"cold_ms\": {cold_ms:.1}, \
         \"resume_ms\": {resume_ms:.1}, \"speedup\": {resume_speedup:.1}, \"floor\": 2.0}},",
        full.shard_cells
    );
    println!(
        "  \"cache\": {{\"grid\": \"stacked_enforce\", \"shards\": 2, \
         \"uncached_ms\": {uncached_ms:.1}, \"cached_ms\": {cached_ms:.1}, \
         \"speedup\": {cache_speedup:.2}, \"floor\": 1.5}}"
    );
    println!("}}");
}
