//! Axiom 3 — fairness in worker compensation.
//!
//! *"Given two distinct workers wi and wj who contributed to the same task
//! t, if their contributions are similar, they should receive the same
//! reward dt."*
//!
//! The quantifier domain is the set of same-task submission pairs by
//! distinct workers whose contributions are similar under the
//! kind-appropriate measure (equality for labels, n-gram cosine for text,
//! DCG-based similarity for rankings — §3.2.1). A pair satisfies the axiom
//! when the two submissions were paid the same total amount; unpaid
//! (rejected) submissions count as zero, so wrongful rejection of work
//! identical to paid work is caught here.

use crate::axiom::{Axiom, AxiomId, AxiomReport, ViolationCollector};
use crate::index::{contribution_candidates, TraceIndex};
use faircrowd_model::money::Credits;
use faircrowd_model::similarity::SimilarityConfig;

/// Checker for Axiom 3.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompensationFairness;

impl Axiom for CompensationFairness {
    fn id(&self) -> AxiomId {
        AxiomId::A3Compensation
    }

    fn check(
        &self,
        ix: &TraceIndex<'_>,
        cfg: &SimilarityConfig,
        max_witnesses: usize,
    ) -> AxiomReport {
        let payments = ix.payments();

        let mut pairs = 0usize;
        let mut satisfied = 0usize;
        let mut collector = ViolationCollector::new(self.id(), max_witnesses);

        for (task, subs) in ix.submissions_by_task() {
            // Candidate pairs come kind/label-blocked: any pruned pair
            // has similarity exactly 0 and could never clear a positive
            // threshold.
            for (i, j) in
                contribution_candidates(subs, |s| &s.contribution, cfg.contribution_threshold)
            {
                let (si, sj) = (subs[i], subs[j]);
                if si.worker == sj.worker {
                    continue; // the axiom compares *distinct* workers
                }
                let sim = si.contribution.similarity(&sj.contribution);
                if sim < cfg.contribution_threshold {
                    continue;
                }
                pairs += 1;
                let pi = payments.get(si.id).copied().unwrap_or(Credits::ZERO);
                let pj = payments.get(sj.id).copied().unwrap_or(Credits::ZERO);
                if pi == pj {
                    satisfied += 1;
                } else {
                    let max = pi.max(pj).millicents().max(1) as f64;
                    let severity = pi.abs_diff(pj).millicents() as f64 / max;
                    collector.push(
                        severity,
                        format!(
                            "task {task}: workers {} and {} made similar contributions \
                             (sim {:.2}) but were paid {} vs {}",
                            si.worker, sj.worker, sim, pi, pj
                        ),
                    );
                }
            }
        }

        if pairs == 0 {
            return AxiomReport::vacuous(
                self.id(),
                "no similar same-task contribution pairs in the trace",
            );
        }
        AxiomReport {
            axiom: self.id(),
            score: satisfied as f64 / pairs as f64,
            checked: pairs,
            violation_count: collector.total,
            truncated: collector.truncated(),
            violations: collector.items,
            notes: vec![format!(
                "contribution similarity threshold {:.2} (kind-specific measures)",
                cfg.contribution_threshold
            )],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::fixtures::*;
    use faircrowd_model::contribution::Contribution;

    fn cfg() -> SimilarityConfig {
        SimilarityConfig::default()
    }

    #[test]
    fn equal_pay_for_equal_labels_holds() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        let s0 = submit(&mut trace, 100, 0, 0, Contribution::Label(1));
        let s1 = submit(&mut trace, 110, 0, 1, Contribution::Label(1));
        pay(&mut trace, 200, s0, 0, 10);
        pay(&mut trace, 200, s1, 1, 10);
        let r = CompensationFairness.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.checked, 1);
        assert!((r.score - 1.0).abs() < 1e-12);
        assert!(r.holds());
    }

    #[test]
    fn unequal_pay_for_same_label_violates() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        let s0 = submit(&mut trace, 100, 0, 0, Contribution::Label(1));
        let _s1 = submit(&mut trace, 110, 0, 1, Contribution::Label(1));
        pay(&mut trace, 200, s0, 0, 10);
        // w1 never paid (wrongful rejection)
        let r = CompensationFairness.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.violation_count, 1);
        assert_eq!(r.score, 0.0);
        assert!((r.violations[0].severity - 1.0).abs() < 1e-9);
        assert!(r.violations[0].description.contains("$0.10"));
    }

    #[test]
    fn different_labels_not_compared() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        let s0 = submit(&mut trace, 100, 0, 0, Contribution::Label(1));
        let _s1 = submit(&mut trace, 110, 0, 1, Contribution::Label(0));
        pay(&mut trace, 200, s0, 0, 10);
        let r = CompensationFairness.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.checked, 0, "different answers need not be paid alike");
    }

    #[test]
    fn similar_text_detected_via_ngrams() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 20)]);
        let text_a = "the committee approved the annual budget proposal for next year";
        let text_b = "the committee approved the annual budget proposal for next years";
        let s0 = submit(&mut trace, 100, 0, 0, Contribution::Text(text_a.into()));
        let s1 = submit(&mut trace, 110, 0, 1, Contribution::Text(text_b.into()));
        pay(&mut trace, 200, s0, 0, 20);
        pay(&mut trace, 200, s1, 1, 5);
        let r = CompensationFairness.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.violation_count, 1);
        assert!(r.violations[0].severity > 0.5);
    }

    #[test]
    fn same_worker_pairs_skipped() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        let s0 = submit(&mut trace, 100, 0, 0, Contribution::Label(1));
        let _s1 = submit(&mut trace, 110, 0, 0, Contribution::Label(1));
        pay(&mut trace, 200, s0, 0, 10);
        let r = CompensationFairness.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.checked, 0);
    }

    #[test]
    fn cross_task_pairs_never_compared() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10), task(1, 1, &[0, 0], 50)]);
        let s0 = submit(&mut trace, 100, 0, 0, Contribution::Label(1));
        let s1 = submit(&mut trace, 110, 1, 1, Contribution::Label(1));
        pay(&mut trace, 200, s0, 0, 10);
        pay(&mut trace, 200, s1, 1, 50);
        let r = CompensationFairness.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.checked, 0, "different tasks may pay differently");
    }

    #[test]
    fn partial_pay_difference_has_partial_severity() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        let s0 = submit(&mut trace, 100, 0, 0, Contribution::Label(1));
        let s1 = submit(&mut trace, 110, 0, 1, Contribution::Label(1));
        pay(&mut trace, 200, s0, 0, 10);
        pay(&mut trace, 200, s1, 1, 8);
        let r = CompensationFairness.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.violation_count, 1);
        assert!((r.violations[0].severity - 0.2).abs() < 1e-9);
    }
}
