//! The audit engine — the paper's "fairness check benchmark" (§3.3.1).
//!
//! An [`AuditEngine`] runs any subset of the seven axiom checkers over a
//! trace under a configurable similarity regime and produces a
//! [`FairnessReport`] with per-axiom scores, violation witnesses and the
//! aggregate fairness/transparency indices used throughout the
//! experiments.
//!
//! The engine builds one [`TraceIndex`] per trace (or audits through a
//! caller-provided one via [`AuditEngine::run_indexed`]) and, unless
//! [`AuditConfig::parallel`] is off, fans the requested axioms out over
//! a scoped thread pool. Each axiom writes into its request-order slot,
//! so the report is deterministic and identical to a serial run — and,
//! via the lossless blocking in [`crate::index`], identical to the
//! retained naive reference path ([`AuditEngine::run_naive`]).

use crate::axiom::{AxiomId, AxiomReport};
use crate::axioms::{checker_for, naive};
use crate::index::TraceIndex;
use faircrowd_model::similarity::SimilarityConfig;
use faircrowd_model::stats;
use faircrowd_model::trace::Trace;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Audit configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditConfig {
    /// The similarity regime the axioms quantify under.
    pub similarity: SimilarityConfig,
    /// Maximum violation witnesses retained per axiom.
    pub max_witnesses: usize,
    /// Fan the axioms out over a scoped thread pool (default). Reports
    /// are identical either way; serial runs exist for benchmarking and
    /// for embedding in already-parallel callers like the sweep engine.
    pub parallel: bool,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            similarity: SimilarityConfig::default(),
            max_witnesses: 25,
            parallel: true,
        }
    }
}

/// The result of a full audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessReport {
    /// Per-axiom reports, in the order requested.
    pub axioms: Vec<AxiomReport>,
}

impl FairnessReport {
    /// Report for a specific axiom, if it was run.
    pub fn axiom(&self, id: AxiomId) -> Option<&AxiomReport> {
        self.axioms.iter().find(|r| r.axiom == id)
    }

    /// Score of a specific axiom (1.0 when the axiom was not run — absent
    /// evidence is not a violation).
    pub fn score_of(&self, id: AxiomId) -> f64 {
        self.axiom(id).map_or(1.0, |r| r.score)
    }

    /// Mean score over the fairness axioms (A1–A5) that were run.
    pub fn fairness_score(&self) -> f64 {
        self.mean_over(&AxiomId::FAIRNESS)
    }

    /// Mean score over the transparency axioms (A6–A7) that were run.
    pub fn transparency_score(&self) -> f64 {
        self.mean_over(&AxiomId::TRANSPARENCY)
    }

    /// Mean score over everything that was run.
    pub fn overall_score(&self) -> f64 {
        let scores: Vec<f64> = self.axioms.iter().map(|r| r.score).collect();
        if scores.is_empty() {
            1.0
        } else {
            stats::mean(&scores)
        }
    }

    /// Total violations across axioms.
    pub fn total_violations(&self) -> usize {
        self.axioms.iter().map(|r| r.violation_count).sum()
    }

    /// True when every axiom run holds with no violations.
    pub fn all_hold(&self) -> bool {
        self.axioms.iter().all(|r| r.holds())
    }

    fn mean_over(&self, ids: &[AxiomId]) -> f64 {
        let scores: Vec<f64> = ids
            .iter()
            .filter_map(|id| self.axiom(*id))
            .map(|r| r.score)
            .collect();
        if scores.is_empty() {
            1.0
        } else {
            stats::mean(&scores)
        }
    }
}

/// Runs axiom checkers over traces.
#[derive(Debug, Clone, Default)]
pub struct AuditEngine {
    config: AuditConfig,
}

impl AuditEngine {
    /// Engine with the given configuration.
    pub fn new(config: AuditConfig) -> Self {
        AuditEngine { config }
    }

    /// Engine with the default threshold-based similarity regime.
    pub fn with_defaults() -> Self {
        Self::default()
    }

    /// The active configuration.
    pub fn config(&self) -> &AuditConfig {
        &self.config
    }

    /// Run all seven axioms.
    pub fn run(&self, trace: &Trace) -> FairnessReport {
        self.run_axioms(trace, &AxiomId::ALL)
    }

    /// Run a chosen subset of axioms, in the given order. Builds a fresh
    /// [`TraceIndex`]; callers holding one should use
    /// [`AuditEngine::run_indexed`] instead.
    pub fn run_axioms(&self, trace: &Trace, ids: &[AxiomId]) -> FairnessReport {
        self.run_indexed(&TraceIndex::new(trace), ids)
    }

    /// Run axioms against a pre-built index — the hot path the pipeline
    /// and sweep engine use, sharing one index per trace across audit,
    /// metrics and (via slice reuse) the re-audit.
    pub fn run_indexed(&self, ix: &TraceIndex<'_>, ids: &[AxiomId]) -> FairnessReport {
        let check = |id: AxiomId| {
            checker_for(id).check(ix, &self.config.similarity, self.config.max_witnesses)
        };
        let threads = if self.config.parallel {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(ids.len())
        } else {
            1
        };
        if threads <= 1 {
            return FairnessReport {
                axioms: ids.iter().map(|&id| check(id)).collect(),
            };
        }
        // Index-ordered slots + an atomic work counter (the PR 2 sweep
        // pattern): report order is request order whatever the thread
        // schedule was.
        let slots: Vec<Mutex<Option<AxiomReport>>> = ids.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&id) = ids.get(i) else { break };
                    *slots[i].lock().expect("axiom slot poisoned") = Some(check(id));
                });
            }
        });
        FairnessReport {
            axioms: slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("axiom slot poisoned")
                        .expect("every axiom slot was claimed by a worker")
                })
                .collect(),
        }
    }

    /// Run axioms through the retained naive reference implementation
    /// ([`crate::axioms::naive`]): no index, no blocking, no threads.
    /// Exists as the correctness oracle for the property tests and the
    /// fixed baseline for the perf benches.
    pub fn run_naive(&self, trace: &Trace, ids: &[AxiomId]) -> FairnessReport {
        FairnessReport {
            axioms: ids
                .iter()
                .map(|&id| {
                    naive::check(
                        id,
                        trace,
                        &self.config.similarity,
                        self.config.max_witnesses,
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircrowd_model::disclosure::DisclosureSet;

    #[test]
    fn full_audit_on_empty_trace_is_all_vacuous() {
        let trace = Trace {
            disclosure: DisclosureSet::fully_transparent(),
            ..Trace::default()
        };
        let report = AuditEngine::with_defaults().run(&trace);
        assert_eq!(report.axioms.len(), 7);
        assert!(report.all_hold());
        assert!((report.overall_score() - 1.0).abs() < 1e-12);
        assert!((report.fairness_score() - 1.0).abs() < 1e-12);
        assert!((report.transparency_score() - 1.0).abs() < 1e-12);
        assert_eq!(report.total_violations(), 0);
    }

    #[test]
    fn opaque_empty_trace_fails_transparency_only() {
        let trace = Trace::default(); // opaque disclosure by default
        let report = AuditEngine::with_defaults().run(&trace);
        assert!((report.fairness_score() - 1.0).abs() < 1e-12);
        assert!(report.transparency_score() < 0.6);
        assert_eq!(report.score_of(AxiomId::A7PlatformTransparency), 0.0);
    }

    #[test]
    fn subset_runs_only_requested_axioms() {
        let trace = Trace::default();
        let report = AuditEngine::with_defaults().run_axioms(
            &trace,
            &[AxiomId::A3Compensation, AxiomId::A5NoInterruption],
        );
        assert_eq!(report.axioms.len(), 2);
        assert!(report.axiom(AxiomId::A1WorkerAssignment).is_none());
        // unran axioms default to 1.0
        assert_eq!(report.score_of(AxiomId::A1WorkerAssignment), 1.0);
    }

    #[test]
    fn serial_parallel_and_naive_reports_are_identical() {
        use faircrowd_model::contribution::Contribution;
        // A trace with violations on several axioms, checked three ways.
        let mut trace = crate::axioms::fixtures::skeleton(vec![
            crate::axioms::fixtures::task(0, 0, &[0, 0], 10),
            crate::axioms::fixtures::task(1, 1, &[0, 0], 10),
        ]);
        crate::axioms::fixtures::show(&mut trace, 1, 0, 0);
        let s0 = crate::axioms::fixtures::submit(&mut trace, 100, 0, 0, Contribution::Label(1));
        let _s1 = crate::axioms::fixtures::submit(&mut trace, 110, 0, 1, Contribution::Label(1));
        crate::axioms::fixtures::pay(&mut trace, 200, s0, 0, 10);

        let parallel = AuditEngine::with_defaults().run(&trace);
        let serial = AuditEngine::new(AuditConfig {
            parallel: false,
            ..AuditConfig::default()
        })
        .run(&trace);
        let naive = AuditEngine::with_defaults().run_naive(&trace, &AxiomId::ALL);
        assert_eq!(parallel, serial);
        assert_eq!(parallel, naive);
        assert!(parallel.total_violations() > 0, "fixture must violate");
    }

    #[test]
    fn report_aggregation_arithmetics() {
        use crate::axiom::AxiomReport;
        let report = FairnessReport {
            axioms: vec![
                AxiomReport {
                    score: 0.5,
                    ..AxiomReport::vacuous(AxiomId::A1WorkerAssignment, "x")
                },
                AxiomReport {
                    score: 1.0,
                    ..AxiomReport::vacuous(AxiomId::A6RequesterTransparency, "x")
                },
            ],
        };
        assert!((report.fairness_score() - 0.5).abs() < 1e-12);
        assert!((report.transparency_score() - 1.0).abs() < 1e-12);
        assert!((report.overall_score() - 0.75).abs() < 1e-12);
    }
}
