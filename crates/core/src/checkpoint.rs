//! Checkpoint files: durable snapshots of a [`LiveAuditor`]'s
//! incremental state, so a restarted audit process resumes a stream
//! from its last checkpoint seq **without replaying the log**.
//!
//! The paper's transparency machinery is platform-resident: fairness
//! state must survive process restarts the way any other operational
//! state does. A [`Checkpoint`] captures everything
//! [`LiveAuditor::checkpoint`] accumulated — the event-less world
//! (entity tables + header scalars), the incremental [`EventIndex`]
//! mirror, lazy qualification rows, A1/A2 partner caches and overlap
//! counters, emitted-set dedup state, and the findings so far — in a
//! versioned schema (`faircrowd-checkpoint` v1) behind the same three
//! never-panicking load gates as trace files ([`crate::persist`]):
//!
//! 1. **Parse** — malformed or truncated JSON names the byte where it
//!    broke;
//! 2. **Schema** — a foreign schema name or an unsupported version is
//!    rejected before any field is decoded;
//! 3. **Integrity** — [`Checkpoint::ensure_valid`] cross-checks the
//!    monitor state against the entity tables (row and cache lengths,
//!    partner/pair index bounds, finding seqs against the header seq),
//!    and [`decode`] rejects a header `seq` that disagrees with the
//!    body's `events_seen` — a snapshot stitched from two different
//!    moments must fail loudly, not resume into silent drift.
//!
//! Restoring through [`LiveAuditor::resume`] and finishing the stream
//! is bit-identical — findings, final report, wages — to never having
//! stopped (pinned by the `checkpoint_resume` oracle tests across the
//! scenario catalog and random checkpoint seqs).

use crate::axiom::AxiomId;
use crate::fields::{
    arr_field, bool_field, i64_field, require, str_field, u32_field, u32_pair, u32_value,
    u64_field, u64_pair,
};
use crate::live::{FindingOrigin, LiveAuditor, LiveFinding};
use crate::Violation;
use faircrowd_model::error::FaircrowdError;
use faircrowd_model::event::QuitReason;
use faircrowd_model::ids::{SubmissionId, TaskId, WorkerId};
use faircrowd_model::json::Json;
use faircrowd_model::money::Credits;
use faircrowd_model::time::{SimDuration, SimTime};
use faircrowd_model::trace::{EventIndex, Interruption, Trace};
use faircrowd_model::trace_io::{self, JsonlHeader};
use std::collections::BTreeSet;
use std::path::Path;

/// Schema name stamped into every checkpoint file.
pub const SCHEMA_NAME: &str = "faircrowd-checkpoint";
/// Schema version this build writes and reads.
pub const SCHEMA_VERSION: u64 = 1;

/// A durable snapshot of one [`LiveAuditor`]'s incremental state.
///
/// Produced by [`LiveAuditor::checkpoint`], persisted via
/// [`save`]/[`encode`], loaded back through the gates of
/// [`load`]/[`decode`], and turned back into a running auditor by
/// [`LiveAuditor::resume`]. The struct is opaque outside the crate;
/// the accessors below expose what resuming callers need.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The world as declared up to the checkpoint — entity tables and
    /// header scalars, with an **empty** event log (the mirror stands
    /// in for the log's derived state; the log itself is never
    /// replayed).
    pub(crate) world: Trace,
    /// The incremental [`EventIndex`] mirror at the checkpoint seq.
    pub(crate) mirror: EventIndex,
    /// Events consumed (the checkpoint seq: the next event's seq).
    pub(crate) events_seen: u64,
    /// Physical source lines consumed from the backing JSONL file.
    pub(crate) source_lines: u64,
    pub(crate) last_time: SimTime,
    pub(crate) policy_scanned: bool,
    pub(crate) finalized: bool,
    pub(crate) max_findings: usize,
    pub(crate) suppressed: u64,
    /// Per worker: (tasks folded in, qualified task ids).
    pub(crate) qual_tasks: Vec<(usize, Vec<TaskId>)>,
    /// Per task: (workers folded in, qualified worker ids).
    pub(crate) qual_workers: Vec<(usize, Vec<WorkerId>)>,
    /// Per worker: (workers folded in, similar partner positions).
    pub(crate) similar_partners: Vec<(usize, Vec<usize>)>,
    /// Per task: (tasks folded in, comparable partner positions).
    pub(crate) comparable_partners: Vec<(usize, Vec<usize>)>,
    /// `[i, j, left, right, inter]` per monitored worker pair, sorted.
    pub(crate) a1_pairs: Vec<[u64; 5]>,
    /// `[i, j, left, right, inter]` per monitored task pair, sorted.
    pub(crate) a2_pairs: Vec<[u64; 5]>,
    pub(crate) a1_emitted: Vec<(u64, u64)>,
    pub(crate) a2_emitted: Vec<(u64, u64)>,
    pub(crate) a3_emitted: Vec<(SubmissionId, SubmissionId)>,
    pub(crate) a4_emitted: Vec<WorkerId>,
    pub(crate) a6_emitted: Vec<TaskId>,
    pub(crate) findings: Vec<LiveFinding>,
}

impl Checkpoint {
    /// The checkpoint seq: events consumed so far, which is the seq the
    /// next ingested event must carry.
    pub fn seq(&self) -> u64 {
        self.events_seen
    }

    /// Physical lines of the backing JSONL file already consumed
    /// (header, blank and entity lines included) — how far a resumed
    /// tailer skips before feeding fresh lines. Zero for auditors not
    /// fed from a line stream.
    pub fn source_lines(&self) -> u64 {
        self.source_lines
    }

    /// Whether the snapshotted auditor had already been finalized.
    pub fn finalized(&self) -> bool {
        self.finalized
    }

    /// The findings retained up to the checkpoint, in emission order.
    pub fn findings(&self) -> &[LiveFinding] {
        &self.findings
    }

    /// The stream header a resumed [`trace_io::JsonlReader`] should
    /// carry, reconstructed from the checkpointed world.
    pub fn jsonl_header(&self) -> JsonlHeader {
        JsonlHeader {
            horizon: self.world.horizon,
            disclosure: self.world.disclosure.clone(),
            ground_truth: self.world.ground_truth.clone(),
        }
    }

    /// Gate 3: cross-check the monitor state against the entity tables.
    /// Every inconsistency a tampered or truncated-and-patched file
    /// could smuggle past the parser is collected and reported — never
    /// a panic, and never a silent resume into drifted state.
    pub fn ensure_valid(&self) -> Result<(), FaircrowdError> {
        let mut problems = Vec::new();
        let n_workers = self.world.workers.len();
        let n_tasks = self.world.tasks.len();
        if !self.world.events.is_empty() {
            problems.push(format!(
                "world carries {} event(s); a checkpoint's world must be event-less \
                 (the mirror stands in for the log)",
                self.world.events.len()
            ));
        }
        let lens = [
            ("qual_tasks", self.qual_tasks.len(), n_workers, "worker"),
            ("qual_workers", self.qual_workers.len(), n_tasks, "task"),
            (
                "similar_partners",
                self.similar_partners.len(),
                n_workers,
                "worker",
            ),
            (
                "comparable_partners",
                self.comparable_partners.len(),
                n_tasks,
                "task",
            ),
        ];
        for (name, got, want, table) in lens {
            if got != want {
                problems.push(format!(
                    "`{name}` has {got} row(s) but the world declares {want} {table}(s)"
                ));
            }
        }
        let known_tasks: BTreeSet<TaskId> = self.world.tasks.iter().map(|t| t.id).collect();
        let known_workers: BTreeSet<WorkerId> = self.world.workers.iter().map(|w| w.id).collect();
        for (wi, (seen, ids)) in self.qual_tasks.iter().enumerate() {
            if *seen > n_tasks {
                problems.push(format!(
                    "`qual_tasks` row {wi} claims {seen} tasks folded in, world has {n_tasks}"
                ));
            }
            if let Some(id) = ids.iter().find(|id| !known_tasks.contains(id)) {
                problems.push(format!("`qual_tasks` row {wi} names unknown task {id}"));
            }
        }
        for (ti, (seen, ids)) in self.qual_workers.iter().enumerate() {
            if *seen > n_workers {
                problems.push(format!(
                    "`qual_workers` row {ti} claims {seen} workers folded in, world has {n_workers}"
                ));
            }
            if let Some(id) = ids.iter().find(|id| !known_workers.contains(id)) {
                problems.push(format!("`qual_workers` row {ti} names unknown worker {id}"));
            }
        }
        let caches = [
            ("similar_partners", &self.similar_partners, n_workers),
            ("comparable_partners", &self.comparable_partners, n_tasks),
        ];
        for (name, cache, bound) in caches {
            for (i, (seen, partners)) in cache.iter().enumerate() {
                if *seen > bound {
                    problems.push(format!(
                        "`{name}` entry {i} claims {seen} entities folded in, world has {bound}"
                    ));
                }
                if let Some(p) = partners.iter().find(|&&p| p >= bound) {
                    problems.push(format!(
                        "`{name}` entry {i} names partner position {p}, world has {bound}"
                    ));
                }
            }
        }
        let pair_sets = [
            ("a1_pairs", &self.a1_pairs, n_workers),
            ("a2_pairs", &self.a2_pairs, n_tasks),
        ];
        for (name, pairs, bound) in pair_sets {
            for &[i, j, ..] in pairs.iter() {
                if i >= j || j >= bound as u64 {
                    problems.push(format!(
                        "`{name}` pair ({i}, {j}) is not an ordered pair of positions below {bound}"
                    ));
                }
            }
        }
        let emitted_sets = [
            ("a1_emitted", &self.a1_emitted, n_workers),
            ("a2_emitted", &self.a2_emitted, n_tasks),
        ];
        for (name, pairs, bound) in emitted_sets {
            for &(i, j) in pairs.iter() {
                if i >= j || j >= bound as u64 {
                    problems.push(format!(
                        "`{name}` pair ({i}, {j}) is not an ordered pair of positions below {bound}"
                    ));
                }
            }
        }
        for (i, f) in self.findings.iter().enumerate() {
            let bad_seq = match f.origin {
                FindingOrigin::Event { seq, .. } => seq >= self.events_seen,
                FindingOrigin::EndOfStream {
                    last_seq: Some(seq),
                } => seq >= self.events_seen,
                _ => false,
            };
            if bad_seq {
                problems.push(format!(
                    "finding {i} is attributed past the checkpoint seq {}",
                    self.events_seen
                ));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(FaircrowdError::persist(format!(
                "checkpoint failed integrity checks: {}",
                problems.join("; ")
            )))
        }
    }
}

// ---- encode ---------------------------------------------------------

/// Encode a checkpoint as pretty-printed JSON. Deterministic: the same
/// snapshot always encodes to the same bytes (hash-keyed state was
/// already sorted by [`LiveAuditor::checkpoint`]).
pub fn encode(ckpt: &Checkpoint) -> String {
    let mut text = to_json(ckpt).to_pretty();
    text.push('\n');
    text
}

fn to_json(ckpt: &Checkpoint) -> Json {
    let id_arr = |ids: &[u32]| Json::Arr(ids.iter().map(|&i| Json::uint(u64::from(i))).collect());
    let rows = |rows: &[(usize, Vec<u32>)]| {
        Json::Arr(
            rows.iter()
                .map(|(seen, ids)| {
                    Json::Obj(vec![
                        ("seen".into(), Json::uint(*seen as u64)),
                        ("ids".into(), id_arr(ids)),
                    ])
                })
                .collect(),
        )
    };
    let caches = |caches: &[(usize, Vec<usize>)]| {
        Json::Arr(
            caches
                .iter()
                .map(|(seen, partners)| {
                    Json::Obj(vec![
                        ("seen".into(), Json::uint(*seen as u64)),
                        (
                            "partners".into(),
                            Json::Arr(partners.iter().map(|&p| Json::uint(p as u64)).collect()),
                        ),
                    ])
                })
                .collect(),
        )
    };
    let pairs = |pairs: &[[u64; 5]]| {
        Json::Arr(
            pairs
                .iter()
                .map(|row| Json::Arr(row.iter().map(|&v| Json::uint(v)).collect()))
                .collect(),
        )
    };
    let emitted = |pairs: &[(u64, u64)]| {
        Json::Arr(
            pairs
                .iter()
                .map(|&(i, j)| Json::Arr(vec![Json::uint(i), Json::uint(j)]))
                .collect(),
        )
    };
    Json::Obj(vec![
        ("schema".into(), Json::str(SCHEMA_NAME)),
        ("version".into(), Json::uint(SCHEMA_VERSION)),
        ("seq".into(), Json::uint(ckpt.events_seen)),
        ("source_lines".into(), Json::uint(ckpt.source_lines)),
        ("world".into(), trace_io::trace_to_json(&ckpt.world)),
        ("mirror".into(), mirror_to_json(&ckpt.mirror)),
        ("events_seen".into(), Json::uint(ckpt.events_seen)),
        ("last_time".into(), Json::uint(ckpt.last_time.as_secs())),
        ("policy_scanned".into(), Json::Bool(ckpt.policy_scanned)),
        ("finalized".into(), Json::Bool(ckpt.finalized)),
        ("max_findings".into(), Json::uint(ckpt.max_findings as u64)),
        ("suppressed".into(), Json::uint(ckpt.suppressed)),
        (
            "qual_tasks".into(),
            rows(&unraw(&ckpt.qual_tasks, |id: &TaskId| id.raw())),
        ),
        (
            "qual_workers".into(),
            rows(&unraw(&ckpt.qual_workers, |id: &WorkerId| id.raw())),
        ),
        ("similar_partners".into(), caches(&ckpt.similar_partners)),
        (
            "comparable_partners".into(),
            caches(&ckpt.comparable_partners),
        ),
        ("a1_pairs".into(), pairs(&ckpt.a1_pairs)),
        ("a2_pairs".into(), pairs(&ckpt.a2_pairs)),
        ("a1_emitted".into(), emitted(&ckpt.a1_emitted)),
        ("a2_emitted".into(), emitted(&ckpt.a2_emitted)),
        (
            "a3_emitted".into(),
            Json::Arr(
                ckpt.a3_emitted
                    .iter()
                    .map(|&(a, b)| {
                        Json::Arr(vec![
                            Json::uint(u64::from(a.raw())),
                            Json::uint(u64::from(b.raw())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "a4_emitted".into(),
            id_arr(&ckpt.a4_emitted.iter().map(|w| w.raw()).collect::<Vec<_>>()),
        ),
        (
            "a6_emitted".into(),
            id_arr(&ckpt.a6_emitted.iter().map(|t| t.raw()).collect::<Vec<_>>()),
        ),
        (
            "findings".into(),
            Json::Arr(ckpt.findings.iter().map(finding_to_json).collect()),
        ),
    ])
}

fn unraw<T>(rows: &[(usize, Vec<T>)], raw: impl Fn(&T) -> u32) -> Vec<(usize, Vec<u32>)> {
    rows.iter()
        .map(|(seen, ids)| (*seen, ids.iter().map(&raw).collect()))
        .collect()
}

fn mirror_to_json(mirror: &EventIndex) -> Json {
    let id_set = |ids: &BTreeSet<u32>| -> Json {
        Json::Arr(ids.iter().map(|&i| Json::uint(u64::from(i))).collect())
    };
    let visibility = Json::Arr(
        mirror
            .visibility
            .iter()
            .map(|(w, tasks)| {
                Json::Obj(vec![
                    ("worker".into(), Json::uint(u64::from(w.raw()))),
                    (
                        "tasks".into(),
                        id_set(&tasks.iter().map(|t| t.raw()).collect()),
                    ),
                ])
            })
            .collect(),
    );
    let audience = Json::Arr(
        mirror
            .audience
            .iter()
            .map(|(t, workers)| {
                Json::Obj(vec![
                    ("task".into(), Json::uint(u64::from(t.raw()))),
                    (
                        "workers".into(),
                        id_set(&workers.iter().map(|w| w.raw()).collect()),
                    ),
                ])
            })
            .collect(),
    );
    let payments = Json::Arr(
        mirror
            .payments
            .iter()
            .map(|(s, amount)| {
                Json::Obj(vec![
                    ("submission".into(), Json::uint(u64::from(s.raw()))),
                    ("amount".into(), Json::int(amount.millicents())),
                ])
            })
            .collect(),
    );
    let earnings = Json::Arr(
        mirror
            .earnings
            .iter()
            .map(|(w, amount)| {
                Json::Obj(vec![
                    ("worker".into(), Json::uint(u64::from(w.raw()))),
                    ("amount".into(), Json::int(amount.millicents())),
                ])
            })
            .collect(),
    );
    let interruptions = Json::Arr(
        mirror
            .interruptions
            .iter()
            .map(|i| {
                Json::Obj(vec![
                    ("task".into(), Json::uint(u64::from(i.task.raw()))),
                    ("worker".into(), Json::uint(u64::from(i.worker.raw()))),
                    ("invested".into(), Json::uint(i.invested.as_secs())),
                    ("compensated".into(), Json::Bool(i.compensated)),
                ])
            })
            .collect(),
    );
    let quits = Json::Arr(
        mirror
            .quits
            .iter()
            .map(|(w, reason, time)| {
                Json::Obj(vec![
                    ("worker".into(), Json::uint(u64::from(w.raw()))),
                    (
                        "reason".into(),
                        Json::str(match reason {
                            QuitReason::Frustration => "frustration",
                            QuitReason::NaturalChurn => "natural_churn",
                        }),
                    ),
                    ("time".into(), Json::uint(time.as_secs())),
                ])
            })
            .collect(),
    );
    Json::Obj(vec![
        ("visibility".into(), visibility),
        ("audience".into(), audience),
        ("payments".into(), payments),
        ("earnings".into(), earnings),
        (
            "flagged".into(),
            id_set(&mirror.flagged.iter().map(|w| w.raw()).collect()),
        ),
        (
            "session_workers".into(),
            id_set(&mirror.session_workers.iter().map(|w| w.raw()).collect()),
        ),
        (
            "informed_workers".into(),
            id_set(&mirror.informed_workers.iter().map(|w| w.raw()).collect()),
        ),
        (
            "work_started".into(),
            Json::uint(mirror.work_started as u64),
        ),
        ("interruptions".into(), interruptions),
        ("quits".into(), quits),
    ])
}

fn finding_to_json(f: &LiveFinding) -> Json {
    let origin = match f.origin {
        FindingOrigin::Setup => Json::Obj(vec![("kind".into(), Json::str("setup"))]),
        FindingOrigin::Event { seq, time } => Json::Obj(vec![
            ("kind".into(), Json::str("event")),
            ("seq".into(), Json::uint(seq)),
            ("time".into(), Json::uint(time.as_secs())),
        ]),
        FindingOrigin::EndOfStream { last_seq } => Json::Obj(vec![
            ("kind".into(), Json::str("end-of-stream")),
            ("last_seq".into(), last_seq.map_or(Json::Null, Json::uint)),
        ]),
    };
    Json::Obj(vec![
        ("origin".into(), origin),
        ("axiom".into(), Json::str(f.violation.axiom.label())),
        ("severity".into(), Json::float(f.violation.severity)),
        ("description".into(), Json::str(&*f.violation.description)),
    ])
}

// ---- decode ---------------------------------------------------------

/// Decode a checkpoint: gate 1 (parse, with byte positions) and gate 2
/// (schema name + version), then field-by-field decoding with every
/// missing or mistyped field named, plus the header-vs-body seq
/// cross-check. Gate 3 ([`Checkpoint::ensure_valid`]) runs in
/// [`load`], the path untrusted files come through.
pub fn decode(text: &str) -> Result<Checkpoint, FaircrowdError> {
    let json = Json::parse(text).map_err(FaircrowdError::persist)?;
    let schema = json.get("schema").and_then(Json::as_str).ok_or_else(|| {
        FaircrowdError::persist("missing `schema` field — not a faircrowd checkpoint file")
    })?;
    if schema != SCHEMA_NAME {
        return Err(FaircrowdError::persist(format!(
            "schema is `{schema}`, expected `{SCHEMA_NAME}`"
        )));
    }
    let version = u64_field(&json, "version", "checkpoint")?;
    if version != SCHEMA_VERSION {
        return Err(FaircrowdError::persist(format!(
            "unsupported checkpoint version {version} (this build reads version {SCHEMA_VERSION})"
        )));
    }
    let seq = u64_field(&json, "seq", "checkpoint")?;
    let events_seen = u64_field(&json, "events_seen", "checkpoint")?;
    if seq != events_seen {
        return Err(FaircrowdError::persist(format!(
            "header seq {seq} disagrees with the mirror's events_seen {events_seen} — \
             the checkpoint was stitched from two different moments"
        )));
    }
    let world = trace_io::trace_from_json(require(&json, "world", "checkpoint")?)?;
    let mirror = mirror_from_json(require(&json, "mirror", "checkpoint")?)?;
    let findings = arr_field(&json, "findings", "checkpoint")?
        .iter()
        .enumerate()
        .map(|(i, f)| finding_from_json(f, i))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Checkpoint {
        world,
        mirror,
        events_seen,
        source_lines: u64_field(&json, "source_lines", "checkpoint")?,
        last_time: SimTime::from_secs(u64_field(&json, "last_time", "checkpoint")?),
        policy_scanned: bool_field(&json, "policy_scanned", "checkpoint")?,
        finalized: bool_field(&json, "finalized", "checkpoint")?,
        max_findings: u64_field(&json, "max_findings", "checkpoint")? as usize,
        suppressed: u64_field(&json, "suppressed", "checkpoint")?,
        qual_tasks: rows_from_json(&json, "qual_tasks", TaskId::new)?,
        qual_workers: rows_from_json(&json, "qual_workers", WorkerId::new)?,
        similar_partners: caches_from_json(&json, "similar_partners")?,
        comparable_partners: caches_from_json(&json, "comparable_partners")?,
        a1_pairs: pairs_from_json(&json, "a1_pairs")?,
        a2_pairs: pairs_from_json(&json, "a2_pairs")?,
        a1_emitted: emitted_from_json(&json, "a1_emitted")?,
        a2_emitted: emitted_from_json(&json, "a2_emitted")?,
        a3_emitted: arr_field(&json, "a3_emitted", "checkpoint")?
            .iter()
            .map(|p| {
                let (a, b) = u32_pair(p, "a3_emitted")?;
                Ok((SubmissionId::new(a), SubmissionId::new(b)))
            })
            .collect::<Result<Vec<_>, FaircrowdError>>()?,
        a4_emitted: id_list(&json, "a4_emitted", WorkerId::new)?,
        a6_emitted: id_list(&json, "a6_emitted", TaskId::new)?,
        findings,
    })
}

fn mirror_from_json(json: &Json) -> Result<EventIndex, FaircrowdError> {
    let mut mirror = EventIndex::default();
    for row in arr_field(json, "visibility", "mirror")? {
        let worker = WorkerId::new(u32_field(row, "worker", "mirror visibility")?);
        let tasks = arr_field(row, "tasks", "mirror visibility")?
            .iter()
            .map(|t| Ok(TaskId::new(u32_value(t, "mirror visibility task")?)))
            .collect::<Result<BTreeSet<_>, FaircrowdError>>()?;
        mirror.visibility.insert(worker, tasks);
    }
    for row in arr_field(json, "audience", "mirror")? {
        let task = TaskId::new(u32_field(row, "task", "mirror audience")?);
        let workers = arr_field(row, "workers", "mirror audience")?
            .iter()
            .map(|w| Ok(WorkerId::new(u32_value(w, "mirror audience worker")?)))
            .collect::<Result<BTreeSet<_>, FaircrowdError>>()?;
        mirror.audience.insert(task, workers);
    }
    for row in arr_field(json, "payments", "mirror")? {
        mirror.payments.insert(
            SubmissionId::new(u32_field(row, "submission", "mirror payments")?),
            Credits::from_millicents(i64_field(row, "amount", "mirror payments")?),
        );
    }
    for row in arr_field(json, "earnings", "mirror")? {
        mirror.earnings.insert(
            WorkerId::new(u32_field(row, "worker", "mirror earnings")?),
            Credits::from_millicents(i64_field(row, "amount", "mirror earnings")?),
        );
    }
    for (key, set) in [
        ("flagged", &mut mirror.flagged),
        ("session_workers", &mut mirror.session_workers),
        ("informed_workers", &mut mirror.informed_workers),
    ] {
        for w in arr_field(json, key, "mirror")? {
            set.insert(WorkerId::new(u32_value(w, format!("mirror {key}"))?));
        }
    }
    mirror.work_started = u64_field(json, "work_started", "mirror")? as usize;
    for row in arr_field(json, "interruptions", "mirror")? {
        mirror.interruptions.push(Interruption {
            task: TaskId::new(u32_field(row, "task", "mirror interruption")?),
            worker: WorkerId::new(u32_field(row, "worker", "mirror interruption")?),
            invested: SimDuration::from_secs(u64_field(row, "invested", "mirror interruption")?),
            compensated: bool_field(row, "compensated", "mirror interruption")?,
        });
    }
    for row in arr_field(json, "quits", "mirror")? {
        let reason = match str_field(row, "reason", "mirror quit")? {
            "frustration" => QuitReason::Frustration,
            "natural_churn" => QuitReason::NaturalChurn,
            other => {
                return Err(FaircrowdError::persist(format!(
                    "mirror quit: unknown reason `{other}`"
                )))
            }
        };
        mirror.quits.push((
            WorkerId::new(u32_field(row, "worker", "mirror quit")?),
            reason,
            SimTime::from_secs(u64_field(row, "time", "mirror quit")?),
        ));
    }
    Ok(mirror)
}

fn finding_from_json(json: &Json, index: usize) -> Result<LiveFinding, FaircrowdError> {
    let ctx = format!("finding {index}");
    let origin_json = require(json, "origin", &ctx)?;
    let origin = match str_field(origin_json, "kind", &ctx)? {
        "setup" => FindingOrigin::Setup,
        "event" => FindingOrigin::Event {
            seq: u64_field(origin_json, "seq", &ctx)?,
            time: SimTime::from_secs(u64_field(origin_json, "time", &ctx)?),
        },
        "end-of-stream" => FindingOrigin::EndOfStream {
            last_seq: match require(origin_json, "last_seq", &ctx)? {
                Json::Null => None,
                v => Some(v.as_u64().ok_or_else(|| {
                    FaircrowdError::persist(format!(
                        "{ctx}: `last_seq` should be an unsigned integer or null"
                    ))
                })?),
            },
        },
        other => {
            return Err(FaircrowdError::persist(format!(
                "{ctx}: unknown origin kind `{other}`"
            )))
        }
    };
    let label = str_field(json, "axiom", &ctx)?;
    let axiom = AxiomId::ALL
        .into_iter()
        .find(|a| a.label() == label)
        .ok_or_else(|| FaircrowdError::persist(format!("{ctx}: unknown axiom label `{label}`")))?;
    let severity = require(json, "severity", &ctx)?
        .as_f64()
        .ok_or_else(|| FaircrowdError::persist(format!("{ctx}: `severity` should be a number")))?;
    Ok(LiveFinding {
        origin,
        violation: Violation {
            axiom,
            severity,
            description: str_field(json, "description", &ctx)?.to_owned(),
        },
    })
}

fn rows_from_json<T>(
    json: &Json,
    key: &str,
    make: impl Fn(u32) -> T,
) -> Result<Vec<(usize, Vec<T>)>, FaircrowdError> {
    arr_field(json, key, "checkpoint")?
        .iter()
        .map(|row| {
            let seen = u64_field(row, "seen", key)? as usize;
            let ids = arr_field(row, "ids", key)?
                .iter()
                .map(|id| Ok(make(u32_value(id, key)?)))
                .collect::<Result<Vec<_>, FaircrowdError>>()?;
            Ok((seen, ids))
        })
        .collect()
}

fn caches_from_json(json: &Json, key: &str) -> Result<Vec<(usize, Vec<usize>)>, FaircrowdError> {
    arr_field(json, key, "checkpoint")?
        .iter()
        .map(|row| {
            let seen = u64_field(row, "seen", key)? as usize;
            let partners = arr_field(row, "partners", key)?
                .iter()
                .map(|p| {
                    p.as_u64().map(|v| v as usize).ok_or_else(|| {
                        FaircrowdError::persist(format!(
                            "{key}: partner position should be an unsigned integer"
                        ))
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok((seen, partners))
        })
        .collect()
}

fn pairs_from_json(json: &Json, key: &str) -> Result<Vec<[u64; 5]>, FaircrowdError> {
    arr_field(json, key, "checkpoint")?
        .iter()
        .map(|row| {
            let arr = row.as_arr().ok_or_else(|| {
                FaircrowdError::persist(format!("{key}: pair entry is not an array"))
            })?;
            let values = arr
                .iter()
                .map(|v| {
                    v.as_u64().ok_or_else(|| {
                        FaircrowdError::persist(format!("{key}: pair entry holds a non-integer"))
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            <[u64; 5]>::try_from(values).map_err(|v| {
                FaircrowdError::persist(format!(
                    "{key}: pair entry has {} element(s), expected 5",
                    v.len()
                ))
            })
        })
        .collect()
}

fn emitted_from_json(json: &Json, key: &str) -> Result<Vec<(u64, u64)>, FaircrowdError> {
    arr_field(json, key, "checkpoint")?
        .iter()
        .map(|p| {
            let (a, b) = u64_pair(p, key)?;
            Ok((a, b))
        })
        .collect()
}

fn id_list<T>(json: &Json, key: &str, make: impl Fn(u32) -> T) -> Result<Vec<T>, FaircrowdError> {
    arr_field(json, key, "checkpoint")?
        .iter()
        .map(|id| Ok(make(u32_value(id, key)?)))
        .collect()
}

// ---- save / load ----------------------------------------------------

/// Write a checkpoint to `path`. I/O failures carry the path.
pub fn save(ckpt: &Checkpoint, path: impl AsRef<Path>) -> Result<(), FaircrowdError> {
    let path = path.as_ref();
    std::fs::write(path, encode(ckpt)).map_err(|e| FaircrowdError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

/// Load and **validate** a checkpoint from `path`: read, decode under
/// the schema gates, then run [`Checkpoint::ensure_valid`]. Every
/// failure mode — truncated file, foreign schema, future version, a
/// header seq disagreeing with its mirror, dangling positions — is a
/// descriptive [`FaircrowdError`] carrying the path, never a panic.
pub fn load(path: impl AsRef<Path>) -> Result<Checkpoint, FaircrowdError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| FaircrowdError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    let ckpt = decode(&text).map_err(|e| e.at_path(path.display()))?;
    ckpt.ensure_valid().map_err(|e| e.at_path(path.display()))?;
    Ok(ckpt)
}

/// Checkpoint an auditor straight to disk —
/// [`LiveAuditor::checkpoint`] + [`save`] in one call, the form the
/// daemon's cadence loop uses.
pub fn save_auditor(
    auditor: &LiveAuditor,
    source_lines: u64,
    path: impl AsRef<Path>,
) -> Result<(), FaircrowdError> {
    save(&auditor.checkpoint(source_lines), path)
}
