//! Gold-question screening.
//!
//! The oldest detection mechanism in crowdsourcing: seed the task stream
//! with questions whose answers are known ("gold" / honeypots) and score
//! each worker by her accuracy on them. Workers below threshold are
//! flagged. Gold screening is requester-side detection — exactly the
//! capability Axiom 4 demands the platform support.

use crate::answers::AnswerSet;
use faircrowd_model::ids::{TaskId, WorkerId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A set of tasks with known answers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GoldSet {
    truth: BTreeMap<TaskId, u8>,
}

/// A worker's performance on gold questions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoldScore {
    /// Gold questions the worker answered.
    pub answered: usize,
    /// Of those, answered correctly.
    pub correct: usize,
}

impl GoldScore {
    /// Accuracy on gold; 1.0 when no gold was answered (no evidence).
    pub fn accuracy(&self) -> f64 {
        if self.answered == 0 {
            1.0
        } else {
            self.correct as f64 / self.answered as f64
        }
    }
}

impl GoldSet {
    /// An empty gold set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a gold task and its true label.
    pub fn insert(&mut self, task: TaskId, label: u8) {
        self.truth.insert(task, label);
    }

    /// Builder-style insert.
    pub fn with(mut self, task: TaskId, label: u8) -> Self {
        self.insert(task, label);
        self
    }

    /// Is this task a gold question?
    pub fn contains(&self, task: TaskId) -> bool {
        self.truth.contains_key(&task)
    }

    /// The true label of a gold task.
    pub fn label(&self, task: TaskId) -> Option<u8> {
        self.truth.get(&task).copied()
    }

    /// Number of gold tasks.
    pub fn len(&self) -> usize {
        self.truth.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.truth.is_empty()
    }

    /// Score an inferred consensus against the gold truth: of all gold
    /// tasks, how many carry the correct consensus label. Undecided gold
    /// tasks (absent from `labels`) count as answered-but-wrong, so the
    /// score penalises lost coverage — the currency the parity-constrained
    /// aggregator pays in.
    pub fn score_labels(&self, labels: &BTreeMap<TaskId, u8>) -> GoldScore {
        let correct = self
            .truth
            .iter()
            .filter(|(task, truth)| labels.get(task) == Some(truth))
            .count();
        GoldScore {
            answered: self.truth.len(),
            correct,
        }
    }

    /// Score every worker who answered at least one gold question.
    pub fn score_workers(&self, answers: &AnswerSet) -> BTreeMap<WorkerId, GoldScore> {
        let mut scores: BTreeMap<WorkerId, GoldScore> = BTreeMap::new();
        for a in answers.answers() {
            if let Some(truth) = self.label(a.task) {
                let s = scores.entry(a.worker).or_insert(GoldScore {
                    answered: 0,
                    correct: 0,
                });
                s.answered += 1;
                if a.label == truth {
                    s.correct += 1;
                }
            }
        }
        scores
    }

    /// Workers flagged as suspicious: answered at least `min_answered`
    /// gold questions with accuracy strictly below `threshold`.
    pub fn flag_workers(
        &self,
        answers: &AnswerSet,
        threshold: f64,
        min_answered: usize,
    ) -> Vec<WorkerId> {
        self.score_workers(answers)
            .into_iter()
            .filter(|(_, s)| s.answered >= min_answered && s.accuracy() < threshold)
            .map(|(w, _)| w)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u32) -> WorkerId {
        WorkerId::new(i)
    }
    fn t(i: u32) -> TaskId {
        TaskId::new(i)
    }

    fn gold3() -> GoldSet {
        GoldSet::new().with(t(0), 1).with(t(1), 0).with(t(2), 1)
    }

    #[test]
    fn scores_count_correct_answers() {
        let g = gold3();
        let mut s = AnswerSet::new(2);
        // worker 0: all correct; worker 1: 1 of 3 correct
        for (ti, l) in [(0, 1), (1, 0), (2, 1)] {
            s.record(w(0), t(ti), l);
        }
        for (ti, l) in [(0, 0), (1, 0), (2, 0)] {
            s.record(w(1), t(ti), l);
        }
        // non-gold answers don't count
        s.record(w(0), t(9), 0);
        let scores = g.score_workers(&s);
        assert_eq!(scores[&w(0)].answered, 3);
        assert!((scores[&w(0)].accuracy() - 1.0).abs() < 1e-12);
        assert_eq!(scores[&w(1)].correct, 1);
        assert!((scores[&w(1)].accuracy() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn flagging_respects_threshold_and_minimum() {
        let g = gold3();
        let mut s = AnswerSet::new(2);
        for (ti, l) in [(0, 0), (1, 1), (2, 0)] {
            s.record(w(1), t(ti), l); // 0/3 correct
        }
        s.record(w(2), t(0), 0); // 0/1 correct but below min_answered
        let flagged = g.flag_workers(&s, 0.6, 2);
        assert_eq!(flagged, vec![w(1)]);
    }

    #[test]
    fn consensus_scoring_penalises_missing_labels() {
        let g = gold3();
        // Correct on t0, wrong on t1, undecided on t2.
        let labels = BTreeMap::from([(t(0), 1), (t(1), 1)]);
        let score = g.score_labels(&labels);
        assert_eq!(score.answered, 3);
        assert_eq!(score.correct, 1);
        // Empty gold set: vacuous perfect accuracy.
        let empty = GoldSet::new().score_labels(&labels);
        assert_eq!(empty.answered, 0);
        assert_eq!(empty.accuracy(), 1.0);
    }

    #[test]
    fn worker_with_no_gold_answers_is_unscored() {
        let g = gold3();
        let mut s = AnswerSet::new(2);
        s.record(w(5), t(9), 1);
        assert!(g.score_workers(&s).is_empty());
    }

    #[test]
    fn no_evidence_means_perfect_accuracy() {
        let score = GoldScore {
            answered: 0,
            correct: 0,
        };
        assert_eq!(score.accuracy(), 1.0);
    }

    #[test]
    fn set_accessors() {
        let g = gold3();
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert!(g.contains(t(0)));
        assert!(!g.contains(t(7)));
        assert_eq!(g.label(t(1)), Some(0));
        assert_eq!(g.label(t(7)), None);
    }
}
