//! Axiom 1 — worker fairness in task assignment.
//!
//! *"Given two different workers wi and wj, if Awi is similar to Awj and
//! Cwi is similar to Cwj, and Swi is similar to Swj, then wi and wj should
//! have access to the same tasks."*
//!
//! The quantifier domain is the set of **similar worker pairs** (composite
//! similarity ≥ `worker_threshold`). For each such pair we compare the
//! tasks the platform made visible to each worker, restricted to tasks
//! *both* qualify for — a platform is not at fault for withholding a task
//! a worker could not take. The per-pair score is the Jaccard overlap of
//! those access sets; the axiom score is the mean over pairs.
//!
//! Candidate pairs come pre-blocked from the [`TraceIndex`]
//! (skill-count buckets); the exact composite similarity is still
//! applied to every candidate, so the result is identical to the
//! exhaustive scan.

use crate::axiom::{Axiom, AxiomId, AxiomReport, ViolationCollector};
use crate::axioms::worker_similarity;
use crate::index::TraceIndex;
use faircrowd_model::similarity::SimilarityConfig;
use faircrowd_model::stats;

/// Checker for Axiom 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerAssignmentFairness;

impl Axiom for WorkerAssignmentFairness {
    fn id(&self) -> AxiomId {
        AxiomId::A1WorkerAssignment
    }

    fn check(
        &self,
        ix: &TraceIndex<'_>,
        cfg: &SimilarityConfig,
        max_witnesses: usize,
    ) -> AxiomReport {
        let trace = ix.trace();

        let mut overlaps = Vec::new();
        let mut collector = ViolationCollector::new(self.id(), max_witnesses);
        for (i, j) in ix.similar_worker_candidates(cfg) {
            let (wi, wj) = (&trace.workers[i], &trace.workers[j]);
            let sim = worker_similarity(wi, wj, cfg);
            if sim < cfg.worker_threshold {
                continue;
            }
            let o = ix.worker_access_overlap(i, j);
            let overlap = o.jaccard();
            overlaps.push(overlap);
            if overlap < 1.0 - 1e-9 {
                collector.push(
                    1.0 - overlap,
                    crate::axioms::a1_witness(wi.id, wj.id, sim, &o, overlap),
                );
            }
        }

        if overlaps.is_empty() {
            return AxiomReport::vacuous(self.id(), "no similar worker pairs in the trace");
        }
        AxiomReport {
            axiom: self.id(),
            score: stats::mean(&overlaps),
            checked: overlaps.len(),
            violation_count: collector.total,
            truncated: collector.truncated(),
            violations: collector.items,
            notes: vec![format!(
                "similarity: skills via {}, threshold {:.2}",
                cfg.skill_measure.name(),
                cfg.worker_threshold
            )],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::fixtures::*;

    fn cfg() -> SimilarityConfig {
        SimilarityConfig::default()
    }

    #[test]
    fn equal_access_scores_one() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10), task(1, 1, &[0, 0], 10)]);
        for tid in 0..2 {
            show(&mut trace, 1, tid, 0);
            show(&mut trace, 1, tid, 1);
        }
        let r = WorkerAssignmentFairness.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.checked, 1);
        assert!((r.score - 1.0).abs() < 1e-12);
        assert!(r.holds());
    }

    #[test]
    fn exclusion_is_a_violation() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10), task(1, 1, &[0, 0], 10)]);
        // identical workers, but only w0 sees anything
        show(&mut trace, 1, 0, 0);
        show(&mut trace, 1, 1, 0);
        let r = WorkerAssignmentFairness.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.violation_count, 1);
        assert_eq!(r.score, 0.0, "total exclusion is maximal discrimination");
        assert!(r.violations[0].description.contains("w0"));
        assert!(r.violations[0].severity > 0.99);
    }

    #[test]
    fn partial_overlap_scores_between() {
        let mut trace = skeleton(vec![
            task(0, 0, &[0, 0], 10),
            task(1, 1, &[0, 0], 10),
            task(2, 0, &[0, 0], 10),
        ]);
        // w0 sees t0,t1; w1 sees t0,t2 -> jaccard 1/3
        show(&mut trace, 1, 0, 0);
        show(&mut trace, 1, 1, 0);
        show(&mut trace, 1, 0, 1);
        show(&mut trace, 1, 2, 1);
        let r = WorkerAssignmentFairness.check_trace(&trace, &cfg(), 10);
        assert!((r.score - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn dissimilar_workers_are_not_compared() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        // make w1 clearly different in skills
        trace.workers[1] = worker(1, &[0, 0]);
        show(&mut trace, 1, 0, 0);
        let r = WorkerAssignmentFairness.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.checked, 0);
        assert_eq!(r.score, 1.0, "vacuously satisfied");
    }

    #[test]
    fn unqualified_tasks_do_not_count() {
        // one task needs a skill neither worker has; not seeing it is fine
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10), task(1, 1, &[1, 0, 1], 10)]);
        trace.workers[0] = worker(0, &[1, 1, 0]);
        trace.workers[1] = worker(1, &[1, 1, 0]);
        show(&mut trace, 1, 0, 0);
        show(&mut trace, 1, 0, 1);
        let r = WorkerAssignmentFairness.check_trace(&trace, &cfg(), 10);
        assert!((r.score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn witness_cap_respected() {
        // 4 identical workers, only w0 sees the task -> 3 violating pairs
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        trace.workers = (0..4).map(|i| worker(i, &[1, 1])).collect();
        show(&mut trace, 1, 0, 0);
        let r = WorkerAssignmentFairness.check_trace(&trace, &cfg(), 2);
        assert_eq!(r.violation_count, 3);
        assert_eq!(r.violations.len(), 2);
        assert!(r.truncated);
    }
}
