//! The versioned on-disk schema for [`Trace`].
//!
//! The paper's transparency program presumes audits run over *recorded*
//! platform logs — Turkbench and Crowd-Workers disclose wages computed
//! from real traces, not from a simulator bound into the auditor. This
//! module gives [`Trace`] a stable, versioned interchange form so a
//! trace can leave the process that produced it and be audited later,
//! elsewhere, by `faircrowd-core`'s replay path.
//!
//! Two encodings share one schema version:
//!
//! * **JSON** — the whole trace as a single object, human-readable
//!   ([`trace_to_json`] / [`trace_from_json`]);
//! * **JSONL** — a header line (schema, horizon, disclosure set, ground
//!   truth) followed by one compact record per entity/submission/event
//!   ([`trace_to_jsonl`] / [`trace_from_jsonl`]), the append-friendly
//!   form a platform would actually log into.
//!
//! Schema conventions: ids are raw `u32`s, money is `i64` **millicents**
//! ([`Credits`]), instants and durations are `u64` **seconds**
//! ([`SimTime`]/[`SimDuration`]), skill vectors are `0`/`1` strings, and
//! enum-like values use their existing canonical names
//! ([`EventKind::tag`], [`DisclosureItem::name`], [`Audience::name`],
//! [`TaskKind::name`]). Floats print in Rust's shortest round-trip form,
//! so encode → decode → encode is byte-identical — the invariant the
//! replay tests pin.
//!
//! Decoding never panics: every malformed shape surfaces as a
//! [`FaircrowdError::Persist`] naming the record and field. Referential
//! integrity (dangling worker/task/submission ids) is *not* checked
//! here — that is [`Trace::ensure_valid`]'s job, which the file loader
//! in `faircrowd-core::persist` runs after decoding.

use crate::attributes::{AttrValue, ComputedAttrs, DeclaredAttrs};
use crate::contribution::{Contribution, Submission};
use crate::disclosure::{Audience, DisclosureItem, DisclosureSet};
use crate::error::FaircrowdError;
use crate::event::{CancelReason, Event, EventKind, EventLog, QuitReason};
use crate::ids::{CampaignId, RequesterId, SkillId, SubmissionId, TaskId, WorkerId};
use crate::json::Json;
use crate::money::Credits;
use crate::requester::Requester;
use crate::skills::SkillVector;
use crate::task::{Task, TaskConditions, TaskKind};
use crate::time::{SimDuration, SimTime};
use crate::trace::{GroundTruth, Trace};
use crate::worker::Worker;

/// The schema identifier every trace file carries.
pub const SCHEMA_NAME: &str = "faircrowd-trace";

/// The schema version this build writes and reads.
pub const SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Encode a trace as one JSON object (the whole-file form).
pub fn trace_to_json(trace: &Trace) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::str(SCHEMA_NAME)),
        ("version".into(), Json::uint(SCHEMA_VERSION)),
        ("horizon".into(), Json::uint(trace.horizon.as_secs())),
        (
            "workers".into(),
            Json::Arr(trace.workers.iter().map(worker_to_json).collect()),
        ),
        (
            "tasks".into(),
            Json::Arr(trace.tasks.iter().map(task_to_json).collect()),
        ),
        (
            "requesters".into(),
            Json::Arr(trace.requesters.iter().map(requester_to_json).collect()),
        ),
        (
            "submissions".into(),
            Json::Arr(trace.submissions.iter().map(submission_to_json).collect()),
        ),
        (
            "events".into(),
            Json::Arr(trace.events.iter().map(event_to_json).collect()),
        ),
        ("disclosure".into(), disclosure_to_json(&trace.disclosure)),
        (
            "ground_truth".into(),
            ground_truth_to_json(&trace.ground_truth),
        ),
    ])
}

/// Encode a trace as JSONL: a header line carrying the scalars, then
/// one compact record per worker, task, requester, submission and
/// event, in that order. Ends with a trailing newline.
pub fn trace_to_jsonl(trace: &Trace) -> String {
    let header = Json::Obj(vec![
        ("schema".into(), Json::str(SCHEMA_NAME)),
        ("version".into(), Json::uint(SCHEMA_VERSION)),
        ("format".into(), Json::str("jsonl")),
        ("horizon".into(), Json::uint(trace.horizon.as_secs())),
        ("disclosure".into(), disclosure_to_json(&trace.disclosure)),
        (
            "ground_truth".into(),
            ground_truth_to_json(&trace.ground_truth),
        ),
    ]);
    let mut out = header.to_compact();
    out.push('\n');
    let mut record = |tag: &str, value: Json| {
        out.push_str(&Json::Obj(vec![(tag.to_owned(), value)]).to_compact());
        out.push('\n');
    };
    for w in &trace.workers {
        record("worker", worker_to_json(w));
    }
    for t in &trace.tasks {
        record("task", task_to_json(t));
    }
    for r in &trace.requesters {
        record("requester", requester_to_json(r));
    }
    for s in &trace.submissions {
        record("submission", submission_to_json(s));
    }
    for e in &trace.events {
        record("event", event_to_json(e));
    }
    out
}

fn worker_to_json(w: &Worker) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::uint(u64::from(w.id.raw()))),
        ("declared".into(), declared_to_json(&w.declared)),
        ("computed".into(), computed_to_json(&w.computed)),
        ("skills".into(), skills_to_json(&w.skills)),
    ])
}

fn declared_to_json(attrs: &DeclaredAttrs) -> Json {
    Json::Obj(
        attrs
            .iter()
            .map(|(k, v)| (k.to_owned(), attr_value_to_json(v)))
            .collect(),
    )
}

fn attr_value_to_json(v: &AttrValue) -> Json {
    match v {
        AttrValue::Bool(b) => Json::Obj(vec![("bool".into(), Json::Bool(*b))]),
        AttrValue::Int(i) => Json::Obj(vec![("int".into(), Json::int(*i))]),
        AttrValue::Real(r) => Json::Obj(vec![("real".into(), Json::float(*r))]),
        AttrValue::Text(s) => Json::Obj(vec![("text".into(), Json::str(s.clone()))]),
    }
}

fn computed_to_json(c: &ComputedAttrs) -> Json {
    Json::Obj(vec![
        ("acceptance_ratio".into(), Json::float(c.acceptance_ratio)),
        ("tasks_approved".into(), Json::uint(c.tasks_approved)),
        ("tasks_rejected".into(), Json::uint(c.tasks_rejected)),
        ("tasks_submitted".into(), Json::uint(c.tasks_submitted)),
        ("quality_estimate".into(), Json::float(c.quality_estimate)),
        (
            "mean_approval_latency".into(),
            Json::uint(c.mean_approval_latency.as_secs()),
        ),
        (
            "total_earnings".into(),
            Json::int(c.total_earnings.millicents()),
        ),
        ("sessions".into(), Json::uint(c.sessions)),
        (
            "extra".into(),
            Json::Obj(
                c.extra
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::float(*v)))
                    .collect(),
            ),
        ),
    ])
}

fn skills_to_json(s: &SkillVector) -> Json {
    let bits: String = (0..s.len())
        .map(|i| {
            if s.get(SkillId::new(i as u32)) {
                '1'
            } else {
                '0'
            }
        })
        .collect();
    Json::Str(bits)
}

fn task_to_json(t: &Task) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::uint(u64::from(t.id.raw()))),
        ("requester".into(), Json::uint(u64::from(t.requester.raw()))),
        ("campaign".into(), Json::uint(u64::from(t.campaign.raw()))),
        ("skills".into(), skills_to_json(&t.skills)),
        ("reward".into(), Json::int(t.reward.millicents())),
        ("kind".into(), kind_to_json(t.kind)),
        (
            "assignments_wanted".into(),
            Json::uint(u64::from(t.assignments_wanted)),
        ),
        ("est_duration".into(), Json::uint(t.est_duration.as_secs())),
        ("conditions".into(), conditions_to_json(&t.conditions)),
    ])
}

fn kind_to_json(kind: TaskKind) -> Json {
    let mut members = vec![("name".to_owned(), Json::str(kind.name()))];
    match kind {
        TaskKind::Labeling { classes } => {
            members.push(("classes".into(), Json::uint(u64::from(classes))));
        }
        TaskKind::Ranking { items } => {
            members.push(("items".into(), Json::uint(u64::from(items))));
        }
        TaskKind::FreeText | TaskKind::Survey => {}
    }
    Json::Obj(members)
}

fn conditions_to_json(c: &TaskConditions) -> Json {
    let mut members = Vec::new();
    if let Some(wage) = c.stated_hourly_wage {
        members.push((
            "stated_hourly_wage".to_owned(),
            Json::int(wage.millicents()),
        ));
    }
    if let Some(delay) = c.stated_payment_delay {
        members.push((
            "stated_payment_delay".to_owned(),
            Json::uint(delay.as_secs()),
        ));
    }
    for (key, value) in [
        ("recruitment_criteria", &c.recruitment_criteria),
        ("rejection_criteria", &c.rejection_criteria),
        ("evaluation_scheme", &c.evaluation_scheme),
    ] {
        if let Some(text) = value {
            members.push((key.to_owned(), Json::str(text.clone())));
        }
    }
    Json::Obj(members)
}

fn requester_to_json(r: &Requester) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::uint(u64::from(r.id.raw()))),
        ("name".into(), Json::str(r.name.clone())),
        ("approved".into(), Json::uint(r.approved)),
        ("rejected".into(), Json::uint(r.rejected)),
        (
            "rejections_with_feedback".into(),
            Json::uint(r.rejections_with_feedback),
        ),
        (
            "mean_decision_latency".into(),
            Json::uint(r.mean_decision_latency.as_secs()),
        ),
        ("bonuses_promised".into(), Json::uint(r.bonuses_promised)),
        ("bonuses_paid".into(), Json::uint(r.bonuses_paid)),
    ])
}

fn submission_to_json(s: &Submission) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::uint(u64::from(s.id.raw()))),
        ("task".into(), Json::uint(u64::from(s.task.raw()))),
        ("worker".into(), Json::uint(u64::from(s.worker.raw()))),
        ("contribution".into(), contribution_to_json(&s.contribution)),
        ("started_at".into(), Json::uint(s.started_at.as_secs())),
        ("submitted_at".into(), Json::uint(s.submitted_at.as_secs())),
    ])
}

fn contribution_to_json(c: &Contribution) -> Json {
    match c {
        Contribution::Label(l) => Json::Obj(vec![("label".into(), Json::uint(u64::from(*l)))]),
        Contribution::Text(t) => Json::Obj(vec![("text".into(), Json::str(t.clone()))]),
        Contribution::Ranking(r) => Json::Obj(vec![(
            "ranking".into(),
            Json::Arr(r.iter().map(|&i| Json::uint(u64::from(i))).collect()),
        )]),
        Contribution::Numeric(n) => Json::Obj(vec![("numeric".into(), Json::float(*n))]),
    }
}

fn event_to_json(e: &Event) -> Json {
    let mut members = vec![
        ("time".to_owned(), Json::uint(e.time.as_secs())),
        ("seq".to_owned(), Json::uint(e.seq)),
        ("kind".to_owned(), Json::str(e.kind.tag())),
    ];
    let mut put = |key: &str, value: Json| members.push((key.to_owned(), value));
    match &e.kind {
        EventKind::TaskPosted { task, requester } => {
            put("task", id32(task.raw()));
            put("requester", id32(requester.raw()));
        }
        EventKind::TaskVisible { task, worker }
        | EventKind::TaskAccepted { task, worker }
        | EventKind::WorkStarted { task, worker } => {
            put("task", id32(task.raw()));
            put("worker", id32(worker.raw()));
        }
        EventKind::SubmissionReceived {
            submission,
            task,
            worker,
        }
        | EventKind::SubmissionApproved {
            submission,
            task,
            worker,
        } => {
            put("submission", id32(submission.raw()));
            put("task", id32(task.raw()));
            put("worker", id32(worker.raw()));
        }
        EventKind::SubmissionRejected {
            submission,
            task,
            worker,
            feedback,
        } => {
            put("submission", id32(submission.raw()));
            put("task", id32(task.raw()));
            put("worker", id32(worker.raw()));
            if let Some(text) = feedback {
                put("feedback", Json::str(text.clone()));
            }
        }
        EventKind::PaymentIssued {
            submission,
            task,
            worker,
            amount,
        } => {
            put("submission", id32(submission.raw()));
            put("task", id32(task.raw()));
            put("worker", id32(worker.raw()));
            put("amount", Json::int(amount.millicents()));
        }
        EventKind::BonusPromised {
            worker,
            requester,
            amount,
        }
        | EventKind::BonusPaid {
            worker,
            requester,
            amount,
        }
        | EventKind::BonusReneged {
            worker,
            requester,
            amount,
        } => {
            put("worker", id32(worker.raw()));
            put("requester", id32(requester.raw()));
            put("amount", Json::int(amount.millicents()));
        }
        EventKind::TaskCanceled { task, reason } => {
            put("task", id32(task.raw()));
            put("reason", Json::str(cancel_reason_name(*reason)));
        }
        EventKind::WorkInterrupted {
            task,
            worker,
            invested,
            compensated,
        } => {
            put("task", id32(task.raw()));
            put("worker", id32(worker.raw()));
            put("invested", Json::uint(invested.as_secs()));
            put("compensated", Json::Bool(*compensated));
        }
        EventKind::WorkerFlagged {
            worker,
            score,
            detector,
        } => {
            put("worker", id32(worker.raw()));
            put("score", Json::float(*score));
            put("detector", Json::str(detector.clone()));
        }
        EventKind::DisclosureShown { worker, item } => {
            put("worker", id32(worker.raw()));
            put("item", Json::str(item.name()));
        }
        EventKind::SessionStarted { worker }
        | EventKind::SessionEnded { worker }
        | EventKind::WorkerQuit {
            worker,
            reason: QuitReason::NaturalChurn,
        }
        | EventKind::WorkerQuit {
            worker,
            reason: QuitReason::Frustration,
        } => {
            put("worker", id32(worker.raw()));
            if let EventKind::WorkerQuit { reason, .. } = &e.kind {
                put("reason", Json::str(quit_reason_name(*reason)));
            }
        }
    }
    Json::Obj(members)
}

fn id32(raw: u32) -> Json {
    Json::uint(u64::from(raw))
}

fn cancel_reason_name(r: CancelReason) -> &'static str {
    match r {
        CancelReason::TargetReached => "target_reached",
        CancelReason::BudgetExhausted => "budget_exhausted",
        CancelReason::Withdrawn => "withdrawn",
    }
}

fn quit_reason_name(r: QuitReason) -> &'static str {
    match r {
        QuitReason::Frustration => "frustration",
        QuitReason::NaturalChurn => "natural_churn",
    }
}

fn disclosure_to_json(set: &DisclosureSet) -> Json {
    Json::Arr(
        set.iter()
            .map(|(item, audience)| {
                Json::Arr(vec![Json::str(item.name()), Json::str(audience.name())])
            })
            .collect(),
    )
}

fn ground_truth_to_json(gt: &GroundTruth) -> Json {
    Json::Obj(vec![
        (
            "malicious_workers".into(),
            Json::Arr(gt.malicious_workers.iter().map(|w| id32(w.raw())).collect()),
        ),
        (
            "true_labels".into(),
            Json::Arr(
                gt.true_labels
                    .iter()
                    .map(|(t, l)| Json::Arr(vec![id32(t.raw()), Json::uint(u64::from(*l))]))
                    .collect(),
            ),
        ),
    ])
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Decode a trace from its whole-file JSON form, checking the schema
/// name and version first. Shape problems surface as
/// [`FaircrowdError::Persist`] with the offending record and field
/// named; referential integrity is left to [`Trace::ensure_valid`].
pub fn trace_from_json(json: &Json) -> Result<Trace, FaircrowdError> {
    check_schema(json)?;
    let mut trace = Trace {
        horizon: SimTime::from_secs(u64_field(json, "horizon", "trace")?),
        disclosure: disclosure_from_json(require(json, "disclosure", "trace")?)?,
        ground_truth: ground_truth_from_json(require(json, "ground_truth", "trace")?)?,
        ..Trace::default()
    };
    for (i, w) in arr_field(json, "workers", "trace")?.iter().enumerate() {
        trace
            .workers
            .push(worker_from_json(w, &format!("worker record {i}"))?);
    }
    for (i, t) in arr_field(json, "tasks", "trace")?.iter().enumerate() {
        trace
            .tasks
            .push(task_from_json(t, &format!("task record {i}"))?);
    }
    for (i, r) in arr_field(json, "requesters", "trace")?.iter().enumerate() {
        trace
            .requesters
            .push(requester_from_json(r, &format!("requester record {i}"))?);
    }
    for (i, s) in arr_field(json, "submissions", "trace")?.iter().enumerate() {
        trace
            .submissions
            .push(submission_from_json(s, &format!("submission record {i}"))?);
    }
    let mut events = Vec::new();
    for (i, e) in arr_field(json, "events", "trace")?.iter().enumerate() {
        events.push(event_from_json(e, &format!("event record {i}"))?);
    }
    trace.events = EventLog::from_events(events);
    Ok(trace)
}

/// The scalar fields a JSONL trace stream declares up front, decoded
/// from its header line.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonlHeader {
    /// Simulation end time.
    pub horizon: SimTime,
    /// The disclosure configuration the platform ran under.
    pub disclosure: DisclosureSet,
    /// Evaluation-only ground truth.
    pub ground_truth: GroundTruth,
}

/// One decoded JSONL record — everything a line after the header can
/// carry.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonlRecord {
    /// A worker entity record.
    Worker(Worker),
    /// A task entity record.
    Task(Task),
    /// A requester entity record.
    Requester(Requester),
    /// A submission record.
    Submission(Submission),
    /// An audit-log event record.
    Event(Event),
}

/// An incremental, line-at-a-time JSONL trace decoder — the streaming
/// half of this module.
///
/// [`trace_from_jsonl`] drains a complete in-memory file through one of
/// these; the live-audit path (`faircrowd watch`, tailing a file that
/// is still being appended to) feeds lines as they arrive and hands
/// each decoded [`JsonlRecord`] to the auditor without ever
/// materialising the whole trace. The first non-empty line fed must be
/// the schema header; it is checked (name + version) and retained as
/// [`JsonlReader::header`].
///
/// Errors name the (1-based) line they occurred on, counting **every**
/// fed line (blank lines too), so positions match the file an operator
/// opens.
#[derive(Debug, Default)]
pub struct JsonlReader {
    lineno: usize,
    header: Option<JsonlHeader>,
}

impl JsonlReader {
    /// A reader that has seen no lines yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// A reader resuming mid-stream: the header was already decoded (in
    /// an earlier process life) and `lines_consumed` physical lines of
    /// the source file — header and blank lines included — have already
    /// been fed. Subsequent [`feed_line`](Self::feed_line) errors carry
    /// absolute line numbers in the original file, so a checkpointed
    /// tailer that skips the consumed prefix still reports positions an
    /// operator can open.
    pub fn resume(header: JsonlHeader, lines_consumed: usize) -> Self {
        Self {
            lineno: lines_consumed,
            header: Some(header),
        }
    }

    /// The decoded header, once the header line has been fed.
    pub fn header(&self) -> Option<&JsonlHeader> {
        self.header.as_ref()
    }

    /// Consume the reader, keeping the decoded header (if one arrived).
    pub fn into_header(self) -> Option<JsonlHeader> {
        self.header
    }

    /// Number of lines fed so far (blank lines included).
    pub fn lines_fed(&self) -> usize {
        self.lineno
    }

    /// Feed one line (without its trailing newline; a trailing `\r`
    /// left by a CRLF-ended file is tolerated and stripped). Returns the
    /// decoded record, or `None` for blank lines and the header line.
    pub fn feed_line(&mut self, line: &str) -> Result<Option<JsonlRecord>, FaircrowdError> {
        self.lineno += 1;
        let lineno = self.lineno;
        // A file written with CRLF line endings (Windows export, or a
        // trace piped through a CRLF-normalizing tool) hands callers
        // that split on `\n` alone a line with one `\r` still attached;
        // it must decode identically, not fail mid-line.
        let line = line.strip_suffix('\r').unwrap_or(line);
        if line.trim().is_empty() {
            return Ok(None);
        }
        if self.header.is_none() {
            let header = Json::parse(line)
                .map_err(|e| FaircrowdError::persist(format!("line {lineno} (header): {e}")))?;
            check_schema(&header)?;
            // A whole-file JSON trace minified onto one line carries the
            // same schema name and version but no `format` marker; it
            // must be rejected here, not silently read as a header whose
            // entity arrays are ignored (an empty market with a clean
            // report would be a wrong verdict, not an error).
            match header.get("format").and_then(Json::as_str) {
                Some("jsonl") => {}
                other => {
                    return Err(FaircrowdError::persist(format!(
                        "line {lineno} (header): `format` is {}, expected \"jsonl\" — \
                         whole-file JSON traces are read by `trace_from_json` \
                         (CLI: `faircrowd replay`)",
                        other.map_or("missing".to_owned(), |f| format!("`{f}`"))
                    )))
                }
            }
            self.header = Some(JsonlHeader {
                horizon: SimTime::from_secs(u64_field(&header, "horizon", "header")?),
                disclosure: disclosure_from_json(require(&header, "disclosure", "header")?)?,
                ground_truth: ground_truth_from_json(require(&header, "ground_truth", "header")?)?,
            });
            return Ok(None);
        }
        let record = Json::parse(line)
            .map_err(|e| FaircrowdError::persist(format!("line {lineno}: {e}")))?;
        let members = record.as_obj().ok_or_else(|| {
            FaircrowdError::persist(format!("line {lineno}: record is not an object"))
        })?;
        let [(tag, value)] = members else {
            return Err(FaircrowdError::persist(format!(
                "line {lineno}: expected one `{{\"<record-type>\": …}}` member, got {}",
                members.len()
            )));
        };
        Ok(Some(match tag.as_str() {
            "worker" => JsonlRecord::Worker(worker_from_json(
                value,
                &format!("line {lineno} (worker record)"),
            )?),
            "task" => JsonlRecord::Task(task_from_json(
                value,
                &format!("line {lineno} (task record)"),
            )?),
            "requester" => JsonlRecord::Requester(requester_from_json(
                value,
                &format!("line {lineno} (requester record)"),
            )?),
            "submission" => JsonlRecord::Submission(submission_from_json(
                value,
                &format!("line {lineno} (submission record)"),
            )?),
            "event" => JsonlRecord::Event(event_from_json(
                value,
                &format!("line {lineno} (event record)"),
            )?),
            other => {
                return Err(FaircrowdError::persist(format!(
                    "line {lineno}: unknown record type `{other}` \
                     (expected worker | task | requester | submission | event)"
                )))
            }
        }))
    }
}

/// Decode a trace from its JSONL form: a header line, then one tagged
/// record per line — the whole-file convenience over [`JsonlReader`].
/// Errors name the (1-based) line they occurred on.
pub fn trace_from_jsonl(text: &str) -> Result<Trace, FaircrowdError> {
    let mut reader = JsonlReader::new();
    let mut trace = Trace::default();
    let mut events = Vec::new();
    for line in text.lines() {
        match reader.feed_line(line)? {
            None => {}
            Some(JsonlRecord::Worker(w)) => trace.workers.push(w),
            Some(JsonlRecord::Task(t)) => trace.tasks.push(t),
            Some(JsonlRecord::Requester(r)) => trace.requesters.push(r),
            Some(JsonlRecord::Submission(s)) => trace.submissions.push(s),
            Some(JsonlRecord::Event(e)) => events.push(e),
        }
    }
    let header = reader
        .into_header()
        .ok_or_else(|| FaircrowdError::persist("empty file (no JSONL header line)"))?;
    trace.horizon = header.horizon;
    trace.disclosure = header.disclosure;
    trace.ground_truth = header.ground_truth;
    trace.events = EventLog::from_events(events);
    Ok(trace)
}

fn check_schema(json: &Json) -> Result<(), FaircrowdError> {
    let obj_like = json
        .as_obj()
        .ok_or_else(|| FaircrowdError::persist("top-level value is not an object"))?;
    let _ = obj_like;
    let schema = json.get("schema").and_then(Json::as_str).ok_or_else(|| {
        FaircrowdError::persist("missing `schema` field — not a faircrowd trace file")
    })?;
    if schema != SCHEMA_NAME {
        return Err(FaircrowdError::persist(format!(
            "schema is `{schema}`, expected `{SCHEMA_NAME}`"
        )));
    }
    let version = u64_field(json, "version", "trace")?;
    if version != SCHEMA_VERSION {
        return Err(FaircrowdError::persist(format!(
            "unsupported schema version {version} (this build reads version {SCHEMA_VERSION})"
        )));
    }
    Ok(())
}

// ---- field helpers --------------------------------------------------

fn require<'a>(
    json: &'a Json,
    key: &str,
    ctx: impl std::fmt::Display,
) -> Result<&'a Json, FaircrowdError> {
    json.get(key)
        .ok_or_else(|| FaircrowdError::persist(format!("{ctx}: missing field `{key}`")))
}

fn u64_field(json: &Json, key: &str, ctx: impl std::fmt::Display) -> Result<u64, FaircrowdError> {
    let v = require(json, key, &ctx)?;
    v.as_u64().ok_or_else(|| {
        FaircrowdError::persist(format!(
            "{ctx}: field `{key}` should be an unsigned integer, got {}",
            v.kind()
        ))
    })
}

fn i64_field(json: &Json, key: &str, ctx: impl std::fmt::Display) -> Result<i64, FaircrowdError> {
    let v = require(json, key, &ctx)?;
    v.as_i64().ok_or_else(|| {
        FaircrowdError::persist(format!(
            "{ctx}: field `{key}` should be an integer, got {}",
            v.kind()
        ))
    })
}

fn u32_field(json: &Json, key: &str, ctx: impl std::fmt::Display) -> Result<u32, FaircrowdError> {
    let raw = u64_field(json, key, &ctx)?;
    u32::try_from(raw).map_err(|_| {
        FaircrowdError::persist(format!("{ctx}: field `{key}` = {raw} does not fit an id"))
    })
}

fn u8_field(json: &Json, key: &str, ctx: impl std::fmt::Display) -> Result<u8, FaircrowdError> {
    let raw = u64_field(json, key, &ctx)?;
    u8::try_from(raw).map_err(|_| {
        FaircrowdError::persist(format!("{ctx}: field `{key}` = {raw} does not fit a byte"))
    })
}

fn f64_field(json: &Json, key: &str, ctx: impl std::fmt::Display) -> Result<f64, FaircrowdError> {
    let v = require(json, key, &ctx)?;
    v.as_f64().ok_or_else(|| {
        FaircrowdError::persist(format!(
            "{ctx}: field `{key}` should be a number, got {}",
            v.kind()
        ))
    })
}

fn str_field<'a>(
    json: &'a Json,
    key: &str,
    ctx: impl std::fmt::Display,
) -> Result<&'a str, FaircrowdError> {
    let v = require(json, key, &ctx)?;
    v.as_str().ok_or_else(|| {
        FaircrowdError::persist(format!(
            "{ctx}: field `{key}` should be a string, got {}",
            v.kind()
        ))
    })
}

fn bool_field(json: &Json, key: &str, ctx: impl std::fmt::Display) -> Result<bool, FaircrowdError> {
    let v = require(json, key, &ctx)?;
    v.as_bool().ok_or_else(|| {
        FaircrowdError::persist(format!(
            "{ctx}: field `{key}` should be a boolean, got {}",
            v.kind()
        ))
    })
}

fn arr_field<'a>(
    json: &'a Json,
    key: &str,
    ctx: impl std::fmt::Display,
) -> Result<&'a [Json], FaircrowdError> {
    let v = require(json, key, &ctx)?;
    v.as_arr().ok_or_else(|| {
        FaircrowdError::persist(format!(
            "{ctx}: field `{key}` should be an array, got {}",
            v.kind()
        ))
    })
}

fn credits_field(
    json: &Json,
    key: &str,
    ctx: impl std::fmt::Display,
) -> Result<Credits, FaircrowdError> {
    Ok(Credits::from_millicents(i64_field(json, key, ctx)?))
}

fn duration_field(
    json: &Json,
    key: &str,
    ctx: impl std::fmt::Display,
) -> Result<SimDuration, FaircrowdError> {
    Ok(SimDuration::from_secs(u64_field(json, key, ctx)?))
}

// ---- record decoders ------------------------------------------------

fn worker_from_json(json: &Json, ctx: &str) -> Result<Worker, FaircrowdError> {
    Ok(Worker {
        id: WorkerId::new(u32_field(json, "id", ctx)?),
        declared: declared_from_json(require(json, "declared", ctx)?, ctx)?,
        computed: computed_from_json(require(json, "computed", ctx)?, ctx)?,
        skills: skills_from_json(require(json, "skills", ctx)?, ctx)?,
    })
}

fn declared_from_json(json: &Json, ctx: &str) -> Result<DeclaredAttrs, FaircrowdError> {
    let members = json.as_obj().ok_or_else(|| {
        FaircrowdError::persist(format!("{ctx}: declared attributes should be an object"))
    })?;
    let mut attrs = DeclaredAttrs::new();
    for (key, value) in members {
        attrs.set(key, attr_value_from_json(value, ctx, key)?);
    }
    Ok(attrs)
}

fn attr_value_from_json(json: &Json, ctx: &str, key: &str) -> Result<AttrValue, FaircrowdError> {
    let members = json.as_obj().unwrap_or(&[]);
    match members {
        [(tag, v)] => match (tag.as_str(), v) {
            ("bool", v) => v.as_bool().map(AttrValue::Bool),
            ("int", v) => v.as_i64().map(AttrValue::Int),
            ("real", v) => v.as_f64().map(AttrValue::Real),
            ("text", v) => v.as_str().map(|s| AttrValue::Text(s.to_owned())),
            _ => None,
        }
        .ok_or_else(|| {
            FaircrowdError::persist(format!("{ctx}: attribute `{key}` has a malformed value"))
        }),
        _ => Err(FaircrowdError::persist(format!(
            "{ctx}: attribute `{key}` should be one `{{\"bool\"|\"int\"|\"real\"|\"text\": …}}` member"
        ))),
    }
}

fn computed_from_json(json: &Json, ctx: &str) -> Result<ComputedAttrs, FaircrowdError> {
    let mut extra = std::collections::BTreeMap::new();
    if let Some(members) = require(json, "extra", ctx)?.as_obj() {
        for (key, value) in members {
            let v = value.as_f64().ok_or_else(|| {
                FaircrowdError::persist(format!("{ctx}: extra attribute `{key}` is not a number"))
            })?;
            extra.insert(key.clone(), v);
        }
    } else {
        return Err(FaircrowdError::persist(format!(
            "{ctx}: field `extra` should be an object"
        )));
    }
    Ok(ComputedAttrs {
        acceptance_ratio: f64_field(json, "acceptance_ratio", ctx)?,
        tasks_approved: u64_field(json, "tasks_approved", ctx)?,
        tasks_rejected: u64_field(json, "tasks_rejected", ctx)?,
        tasks_submitted: u64_field(json, "tasks_submitted", ctx)?,
        quality_estimate: f64_field(json, "quality_estimate", ctx)?,
        mean_approval_latency: duration_field(json, "mean_approval_latency", ctx)?,
        total_earnings: credits_field(json, "total_earnings", ctx)?,
        sessions: u64_field(json, "sessions", ctx)?,
        extra,
    })
}

fn skills_from_json(json: &Json, ctx: &str) -> Result<SkillVector, FaircrowdError> {
    let bits = json.as_str().ok_or_else(|| {
        FaircrowdError::persist(format!("{ctx}: skill vector should be a 0/1 string"))
    })?;
    let mut bools = Vec::with_capacity(bits.len());
    for c in bits.chars() {
        match c {
            '0' => bools.push(false),
            '1' => bools.push(true),
            other => {
                return Err(FaircrowdError::persist(format!(
                    "{ctx}: skill vector has invalid character `{other}`"
                )))
            }
        }
    }
    Ok(SkillVector::from_bools(bools))
}

fn task_from_json(json: &Json, ctx: &str) -> Result<Task, FaircrowdError> {
    Ok(Task {
        id: TaskId::new(u32_field(json, "id", ctx)?),
        requester: RequesterId::new(u32_field(json, "requester", ctx)?),
        campaign: CampaignId::new(u32_field(json, "campaign", ctx)?),
        skills: skills_from_json(require(json, "skills", ctx)?, ctx)?,
        reward: credits_field(json, "reward", ctx)?,
        kind: kind_from_json(require(json, "kind", ctx)?, ctx)?,
        assignments_wanted: u32_field(json, "assignments_wanted", ctx)?,
        est_duration: duration_field(json, "est_duration", ctx)?,
        conditions: conditions_from_json(require(json, "conditions", ctx)?, ctx)?,
    })
}

fn kind_from_json(json: &Json, ctx: &str) -> Result<TaskKind, FaircrowdError> {
    match str_field(json, "name", ctx)? {
        "labeling" => Ok(TaskKind::Labeling {
            classes: u8_field(json, "classes", ctx)?,
        }),
        "free-text" => Ok(TaskKind::FreeText),
        "ranking" => Ok(TaskKind::Ranking {
            items: u8_field(json, "items", ctx)?,
        }),
        "survey" => Ok(TaskKind::Survey),
        other => Err(FaircrowdError::persist(format!(
            "{ctx}: unknown task kind `{other}`"
        ))),
    }
}

fn conditions_from_json(json: &Json, ctx: &str) -> Result<TaskConditions, FaircrowdError> {
    if json.as_obj().is_none() {
        return Err(FaircrowdError::persist(format!(
            "{ctx}: conditions should be an object"
        )));
    }
    let opt_str = |key: &str| -> Result<Option<String>, FaircrowdError> {
        match json.get(key) {
            None => Ok(None),
            Some(_) => Ok(Some(str_field(json, key, ctx)?.to_owned())),
        }
    };
    Ok(TaskConditions {
        stated_hourly_wage: match json.get("stated_hourly_wage") {
            None => None,
            Some(_) => Some(credits_field(json, "stated_hourly_wage", ctx)?),
        },
        stated_payment_delay: match json.get("stated_payment_delay") {
            None => None,
            Some(_) => Some(duration_field(json, "stated_payment_delay", ctx)?),
        },
        recruitment_criteria: opt_str("recruitment_criteria")?,
        rejection_criteria: opt_str("rejection_criteria")?,
        evaluation_scheme: opt_str("evaluation_scheme")?,
    })
}

fn requester_from_json(json: &Json, ctx: &str) -> Result<Requester, FaircrowdError> {
    Ok(Requester {
        id: RequesterId::new(u32_field(json, "id", ctx)?),
        name: str_field(json, "name", ctx)?.to_owned(),
        approved: u64_field(json, "approved", ctx)?,
        rejected: u64_field(json, "rejected", ctx)?,
        rejections_with_feedback: u64_field(json, "rejections_with_feedback", ctx)?,
        mean_decision_latency: duration_field(json, "mean_decision_latency", ctx)?,
        bonuses_promised: u64_field(json, "bonuses_promised", ctx)?,
        bonuses_paid: u64_field(json, "bonuses_paid", ctx)?,
    })
}

fn submission_from_json(json: &Json, ctx: &str) -> Result<Submission, FaircrowdError> {
    Ok(Submission {
        id: SubmissionId::new(u32_field(json, "id", ctx)?),
        task: TaskId::new(u32_field(json, "task", ctx)?),
        worker: WorkerId::new(u32_field(json, "worker", ctx)?),
        contribution: contribution_from_json(require(json, "contribution", ctx)?, ctx)?,
        started_at: SimTime::from_secs(u64_field(json, "started_at", ctx)?),
        submitted_at: SimTime::from_secs(u64_field(json, "submitted_at", ctx)?),
    })
}

fn contribution_from_json(json: &Json, ctx: &str) -> Result<Contribution, FaircrowdError> {
    let members = json.as_obj().unwrap_or(&[]);
    let [(tag, value)] = members else {
        return Err(FaircrowdError::persist(format!(
            "{ctx}: contribution should be one `{{\"label\"|\"text\"|\"ranking\"|\"numeric\": …}}` member"
        )));
    };
    match (tag.as_str(), value) {
        ("label", v) => v
            .as_u64()
            .and_then(|l| u8::try_from(l).ok())
            .map(Contribution::Label),
        ("text", v) => v.as_str().map(|s| Contribution::Text(s.to_owned())),
        ("ranking", v) => v.as_arr().and_then(|items| {
            items
                .iter()
                .map(|i| i.as_u64().and_then(|i| u16::try_from(i).ok()))
                .collect::<Option<Vec<u16>>>()
                .map(Contribution::Ranking)
        }),
        ("numeric", v) => v.as_f64().map(Contribution::Numeric),
        _ => None,
    }
    .ok_or_else(|| FaircrowdError::persist(format!("{ctx}: malformed `{tag}` contribution")))
}

fn event_from_json(json: &Json, ctx: &str) -> Result<Event, FaircrowdError> {
    let time = SimTime::from_secs(u64_field(json, "time", ctx)?);
    let seq = u64_field(json, "seq", ctx)?;
    let tag = str_field(json, "kind", ctx)?;
    let worker = |key: &str| Ok::<_, FaircrowdError>(WorkerId::new(u32_field(json, key, ctx)?));
    let task = || Ok::<_, FaircrowdError>(TaskId::new(u32_field(json, "task", ctx)?));
    let submission =
        || Ok::<_, FaircrowdError>(SubmissionId::new(u32_field(json, "submission", ctx)?));
    let requester =
        || Ok::<_, FaircrowdError>(RequesterId::new(u32_field(json, "requester", ctx)?));
    let kind = match tag {
        "task_posted" => EventKind::TaskPosted {
            task: task()?,
            requester: requester()?,
        },
        "task_visible" => EventKind::TaskVisible {
            task: task()?,
            worker: worker("worker")?,
        },
        "task_accepted" => EventKind::TaskAccepted {
            task: task()?,
            worker: worker("worker")?,
        },
        "work_started" => EventKind::WorkStarted {
            task: task()?,
            worker: worker("worker")?,
        },
        "submission_received" => EventKind::SubmissionReceived {
            submission: submission()?,
            task: task()?,
            worker: worker("worker")?,
        },
        "submission_approved" => EventKind::SubmissionApproved {
            submission: submission()?,
            task: task()?,
            worker: worker("worker")?,
        },
        "submission_rejected" => EventKind::SubmissionRejected {
            submission: submission()?,
            task: task()?,
            worker: worker("worker")?,
            feedback: match json.get("feedback") {
                None => None,
                Some(_) => Some(str_field(json, "feedback", ctx)?.to_owned()),
            },
        },
        "payment_issued" => EventKind::PaymentIssued {
            submission: submission()?,
            task: task()?,
            worker: worker("worker")?,
            amount: credits_field(json, "amount", ctx)?,
        },
        "bonus_promised" => EventKind::BonusPromised {
            worker: worker("worker")?,
            requester: requester()?,
            amount: credits_field(json, "amount", ctx)?,
        },
        "bonus_paid" => EventKind::BonusPaid {
            worker: worker("worker")?,
            requester: requester()?,
            amount: credits_field(json, "amount", ctx)?,
        },
        "bonus_reneged" => EventKind::BonusReneged {
            worker: worker("worker")?,
            requester: requester()?,
            amount: credits_field(json, "amount", ctx)?,
        },
        "task_canceled" => EventKind::TaskCanceled {
            task: task()?,
            reason: match str_field(json, "reason", ctx)? {
                "target_reached" => CancelReason::TargetReached,
                "budget_exhausted" => CancelReason::BudgetExhausted,
                "withdrawn" => CancelReason::Withdrawn,
                other => {
                    return Err(FaircrowdError::persist(format!(
                        "{ctx}: unknown cancel reason `{other}`"
                    )))
                }
            },
        },
        "work_interrupted" => EventKind::WorkInterrupted {
            task: task()?,
            worker: worker("worker")?,
            invested: duration_field(json, "invested", ctx)?,
            compensated: bool_field(json, "compensated", ctx)?,
        },
        "worker_flagged" => EventKind::WorkerFlagged {
            worker: worker("worker")?,
            score: f64_field(json, "score", ctx)?,
            detector: str_field(json, "detector", ctx)?.to_owned(),
        },
        "disclosure_shown" => EventKind::DisclosureShown {
            worker: worker("worker")?,
            item: {
                let name = str_field(json, "item", ctx)?;
                DisclosureItem::from_name(name).ok_or_else(|| {
                    FaircrowdError::persist(format!("{ctx}: unknown disclosure item `{name}`"))
                })?
            },
        },
        "session_started" => EventKind::SessionStarted {
            worker: worker("worker")?,
        },
        "session_ended" => EventKind::SessionEnded {
            worker: worker("worker")?,
        },
        "worker_quit" => EventKind::WorkerQuit {
            worker: worker("worker")?,
            reason: match str_field(json, "reason", ctx)? {
                "frustration" => QuitReason::Frustration,
                "natural_churn" => QuitReason::NaturalChurn,
                other => {
                    return Err(FaircrowdError::persist(format!(
                        "{ctx}: unknown quit reason `{other}`"
                    )))
                }
            },
        },
        other => {
            return Err(FaircrowdError::persist(format!(
                "{ctx}: unknown event kind `{other}`"
            )))
        }
    };
    Ok(Event { time, seq, kind })
}

fn disclosure_from_json(json: &Json) -> Result<DisclosureSet, FaircrowdError> {
    let grants = json.as_arr().ok_or_else(|| {
        FaircrowdError::persist("disclosure set should be an array of [item, audience] pairs")
    })?;
    let mut set = DisclosureSet::opaque();
    for (i, grant) in grants.iter().enumerate() {
        let pair = grant.as_arr().unwrap_or(&[]);
        let [item, audience] = pair else {
            return Err(FaircrowdError::persist(format!(
                "disclosure grant {i} should be an [item, audience] pair"
            )));
        };
        let item_name = item.as_str().unwrap_or("");
        let audience_name = audience.as_str().unwrap_or("");
        let item = DisclosureItem::from_name(item_name).ok_or_else(|| {
            FaircrowdError::persist(format!("disclosure grant {i}: unknown item `{item_name}`"))
        })?;
        let audience = Audience::from_name(audience_name).ok_or_else(|| {
            FaircrowdError::persist(format!(
                "disclosure grant {i}: unknown audience `{audience_name}`"
            ))
        })?;
        set.grant(item, audience);
    }
    Ok(set)
}

fn ground_truth_from_json(json: &Json) -> Result<GroundTruth, FaircrowdError> {
    let ctx = "ground truth";
    let mut gt = GroundTruth::default();
    for (i, w) in arr_field(json, "malicious_workers", ctx)?
        .iter()
        .enumerate()
    {
        let raw = w
            .as_u64()
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| {
                FaircrowdError::persist(format!("{ctx}: malicious worker {i} is not an id"))
            })?;
        gt.malicious_workers.insert(WorkerId::new(raw));
    }
    for (i, pair) in arr_field(json, "true_labels", ctx)?.iter().enumerate() {
        let items = pair.as_arr().unwrap_or(&[]);
        let [t, l] = items else {
            return Err(FaircrowdError::persist(format!(
                "{ctx}: true label {i} should be a [task, label] pair"
            )));
        };
        let task = t.as_u64().and_then(|v| u32::try_from(v).ok());
        let label = l.as_u64().and_then(|v| u8::try_from(v).ok());
        let (Some(task), Some(label)) = (task, label) else {
            return Err(FaircrowdError::persist(format!(
                "{ctx}: true label {i} has a malformed task id or label"
            )));
        };
        gt.true_labels.insert(TaskId::new(task), label);
    }
    Ok(gt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskBuilder;

    /// A trace touching every encoder branch: all four contribution
    /// kinds, optional fields present and absent, every reason enum,
    /// computed extras, disclosures and ground truth.
    fn full_trace() -> Trace {
        let mut trace = Trace::default();
        let mut w0 = Worker::new(
            WorkerId::new(0),
            DeclaredAttrs::new()
                .with("country", AttrValue::Text("PH".into()))
                .with("adult", AttrValue::Bool(true))
                .with("age", AttrValue::Int(34))
                .with("hours", AttrValue::Real(12.5)),
            SkillVector::from_bools([true, false, true]),
        );
        w0.computed.tasks_approved = 3;
        w0.computed.acceptance_ratio = 0.75;
        w0.computed.total_earnings = Credits::from_millicents(1_234_567);
        w0.computed.extra.insert("hits_today".into(), 7.0);
        let w1 = Worker::new(
            WorkerId::new(1),
            DeclaredAttrs::new(),
            SkillVector::with_len(3),
        );
        trace.workers = vec![w0, w1];
        trace.requesters = vec![Requester::new(RequesterId::new(0), "acme")];
        trace.tasks = vec![
            TaskBuilder::new(
                TaskId::new(0),
                RequesterId::new(0),
                SkillVector::from_bools([true, false, false]),
                Credits::from_cents(10),
            )
            .kind(TaskKind::Labeling { classes: 3 })
            .conditions(TaskConditions::fully_disclosed(
                Credits::from_dollars(6),
                SimDuration::from_days(1),
            ))
            .build(),
            TaskBuilder::new(
                TaskId::new(1),
                RequesterId::new(0),
                SkillVector::with_len(3),
                Credits::from_cents(20),
            )
            .kind(TaskKind::Ranking { items: 5 })
            .build(),
        ];
        for (i, contribution) in [
            Contribution::Label(2),
            Contribution::Text("quick \"brown\" fox\nüber".into()),
            Contribution::Ranking(vec![2, 0, 1]),
            Contribution::Numeric(0.25),
        ]
        .into_iter()
        .enumerate()
        {
            trace.submissions.push(Submission {
                id: SubmissionId::new(i as u32),
                task: TaskId::new((i % 2) as u32),
                worker: WorkerId::new((i % 2) as u32),
                contribution,
                started_at: SimTime::from_secs(10 + i as u64),
                submitted_at: SimTime::from_secs(100 + i as u64),
            });
        }
        let kinds = vec![
            EventKind::TaskPosted {
                task: TaskId::new(0),
                requester: RequesterId::new(0),
            },
            EventKind::TaskVisible {
                task: TaskId::new(0),
                worker: WorkerId::new(0),
            },
            EventKind::TaskAccepted {
                task: TaskId::new(0),
                worker: WorkerId::new(0),
            },
            EventKind::SessionStarted {
                worker: WorkerId::new(0),
            },
            EventKind::WorkStarted {
                task: TaskId::new(0),
                worker: WorkerId::new(0),
            },
            EventKind::SubmissionReceived {
                submission: SubmissionId::new(0),
                task: TaskId::new(0),
                worker: WorkerId::new(0),
            },
            EventKind::SubmissionApproved {
                submission: SubmissionId::new(0),
                task: TaskId::new(0),
                worker: WorkerId::new(0),
            },
            EventKind::SubmissionRejected {
                submission: SubmissionId::new(1),
                task: TaskId::new(1),
                worker: WorkerId::new(1),
                feedback: Some("too slow".into()),
            },
            EventKind::SubmissionRejected {
                submission: SubmissionId::new(2),
                task: TaskId::new(0),
                worker: WorkerId::new(0),
                feedback: None,
            },
            EventKind::PaymentIssued {
                submission: SubmissionId::new(0),
                task: TaskId::new(0),
                worker: WorkerId::new(0),
                amount: Credits::from_millicents(10_500),
            },
            EventKind::BonusPromised {
                worker: WorkerId::new(0),
                requester: RequesterId::new(0),
                amount: Credits::from_cents(5),
            },
            EventKind::BonusPaid {
                worker: WorkerId::new(0),
                requester: RequesterId::new(0),
                amount: Credits::from_cents(5),
            },
            EventKind::BonusReneged {
                worker: WorkerId::new(1),
                requester: RequesterId::new(0),
                amount: Credits::from_cents(7),
            },
            EventKind::TaskCanceled {
                task: TaskId::new(1),
                reason: CancelReason::BudgetExhausted,
            },
            EventKind::WorkInterrupted {
                task: TaskId::new(1),
                worker: WorkerId::new(1),
                invested: SimDuration::from_mins(4),
                compensated: false,
            },
            EventKind::WorkerFlagged {
                worker: WorkerId::new(1),
                score: 0.875,
                detector: "spam".into(),
            },
            EventKind::DisclosureShown {
                worker: WorkerId::new(0),
                item: DisclosureItem::WorkerEarnings,
            },
            EventKind::SessionEnded {
                worker: WorkerId::new(0),
            },
            EventKind::WorkerQuit {
                worker: WorkerId::new(1),
                reason: QuitReason::NaturalChurn,
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            trace.events.push(SimTime::from_secs(i as u64), kind);
        }
        trace.disclosure = DisclosureSet::opaque()
            .with(DisclosureItem::HourlyWage, Audience::Workers)
            .with(DisclosureItem::WorkerEarnings, Audience::Subject);
        trace
            .ground_truth
            .malicious_workers
            .insert(WorkerId::new(1));
        trace.ground_truth.true_labels.insert(TaskId::new(0), 2);
        trace.horizon = SimTime::from_secs(1000);
        trace
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let trace = full_trace();
        let json = trace_to_json(&trace);
        for text in [json.to_pretty(), json.to_compact()] {
            let back = trace_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, trace);
        }
    }

    #[test]
    fn jsonl_roundtrip_is_exact() {
        let trace = full_trace();
        let lines = trace_to_jsonl(&trace);
        let back = trace_from_jsonl(&lines).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn jsonl_decodes_crlf_endings_byte_identically() {
        let trace = full_trace();
        let lf = trace_to_jsonl(&trace);
        let crlf = lf.replace('\n', "\r\n");
        // Whole-file decoder: the CRLF file yields the same trace, and
        // re-encoding it reproduces the original LF bytes exactly.
        let back = trace_from_jsonl(&crlf).unwrap();
        assert_eq!(back, trace);
        assert_eq!(trace_to_jsonl(&back), lf);
        // Streaming decoder fed `\r`-terminated lines (what a caller
        // splitting on `\n` alone sees): identical records, identical
        // header, and blank CRLF lines still count into positions.
        let mut plain = JsonlReader::new();
        let mut carried = JsonlReader::new();
        for line in lf.lines() {
            let with_cr = format!("{line}\r");
            assert_eq!(
                carried.feed_line(&with_cr).unwrap(),
                plain.feed_line(line).unwrap()
            );
        }
        assert_eq!(carried.header(), plain.header());
        assert_eq!(carried.lines_fed(), plain.lines_fed());
    }

    #[test]
    fn resumed_reader_reports_absolute_line_numbers() {
        let trace = full_trace();
        let lines: Vec<&str> = trace_to_jsonl(&trace).leak().lines().collect();
        let mut fresh = JsonlReader::new();
        for line in &lines[..3] {
            fresh.feed_line(line).unwrap();
        }
        let mut resumed = JsonlReader::resume(fresh.header().unwrap().clone(), 3);
        assert_eq!(resumed.lines_fed(), 3);
        assert_eq!(
            resumed.feed_line(lines[3]).unwrap(),
            fresh.feed_line(lines[3]).unwrap()
        );
        let err = resumed.feed_line("{oops").unwrap_err();
        assert!(err.to_string().contains("line 5"), "{err}");
    }

    #[test]
    fn encoding_is_deterministic() {
        let trace = full_trace();
        assert_eq!(
            trace_to_json(&trace).to_pretty(),
            trace_to_json(&trace).to_pretty()
        );
        // encode → decode → encode is byte-identical
        let text = trace_to_json(&trace).to_pretty();
        let back = trace_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(trace_to_json(&back).to_pretty(), text);
        let lines = trace_to_jsonl(&trace);
        assert_eq!(trace_to_jsonl(&trace_from_jsonl(&lines).unwrap()), lines);
    }

    #[test]
    fn wrong_schema_name_is_rejected() {
        let err = trace_from_json(&Json::parse(r#"{"schema":"other","version":1}"#).unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("faircrowd-trace"), "{err}");
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut json = trace_to_json(&full_trace());
        if let Json::Obj(members) = &mut json {
            for (k, v) in members.iter_mut() {
                if k == "version" {
                    *v = Json::uint(99);
                }
            }
        }
        let err = trace_from_json(&json).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("version 99"), "{text}");
        assert!(text.contains("version 1"), "{text}");
    }

    #[test]
    fn missing_schema_field_is_rejected() {
        let err = trace_from_json(&Json::parse(r#"{"version":1}"#).unwrap()).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
    }

    #[test]
    fn malformed_records_name_the_field() {
        let mut trace = full_trace();
        trace.workers.truncate(1);
        let mut json = trace_to_json(&trace);
        // Corrupt the worker's id into a string.
        if let Json::Obj(members) = &mut json {
            for (k, v) in members.iter_mut() {
                if k == "workers" {
                    if let Json::Arr(workers) = v {
                        if let Json::Obj(fields) = &mut workers[0] {
                            fields[0].1 = Json::str("zero");
                        }
                    }
                }
            }
        }
        let err = trace_from_json(&json).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("worker record 0"), "{text}");
        assert!(text.contains("`id`"), "{text}");
    }

    #[test]
    fn jsonl_record_errors_name_the_line_not_an_index() {
        // A malformed field inside a JSONL record must point at the
        // file line (like the parse errors do), not at a JSON-mode
        // array index the operator can't count to in the file.
        let trace = full_trace();
        let lines = trace_to_jsonl(&trace);
        let mut broken: Vec<String> = lines.lines().map(str::to_owned).collect();
        // Line 2 is the first worker record; corrupt its id.
        assert!(broken[1].starts_with("{\"worker\""));
        broken[1] = broken[1].replacen("\"id\":0", "\"id\":\"zero\"", 1);
        let err = trace_from_jsonl(&broken.join("\n")).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 2 (worker record)"), "{text}");
        assert!(text.contains("`id`"), "{text}");
    }

    #[test]
    fn jsonl_errors_carry_line_numbers() {
        let trace = full_trace();
        let lines = trace_to_jsonl(&trace);
        let mut broken: Vec<&str> = lines.lines().collect();
        broken[3] = r#"{"martian": {}}"#;
        let err = trace_from_jsonl(&broken.join("\n")).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 4"), "{text}");
        assert!(text.contains("martian"), "{text}");
    }

    #[test]
    fn streaming_reader_yields_records_in_file_order() {
        let trace = full_trace();
        let lines = trace_to_jsonl(&trace);
        let mut reader = JsonlReader::new();
        let mut back = Trace::default();
        let mut events = Vec::new();
        for line in lines.lines() {
            match reader.feed_line(line).unwrap() {
                None => {}
                Some(JsonlRecord::Worker(w)) => back.workers.push(w),
                Some(JsonlRecord::Task(t)) => back.tasks.push(t),
                Some(JsonlRecord::Requester(r)) => back.requesters.push(r),
                Some(JsonlRecord::Submission(s)) => back.submissions.push(s),
                Some(JsonlRecord::Event(e)) => events.push(e),
            }
        }
        let header = reader.into_header().expect("header line was fed");
        back.horizon = header.horizon;
        back.disclosure = header.disclosure;
        back.ground_truth = header.ground_truth;
        back.events = EventLog::from_events(events);
        assert_eq!(back, trace, "streaming decode must equal the batch decode");
    }

    #[test]
    fn streaming_reader_counts_blank_lines_into_positions() {
        let trace = full_trace();
        let lines = trace_to_jsonl(&trace);
        let mut reader = JsonlReader::new();
        reader.feed_line("").unwrap();
        reader.feed_line("   ").unwrap();
        let mut fed = 2;
        let mut broke = None;
        for line in lines.lines() {
            fed += 1;
            if fed == 5 {
                broke = Some(reader.feed_line("{ not json").unwrap_err());
                break;
            }
            reader.feed_line(line).unwrap();
        }
        let text = broke.expect("line 5 must error").to_string();
        assert!(text.contains("line 5"), "{text}");
        assert_eq!(reader.lines_fed(), 5);
    }

    #[test]
    fn streaming_reader_rejects_minified_whole_file_json() {
        // Same schema name/version, no `format` marker: reading it as a
        // JSONL header would silently drop every entity array on the
        // line and report an empty (clean!) market.
        let compact = trace_to_json(&full_trace()).to_compact();
        let err = trace_from_jsonl(&compact).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("`format` is missing"), "{text}");
        assert!(text.contains("trace_from_json"), "{text}");
        let mut reader = JsonlReader::new();
        assert!(reader.feed_line(&compact).is_err());
        assert!(reader.header().is_none());
    }

    #[test]
    fn streaming_reader_reports_sparse_seq_position_via_validate() {
        // A JSONL stream whose event seqs go sparse mid-stream decodes
        // record by record (the reader does not guess at repair), and
        // the log-level validation then names exactly which seq broke —
        // the contract `faircrowd watch` builds its line-tagged ingest
        // errors on.
        let trace = full_trace();
        let lines = trace_to_jsonl(&trace);
        let mut broken: Vec<String> = lines.lines().map(str::to_owned).collect();
        let target = broken
            .iter()
            .position(|l| l.contains("\"seq\":3"))
            .expect("event with seq 3 exists");
        broken[target] = broken[target].replacen("\"seq\":3", "\"seq\":9", 1);
        let back = trace_from_jsonl(&broken.join("\n")).unwrap();
        let defect = back.events.as_slice();
        assert_eq!(defect[3].seq, 9, "the sparse seq survives decoding");
        let err = back.events.validate().unwrap_err();
        assert_eq!(
            err,
            crate::event::LogDefect::SparseSeq {
                index: 3,
                expected: 3,
                found: 9,
            }
        );
        assert!(err.to_string().contains("seq 9"), "{err}");
    }

    #[test]
    fn streaming_reader_reports_time_regression_position_via_validate() {
        let trace = full_trace();
        let lines = trace_to_jsonl(&trace);
        let mut broken: Vec<String> = lines.lines().map(str::to_owned).collect();
        let target = broken
            .iter()
            .position(|l| l.contains("\"time\":5,\"seq\":5"))
            .expect("event at t=5s exists");
        broken[target] = broken[target].replacen("\"time\":5", "\"time\":2", 1);
        let back = trace_from_jsonl(&broken.join("\n")).unwrap();
        let err = back.events.validate().unwrap_err();
        assert!(
            matches!(
                err,
                crate::event::LogDefect::TimeRegression {
                    index: 5,
                    seq: 5,
                    ..
                }
            ),
            "{err:?}"
        );
        let text = err.to_string();
        assert!(text.contains("seq 5"), "{text}");
        assert!(text.contains("regressing"), "{text}");
    }

    #[test]
    fn tampered_seq_numbers_survive_decoding_for_validate_to_catch() {
        // from_events must not silently repair sequence numbers: a log
        // whose seqs were tampered with decodes, then fails validate().
        let trace = full_trace();
        let mut json = trace_to_json(&trace);
        if let Json::Obj(members) = &mut json {
            for (k, v) in members.iter_mut() {
                if k == "events" {
                    if let Json::Arr(events) = v {
                        if let Json::Obj(fields) = &mut events[0] {
                            for (fk, fv) in fields.iter_mut() {
                                if fk == "seq" {
                                    *fv = Json::uint(42);
                                }
                            }
                        }
                    }
                }
            }
        }
        let back = trace_from_json(&json).unwrap();
        assert!(
            !back.validate().is_empty(),
            "tampered seq must fail validation"
        );
    }
}
