//! Assignment discrimination and its repair.
//!
//! Reproduces the §3.1.1 story in miniature: the same market run under
//! the requester-centric optimiser violates Axiom 1 (similar workers see
//! different tasks), and wrapping the *same* optimiser in the
//! exposure-parity enforcement middleware repairs the violation without
//! touching the assignments.
//!
//! ```sh
//! cargo run --example assignment_fairness
//! ```

use faircrowd::core::metrics;
use faircrowd::prelude::*;

fn market(policy: PolicyChoice) -> ScenarioConfig {
    let full_time = |mut p: WorkerPopulation| {
        p.participation = 1.0; // controlled condition: everyone online
        p
    };
    ScenarioConfig {
        seed: 7,
        rounds: 36,
        n_skills: 4,
        workers: vec![full_time(WorkerPopulation::diligent(24))],
        campaigns: vec![
            CampaignSpec::labeling("acme", 40, 10),
            CampaignSpec::labeling("globex", 40, 10),
        ],
        policy,
        ..Default::default()
    }
}

fn main() {
    let engine = AuditEngine::with_defaults();
    let policies = [
        PolicyChoice::SelfSelection,
        PolicyChoice::RequesterCentric,
        PolicyChoice::ParityOver(Box::new(PolicyChoice::RequesterCentric)),
    ];

    println!("policy                        A1     A2   exposure-gini  violations");
    println!("--------------------------------------------------------------------");
    for policy in policies {
        let trace = faircrowd::sim::run(market(policy.clone()));
        let report = engine.run_axioms(
            &trace,
            &[AxiomId::A1WorkerAssignment, AxiomId::A2RequesterAssignment],
        );
        println!(
            "{:<26} {:>6.3} {:>6.3} {:>14.3}  {:>9}",
            policy.label(),
            report.score_of(AxiomId::A1WorkerAssignment),
            report.score_of(AxiomId::A2RequesterAssignment),
            metrics::exposure_gini(&trace),
            report.total_violations(),
        );
        // Show one concrete witness for the discriminatory policy.
        if let Some(v) = report.axioms.iter().flat_map(|r| r.violations.iter()).next() {
            println!("    e.g. {}", v.description);
        }
    }

    println!(
        "\nThe requester-centric optimiser concentrates exposure on its favourite \
         workers; the exposure-parity wrapper (§3.3.1 'fairness by design') \
         restores equal access for similar workers while keeping the exact same \
         assignments — fairness here costs the requester nothing."
    );
}
