//! Karger–Oh–Shah task allocation.
//!
//! The allocation half of the budget-optimal scheme (Karger, Oh, Shah —
//! cited as \[11\]; the message-passing decoder lives in
//! `faircrowd_quality::kos`). Tasks are assigned to workers through a
//! random **(l, r)-regular bipartite graph**: each task is given to `l`
//! distinct randomly chosen workers and each worker receives at most `r`
//! tasks. Random regularity is what makes the decoder's density evolution
//! work; it also makes the allocation *statistically* fair in exposure —
//! every qualified worker is equally likely to see any task, which gives
//! the policy an interesting middle position in E1.

use crate::policy::{AssignInput, AssignmentOutcome, AssignmentPolicy};
use rand::seq::SliceRandom;
use rand::RngCore;
use std::collections::BTreeMap;

/// Random (l, r)-regular allocation.
#[derive(Debug, Clone, Copy)]
pub struct KosAllocation {
    /// Workers per task (left degree).
    pub l: u32,
    /// Maximum tasks per worker (right degree).
    pub r: u32,
}

impl Default for KosAllocation {
    fn default() -> Self {
        KosAllocation { l: 3, r: 5 }
    }
}

impl AssignmentPolicy for KosAllocation {
    fn name(&self) -> &'static str {
        "kos-regular"
    }

    fn assign(&mut self, input: &AssignInput, rng: &mut dyn RngCore) -> AssignmentOutcome {
        let mut outcome = AssignmentOutcome::default();
        // Remaining right-degree per worker, bounded by both `r` and the
        // worker's declared capacity.
        let mut budget: BTreeMap<_, u32> = input
            .workers
            .iter()
            .map(|w| (w.id, w.capacity.min(self.r)))
            .collect();

        let mut task_order: Vec<usize> = (0..input.tasks.len()).collect();
        task_order.shuffle(rng);

        for ti in task_order {
            let t = &input.tasks[ti];
            let want = self.l.min(t.slots);
            // candidate qualified workers with remaining budget
            let mut candidates: Vec<usize> = input
                .workers
                .iter()
                .enumerate()
                .filter(|(_, w)| budget[&w.id] > 0 && w.qualifies(t))
                .map(|(wi, _)| wi)
                .collect();
            candidates.shuffle(rng);
            for wi in candidates.into_iter().take(want as usize) {
                let w = &input.workers[wi];
                *budget.get_mut(&w.id).expect("budget entry") -= 1;
                outcome.assign(w.id, t.id);
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::fixtures::small_market;
    use crate::policy::{TaskView, WorkerView};
    use faircrowd_model::ids::{RequesterId, TaskId, WorkerId};
    use faircrowd_model::money::Credits;
    use faircrowd_model::skills::SkillVector;
    use faircrowd_model::time::SimDuration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A uniform market with no skill requirements.
    fn uniform_market(n_tasks: u32, n_workers: u32, slots: u32, capacity: u32) -> AssignInput {
        AssignInput {
            tasks: (0..n_tasks)
                .map(|i| TaskView {
                    id: TaskId::new(i),
                    requester: RequesterId::new(0),
                    skills: SkillVector::with_len(0),
                    reward: Credits::from_cents(10),
                    slots,
                    est_duration: SimDuration::from_mins(5),
                })
                .collect(),
            workers: (0..n_workers)
                .map(|i| WorkerView {
                    id: WorkerId::new(i),
                    skills: SkillVector::with_len(0),
                    quality: 0.8,
                    capacity,
                    group: None,
                })
                .collect(),
        }
    }

    #[test]
    fn respects_left_degree() {
        let m = uniform_market(10, 20, 5, 10);
        let mut policy = KosAllocation { l: 3, r: 10 };
        let o = policy.assign(&m, &mut StdRng::seed_from_u64(0));
        let mut per_task: BTreeMap<TaskId, usize> = BTreeMap::new();
        for (_, t) in &o.assignments {
            *per_task.entry(*t).or_insert(0) += 1;
        }
        for (&task, &n) in &per_task {
            assert!(n <= 3, "{task} has degree {n} > l");
        }
        // with abundant workers every task reaches exactly l
        assert!(per_task.values().all(|&n| n == 3));
    }

    #[test]
    fn respects_right_degree_and_capacity() {
        let m = uniform_market(30, 5, 3, 100);
        let mut policy = KosAllocation { l: 2, r: 4 };
        let o = policy.assign(&m, &mut StdRng::seed_from_u64(1));
        let mut per_worker: BTreeMap<WorkerId, usize> = BTreeMap::new();
        for (w, _) in &o.assignments {
            *per_worker.entry(*w).or_insert(0) += 1;
        }
        for (&w, &n) in &per_worker {
            assert!(n <= 4, "{w} has degree {n} > r");
        }
    }

    #[test]
    fn feasible_on_small_market() {
        let m = small_market();
        let mut policy = KosAllocation::default();
        let o = policy.assign(&m, &mut StdRng::seed_from_u64(2));
        assert!(o.check_feasible(&m).is_empty());
    }

    #[test]
    fn exposure_is_statistically_even() {
        // over many runs, each of 10 interchangeable workers should be
        // exposed a similar number of times
        let m = uniform_market(6, 10, 1, 10);
        let mut counts: BTreeMap<WorkerId, usize> = BTreeMap::new();
        for seed in 0..200 {
            let mut policy = KosAllocation { l: 3, r: 10 };
            let o = policy.assign(&m, &mut StdRng::seed_from_u64(seed));
            for (w, vis) in &o.visibility {
                *counts.entry(*w).or_insert(0) += vis.len();
            }
        }
        let max = *counts.values().max().unwrap() as f64;
        let min = *counts.values().min().unwrap() as f64;
        assert!(
            min / max > 0.7,
            "exposure too uneven across runs: min {min} max {max}"
        );
    }

    #[test]
    fn qualification_still_respected() {
        let mut m = uniform_market(2, 2, 2, 2);
        // task 1 requires a skill nobody has
        m.tasks[1].skills = SkillVector::from_bools([true]);
        let mut policy = KosAllocation::default();
        let o = policy.assign(&m, &mut StdRng::seed_from_u64(3));
        assert!(o.assignments.iter().all(|(_, t)| t.raw() != 1));
    }
}
