//! The TPL abstract syntax tree.
//!
//! ```text
//! document  := policy*
//! policy    := "policy" STRING "{" decl* "}"
//! decl      := "audience" IDENT "=" audience-expr ";"
//!            | "disclose" PATH "to" audience-ref condition? ";"
//!            | "require" "requester" "discloses" PATH ("before" IDENT)? ";"
//! audience-expr := "public" | "subject" | "role" "(" IDENT ")"
//! audience-ref  := IDENT | "public" | "subject"
//! condition     := "when" IDENT | "always"
//! ```

use crate::error::Span;
use serde::{Deserialize, Serialize};

/// A parsed document: one or more policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// The policies, in source order.
    pub policies: Vec<Policy>,
}

/// A named policy block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    /// The policy name (string literal).
    pub name: String,
    /// Span of the name literal.
    pub name_span: Span,
    /// Declarations in source order.
    pub decls: Vec<Decl>,
}

/// An audience expression on the right of an `audience` definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AudienceExpr {
    /// `public`
    Public,
    /// `subject`
    Subject,
    /// `role(worker)` / `role(requester)`
    Role {
        /// The role name as written.
        role: String,
        /// Span of the role identifier.
        span: Span,
    },
}

/// A reference to an audience in a `disclose` rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AudienceRef {
    /// The name as written (`public`, `subject`, or a defined audience).
    pub name: String,
    /// Where it was written.
    pub span: Span,
}

/// When a disclosure applies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// `always` (also the default when omitted).
    Always,
    /// `when <context>`
    When {
        /// The context name as written.
        context: String,
        /// Where.
        span: Span,
    },
}

/// One declaration inside a policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Decl {
    /// `audience NAME = expr;`
    AudienceDef {
        /// The audience name.
        name: String,
        /// Where the name was written.
        name_span: Span,
        /// The expression.
        expr: AudienceExpr,
    },
    /// `disclose PATH to AUDIENCE [when CTX | always];`
    Disclose {
        /// The disclosed item path (e.g. `worker.acceptance_ratio`).
        item: String,
        /// Where the path was written.
        item_span: Span,
        /// Who gets to see it.
        audience: AudienceRef,
        /// When.
        condition: Condition,
    },
    /// `require requester discloses PATH [before CTX];`
    Require {
        /// The required item path (short names allowed, e.g.
        /// `rejection_criteria`).
        item: String,
        /// Where the path was written.
        item_span: Span,
        /// The phase before which disclosure must happen, if stated.
        before: Option<String>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_nodes_are_constructible_and_comparable() {
        let d1 = Decl::Disclose {
            item: "task.rating".into(),
            item_span: Span::new(0, 11),
            audience: AudienceRef {
                name: "public".into(),
                span: Span::new(15, 21),
            },
            condition: Condition::Always,
        };
        let d2 = d1.clone();
        assert_eq!(d1, d2);
        let p = Policy {
            name: "x".into(),
            name_span: Span::new(7, 10),
            decls: vec![d1],
        };
        assert_eq!(p.decls.len(), 1);
    }
}
