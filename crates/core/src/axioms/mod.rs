//! The seven axiom checkers.
//!
//! One module per axiom, in the paper's numbering. All checkers are pure
//! functions of `(indexed trace, similarity config)` and can be run
//! individually or through the [`crate::audit::AuditEngine`], which
//! builds one [`crate::index::TraceIndex`] and fans the axioms out over
//! it. The [`naive`] module retains the original unindexed
//! implementations as the correctness oracle and perf baseline.

pub mod a1;
pub mod a2;
pub mod a3;
pub mod a4;
pub mod a5;
pub mod a6;
pub mod a7;
pub mod naive;

#[cfg(test)]
pub(crate) mod fixtures;

pub use a1::WorkerAssignmentFairness;
pub use a2::RequesterAssignmentFairness;
pub use a3::CompensationFairness;
pub use a4::MaliceDetection;
pub use a5::NoInterruption;
pub use a6::RequesterTransparency;
pub use a7::PlatformTransparency;

use crate::axiom::Axiom;
use crate::axiom::AxiomId;

/// Instantiate the checker for an axiom id.
pub fn checker_for(id: AxiomId) -> Box<dyn Axiom> {
    match id {
        AxiomId::A1WorkerAssignment => Box::new(WorkerAssignmentFairness),
        AxiomId::A2RequesterAssignment => Box::new(RequesterAssignmentFairness),
        AxiomId::A3Compensation => Box::new(CompensationFairness),
        AxiomId::A4MaliceDetection => Box::new(MaliceDetection),
        AxiomId::A5NoInterruption => Box::new(NoInterruption),
        AxiomId::A6RequesterTransparency => Box::new(RequesterTransparency),
        AxiomId::A7PlatformTransparency => Box::new(PlatformTransparency),
    }
}

/// Composite worker-to-worker similarity under a configurable skill
/// kernel: the minimum of the declared-attribute, computed-attribute and
/// skill similarities (Axiom 1 requires **all three** to be similar).
pub(crate) fn worker_similarity(
    a: &faircrowd_model::worker::Worker,
    b: &faircrowd_model::worker::Worker,
    cfg: &faircrowd_model::similarity::SimilarityConfig,
) -> f64 {
    let declared = a.declared.similarity(&b.declared);
    let computed = a.computed.similarity(&b.computed);
    let skills = cfg.skill_measure.score(&a.skills, &b.skills);
    declared.min(computed).min(skills)
}

/// The Axiom 1 violation witness text, shared by the indexed checker
/// and the live monitor so a wording tweak cannot drift one without the
/// other (the naive reference keeps its own copy on purpose — it is the
/// independent oracle).
pub(crate) fn a1_witness(
    a: faircrowd_model::ids::WorkerId,
    b: faircrowd_model::ids::WorkerId,
    sim: f64,
    overlap: &crate::index::AccessOverlap,
    jaccard: f64,
) -> String {
    format!(
        "workers {a} and {b} are similar (sim {sim:.2}) but saw different \
         tasks: {} vs {} of {} common-qualified (overlap {jaccard:.2})",
        overlap.left, overlap.right, overlap.common
    )
}

/// The Axiom 2 violation witness text, shared like [`a1_witness`].
pub(crate) fn a2_witness(
    a: &faircrowd_model::task::Task,
    b: &faircrowd_model::task::Task,
    skill_sim: f64,
    left: usize,
    right: usize,
    jaccard: f64,
) -> String {
    format!(
        "tasks {} ({}) and {} ({}) are comparable (skill sim {skill_sim:.2}, \
         rewards {} vs {}) but reached different audiences \
         ({left} vs {right} workers, overlap {jaccard:.2})",
        a.id, a.requester, b.id, b.requester, a.reward, b.reward
    )
}

/// Jaccard overlap of two id sets; 1.0 when both are empty.
pub(crate) fn set_jaccard<T: Ord>(
    a: &std::collections::BTreeSet<T>,
    b: &std::collections::BTreeSet<T>,
) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn checker_for_every_axiom() {
        for id in AxiomId::ALL {
            assert_eq!(checker_for(id).id(), id);
        }
    }

    #[test]
    fn jaccard_edges() {
        let empty: BTreeSet<u32> = BTreeSet::new();
        assert_eq!(set_jaccard(&empty, &empty), 1.0);
        let a: BTreeSet<u32> = [1, 2].into_iter().collect();
        let b: BTreeSet<u32> = [2, 3].into_iter().collect();
        assert!((set_jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(set_jaccard(&a, &empty), 0.0);
    }
}
