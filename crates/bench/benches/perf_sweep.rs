//! P5 — Sweep-engine throughput: serial vs parallel grid execution.
//!
//! The sweep engine's contract is that a worker pool changes wall-clock
//! only, never output. This benchmark times one fixed grid (2 policies
//! × 2 scenarios × 4 seeds = 16 simulate+audit cases) at increasing
//! `--jobs`, so the speedup — which should approach the core count on
//! multi-core hardware and stay flat on one core — is a number `cargo
//! bench` regenerates rather than a claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faircrowd::sweep::{run_grid, SweepGrid};
use std::hint::black_box;

const GRID: &str = "policy=round_robin,requester_centric;scenario=baseline,spam_campaign;\
                    seed=0..4;rounds=24";

fn bench_sweep_jobs(c: &mut Criterion) {
    let grid = SweepGrid::parse(GRID).expect("benchmark grid parses");
    let cases = grid.expand().expect("benchmark grid expands").len();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut group = c.benchmark_group(format!("sweep_{cases}_cases"));
    group.sample_size(10);
    for jobs in [1, 2, 4, cores.max(8)] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let result = run_grid(black_box(&grid), jobs).expect("grid runs");
                black_box(result.groups.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_jobs);
criterion_main!(benches);
