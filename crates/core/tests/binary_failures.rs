//! Failure modes of the binary `.fcb` trace format.
//!
//! The binary path owes untrusted files the same three never-panicking
//! load gates as the JSON path: parse errors with byte positions,
//! schema name/version checks naming both sides, and the referential
//! integrity pass. These tests drive [`faircrowd_core::persist::load`]
//! over systematically corrupted copies of a valid simulator-produced
//! recording — truncations at several depths, foreign schemas, future
//! versions, dangling ids, varint overflow, trailing garbage — and
//! demand a descriptive [`FaircrowdError`] every time, never a panic.

use faircrowd_core::persist::{self, TraceFormat};
use faircrowd_model::error::FaircrowdError;
use faircrowd_model::ids::{SubmissionId, TaskId, WorkerId};
use faircrowd_model::trace_bin::{self, MAGIC};
use faircrowd_sim::{CampaignSpec, ScenarioConfig, Simulation, WorkerPopulation};
use std::path::PathBuf;

/// A real (small) simulator trace, so the corruptions hit realistic
/// structure rather than a hand-minimised fixture.
fn sim_trace() -> faircrowd_model::trace::Trace {
    Simulation::new(ScenarioConfig {
        seed: 7,
        rounds: 10,
        workers: vec![WorkerPopulation::diligent(6)],
        campaigns: vec![CampaignSpec::labeling("acme", 8, 6)],
        ..Default::default()
    })
    .run()
}

/// Write `bytes` to a fresh temp `.fcb` file and load it back.
fn load_bytes(name: &str, bytes: &[u8]) -> Result<faircrowd_model::trace::Trace, FaircrowdError> {
    let path: PathBuf = std::env::temp_dir().join(format!("fc_binfail_{name}"));
    std::fs::write(&path, bytes).unwrap();
    let result = persist::load(&path);
    std::fs::remove_file(&path).ok();
    result
}

/// LEB128, matching the codec's varint spelling for test-crafted bytes.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

#[test]
fn valid_recording_loads() {
    let trace = sim_trace();
    let bytes = persist::encode_bytes(&trace, TraceFormat::Binary);
    let loaded = load_bytes("ok.fcb", &bytes).unwrap();
    assert_eq!(loaded, trace);
}

#[test]
fn truncation_at_every_depth_is_a_positioned_error_never_a_panic() {
    let bytes = persist::encode_bytes(&sim_trace(), TraceFormat::Binary);
    // Five depths: inside the magic, inside the header, a third of the
    // way in (entity records), deep in the event columns, and one byte
    // short of complete.
    for (name, fraction) in [
        ("magic", 0.0004),
        ("header", 0.002),
        ("entities", 0.33),
        ("events", 0.9),
        ("last_byte", 0.9999),
    ] {
        let cut = ((bytes.len() as f64 * fraction) as usize).clamp(1, bytes.len() - 1);
        let err = load_bytes("trunc.fcb", &bytes[..cut])
            .expect_err(&format!("cut at {name} ({cut} bytes) must fail"));
        assert!(
            matches!(err, FaircrowdError::Persist { .. }),
            "cut at {name}: {err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("fc_binfail_trunc.fcb"), "no path in: {msg}");
        // A cut inside the magic no longer sniffs as binary; every
        // deeper cut must name the byte position it died at.
        if cut >= MAGIC.len() {
            assert!(
                msg.contains("at byte"),
                "cut at {name}: no position in {msg}"
            );
        }
    }
    // Exhaustive sweep over every prefix of the header region: no
    // length may panic, whatever structure the cut lands inside.
    for cut in 0..MAGIC.len() + 32 {
        let _ = trace_bin::trace_from_bytes(&bytes[..cut.min(bytes.len())]);
    }
}

#[test]
fn foreign_schema_is_rejected_with_both_names() {
    let mut bytes = MAGIC.to_vec();
    put_str(&mut bytes, "someone-elses-log");
    put_varint(&mut bytes, 1);
    let err = load_bytes("foreign.fcb", &bytes).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("someone-elses-log"), "{msg}");
    assert!(msg.contains("faircrowd-trace"), "{msg}");
}

#[test]
fn future_version_is_rejected_with_both_versions_named() {
    let mut bytes = MAGIC.to_vec();
    put_str(&mut bytes, "faircrowd-trace");
    put_varint(&mut bytes, 99);
    let err = load_bytes("version.fcb", &bytes).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("version 99"), "{msg}");
    assert!(msg.contains("version 1"), "{msg}");
}

#[test]
fn varint_overflow_is_rejected() {
    // An 11-byte continuation run can encode no valid u64: the schema
    // name length below claims to keep going past 64 bits.
    let mut bytes = MAGIC.to_vec();
    bytes.extend_from_slice(&[0xff; 11]);
    let err = load_bytes("varint.fcb", &bytes).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("varint overflow"), "{msg}");
    assert!(msg.contains("at byte"), "{msg}");
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = persist::encode_bytes(&sim_trace(), TraceFormat::Binary);
    bytes.extend_from_slice(b"junk");
    let err = load_bytes("trailing.fcb", &bytes).unwrap_err();
    assert!(err.to_string().contains("trailing garbage"), "{err}");
}

#[test]
fn dangling_submission_references_fail_validation() {
    // The codec decodes the bytes fine; the third gate (referential
    // integrity) must still reject the trace, exactly as the JSON path
    // does.
    let mut trace = sim_trace();
    trace
        .submissions
        .push(faircrowd_model::contribution::Submission {
            id: SubmissionId::new(9999),
            task: TaskId::new(4242),
            worker: WorkerId::new(4242),
            contribution: faircrowd_model::contribution::Contribution::Label(0),
            started_at: faircrowd_model::time::SimTime::from_secs(1),
            submitted_at: faircrowd_model::time::SimTime::from_secs(2),
        });
    let bytes = persist::encode_bytes(&trace, TraceFormat::Binary);
    let err = load_bytes("dangling.fcb", &bytes).unwrap_err();
    let FaircrowdError::InvalidTrace { problems } = &err else {
        panic!("expected InvalidTrace, got {err:?}");
    };
    let all = problems.join("; ");
    assert!(all.contains("unknown worker w4242"), "{all}");
    assert!(all.contains("unknown task t4242"), "{all}");
}

#[test]
fn hostile_entity_counts_do_not_allocate_unbounded() {
    // A header claiming 2^60 workers in a 30-byte file must die on the
    // truncation gate (there are no bytes to back the claim), not OOM
    // on a pre-reservation.
    let mut bytes = MAGIC.to_vec();
    put_str(&mut bytes, "faircrowd-trace");
    put_varint(&mut bytes, 1);
    put_varint(&mut bytes, 0); // horizon
    put_varint(&mut bytes, 1 << 60); // worker count
    let err = load_bytes("hostile.fcb", &bytes).unwrap_err();
    assert!(matches!(err, FaircrowdError::Persist { .. }), "{err:?}");
}

#[test]
fn corrupted_record_interior_names_the_record() {
    // Flip bytes mid-file at several offsets; any decode failure must
    // be a positioned persist error (decoded-but-invalid outcomes are
    // allowed — bit flips can produce structurally legal traces that
    // then fail the integrity gate or even still validate).
    let bytes = persist::encode_bytes(&sim_trace(), TraceFormat::Binary);
    for at in [40, bytes.len() / 3, bytes.len() / 2, bytes.len() * 4 / 5] {
        let mut bad = bytes.clone();
        bad[at] ^= 0xff;
        match load_bytes("flip.fcb", &bad) {
            Err(FaircrowdError::Persist { message, .. }) => {
                assert!(message.contains("at byte"), "flip at {at}: {message}");
            }
            Err(FaircrowdError::InvalidTrace { .. }) | Ok(_) => {}
            Err(other) => panic!("flip at {at}: unexpected error {other:?}"),
        }
    }
}
