//! The `faircrowd` command-line tool: run the scenario → simulate →
//! audit → enforce → report pipeline and work with transparency policies
//! from the shell.
//!
//! ```text
//! faircrowd axioms                         print the paper's seven axioms
//! faircrowd run   [OPTS] [--live] [--enforce E]...  full pipeline incl. enforcement re-audit
//! faircrowd converge [OPTS]                iterate a strategic market to its fixed point, audit it
//! faircrowd audit [OPTS | --trace FILE]    audit a simulated market or a trace file
//! faircrowd export [OPTS] --out FILE       simulate a market and write its trace
//! faircrowd replay <FILE>                  load a trace file, audit it, report
//! faircrowd watch <FILE.jsonl> [--once]    tail a (growing) JSONL trace, stream violations
//! faircrowd serve <DIR> [--checkpoint-dir D]  audit every <market>.jsonl in DIR at once
//! faircrowd sweep [--grid G] [--jobs N] [--format F]   parallel grid sweep
//! faircrowd frontier [--grid G] [--jobs N] [--format F]  quality/fairness Pareto frontier
//! faircrowd scenarios                      list the named scenario catalog
//! faircrowd policies                       list the TPL platform catalog
//! faircrowd render <policy>                human-readable policy description
//! faircrowd compare <a> <b>                diff two catalog policies
//! ```
//!
//! Every market command goes through [`faircrowd::Pipeline`] and selects
//! assignment policies via the registry
//! ([`faircrowd::assign::registry`]) and scenarios via the catalog
//! ([`faircrowd::sim::catalog`]), so the CLI, examples and tests
//! exercise the same code path. `converge` iterates a strategic market
//! (`--strategy`, or a strategic-family scenario) to its fixed point
//! ([`faircrowd::sim::converge`]) and audits the converged trace.
//! `sweep` runs whole grids
//! (scenarios × policies × strategies × seeds × scales × enforcements ×
//! aggregators) through
//! [`faircrowd::sweep`] on a worker pool; its aggregate output is
//! byte-identical whatever `--jobs` says. `frontier` runs the same
//! machinery over a policy × aggregator × enforcement grid and extracts
//! the quality/fairness Pareto-dominant set
//! ([`faircrowd::frontier`]). `export` and
//! `replay`/`audit --trace` are the two halves of the paper's
//! audit-external-logs workload: a trace written once replays to a
//! bit-identical audit report with no simulator in the loop
//! ([`faircrowd::core::persist`]).

use faircrowd::assign::registry;
use faircrowd::lang::{catalog, compare, printer, render};
use faircrowd::model::disclosure::DisclosureSet;
use faircrowd::model::FaircrowdError;
use faircrowd::prelude::*;
use faircrowd::sim::catalog as scenarios;
use faircrowd::sim::{strategy, StrategyChoice};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str);
    let result = match command {
        Some("axioms") => axioms(),
        Some("run") => run_cmd(&args[1..], true),
        Some("converge") => converge_cmd(&args[1..]),
        Some("audit") => run_cmd(&args[1..], false),
        Some("export") => export_cmd(&args[1..]),
        Some("replay") => replay_cmd(&args[1..]),
        Some("watch") => watch_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("sweep") => sweep(&args[1..]),
        Some("frontier") => frontier_cmd(&args[1..]),
        Some("merge") => merge_cmd(&args[1..]),
        Some("scenarios") => scenarios_cmd(),
        Some("policies") => policies(),
        Some("render") => render_cmd(&args[1..]),
        Some("compare") => compare_cmd(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            usage();
            Ok(())
        }
        Some(other) => Err(FaircrowdError::usage(format!("unknown command `{other}`"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            if matches!(err, FaircrowdError::Usage { .. }) {
                eprintln!();
                usage();
            }
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    println!("{}", usage_text());
}

/// The full `--help` text. A function (not an inline `println!`) so the
/// tests can assert that every registry — policies, strategies,
/// scenarios, aggregators — is listed verbatim: the help must never
/// fall behind a grown registry.
fn usage_text() -> String {
    format!(
        "faircrowd — fairness and transparency auditing for crowdsourcing\n\n\
         USAGE:\n  \
         faircrowd axioms                         print the paper's seven axioms\n  \
         faircrowd run   [OPTS] [--live] [--enforce E]...  full pipeline incl. enforcement re-audit\n  \
         faircrowd converge [OPTS] [CONVERGE-OPTS]  iterate a strategic market to its\n                                           \
         fixed point, then audit the converged trace\n  \
         faircrowd audit [OPTS | --trace FILE]    audit a simulated market or a trace file\n  \
         faircrowd export [OPTS] --out FILE       simulate a market and write its trace\n  \
         faircrowd replay <FILE>                  load a trace file, audit it, report\n  \
         faircrowd watch <FILE.jsonl> [WATCH-OPTS]  tail a JSONL trace (even while it\n                                           \
         grows), stream violations as they land\n  \
         faircrowd serve <DIR> [SERVE-OPTS]       tail every <market>.jsonl (and audit\n                                           \
         every <market>.fcb) in DIR at once\n  \
         faircrowd sweep [SWEEP-OPTS]             parallel grid sweep, aggregate stats\n  \
         faircrowd frontier [FRONTIER-OPTS]       sweep a policy × aggregator × enforce\n                                           \
         grid, chart the quality/fairness\n                                           \
         Pareto-dominant set\n  \
         faircrowd merge <part.json>... [--format F]  fold shard part files into the\n                                           \
         single-process sweep report, byte-identical\n  \
         faircrowd scenarios                      list the named scenario catalog\n  \
         faircrowd policies                       list the TPL platform catalog\n  \
         faircrowd render <policy>                human-readable policy description\n  \
         faircrowd compare <a> <b>                diff two catalog policies\n\n\
         trace files: `.jsonl` writes the line-oriented log form, `.fcb` the\n  \
         length-prefixed binary form, anything else the whole-file JSON form;\n  \
         `replay` and `audit --trace` sniff and accept all three (validated:\n  \
         schema version + referential integrity, never a panic); `watch` tails\n  \
         the JSONL form and ingests a finished `.fcb` recording in one shot\n\n\
         OPTS:\n  \
         --scenario NAME  start from a catalog scenario (default: flag-built market)\n  \
         --policy NAME    assignment policy (default self_selection)\n  \
         --strategy NAME  agent-strategy profile (default static; strategic profiles\n                   \
         converge via fixed-point iteration; conflicts with a\n                   \
         strategic-family --scenario, whose profile is baked in)\n  \
         --seed N         simulation seed (default 42)\n  \
         --rounds N       market rounds (default 48)\n  \
         --workers N      diligent workers (default 30; ignored with --scenario)\n  \
         --opaque         run the platform with an opaque disclosure set\n  \
         --live           (run) audit during the simulation, printing each\n                   \
         violation at the event that introduced it\n  \
         --out FILE       (export) where to write the trace\n  \
         --trace FILE     (audit) audit a recorded trace instead of simulating\n\n\
         CONVERGE-OPTS:\n  \
         --tolerance F    fixed-point residual tolerance (default 0.005)\n  \
         --max-iters N    iteration cap before a named divergence error (default 40)\n  \
         --gain F         proportional-controller gain in (0, 1] (default 0.5)\n\n\
         WATCH-OPTS:\n  \
         --once           process the file's current contents and stop (no tailing)\n  \
         --idle-ms N      stop after N ms with no growth (default 1500)\n  \
         --checkpoint FILE  snapshot auditor state to FILE as the stream grows and\n                     \
         resume from it on restart (no log replay)\n  \
         --checkpoint-every N  events between snapshots (default 512)\n\n\
         SERVE-OPTS:\n  \
         --checkpoint-dir D  snapshot each market to D/<market>.checkpoint.json and\n                      \
         resume every stream from its checkpoint on restart\n  \
         --checkpoint-every N  events between snapshots, per market (default 512)\n  \
         --jobs N         shard threads (default: available cores)\n  \
         --once           process current contents and stop (no tailing)\n  \
         --idle-ms N      stop after N ms with no growth on any stream (default 1500)\n\n\
         SWEEP-OPTS:\n  \
         --grid SPEC      axes as `axis=v1,v2;…` over scenario | policy | strategy |\n                   \
         seed | scale | rounds | enforce | aggregator — `*` for every\n                   \
         name, `a..b` or `a..=b` seed ranges, `+`-stacked enforcements\n                   \
         (default `policy=*`); strategic cells converge before auditing\n  \
         --jobs N         worker threads (default: available cores)\n  \
         --format F       table | json | csv (default table)\n  \
         --shard i/N      run only shard i of an N-way split, appending each finished\n                   \
         cell to --out FILE (killed shards resume: done cells are\n                   \
         loaded from the part file and skipped)\n  \
         --out FILE       (with --shard) the part file; render via `faircrowd merge`\n  \
         --progress       one stderr line per completed cell (stdout unchanged)\n\n\
         FRONTIER-OPTS:\n  \
         --grid SPEC      same grammar as sweep; axes left unset default to the\n                   \
         frontier contrast — every policy, every aggregator,\n                   \
         enforce=none,parity (a plain sweep defaults each to one point)\n  \
         --jobs N         worker threads (default: available cores)\n  \
         --format F       table | json (default table; `*` marks Pareto members)\n  \
         --progress       one stderr line per completed cell (stdout unchanged)\n\n\
         enforcements for --enforce (repeatable) and the enforce axis:\n  \
         parity | floor:N | transparency | grace\n\n\
         assignment policies (registry names):\n  {}\n\n\
         agent strategies for --strategy and the strategy axis:\n  {}\n\n\
         consensus aggregators for the aggregator axis:\n  {}\n\n\
         scenario catalog (see `faircrowd scenarios` for both families):\n  \
         static:    {}\n  \
         strategic: {}",
        registry::NAMES.join(" | "),
        strategy::NAMES.join(" | "),
        faircrowd::quality::aggregate::NAMES.join(" | "),
        scenarios::STATIC_NAMES.join(" | "),
        scenarios::STRATEGIC_NAMES.join(" | ")
    )
}

fn scenarios_cmd() -> Result<(), FaircrowdError> {
    println!("scenario catalog (faircrowd-sim::catalog):\n");
    println!("static family — fixed parameterisations, one simulation pass:");
    for name in scenarios::STATIC_NAMES {
        println!("  {name:<20} {}", scenarios::describe(name).unwrap_or(""));
    }
    println!("\nstrategic family — agents adapt; iterated to a fixed point before auditing:");
    for name in scenarios::STRATEGIC_NAMES {
        println!("  {name:<20} {}", scenarios::describe(name).unwrap_or(""));
    }
    println!(
        "\nagent strategies (--strategy, and the sweep's strategy axis):\n  {}",
        strategy::NAMES.join(" | ")
    );
    println!(
        "\nuse `faircrowd run --scenario <name>` to audit one, \
         `faircrowd converge --scenario <name>` to watch a strategic one\n\
         settle, or sweep them all:\n  \
         faircrowd sweep --grid 'scenario=*;policy=*;seed=0..4' --jobs 8"
    );
    Ok(())
}

fn axioms() -> Result<(), FaircrowdError> {
    for id in AxiomId::ALL {
        println!("{}\n  {}\n", id.label(), id.statement());
    }
    Ok(())
}

/// The value following `flag`, `Ok(None)` when the flag is absent, and
/// a usage error when the flag dangles at the end of the line — a
/// dangling flag silently falling back to defaults would report results
/// for a run the user didn't ask for.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, FaircrowdError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(String::as_str)
            .map(Some)
            .ok_or_else(|| FaircrowdError::usage(format!("{flag} requires a value"))),
    }
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, FaircrowdError> {
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| FaircrowdError::usage(format!("invalid value `{raw}` for {flag}"))),
    }
}

/// The shared parser for count-like flags (`--jobs`, `--idle-ms`,
/// `--checkpoint-every`): every verb rejects zero and non-numeric
/// values with the same "expected a positive integer" wording, instead
/// of each flag loop rolling its own.
fn positive_flag(args: &[String], flag: &str, default: u64) -> Result<u64, FaircrowdError> {
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(raw) => match raw.parse::<u64>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(FaircrowdError::usage(format!(
                "invalid value `{raw}` for {flag}: expected a positive integer"
            ))),
        },
    }
}

/// The shared market scenario behind `run` and `audit`: a catalog
/// preset when `--scenario` names one, else the flag-built default —
/// two comparable labeling campaigns over a full-participation diligent
/// population, so Axioms 1–3 have pairs to quantify over.
fn scenario_from_flags(args: &[String]) -> Result<ScenarioConfig, FaircrowdError> {
    let mut config = if let Some(name) = flag_value(args, "--scenario")? {
        scenarios::get(name)?
    } else {
        // The flag-built default market IS the catalog baseline —
        // resolved from the catalog so the two can never drift apart;
        // --workers resizes its single diligent population.
        let mut config = scenarios::get("baseline")?;
        config.workers[0].count = parse_flag(args, "--workers", config.workers[0].count)?;
        config
    };
    // Explicit flags override whichever base was chosen; a catalog
    // scenario's own seed/rounds survive when the flag is absent.
    config.seed = parse_flag(args, "--seed", config.seed)?;
    config.rounds = parse_flag(args, "--rounds", config.rounds)?;
    if args.iter().any(|a| a == "--opaque") {
        config.disclosure = DisclosureSet::opaque();
    }
    if let Some(name) = flag_value(args, "--strategy")? {
        // Resolve first: an unknown name must list the registry, not
        // fall through to the scenario's default.
        let choice = StrategyChoice::by_name(name)?;
        if config.strategy != StrategyChoice::Static {
            return Err(FaircrowdError::usage(format!(
                "--strategy {name} conflicts with --scenario {}: its `{}` profile is part \
                 of the scenario definition (strategic family; see `faircrowd scenarios`). \
                 Pick a static-family scenario to override, or drop --strategy",
                flag_value(args, "--scenario")?.unwrap_or("<flag-built>"),
                config.strategy.label()
            )));
        }
        config.strategy = choice;
    }
    Ok(config)
}

fn pipeline_from_flags(args: &[String], with_enforce: bool) -> Result<Pipeline, FaircrowdError> {
    let policy_name = flag_value(args, "--policy")?.unwrap_or("self_selection");
    let mut pipeline = Pipeline::new()
        .scenario(scenario_from_flags(args)?)
        .policy_name(policy_name)?;
    if with_enforce {
        let mut rest = args;
        while let Some(i) = rest.iter().position(|a| a == "--enforce") {
            let raw = rest.get(i + 1).ok_or_else(|| {
                FaircrowdError::usage(
                    "--enforce requires a value (parity | floor:N | transparency | grace)",
                )
            })?;
            pipeline = pipeline.enforce(Enforcement::parse(raw)?);
            rest = &rest[i + 2..];
        }
    } else if args.iter().any(|a| a == "--enforce") {
        return Err(FaircrowdError::usage(
            "--enforce is only valid with `faircrowd run`; `audit`/`export` never enforce",
        ));
    }
    Ok(pipeline)
}

/// Flags that conflict with `--trace`: a recorded trace already fixes
/// the scenario (so market flags would silently report on a market the
/// user didn't replay), and config repairs cannot be applied to a
/// platform that already ran (so `--enforce` would be silently
/// dropped).
const TRACE_CONFLICTS: [&str; 9] = [
    "--scenario",
    "--policy",
    "--strategy",
    "--seed",
    "--rounds",
    "--workers",
    "--opaque",
    "--enforce",
    "--live",
];

fn run_cmd(args: &[String], with_enforce: bool) -> Result<(), FaircrowdError> {
    if let Some(path) = flag_value(args, "--trace")? {
        if with_enforce {
            return Err(FaircrowdError::usage(
                "--trace is only valid with `faircrowd audit` (or `faircrowd replay`); \
                 `run` simulates, and config repairs cannot be applied to a platform \
                 that already ran",
            ));
        }
        if let Some(bad) = args.iter().find(|a| TRACE_CONFLICTS.contains(&a.as_str())) {
            return Err(FaircrowdError::usage(format!(
                "{bad} conflicts with --trace: a recorded trace already fixes the market \
                 and cannot be repaired after the fact"
            )));
        }
        return replay_file(path);
    }
    let live = args.iter().any(|a| a == "--live");
    if live && !with_enforce {
        return Err(FaircrowdError::usage(
            "--live is only valid with `faircrowd run`; `audit --trace` replays a finished \
             log (use `faircrowd watch` to stream one)",
        ));
    }
    let pipeline = pipeline_from_flags(args, with_enforce)?;
    if live {
        return run_live(args, pipeline);
    }
    let result = pipeline.run()?;
    println!(
        "auditing: policy={}, seed={}, rounds={}\n",
        result.config.policy.label(),
        result.config.seed,
        result.config.rounds
    );
    print!("{}", result.render());
    Ok(())
}

/// `faircrowd run --live`: audit the market *while it runs*, printing
/// each violation at the event that introduced it, then the same
/// market-plus-report block as a batch `run` (the closing report is
/// bit-identical to the batch audit of the same scenario).
fn run_live(args: &[String], pipeline: Pipeline) -> Result<(), FaircrowdError> {
    if args.iter().any(|a| a == "--enforce") {
        return Err(FaircrowdError::usage(
            "--enforce conflicts with --live: live auditing watches one run as it happens, \
             while enforcement repairs re-simulate a different market",
        ));
    }
    // The header comes off the pipeline's resolved config — the same
    // source the batch path prints — so it can never drift from what
    // actually runs.
    let config = pipeline.scenario_config();
    println!(
        "live-auditing: policy={}, seed={}, rounds={}\n",
        config.policy.label(),
        config.seed,
        config.rounds
    );
    let live = pipeline.run_live(|finding| println!("{finding}"))?;
    let shown = live.findings.len();
    println!(
        "\n{} live finding(s){}\n",
        shown + live.suppressed_findings,
        if live.suppressed_findings > 0 {
            format!(" ({} past the in-memory cap)", live.suppressed_findings)
        } else {
            String::new()
        }
    );
    print!("{}", live.artifacts.render("live"));
    Ok(())
}

/// `faircrowd converge`: iterate a strategic market to its fixed point
/// ([`faircrowd::sim::converge`]), printing one residual line per
/// iteration, then the same market-plus-report block as `run` — so the
/// converged audit diffs cleanly against `replay` of the exported
/// converged trace from the axiom table onward (the CI converge smoke
/// does exactly that).
fn converge_cmd(args: &[String]) -> Result<(), FaircrowdError> {
    if args.iter().any(|a| a == "--trace") {
        return Err(FaircrowdError::usage(
            "--trace is only valid with `faircrowd audit`/`replay`: `converge` iterates a \
             simulator, while a recorded trace is already a finished market",
        ));
    }
    if args.iter().any(|a| a == "--live") {
        return Err(FaircrowdError::usage(
            "--live is only valid with `faircrowd run`; `converge` audits the fixed point, \
             not the iterations on the way there",
        ));
    }
    let defaults = faircrowd::sim::ConvergeOptions::default();
    let opts = faircrowd::sim::ConvergeOptions {
        tolerance: parse_flag(args, "--tolerance", defaults.tolerance)?,
        max_iterations: positive_flag(args, "--max-iters", u64::from(defaults.max_iterations))?
            .try_into()
            .map_err(|_| FaircrowdError::usage("--max-iters is too large"))?,
        gain: parse_flag(args, "--gain", defaults.gain)?,
    };
    let pipeline = pipeline_from_flags(args, false)?.converge_options(opts.clone());
    let config = pipeline.scenario_config();
    println!(
        "converging: strategy={}, policy={}, seed={}, rounds={} \
         (tolerance {}, cap {}, gain {})\n",
        config.strategy.label(),
        config.policy.label(),
        config.seed,
        config.rounds,
        opts.tolerance,
        opts.max_iterations,
        opts.gain
    );
    let run = pipeline.run_converged()?;
    for it in &run.history {
        println!(
            "iteration {:>2}: residual {:.6}  retention {:>5.1}%",
            it.iteration,
            it.residual,
            it.summary.retention * 100.0
        );
    }
    println!("\nfixed point after {} iteration(s)\n", run.iterations);
    print!("{}", run.artifacts.render("converged"));
    Ok(())
}

/// `faircrowd export`: simulate the flag-selected market and write its
/// trace to `--out` (format by extension: `.jsonl` → JSONL, else JSON).
fn export_cmd(args: &[String]) -> Result<(), FaircrowdError> {
    let out = flag_value(args, "--out")?.ok_or_else(|| {
        FaircrowdError::usage("export requires --out FILE (`.jsonl` for the line-oriented form)")
    })?;
    let trace = pipeline_from_flags(args, false)?.simulate()?;
    faircrowd::core::persist::save(&trace, out)?;
    println!(
        "exported {}: {} workers, {} tasks, {} submissions, {} events",
        out,
        trace.workers.len(),
        trace.tasks.len(),
        trace.submissions.len(),
        trace.events.len()
    );
    Ok(())
}

/// `faircrowd replay <FILE>`: load → validate → index → audit → report,
/// no simulator in the loop. Anything beyond the one path is rejected
/// rather than silently ignored.
fn replay_cmd(args: &[String]) -> Result<(), FaircrowdError> {
    let (path, rest) = match args.first().map(String::as_str) {
        Some("--trace") => (flag_value(args, "--trace")?, &args[2.min(args.len())..]),
        Some(first) => (Some(first), &args[1..]),
        None => (None, args),
    };
    let path = path.ok_or_else(|| FaircrowdError::usage("usage: faircrowd replay <trace-file>"))?;
    if let Some(extra) = rest.first() {
        return Err(FaircrowdError::usage(format!(
            "unexpected argument `{extra}`: `faircrowd replay` takes exactly one trace file \
             (a recorded trace already fixes the market)"
        )));
    }
    replay_file(path)
}

/// Shared tail of `replay` and `audit --trace`. Prints the same
/// market-plus-report block as `run`, so the two outputs diff cleanly
/// from the audit table onward (the CI smoke step does exactly that).
fn replay_file(path: &str) -> Result<(), FaircrowdError> {
    let trace = faircrowd::core::persist::load(path)?;
    println!(
        "replaying {path}: {} workers, {} tasks, {} events\n",
        trace.workers.len(),
        trace.tasks.len(),
        trace.events.len()
    );
    // `replay_owned`: recorded logs can be large, don't copy them.
    let artifacts = Pipeline::new().replay_owned(trace)?;
    print!("{}", artifacts.render("replayed"));
    Ok(())
}

/// `faircrowd watch <FILE.jsonl>`: stream a JSONL trace through the
/// live auditor, printing each violation at the event that introduced
/// it. The file may still be growing — watch keeps tailing until it has
/// seen no new bytes for `--idle-ms` (or processes the current contents
/// once under `--once`), then finalizes and prints the same
/// market-plus-report block as `replay`/`audit --trace`, so the two
/// outputs diff cleanly from the audit table onward (the CI smoke step
/// does exactly that: the streamed violation set must not drift from
/// the batch one).
///
/// With `--checkpoint FILE` the auditor's incremental state is
/// snapshotted to FILE as the stream grows, and a restarted watch
/// resumes from it — skipping the consumed lines instead of replaying
/// them — printing the restored findings first, so the restart's output
/// is still the stream's complete finding history.
fn watch_cmd(args: &[String]) -> Result<(), FaircrowdError> {
    let mut path: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--once" => i += 1,
            "--idle-ms" | "--checkpoint" | "--checkpoint-every" => i += 2,
            flag if flag.starts_with("--") => {
                return Err(FaircrowdError::usage(format!(
                    "unknown flag `{flag}` for `faircrowd watch`; supported: \
                     --once --idle-ms N --checkpoint FILE --checkpoint-every N"
                )))
            }
            positional => {
                if path.is_some() {
                    return Err(FaircrowdError::usage(format!(
                        "unexpected argument `{positional}`: `faircrowd watch` takes exactly \
                         one trace file (`.jsonl` stream or `.fcb` recording)"
                    )));
                }
                path = Some(positional);
                i += 1;
            }
        }
    }
    let path = path.ok_or_else(|| FaircrowdError::usage("usage: faircrowd watch <trace.jsonl>"))?;
    let once = args.iter().any(|a| a == "--once");
    let idle_ms: u64 = positive_flag(args, "--idle-ms", 1500)?;
    let ckpt_path = flag_value(args, "--checkpoint")?.map(std::path::PathBuf::from);
    let ckpt_every = positive_flag(args, "--checkpoint-every", 512)?;
    if ckpt_path.is_none() && flag_value(args, "--checkpoint-every")?.is_some() {
        return Err(FaircrowdError::usage(
            "--checkpoint-every requires --checkpoint FILE",
        ));
    }

    use std::io::Read as _;
    let mut file = std::fs::File::open(path).map_err(|e| FaircrowdError::Io {
        path: path.to_owned(),
        message: e.to_string(),
    })?;
    let mut reader = faircrowd::model::trace_io::JsonlReader::new();
    let mut auditor = LiveAuditor::new(AuditConfig::default());
    let mut header_applied = false;
    // Resume from the checkpoint when one loads cleanly; a checkpoint
    // that fails any load gate is a warning and a full replay, never a
    // refusal to watch.
    let mut skip_lines: u64 = 0;
    let mut resumed = false;
    let mut last_checkpoint: u64 = 0;
    if let Some(ck) = ckpt_path.as_deref().filter(|p| p.exists()) {
        let restored = faircrowd::core::checkpoint::load(ck)
            .and_then(|c| Ok((LiveAuditor::resume(AuditConfig::default(), &c)?, c)));
        match restored {
            Ok((restored, c)) => {
                println!(
                    "resumed from checkpoint seq {} (skipping {} line(s))",
                    c.seq(),
                    c.source_lines()
                );
                reader = faircrowd::model::trace_io::JsonlReader::resume(
                    c.jsonl_header(),
                    c.source_lines() as usize,
                );
                skip_lines = c.source_lines();
                last_checkpoint = c.seq();
                auditor = restored;
                header_applied = true;
                resumed = true;
                // The restored findings followed by the fresh ones make
                // the restarted watch's output the stream's complete
                // finding history.
                for finding in auditor.findings() {
                    println!("{finding}");
                }
            }
            Err(e) => {
                eprintln!(
                    "warning: checkpoint `{}` is unusable ({e}); replaying from the trace",
                    ck.display()
                );
            }
        }
    }
    // Sniff the first eight bytes: a `.fcb` recording is finished by
    // definition (the binary format has no append form), so it is
    // decoded whole and ingested in one shot instead of tailed.
    let mut head = Vec::with_capacity(8);
    std::io::Read::by_ref(&mut file)
        .take(8)
        .read_to_end(&mut head)
        .map_err(|e| FaircrowdError::Io {
            path: path.to_owned(),
            message: e.to_string(),
        })?;
    let binary = head == faircrowd::model::trace_bin::MAGIC;

    let mut feed = |line: &str,
                    reader: &mut faircrowd::model::trace_io::JsonlReader,
                    auditor: &mut LiveAuditor|
     -> Result<(), FaircrowdError> {
        if skip_lines > 0 {
            skip_lines -= 1;
            return Ok(());
        }
        match reader.feed_line(line).map_err(|e| e.at_path(path))? {
            None => {
                if !header_applied {
                    if let Some(header) = reader.header() {
                        auditor.apply_header(header);
                        header_applied = true;
                    }
                }
            }
            Some(record) => {
                let findings = auditor
                    .apply_record(record)
                    .map_err(|e| at_watch_line(e, reader.lines_fed()))?;
                for finding in findings {
                    println!("{finding}");
                }
            }
        }
        Ok(())
    };

    if binary {
        // A `.fcb` recording is finished by definition (the binary
        // format has no append form), so it is decoded whole and
        // re-spelled as its JSONL lines, then streamed through the same
        // feed path a tailed file uses — findings, checkpoints, resume
        // skipping and the closing report all stay line-addressed and
        // bit-identical to watching the recording's JSONL twin.
        let mut bytes = head;
        file.read_to_end(&mut bytes)
            .map_err(|e| FaircrowdError::Io {
                path: path.to_owned(),
                message: e.to_string(),
            })?;
        let trace = faircrowd::core::persist::decode_bytes(&bytes).map_err(|e| e.at_path(path))?;
        let lines =
            faircrowd::core::persist::encode(&trace, faircrowd::core::persist::TraceFormat::Jsonl);
        for line in lines.lines() {
            feed(line, &mut reader, &mut auditor)?;
        }
    } else {
        // Byte buffers, not strings: a poll can catch the producer mid
        // multi-byte UTF-8 character, which must wait in the carry for
        // the rest of the write — only complete lines are decoded.
        let mut carry: Vec<u8> = head;
        let mut chunk: Vec<u8> = Vec::new();
        let mut idle_waited = 0u64;
        const POLL_MS: u64 = 100;
        loop {
            chunk.clear();
            file.read_to_end(&mut chunk)
                .map_err(|e| FaircrowdError::Io {
                    path: path.to_owned(),
                    message: e.to_string(),
                })?;
            if chunk.is_empty() {
                if once {
                    break;
                }
                if idle_waited >= idle_ms {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(POLL_MS));
                idle_waited += POLL_MS;
                continue;
            }
            idle_waited = 0;
            carry.extend_from_slice(&chunk);
            // Feed only complete lines; a partially written tail (bytes,
            // or half a multi-byte character) stays in the carry until
            // its newline arrives.
            while let Some(nl) = carry.iter().position(|&b| b == b'\n') {
                let line_bytes: Vec<u8> = carry.drain(..=nl).collect();
                let line = String::from_utf8(line_bytes).map_err(|_| {
                    FaircrowdError::persist(format!(
                        "line {}: not valid UTF-8",
                        reader.lines_fed() + 1
                    ))
                    .at_path(path)
                })?;
                feed(
                    line.trim_end_matches(['\n', '\r']),
                    &mut reader,
                    &mut auditor,
                )?;
            }
            if let Some(ck) = &ckpt_path {
                if auditor.events_seen() as u64 >= last_checkpoint + ckpt_every {
                    faircrowd::core::checkpoint::save_auditor(
                        &auditor,
                        reader.lines_fed() as u64,
                        ck,
                    )?;
                    last_checkpoint = auditor.events_seen() as u64;
                }
            }
        }
        // A non-empty carry at stop is a file truncated mid-record
        // (possibly mid-character): feed it so the decoder reports the
        // malformed line instead of silently dropping it.
        if carry.iter().any(|b| !b.is_ascii_whitespace()) {
            let tail = String::from_utf8_lossy(&carry).into_owned();
            feed(&tail, &mut reader, &mut auditor)?;
        }
    }
    if !header_applied {
        return Err(FaircrowdError::usage(format!(
            "`{path}` is not a JSONL trace stream (no schema header line); \
             use `faircrowd replay` for whole-file JSON traces"
        )));
    }
    if let Some(ck) = &ckpt_path {
        // Snapshot BEFORE finalizing: end-of-stream was this run's
        // local judgment (idle timeout), not a property of the log. A
        // restart re-derives it — or keeps ingesting, if the stream
        // grew in the meantime.
        faircrowd::core::checkpoint::save_auditor(&auditor, reader.lines_fed() as u64, ck)?;
    }
    for finding in auditor.finalize() {
        println!("{finding}");
    }
    // A resumed watch skips the end-of-stream referential gate: its
    // prefix was validated before the checkpoint was taken (and the
    // accumulated trace holds only the tail of the log, which batch
    // validation would reject as sparse).
    if !resumed {
        auditor.trace().ensure_valid()?;
    }
    let (report, wages) = auditor.final_artifacts(&AxiomId::ALL);
    let events_total = auditor.events_seen();
    let trace = auditor.into_trace();
    println!(
        "\nwatched {path}: {} workers, {} tasks, {} events\n",
        trace.workers.len(),
        trace.tasks.len(),
        events_total
    );
    let summary = TraceSummary::of(&trace);
    let artifacts = RunArtifacts {
        trace,
        summary,
        report,
        wages,
    };
    print!("{}", artifacts.render("watched"));
    Ok(())
}

/// Tag a streaming-ingest error with the file line it arose on.
fn at_watch_line(err: FaircrowdError, lineno: usize) -> FaircrowdError {
    match err {
        FaircrowdError::InvalidTrace { problems } => FaircrowdError::InvalidTrace {
            problems: problems
                .into_iter()
                .map(|p| format!("line {lineno}: {p}"))
                .collect(),
        },
        other => other,
    }
}

/// `faircrowd serve <dir>`: the multi-market audit daemon. Every
/// `<market>.jsonl` in the directory is tailed by its own live auditor
/// ([`faircrowd::core::AuditDaemon`]), sharded across `--jobs` threads,
/// and all findings land in one merged stream tagged `[market]`. With
/// `--checkpoint-dir` each market's state is snapshotted at the
/// `--checkpoint-every` cadence and a restarted serve resumes every
/// stream from its checkpoint — an unusable checkpoint falls back to
/// replaying that market's trace from the start. Closing reports are
/// printed per market; a failed market stream fails the exit code but
/// never the other markets.
fn serve_cmd(args: &[String]) -> Result<(), FaircrowdError> {
    let mut dir: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--once" => i += 1,
            "--idle-ms" | "--jobs" | "--checkpoint-dir" | "--checkpoint-every" => i += 2,
            flag if flag.starts_with("--") => {
                return Err(FaircrowdError::usage(format!(
                    "unknown flag `{flag}` for `faircrowd serve`; supported: \
                     --checkpoint-dir D --checkpoint-every N --jobs N --once --idle-ms N"
                )))
            }
            positional => {
                if dir.is_some() {
                    return Err(FaircrowdError::usage(format!(
                        "unexpected argument `{positional}`: `faircrowd serve` takes exactly \
                         one trace directory"
                    )));
                }
                dir = Some(positional);
                i += 1;
            }
        }
    }
    let dir = dir.ok_or_else(|| FaircrowdError::usage("usage: faircrowd serve <dir>"))?;
    let once = args.iter().any(|a| a == "--once");
    let idle_ms = positive_flag(args, "--idle-ms", 1500)?;
    let default_jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let jobs = positive_flag(args, "--jobs", default_jobs as u64)? as usize;
    let checkpoint_dir = flag_value(args, "--checkpoint-dir")?.map(std::path::PathBuf::from);
    let checkpoint_every = positive_flag(args, "--checkpoint-every", 512)?;
    if let Some(d) = &checkpoint_dir {
        std::fs::create_dir_all(d).map_err(|e| FaircrowdError::Io {
            path: d.display().to_string(),
            message: e.to_string(),
        })?;
    }

    let sources = MarketSource::discover(dir)?;
    if sources.is_empty() {
        return Err(FaircrowdError::usage(format!(
            "no `<market>.jsonl` trace streams or `<market>.fcb` recordings in `{dir}`"
        )));
    }
    println!(
        "serving {} market stream(s) from {dir} ({jobs} job(s))",
        sources.len()
    );
    let mut daemon = AuditDaemon::open(
        DaemonConfig {
            audit: AuditConfig::default(),
            jobs,
            checkpoint_dir,
            checkpoint_every,
        },
        sources,
    );
    for notice in daemon.take_notices() {
        println!("{notice}");
    }
    for finding in daemon.restored_findings() {
        println!("{finding}");
    }

    const POLL_MS: u64 = 100;
    let mut idle_waited = 0u64;
    loop {
        let before = daemon.total_lines();
        for finding in daemon.poll() {
            println!("{finding}");
        }
        for notice in daemon.take_notices() {
            println!("{notice}");
        }
        if daemon.total_lines() == before {
            if once || idle_waited >= idle_ms {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(POLL_MS));
            idle_waited += POLL_MS;
        } else {
            idle_waited = 0;
        }
    }
    for finding in daemon.finalize() {
        println!("{finding}");
    }
    for notice in daemon.take_notices() {
        println!("{notice}");
    }
    for r in daemon.reports()? {
        let resumed = r
            .resumed_from
            .map(|s| format!(", resumed from seq {s}"))
            .unwrap_or_default();
        println!(
            "\nmarket `{}`: {} workers, {} tasks, {} events{resumed}\n",
            r.market, r.workers, r.tasks, r.events
        );
        print!("{}", faircrowd::core::report::render_report(&r.report));
    }
    let failed = daemon.failed_markets();
    if !failed.is_empty() {
        let list = failed
            .iter()
            .map(|(m, e)| format!("`{m}`: {e}"))
            .collect::<Vec<_>>()
            .join("; ");
        return Err(FaircrowdError::persist(format!(
            "{} market stream(s) failed: {list}",
            failed.len()
        )));
    }
    Ok(())
}

/// The only flags `sweep` reads; anything else is rejected rather than
/// silently ignored (the grid's axes subsume `run`'s market flags).
const SWEEP_FLAGS: [&str; 9] = [
    "--grid",
    "--jobs",
    "--format",
    "--seed",
    "--rounds",
    "--strategy",
    "--shard",
    "--out",
    "--progress",
];

fn sweep(args: &[String]) -> Result<(), FaircrowdError> {
    if let Some(bad) = args
        .iter()
        .find(|a| a.starts_with("--") && !SWEEP_FLAGS.contains(&a.as_str()))
    {
        return Err(FaircrowdError::usage(format!(
            "unknown flag `{bad}` for `faircrowd sweep`; supported: {} \
             (scenario, policy and enforcement are grid axes, e.g. \
             --grid 'scenario=spam_campaign;policy=*;enforce=parity')",
            SWEEP_FLAGS.join(" ")
        )));
    }
    // A bare positional (usually a grid spec missing its `--grid`) would
    // otherwise be silently dropped and the default grid swept instead.
    let mut expects_value = false;
    for arg in args {
        if expects_value {
            expects_value = false;
        } else if arg.starts_with("--") {
            expects_value = arg != "--progress";
        } else {
            return Err(FaircrowdError::usage(format!(
                "unexpected argument `{arg}` for `faircrowd sweep`; grid specs go \
                 via --grid, e.g. --grid 'seed=1..4;enforce=parity'"
            )));
        }
    }
    let spec = flag_value(args, "--grid")?.unwrap_or("policy=*");
    let mut grid = SweepGrid::parse(spec)?;
    // --seed/--rounds act as axis defaults when the grid omits them.
    if grid.seeds.is_none() {
        if let Some(raw) = flag_value(args, "--seed")? {
            grid.seeds = Some(vec![raw.parse().map_err(|_| {
                FaircrowdError::usage(format!("invalid value `{raw}` for --seed"))
            })?]);
        }
    }
    if grid.rounds.is_none() {
        if let Some(raw) = flag_value(args, "--rounds")? {
            grid.rounds = Some(vec![raw.parse().map_err(|_| {
                FaircrowdError::usage(format!("invalid value `{raw}` for --rounds"))
            })?]);
        }
    }
    if grid.strategies.is_none() {
        if let Some(raw) = flag_value(args, "--strategy")? {
            // Resolve now so a typo lists the registry before any
            // thread spawns, same as the grid's own axis validation.
            StrategyChoice::by_name(raw)?;
            grid.strategies = Some(vec![raw.to_owned()]);
        }
    }
    let default_jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let jobs = positive_flag(args, "--jobs", default_jobs as u64)? as usize;
    let progress = args.iter().any(|a| a == "--progress");
    let shard = flag_value(args, "--shard")?;
    let out = flag_value(args, "--out")?;

    if let Some(spec) = shard {
        // Shard mode: results stream to the part file, formatting waits
        // for `merge`; stdout carries only the shard's tally.
        let spec = faircrowd::sweep::shard::ShardSpec::parse(spec)?;
        let Some(out) = out else {
            return Err(FaircrowdError::usage(
                "--shard requires --out FILE (the part file this shard appends to)",
            ));
        };
        if flag_value(args, "--format")?.is_some() {
            return Err(FaircrowdError::usage(
                "--format does not apply to a shard run: shards write part files; \
                 render with `faircrowd merge <part>...` once every shard finished",
            ));
        }
        let total = grid.expand()?.len();
        let progress_line = |cell: usize, outcome: &faircrowd::sweep::CaseOutcome| {
            eprintln!(
                "[shard {spec} cell {}/{total}] {}",
                cell + 1,
                progress_cell(outcome)
            );
        };
        let hook: faircrowd::sweep::CellHook<'_> = progress.then_some(&progress_line);
        let run = faircrowd::sweep::shard::run_shard_opts(
            &grid,
            spec,
            std::path::Path::new(out),
            jobs,
            true,
            hook,
        )?;
        println!(
            "shard {spec}: {} of {} grid cell(s); {} ran, {} resumed -> {out}",
            run.shard_cells, run.total_cells, run.ran, run.resumed
        );
        return Ok(());
    }
    if out.is_some() {
        return Err(FaircrowdError::usage(
            "--out only applies to shard runs; pair it with --shard i/N",
        ));
    }
    let format = flag_value(args, "--format")?.unwrap_or("table");

    let total = grid.expand()?.len();
    let progress_line = |cell: usize, outcome: &faircrowd::sweep::CaseOutcome| {
        eprintln!("[cell {}/{total}] {}", cell + 1, progress_cell(outcome));
    };
    let hook: faircrowd::sweep::CellHook<'_> = progress.then_some(&progress_line);
    let result = faircrowd::sweep::run_grid_observed(&grid, jobs, true, hook)?;
    match format {
        "table" => {
            println!(
                "grid sweep: {} case(s) over {} cell(s), {jobs} job(s)\n",
                result.cases.len(),
                result.groups.len()
            );
            print!("{}", result.render_table());
        }
        "json" => print!("{}", result.to_json()),
        "csv" => print!("{}", result.to_csv()),
        other => {
            return Err(FaircrowdError::usage(format!(
                "unknown format `{other}`; expected table | json | csv"
            )))
        }
    }
    Ok(())
}

/// The per-cell description `--progress` prints after the cell tag.
fn progress_cell(outcome: &faircrowd::sweep::CaseOutcome) -> String {
    let case = &outcome.case;
    format!(
        "scenario={} policy={} strategy={} seed={} scale={} rounds={} enforce={} aggregator={}",
        case.scenario,
        case.policy_label,
        case.strategy_label,
        case.seed,
        case.scale,
        case.rounds,
        faircrowd::sweep::stack_label(&case.enforcements),
        case.aggregator_label
    )
}

/// The only flags `frontier` reads; like `sweep`, anything else is
/// rejected rather than silently ignored.
const FRONTIER_FLAGS: [&str; 4] = ["--grid", "--jobs", "--format", "--progress"];

fn frontier_cmd(args: &[String]) -> Result<(), FaircrowdError> {
    if let Some(bad) = args
        .iter()
        .find(|a| a.starts_with("--") && !FRONTIER_FLAGS.contains(&a.as_str()))
    {
        return Err(FaircrowdError::usage(format!(
            "unknown flag `{bad}` for `faircrowd frontier`; supported: {} \
             (policy, aggregator and enforcement are grid axes, e.g. \
             --grid 'policy=*;aggregator=*;enforce=none,parity')",
            FRONTIER_FLAGS.join(" ")
        )));
    }
    let mut expects_value = false;
    for arg in args {
        if expects_value {
            expects_value = false;
        } else if arg.starts_with("--") {
            expects_value = arg != "--progress";
        } else {
            return Err(FaircrowdError::usage(format!(
                "unexpected argument `{arg}` for `faircrowd frontier`; grid specs go \
                 via --grid, e.g. --grid 'policy=*;aggregator=*'"
            )));
        }
    }
    let spec = flag_value(args, "--grid")?.unwrap_or("");
    let grid = faircrowd::frontier::frontier_grid(spec)?;
    let default_jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let jobs = positive_flag(args, "--jobs", default_jobs as u64)? as usize;
    let progress = args.iter().any(|a| a == "--progress");
    let format = flag_value(args, "--format")?.unwrap_or("table");

    let total = grid.expand()?.len();
    let progress_line = |cell: usize, outcome: &faircrowd::sweep::CaseOutcome| {
        eprintln!("[cell {}/{total}] {}", cell + 1, progress_cell(outcome));
    };
    let hook: faircrowd::sweep::CellHook<'_> = progress.then_some(&progress_line);
    let result = faircrowd::frontier::run_frontier_observed(&grid, jobs, hook)?;
    match format {
        "table" => {
            println!(
                "policy frontier: {} point(s), {} on the Pareto frontier, {jobs} job(s)\n",
                result.points.len(),
                result.frontier().len()
            );
            print!("{}", result.render_table());
        }
        "json" => print!("{}", result.to_json()),
        other => {
            return Err(FaircrowdError::usage(format!(
                "unknown format `{other}` for `faircrowd frontier`; expected table | json"
            )))
        }
    }
    Ok(())
}

fn merge_cmd(args: &[String]) -> Result<(), FaircrowdError> {
    let format = flag_value(args, "--format")?.unwrap_or("table");
    let mut paths: Vec<std::path::PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => i += 2,
            flag if flag.starts_with("--") => {
                return Err(FaircrowdError::usage(format!(
                    "unknown flag `{flag}` for `faircrowd merge`; supported: --format"
                )));
            }
            path => {
                paths.push(path.into());
                i += 1;
            }
        }
    }
    if paths.is_empty() {
        return Err(FaircrowdError::usage(
            "usage: faircrowd merge <part.json>... [--format table|json|csv]",
        ));
    }
    let result = faircrowd::sweep::shard::merge_paths(&paths)?;
    match format {
        "table" => {
            println!(
                "grid merge: {} case(s) over {} cell(s), {} part(s)\n",
                result.cases.len(),
                result.groups.len(),
                paths.len()
            );
            print!("{}", result.render_table());
        }
        "json" => print!("{}", result.to_json()),
        "csv" => print!("{}", result.to_csv()),
        other => {
            return Err(FaircrowdError::usage(format!(
                "unknown format `{other}`; expected table | json | csv"
            )))
        }
    }
    Ok(())
}

fn policies() -> Result<(), FaircrowdError> {
    println!("catalog policies (TPL sources in faircrowd-lang::catalog):\n");
    for (name, _) in catalog::sources() {
        let policy = catalog::get(name)?;
        let set = policy.disclosure_set();
        println!(
            "  {:<16} rules {:>2}   axiom-6 {:>4.0}%   axiom-7 {:>4.0}%",
            policy.name,
            policy.rule_count(),
            set.axiom6_coverage() * 100.0,
            set.axiom7_coverage() * 100.0
        );
    }
    println!("\nuse `faircrowd render <policy>` for the worker-facing description");
    Ok(())
}

fn render_cmd(args: &[String]) -> Result<(), FaircrowdError> {
    let name = args
        .first()
        .ok_or_else(|| FaircrowdError::usage("usage: faircrowd render <policy>"))?;
    let policy = catalog::get(name)?;
    print!("{}", render::render_policy(&policy));
    println!(
        "\ncanonical TPL source:\n\n{}",
        printer::print_policy(&policy)
    );
    Ok(())
}

fn compare_cmd(args: &[String]) -> Result<(), FaircrowdError> {
    let (Some(a), Some(b)) = (args.first(), args.get(1)) else {
        return Err(FaircrowdError::usage("usage: faircrowd compare <a> <b>"));
    };
    let (pa, pb) = (catalog::get(a)?, catalog::get(b)?);
    print!("{}", compare(&pa, &pb).render());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn every_registry_name_builds_a_pipeline() {
        for name in registry::NAMES {
            let args = argv(&["--policy", name, "--rounds", "6"]);
            assert!(pipeline_from_flags(&args, false).is_ok(), "{name}");
        }
        // Hyphen spellings from the old CLI still resolve.
        let args = argv(&["--policy", "round-robin"]);
        assert!(pipeline_from_flags(&args, false).is_ok());
        let args = argv(&["--policy", "magic"]);
        assert!(matches!(
            pipeline_from_flags(&args, false),
            Err(FaircrowdError::UnknownPolicy { .. })
        ));
    }

    #[test]
    fn help_lists_every_registry_name() {
        // The help text is derived from the registries, so growing any
        // registry grows the help with it; this pins the wiring.
        let help = usage_text();
        for name in registry::NAMES {
            assert!(help.contains(name), "policy `{name}` missing from help");
        }
        for name in strategy::NAMES {
            assert!(help.contains(name), "strategy `{name}` missing from help");
        }
        for name in faircrowd::quality::aggregate::NAMES {
            assert!(help.contains(name), "aggregator `{name}` missing from help");
        }
        for name in scenarios::STATIC_NAMES
            .iter()
            .chain(scenarios::STRATEGIC_NAMES.iter())
        {
            assert!(help.contains(name), "scenario `{name}` missing from help");
        }
        assert!(help.contains("faircrowd frontier"));
        assert!(help.contains("| aggregator"));
    }

    #[test]
    fn unknown_names_report_their_registry() {
        // Unknown-name errors list the registry they searched, so the
        // user never has to guess the spelling.
        let Err(policy_err) = registry::by_name("magic") else {
            panic!("`magic` resolved to a policy");
        };
        let policy_err = policy_err.to_string();
        for name in registry::NAMES {
            assert!(policy_err.contains(name), "{policy_err}");
        }
        let agg_err = faircrowd::quality::AggregatorChoice::by_name("magic")
            .unwrap_err()
            .to_string();
        for name in faircrowd::quality::aggregate::NAMES {
            assert!(agg_err.contains(name), "{agg_err}");
        }
        let strat_err = StrategyChoice::by_name("magic").unwrap_err().to_string();
        for name in strategy::NAMES {
            assert!(strat_err.contains(name), "{strat_err}");
        }
    }

    #[test]
    fn frontier_rejects_flags_and_positionals_it_would_ignore() {
        for args in [
            argv(&["--shard", "0/2"]),
            argv(&["--out", "part.json"]),
            argv(&["--seed", "7"]),
        ] {
            let err = frontier_cmd(&args).unwrap_err();
            assert!(matches!(err, FaircrowdError::Usage { .. }), "{args:?}");
            assert!(err.to_string().contains("--grid"), "{err}");
        }
        let err = frontier_cmd(&argv(&["policy=kos"])).unwrap_err();
        assert!(err.to_string().contains("`policy=kos`"), "{err}");
        let err = frontier_cmd(&argv(&["--grid", "orbit=1"])).unwrap_err();
        assert!(err.to_string().contains("orbit"), "{err}");
        let err = frontier_cmd(&argv(&["--grid", "rounds=6", "--format", "csv"])).unwrap_err();
        assert!(err.to_string().contains("table | json"), "{err}");
    }

    #[test]
    fn flag_value_extracts_pairs() {
        let args = argv(&["--seed", "7", "--policy", "kos"]);
        assert_eq!(flag_value(&args, "--seed").unwrap(), Some("7"));
        assert_eq!(flag_value(&args, "--policy").unwrap(), Some("kos"));
        assert_eq!(flag_value(&args, "--rounds").unwrap(), None);
        // A flag dangling at the end of the line is an error, not a
        // silent fall-back to the default.
        let dangling = argv(&["--seed"]);
        assert!(matches!(
            flag_value(&dangling, "--seed"),
            Err(FaircrowdError::Usage { .. })
        ));
    }

    #[test]
    fn sweep_rejects_flags_it_would_ignore() {
        for args in [
            argv(&["--opaque"]),
            argv(&["--workers", "10"]),
            argv(&["--scenario", "spam_campaign"]),
            argv(&["--enforce", "parity"]),
        ] {
            let err = sweep(&args).unwrap_err();
            assert!(matches!(err, FaircrowdError::Usage { .. }), "{args:?}");
            assert!(err.to_string().contains("--grid"), "{err}");
        }
    }

    #[test]
    fn sweep_rejects_a_bare_positional_grid_spec() {
        // Forgetting `--grid` must not silently sweep the default grid.
        let err = sweep(&argv(&["seed=1..4;enforce=parity"])).unwrap_err();
        assert!(matches!(err, FaircrowdError::Usage { .. }), "{err:?}");
        assert!(
            err.to_string().contains("seed=1..4;enforce=parity"),
            "{err}"
        );
        assert!(err.to_string().contains("--grid"), "{err}");
        // Flag values are not positionals.
        let err = sweep(&argv(&["--jobs", "2", "extra"])).unwrap_err();
        assert!(err.to_string().contains("`extra`"), "{err}");
    }

    #[test]
    fn sweep_shard_flags_validate() {
        // --shard without --out has nowhere to persist cells.
        let err = sweep(&argv(&["--shard", "1/2"])).unwrap_err();
        assert!(matches!(err, FaircrowdError::Usage { .. }), "{err:?}");
        assert!(err.to_string().contains("--out"), "{err}");
        // --format belongs to merge, not to a shard run.
        let err = sweep(&argv(&[
            "--shard", "1/2", "--out", "p.json", "--format", "json",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("merge"), "{err}");
        // Malformed shard specs name the expected form.
        let err = sweep(&argv(&["--shard", "3/2", "--out", "p.json"])).unwrap_err();
        assert!(err.to_string().contains("i/N"), "{err}");
        // --out without --shard is not an export flag here.
        let err = sweep(&argv(&["--out", "p.json"])).unwrap_err();
        assert!(err.to_string().contains("--shard"), "{err}");
    }

    #[test]
    fn merge_rejects_empty_and_unknown_flags() {
        let err = merge_cmd(&argv(&[])).unwrap_err();
        assert!(matches!(err, FaircrowdError::Usage { .. }), "{err:?}");
        assert!(err.to_string().contains("merge <part.json>"), "{err}");
        let err = merge_cmd(&argv(&["p.json", "--jobs", "2"])).unwrap_err();
        assert!(err.to_string().contains("--jobs"), "{err}");
        let err = merge_cmd(&argv(&["p.json", "--format", "yaml"])).unwrap_err();
        let text = err.to_string();
        // Either the missing file or the bad format may surface first;
        // both must be usage-shaped, never a panic.
        assert!(text.contains("yaml") || text.contains("p.json"), "{text}");
    }

    #[test]
    fn default_market_is_the_catalog_baseline() {
        let config = scenario_from_flags(&[]).unwrap();
        assert_eq!(config, scenarios::get("baseline").unwrap());
        // --workers only resizes the baseline's population.
        let config = scenario_from_flags(&argv(&["--workers", "12"])).unwrap();
        assert_eq!(config.workers[0].count, 12);
    }

    #[test]
    fn enforcements_parse_and_reject() {
        assert_eq!(
            Enforcement::parse("parity").unwrap(),
            Enforcement::ExposureParity
        );
        assert_eq!(
            Enforcement::parse("floor:5").unwrap(),
            Enforcement::ExposureFloor(5)
        );
        assert_eq!(
            Enforcement::parse("transparency").unwrap(),
            Enforcement::MinimalTransparency
        );
        assert_eq!(
            Enforcement::parse("grace").unwrap(),
            Enforcement::GraceFinish
        );
        assert!(Enforcement::parse("floor:x").is_err());
        assert!(Enforcement::parse("magic").is_err());
    }

    #[test]
    fn scenario_flag_selects_catalog_presets() {
        // A preset keeps its own seed/rounds when flags are absent…
        let args = argv(&["--scenario", "worker_churn"]);
        let config = scenario_from_flags(&args).unwrap();
        assert_eq!(config.rounds, 60);
        // …and explicit flags still win.
        let args = argv(&[
            "--scenario",
            "worker-churn",
            "--rounds",
            "12",
            "--seed",
            "7",
        ]);
        let config = scenario_from_flags(&args).unwrap();
        assert_eq!(config.rounds, 12);
        assert_eq!(config.seed, 7);
        // Unknown names list the catalog.
        let args = argv(&["--scenario", "atlantis"]);
        match scenario_from_flags(&args) {
            Err(FaircrowdError::UnknownScenario { available, .. }) => {
                assert_eq!(available.len(), scenarios::NAMES.len());
            }
            other => panic!("wrong result: {other:?}"),
        }
    }

    #[test]
    fn strategy_flag_resolves_conflicts_and_rejects_unknowns() {
        // Override on a static-family base (including the flag-built
        // default) is the point of the flag…
        let config = scenario_from_flags(&argv(&["--strategy", "super_turker"])).unwrap();
        assert_eq!(config.strategy, StrategyChoice::SuperTurker);
        // …hyphen spellings canonicalise like policies/scenarios…
        let config = scenario_from_flags(&argv(&[
            "--scenario",
            "baseline",
            "--strategy",
            "Super-Turker",
        ]))
        .unwrap();
        assert_eq!(config.strategy, StrategyChoice::SuperTurker);
        // …a strategic scenario's baked-in profile cannot be overridden…
        let err = scenario_from_flags(&argv(&[
            "--scenario",
            "price_war",
            "--strategy",
            "super_turker",
        ]))
        .unwrap_err();
        assert!(matches!(err, FaircrowdError::Usage { .. }), "{err:?}");
        assert!(err.to_string().contains("price_war"), "{err}");
        assert!(err.to_string().contains("price_undercut"), "{err}");
        // …and unknown names list the registry instead of falling
        // through to the default.
        let err = scenario_from_flags(&argv(&["--strategy", "chaos_monkey"])).unwrap_err();
        match err {
            FaircrowdError::UnknownStrategy { available, .. } => {
                assert_eq!(available.len(), strategy::NAMES.len());
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn converge_cmd_validates_flags_and_runs() {
        let err = converge_cmd(&argv(&["--trace", "t.json"])).unwrap_err();
        assert!(matches!(err, FaircrowdError::Usage { .. }), "{err:?}");
        let err = converge_cmd(&argv(&["--live"])).unwrap_err();
        assert!(err.to_string().contains("faircrowd run"), "{err}");
        let err = converge_cmd(&argv(&["--tolerance", "-1", "--rounds", "6"])).unwrap_err();
        assert!(err.to_string().contains("tolerance"), "{err}");
        let err = converge_cmd(&argv(&["--max-iters", "0"])).unwrap_err();
        assert!(
            err.to_string().contains("expected a positive integer"),
            "{err}"
        );
        // A strategic scenario settles end to end through the verb.
        converge_cmd(&argv(&["--scenario", "super_turkers", "--rounds", "8"])).unwrap();
    }

    #[test]
    fn sweep_accepts_a_strategy_default_flag() {
        // The flag acts as an axis default, like --seed/--rounds; a
        // typo errors before any cell runs.
        let err = sweep(&argv(&["--strategy", "chaos_monkey"])).unwrap_err();
        assert!(
            matches!(err, FaircrowdError::UnknownStrategy { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn repeated_enforce_flags_accumulate() {
        let args = argv(&["--enforce", "parity", "--rounds", "6", "--enforce", "grace"]);
        let pipeline = pipeline_from_flags(&args, true).unwrap();
        let result = pipeline.run().unwrap();
        assert_eq!(result.enforced.unwrap().applied.len(), 2);
    }

    #[test]
    fn audit_rejects_enforce_instead_of_ignoring_it() {
        let args = argv(&["--enforce", "parity"]);
        let err = pipeline_from_flags(&args, false).unwrap_err();
        assert!(matches!(err, FaircrowdError::Usage { .. }), "{err}");
        assert!(err.to_string().contains("faircrowd run"));
    }

    #[test]
    fn bad_numeric_flags_are_usage_errors() {
        let args = argv(&["--seed", "pony"]);
        assert!(matches!(
            scenario_from_flags(&args),
            Err(FaircrowdError::Usage { .. })
        ));
    }

    #[test]
    fn export_requires_out_and_replay_requires_a_path() {
        let err = export_cmd(&argv(&["--rounds", "6"])).unwrap_err();
        assert!(err.to_string().contains("--out"), "{err}");
        let err = replay_cmd(&[]).unwrap_err();
        assert!(err.to_string().contains("replay <trace-file>"), "{err}");
    }

    #[test]
    fn trace_flag_rejects_conflicts_instead_of_ignoring_them() {
        // `run` never replays…
        let err = run_cmd(&argv(&["--trace", "t.json"]), true).unwrap_err();
        assert!(matches!(err, FaircrowdError::Usage { .. }), "{err}");
        // …and a recorded trace can't be combined with market flags…
        let err = run_cmd(&argv(&["--trace", "t.json", "--seed", "7"]), false).unwrap_err();
        assert!(err.to_string().contains("--seed"), "{err}");
        assert!(err.to_string().contains("--trace"), "{err}");
        // …or with --enforce (repairs can't apply to a finished run) —
        // rejected, not silently dropped.
        let err = run_cmd(&argv(&["--trace", "t.json", "--enforce", "parity"]), false).unwrap_err();
        assert!(err.to_string().contains("--enforce"), "{err}");
        // `replay` takes exactly one path; extras are rejected too.
        let err = replay_cmd(&argv(&["t.json", "--seed", "7"])).unwrap_err();
        assert!(err.to_string().contains("--seed"), "{err}");
        let err = replay_cmd(&argv(&["--trace", "t.json", "extra"])).unwrap_err();
        assert!(err.to_string().contains("extra"), "{err}");
    }

    #[test]
    fn export_then_audit_trace_roundtrips() {
        let path = std::env::temp_dir().join("fc_cli_roundtrip.trace.jsonl");
        let path_str = path.to_str().unwrap().to_owned();
        export_cmd(&argv(&[
            "--rounds",
            "6",
            "--workers",
            "8",
            "--out",
            &path_str,
        ]))
        .unwrap();
        run_cmd(&argv(&["--trace", &path_str]), false).unwrap();
        replay_cmd(&argv(&[&path_str])).unwrap();
        watch_cmd(&argv(&[&path_str, "--once"])).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_live_streams_and_reports() {
        run_cmd(&argv(&["--rounds", "6", "--workers", "8", "--live"]), true).unwrap();
        // --live cannot combine with --enforce (repairs re-simulate)…
        let err = run_cmd(
            &argv(&["--live", "--enforce", "parity", "--rounds", "6"]),
            true,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--live"), "{err}");
        // …nor with `audit` (which replays or simulates a finished log).
        let err = run_cmd(&argv(&["--live", "--rounds", "6"]), false).unwrap_err();
        assert!(err.to_string().contains("watch"), "{err}");
        // …and a recorded trace is watched, not run live.
        let err = run_cmd(&argv(&["--trace", "t.jsonl", "--live"]), false).unwrap_err();
        assert!(err.to_string().contains("--live"), "{err}");
    }

    #[test]
    fn watch_arguments_are_validated() {
        let err = watch_cmd(&[]).unwrap_err();
        assert!(err.to_string().contains("watch <trace.jsonl>"), "{err}");
        let err = watch_cmd(&argv(&["a.jsonl", "b.jsonl"])).unwrap_err();
        assert!(err.to_string().contains("exactly"), "{err}");
        let err = watch_cmd(&argv(&["a.jsonl", "--follow-forever"])).unwrap_err();
        assert!(err.to_string().contains("--follow-forever"), "{err}");
        let err = watch_cmd(&argv(&["/no/such/fc_trace.jsonl", "--once"])).unwrap_err();
        assert!(matches!(err, FaircrowdError::Io { .. }), "{err:?}");
    }

    #[test]
    fn watch_rejects_whole_file_json_with_guidance() {
        let path = std::env::temp_dir().join("fc_cli_watch_wrongformat.trace.json");
        let path_str = path.to_str().unwrap().to_owned();
        export_cmd(&argv(&[
            "--rounds",
            "6",
            "--workers",
            "6",
            "--out",
            &path_str,
        ]))
        .unwrap();
        let err = watch_cmd(&argv(&[&path_str, "--once"])).unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("replay") || text.contains("header"),
            "must point at replay for whole-file JSON: {text}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn watch_names_the_line_that_broke_monotonicity() {
        // A stream whose event seqs go sparse mid-file: watch must name
        // the file line and the offending seq, not just fail wholesale.
        let path = std::env::temp_dir().join("fc_cli_watch_sparse.trace.jsonl");
        let path_str = path.to_str().unwrap().to_owned();
        export_cmd(&argv(&[
            "--rounds",
            "6",
            "--workers",
            "6",
            "--out",
            &path_str,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let target = lines
            .iter()
            .position(|l| l.contains("\"seq\":3,"))
            .expect("an event with seq 3 exists");
        lines[target] = lines[target].replacen("\"seq\":3,", "\"seq\":9,", 1);
        std::fs::write(&path, lines.join("\n")).unwrap();
        let err = watch_cmd(&argv(&[&path_str, "--once"])).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(&format!("line {}", target + 1)), "{msg}");
        assert!(msg.contains("seq 9"), "{msg}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_of_missing_file_is_a_clean_error() {
        let err = replay_cmd(&argv(&["/no/such/fc_trace.json"])).unwrap_err();
        assert!(matches!(err, FaircrowdError::Io { .. }), "{err:?}");
    }

    #[test]
    fn positive_flag_accepts_counts_and_rejects_the_rest() {
        assert_eq!(positive_flag(&[], "--jobs", 4).unwrap(), 4);
        let args = argv(&["--jobs", "8"]);
        assert_eq!(positive_flag(&args, "--jobs", 4).unwrap(), 8);
        // Zero, negatives and non-numerics all get the same wording.
        for bad in ["0", "-3", "many", "1.5", ""] {
            let args = argv(&["--jobs", bad]);
            let err = positive_flag(&args, "--jobs", 4).unwrap_err();
            assert!(matches!(err, FaircrowdError::Usage { .. }), "{bad}");
            assert!(
                err.to_string().contains("expected a positive integer"),
                "{err}"
            );
        }
        // A dangling flag is still the flag_value error.
        let err = positive_flag(&argv(&["--jobs"]), "--jobs", 4).unwrap_err();
        assert!(err.to_string().contains("requires a value"), "{err}");
    }

    #[test]
    fn count_flags_error_uniformly_across_verbs() {
        let err = sweep(&argv(&["--jobs", "0"])).unwrap_err();
        assert!(err.to_string().contains("expected a positive integer"));
        let err = watch_cmd(&argv(&["t.jsonl", "--idle-ms", "soon"])).unwrap_err();
        assert!(err.to_string().contains("expected a positive integer"));
        let err = serve_cmd(&argv(&["/tmp", "--checkpoint-every", "0"])).unwrap_err();
        assert!(err.to_string().contains("expected a positive integer"));
    }

    #[test]
    fn serve_arguments_are_validated() {
        let err = serve_cmd(&[]).unwrap_err();
        assert!(err.to_string().contains("serve <dir>"), "{err}");
        let err = serve_cmd(&argv(&["a", "b"])).unwrap_err();
        assert!(err.to_string().contains("exactly"), "{err}");
        let err = serve_cmd(&argv(&["a", "--daemonize"])).unwrap_err();
        assert!(err.to_string().contains("--daemonize"), "{err}");
        let err = serve_cmd(&argv(&["/no/such/fc_serve_dir"])).unwrap_err();
        assert!(matches!(err, FaircrowdError::Io { .. }), "{err:?}");
        // A directory with no .jsonl streams is named, not silently idle.
        let empty = std::env::temp_dir().join("fc_cli_serve_empty");
        std::fs::create_dir_all(&empty).unwrap();
        let err = serve_cmd(&argv(&[empty.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains("no `<market>.jsonl`"), "{err}");
        std::fs::remove_dir_all(&empty).ok();
    }

    #[test]
    fn watch_checkpoint_every_requires_checkpoint() {
        let err = watch_cmd(&argv(&["t.jsonl", "--checkpoint-every", "5"])).unwrap_err();
        assert!(err.to_string().contains("--checkpoint FILE"), "{err}");
    }

    #[test]
    fn serve_audits_exported_markets_end_to_end() {
        let dir = std::env::temp_dir().join(format!("fc_cli_serve_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (market, seed) in [("alpha", "1"), ("beta", "2")] {
            let out = dir.join(format!("{market}.jsonl"));
            export_cmd(&argv(&[
                "--rounds",
                "6",
                "--workers",
                "8",
                "--seed",
                seed,
                "--out",
                out.to_str().unwrap(),
            ]))
            .unwrap();
        }
        let ckpt = dir.join("ckpts");
        let args = argv(&[
            dir.to_str().unwrap(),
            "--once",
            "--jobs",
            "2",
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "1",
        ]);
        serve_cmd(&args).unwrap();
        // The cadence wrote a checkpoint per market; a rerun resumes
        // from them (end-of-stream state) and still closes cleanly.
        assert!(ckpt.join("alpha.checkpoint.json").exists());
        assert!(ckpt.join("beta.checkpoint.json").exists());
        serve_cmd(&args).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watch_checkpoint_restart_completes_the_stream() {
        let dir = std::env::temp_dir().join(format!("fc_cli_watchck_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("m.jsonl");
        export_cmd(&argv(&[
            "--rounds",
            "6",
            "--workers",
            "8",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let full = std::fs::read_to_string(&trace_path).unwrap();
        let lines: Vec<&str> = full.lines().collect();
        let cut = lines.len() * 2 / 3;
        let half_path = dir.join("half.jsonl");
        std::fs::write(&half_path, format!("{}\n", lines[..cut].join("\n"))).unwrap();
        let ck = dir.join("m.checkpoint.json");
        // First life over the truncated stream writes a checkpoint…
        watch_cmd(&argv(&[
            half_path.to_str().unwrap(),
            "--once",
            "--checkpoint",
            ck.to_str().unwrap(),
            "--checkpoint-every",
            "1",
        ]))
        .unwrap();
        assert!(ck.exists());
        // …and the restart over the complete stream resumes from it.
        std::fs::write(&half_path, &full).unwrap();
        watch_cmd(&argv(&[
            half_path.to_str().unwrap(),
            "--once",
            "--checkpoint",
            ck.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
