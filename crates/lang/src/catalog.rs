//! The platform-policy catalog.
//!
//! TPL encodings of the transparency configurations the paper describes
//! (§1, §2.2): plain AMT, AMT with the Turkopticon plug-in and
//! forum-script ecosystem, CrowdFlower with its accuracy panel and task
//! ratings, the managed MobileWorks platform, and the full FairCrowd
//! policy that satisfies Axioms 6 and 7 outright. Each entry is genuine
//! TPL source, compiled on demand — the catalog doubles as an integration
//! test of the whole language pipeline and as the E5 workload.

use crate::error::LangError;
use crate::sema::CompiledPolicy;

/// AMT as the paper (and the worker forums) describe it: the platform
/// shows requesters their own campaign progress and workers their raw
/// history, and nothing else.
pub const AMT_OPAQUE: &str = r#"
# Amazon Mechanical Turk, stock experience.
policy "amt" {
    audience posters = role(requester);
    disclose requester.campaign_progress to posters always;
    disclose worker.history to subject always;
}
"#;

/// AMT plus the worker-built transparency layer: Turkopticon requester
/// reviews, Crowd-Workers/Turkbench wage estimates, and the forum scripts
/// that reveal auto-approval times (§2.2).
pub const AMT_TURKOPTICON: &str = r#"
# AMT + Turkopticon + wage trackers + forum scripts.
policy "amt+turkopticon" {
    audience posters = role(requester);
    disclose requester.campaign_progress to posters always;
    disclose worker.history to subject always;
    disclose requester.rating to public always;           # Turkopticon reviews
    disclose requester.hourly_wage to workers when browsing;  # Crowd-Workers / Turkbench
    disclose platform.auto_approval_time to workers always;   # forum scripts
    disclose requester.payment_delay to workers when browsing;
}
"#;

/// CrowdFlower: "displays a panel with the worker's estimated accuracy so
/// far" (§1) and per-task ratings in the browsing interface (§3.1.2).
pub const CROWDFLOWER: &str = r#"
policy "crowdflower" {
    audience posters = role(requester);
    disclose task.rating to workers when browsing;
    disclose worker.quality_estimate to subject always;    # the accuracy panel
    disclose worker.acceptance_ratio to subject always;
    disclose requester.campaign_progress to posters always;
    require requester discloses evaluation_scheme before posting;
}
"#;

/// MobileWorks: managed crowdsourcing with worker-to-worker communication
/// and worker-managers who monitor each other (§2.2).
pub const MOBILEWORKS: &str = r#"
policy "mobileworks" {
    audience crowd = role(worker);
    disclose worker.history to crowd always;       # workers monitor each other
    disclose worker.quality_estimate to crowd always;
    disclose requester.rating to crowd always;
    disclose requester.hourly_wage to crowd when browsing;
    disclose worker.earnings to subject always;
    require requester discloses recruitment_criteria before posting;
}
"#;

/// The fair-by-design policy: every Axiom-6 obligation disclosed to
/// workers, every Axiom-7 attribute to the worker herself, plus the
/// community-rating items the surveyed tools bolt on.
pub const FAIRCROWD_FULL: &str = r#"
policy "faircrowd-full" {
    audience everyone = public;
    # Axiom 6: requester-dependent and task-dependent working conditions.
    require requester discloses hourly_wage before posting;
    require requester discloses payment_schedule before posting;
    require requester discloses recruitment_criteria before posting;
    require requester discloses rejection_criteria before posting;
    require requester discloses evaluation_scheme before posting;
    # Axiom 7: computed worker attributes, to the worker herself.
    disclose worker.acceptance_ratio to subject always;
    disclose worker.quality_estimate to subject always;
    disclose worker.history to subject always;
    disclose worker.approval_latency to subject always;
    disclose worker.earnings to subject always;
    disclose worker.sessions to subject always;
    # Community information, platform-wide.
    disclose requester.rating to everyone always;
    disclose task.rating to everyone when browsing;
    disclose platform.auto_approval_time to workers always;
}
"#;

/// The catalog: `(name, TPL source)` in increasing-transparency order.
pub fn sources() -> Vec<(&'static str, &'static str)> {
    vec![
        ("amt", AMT_OPAQUE),
        ("amt+turkopticon", AMT_TURKOPTICON),
        ("crowdflower", CROWDFLOWER),
        ("mobileworks", MOBILEWORKS),
        ("faircrowd-full", FAIRCROWD_FULL),
    ]
}

/// Compile every catalog policy.
pub fn compile_all() -> Result<Vec<CompiledPolicy>, LangError> {
    sources()
        .into_iter()
        .map(|(_, src)| crate::compile_one(src))
        .collect()
}

/// Compile one catalog policy by name.
pub fn by_name(name: &str) -> Option<CompiledPolicy> {
    sources()
        .into_iter()
        .find(|(n, _)| *n == name)
        .and_then(|(_, src)| crate::compile_one(src).ok())
}

/// [`by_name`] as a `Result`: an unknown name reports the available
/// names; a known name whose source fails to compile keeps the full
/// compiler diagnostic instead of being misreported as unknown.
pub fn get(name: &str) -> Result<CompiledPolicy, faircrowd_model::FaircrowdError> {
    match sources().into_iter().find(|(n, _)| *n == name) {
        Some((_, src)) => crate::compile_one(src).map_err(Into::into),
        None => Err(faircrowd_model::FaircrowdError::UnknownPolicy {
            name: name.to_owned(),
            available: sources().iter().map(|(n, _)| (*n).to_owned()).collect(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_catalog_compiles() {
        let policies = compile_all().expect("catalog must compile");
        assert_eq!(policies.len(), 5);
        let names: Vec<&str> = policies.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "amt",
                "amt+turkopticon",
                "crowdflower",
                "mobileworks",
                "faircrowd-full"
            ]
        );
    }

    #[test]
    fn faircrowd_full_satisfies_both_axioms() {
        let p = by_name("faircrowd-full").unwrap();
        let set = p.disclosure_set();
        assert!((set.axiom6_coverage() - 1.0).abs() < 1e-12);
        assert!((set.axiom7_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transparency_strictly_improves_along_the_catalog_story() {
        let amt = by_name("amt").unwrap().disclosure_set();
        let turk = by_name("amt+turkopticon").unwrap().disclosure_set();
        let full = by_name("faircrowd-full").unwrap().disclosure_set();
        // the plug-in ecosystem strictly improves Axiom-6 coverage on AMT
        assert!(turk.axiom6_coverage() > amt.axiom6_coverage());
        // nothing beats the fair-by-design policy
        assert!(full.axiom6_coverage() >= turk.axiom6_coverage());
        assert!(full.axiom7_coverage() >= turk.axiom7_coverage());
    }

    #[test]
    fn stock_amt_fails_axiom6_entirely() {
        let amt = by_name("amt").unwrap().disclosure_set();
        assert_eq!(amt.axiom6_coverage(), 0.0);
    }

    #[test]
    fn by_name_misses_gracefully() {
        assert!(by_name("geocities").is_none());
    }

    #[test]
    fn catalog_policies_render() {
        for p in compile_all().unwrap() {
            let text = crate::render::render_policy(&p);
            assert!(text.contains(&p.name));
            assert!(text.lines().count() >= 2);
        }
    }
}
