//! Fixed-point strategy iteration: the convergence engine.
//!
//! A single simulation pass answers "what happens if agents behave like
//! *this*?" — but strategic behaviour is defined in terms of the
//! market's own outcomes: a Super Turker's reservation wage comes from
//! what tasks actually paid, an undercutting requester's price from how
//! easily their tasks filled. Those outcomes are only known *after* a
//! run. This module closes the loop:
//!
//! ```text
//!   strategy state ──► simulate (pure in (config, state))
//!        ▲                         │
//!        │                         ▼
//!   proportional           realized signals
//!   controller ◄── wages · acceptance · fill rates
//! ```
//!
//! Each iteration re-runs the **same seed** under the current
//! [`StrategyState`], extracts per-agent signals from the trace, and
//! moves the state a proportional step ([`ConvergeOptions::gain`])
//! toward each agent's target. When the largest state change falls
//! below [`ConvergeOptions::tolerance`], the market is at a fixed
//! point: re-simulating under the final state reproduces the final
//! trace, so the converged trace is an ordinary trace — replayable,
//! exportable and auditable like any other.
//!
//! Determinism: the inner simulation is a pure function of
//! `(config, state)` and the controller is pure arithmetic over trace
//! signals, so the whole loop — iteration count included — is a pure
//! function of the config (seed included).
//!
//! The [`StrategyChoice::Static`] strategy has no feedback (its
//! decisions ignore the state), so the residual is zero after the first
//! pass and `run` returns in exactly one iteration with the identical
//! trace a plain [`crate::run`] produces — the no-regression oracle the
//! test suite pins for every legacy scenario.
//!
//! Failure to converge — the iteration cap exhausted, or controller
//! state going non-finite — is the named [`FaircrowdError::Diverged`]
//! error, never a silent best-effort trace.

use crate::config::ScenarioConfig;
use crate::stats::TraceSummary;
use crate::strategy::{PriceUndercutRequester, StrategyChoice, StrategyState};
use crate::Simulation;
use faircrowd_model::error::FaircrowdError;
use faircrowd_model::event::EventKind;
use faircrowd_model::ids::{RequesterId, TaskId, WorkerId};
use faircrowd_model::trace::Trace;
use std::collections::BTreeMap;

/// Tuning knobs for the fixed-point loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergeOptions {
    /// Stop when the largest normalized state change of an iteration is
    /// at most this.
    pub tolerance: f64,
    /// Give up (as [`FaircrowdError::Diverged`]) after this many
    /// iterations without reaching the tolerance.
    pub max_iterations: u32,
    /// Proportional-controller gain: the fraction of the gap between
    /// current state and per-agent target applied per iteration. 1.0
    /// jumps straight to the target (prone to oscillation), small values
    /// converge smoothly but slowly.
    pub gain: f64,
}

impl Default for ConvergeOptions {
    fn default() -> Self {
        ConvergeOptions {
            tolerance: 5e-3,
            max_iterations: 40,
            gain: 0.5,
        }
    }
}

/// One iteration of the loop, as reported back to callers.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationSummary {
    /// 1-based iteration number.
    pub iteration: u32,
    /// The largest normalized state change the controller applied
    /// *after* this iteration's simulation (0.0 for a static strategy).
    pub residual: f64,
    /// Headline numbers of this iteration's trace.
    pub summary: TraceSummary,
}

/// The result of a converged run.
#[derive(Debug, Clone)]
pub struct Converged {
    /// The fixed-point trace — reproducible by re-simulating the same
    /// config under [`Converged::state`].
    pub trace: Trace,
    /// Iterations taken (1 for the static strategy).
    pub iterations: u32,
    /// Per-iteration history, in order; the last entry describes
    /// [`Converged::trace`].
    pub history: Vec<IterationSummary>,
    /// The strategy state at the fixed point.
    pub state: StrategyState,
}

/// The per-agent signals one trace yields, input to the controller.
#[derive(Debug, Clone)]
struct Signals {
    /// Realized hourly wage per worker, in dollars (0.0 for workers who
    /// logged no work time — the decay-toward-zero re-entry stabilizer).
    wage: Vec<f64>,
    /// Acceptance ratio per worker (approved / judged, 1.0 unjudged).
    acceptance: Vec<f64>,
    /// Fill rate per requester: approved submissions / assignment slots
    /// wanted (0.0 for requesters who posted nothing).
    fill: Vec<f64>,
}

/// A requester whose fill rate sits here neither raises nor lowers
/// prices; above it they undercut, below it they sweeten.
const TARGET_FILL: f64 = 0.6;
/// Super Turkers aim their reservation at this fraction of the wage
/// they actually realized — asking for *exactly* yesterday's wage makes
/// every marginal task a coin-flip; a margin keeps the bulk of realized
/// work acceptable while shedding the worst-paid tail.
const RESERVATION_MARGIN: f64 = 0.9;
/// A reputation-temporal worker's aspiration floor/slope in acceptance
/// ratio: target = wage × (0.4 + 0.6 × acceptance).
const REPUTATION_FLOOR: f64 = 0.4;
/// How strongly a requester's fill error moves their multiplier per
/// unit gain.
const UNDERCUT_RATE: f64 = 0.5;
/// Per-iteration geometric decay of the controller step. Accept/decline
/// decisions are discrete, so a constant step can orbit a threshold
/// forever (worker takes the task, wage drops, worker declines, wage
/// recovers, …). Annealing the step — iteration `k` moves at
/// `gain × DECAY^(k-1)` — damps those limit cycles into the tolerance
/// band while leaving smoothly contracting dynamics (which converge in
/// far fewer iterations than annealing needs to bite) essentially
/// untouched.
const GAIN_DECAY: f64 = 0.85;

/// Run `cfg` to its strategy fixed point.
///
/// Deterministic: the same config (seed included) always produces the
/// same trace, the same state, and the same iteration count. See the
/// module docs for the loop structure.
pub fn run(cfg: ScenarioConfig, opts: &ConvergeOptions) -> Result<Converged, FaircrowdError> {
    if !(opts.tolerance.is_finite() && opts.tolerance > 0.0) {
        return Err(FaircrowdError::usage(
            "converge tolerance must be a positive finite number",
        ));
    }
    if opts.max_iterations == 0 {
        return Err(FaircrowdError::usage(
            "converge iteration cap must be positive",
        ));
    }
    if !(opts.gain.is_finite() && opts.gain > 0.0 && opts.gain <= 1.0) {
        return Err(FaircrowdError::usage("converge gain must be in (0, 1]"));
    }
    cfg.validate()?;

    let mut state = StrategyState::initial(&cfg);
    let mut history: Vec<IterationSummary> = Vec::new();
    for iteration in 1..=opts.max_iterations {
        let trace = Simulation::with_state(cfg.clone(), state.clone()).run();
        let signals = Signals::of(&trace, &state);
        let mut next = state.clone();
        let step = opts.gain * GAIN_DECAY.powi(iteration as i32 - 1);
        let residual = control(cfg.strategy, &signals, &mut next, step);
        history.push(IterationSummary {
            iteration,
            residual,
            summary: TraceSummary::of(&trace),
        });
        if !residual.is_finite() {
            return Err(FaircrowdError::diverged(format!(
                "controller state went non-finite at iteration {iteration} \
                 (strategy `{}`)",
                cfg.strategy.label()
            )));
        }
        if residual <= opts.tolerance {
            return Ok(Converged {
                trace,
                iterations: iteration,
                history,
                state,
            });
        }
        state = next;
    }
    let last = history.last().map_or(f64::NAN, |h| h.residual);
    Err(FaircrowdError::diverged(format!(
        "no fixed point within {} iterations (strategy `{}`, last residual \
         {last:.6}, tolerance {:.6})",
        opts.max_iterations,
        cfg.strategy.label(),
        opts.tolerance
    )))
}

impl Signals {
    /// Extract per-agent signals from one iteration's trace. Sized to
    /// the strategy state so out-of-trace agents keep neutral signals.
    fn of(trace: &Trace, state: &StrategyState) -> Signals {
        let windex = |w: WorkerId| -> Option<usize> {
            let i = w.index();
            (i < state.reservation.len()).then_some(i)
        };

        // Per-worker money earned and approval counts, off the event log.
        let mut earned = vec![0.0f64; state.reservation.len()];
        let mut approved = vec![0u64; state.reservation.len()];
        let mut judged = vec![0u64; state.reservation.len()];
        let mut requester_approved: BTreeMap<RequesterId, u64> = BTreeMap::new();
        let task_requester: BTreeMap<TaskId, RequesterId> =
            trace.tasks.iter().map(|t| (t.id, t.requester)).collect();
        for e in trace.events.as_slice() {
            match &e.kind {
                EventKind::PaymentIssued { worker, amount, .. } => {
                    if let Some(i) = windex(*worker) {
                        earned[i] += amount.as_dollars_f64();
                    }
                }
                EventKind::BonusPaid { worker, amount, .. } => {
                    if let Some(i) = windex(*worker) {
                        earned[i] += amount.as_dollars_f64();
                    }
                }
                EventKind::SubmissionApproved { worker, task, .. } => {
                    if let Some(i) = windex(*worker) {
                        approved[i] += 1;
                        judged[i] += 1;
                    }
                    if let Some(r) = task_requester.get(task) {
                        *requester_approved.entry(*r).or_default() += 1;
                    }
                }
                EventKind::SubmissionRejected { worker, .. } => {
                    if let Some(i) = windex(*worker) {
                        judged[i] += 1;
                    }
                }
                _ => {}
            }
        }

        // Per-worker hours actually worked, off the submission records.
        let mut hours = vec![0.0f64; state.reservation.len()];
        for s in &trace.submissions {
            if let Some(i) = windex(s.worker) {
                hours[i] += s.work_duration().as_hours_f64();
            }
        }

        let wage = earned
            .iter()
            .zip(&hours)
            .map(|(&e, &h)| if h > 0.0 { e / h } else { 0.0 })
            .collect();
        let acceptance = approved
            .iter()
            .zip(&judged)
            .map(|(&a, &j)| if j > 0 { a as f64 / j as f64 } else { 1.0 })
            .collect();

        // Per-requester fill: approved submissions over slots wanted.
        let mut wanted = vec![0u64; state.multiplier.len()];
        for t in &trace.tasks {
            if let Some(w) = wanted.get_mut(t.requester.index()) {
                *w += u64::from(t.assignments_wanted);
            }
        }
        let fill = (0..state.multiplier.len())
            .map(|r| {
                let a = requester_approved
                    .get(&RequesterId::new(r as u32))
                    .copied()
                    .unwrap_or(0);
                if wanted[r] > 0 {
                    a as f64 / wanted[r] as f64
                } else {
                    0.0
                }
            })
            .collect();

        Signals {
            wage,
            acceptance,
            fill,
        }
    }
}

/// Apply one proportional-controller step for `strategy`, mutating
/// `next` in place, and return the largest normalized change. Static
/// strategies have no feedback and return 0.0 immediately.
fn control(
    strategy: StrategyChoice,
    signals: &Signals,
    next: &mut StrategyState,
    gain: f64,
) -> f64 {
    let mut residual = 0.0f64;
    let mut worker_targets = |target: &dyn Fn(usize) -> f64| {
        for w in 0..next.reservation.len() {
            let old = next.reservation[w];
            let new = old + gain * (target(w) - old);
            next.reservation[w] = new;
            // Normalize by the wage scale so a $40/h market and a $0.4/h
            // market converge at comparable tolerances.
            residual = residual.max((new - old).abs() / (1.0 + old.abs()));
        }
    };
    match strategy {
        StrategyChoice::Static => return 0.0,
        StrategyChoice::SuperTurker => {
            worker_targets(&|w| RESERVATION_MARGIN * signals.wage[w]);
        }
        StrategyChoice::ReputationTemporal => {
            worker_targets(&|w| {
                signals.wage[w]
                    * (REPUTATION_FLOOR + (1.0 - REPUTATION_FLOOR) * signals.acceptance[w])
            });
        }
        StrategyChoice::PriceUndercut => {
            for r in 0..next.multiplier.len() {
                let old = next.multiplier[r];
                let new = (old - gain * UNDERCUT_RATE * (signals.fill[r] - TARGET_FILL)).clamp(
                    PriceUndercutRequester::MIN_MULTIPLIER,
                    PriceUndercutRequester::MAX_MULTIPLIER,
                );
                next.multiplier[r] = new;
                // Residual over the post-clamp value: a multiplier pinned
                // at a bound is at *its* fixed point.
                residual = residual.max((new - old).abs());
            }
        }
    }
    residual
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn short(name: &str) -> ScenarioConfig {
        let mut cfg = catalog::get(name).unwrap();
        cfg.rounds = cfg.rounds.min(12);
        cfg
    }

    #[test]
    fn static_strategy_converges_in_one_iteration_to_the_plain_trace() {
        let cfg = short("baseline");
        let got = run(cfg.clone(), &ConvergeOptions::default()).unwrap();
        assert_eq!(got.iterations, 1);
        assert_eq!(got.history.len(), 1);
        assert_eq!(got.history[0].residual, 0.0);
        assert_eq!(got.trace, crate::run(cfg));
    }

    #[test]
    fn strategic_scenarios_reach_a_deterministic_fixed_point() {
        for name in catalog::STRATEGIC_NAMES {
            let cfg = short(name);
            let a = run(cfg.clone(), &ConvergeOptions::default()).unwrap();
            let b = run(cfg, &ConvergeOptions::default()).unwrap();
            assert_eq!(a.iterations, b.iterations, "{name}: iteration count");
            assert_eq!(a.trace, b.trace, "{name}: converged trace");
            assert_eq!(a.state, b.state, "{name}: fixed-point state");
            let last = a.history.last().unwrap();
            assert!(
                last.residual <= ConvergeOptions::default().tolerance,
                "{name}: final residual {}",
                last.residual
            );
        }
    }

    #[test]
    fn fixed_point_trace_is_reproducible_from_its_state() {
        let cfg = short("super_turkers");
        let got = run(cfg.clone(), &ConvergeOptions::default()).unwrap();
        let replayed = Simulation::with_state(cfg, got.state.clone()).run();
        assert_eq!(replayed, got.trace);
    }

    #[test]
    fn iteration_cap_is_a_named_divergence_error() {
        let cfg = short("super_turkers");
        let err = run(
            cfg,
            &ConvergeOptions {
                tolerance: 1e-12,
                max_iterations: 2,
                gain: 1.0,
            },
        )
        .unwrap_err();
        match &err {
            FaircrowdError::Diverged { message } => {
                assert!(message.contains("2 iterations"), "{message}");
                assert!(message.contains("super_turker"), "{message}");
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn bad_options_are_usage_errors() {
        let cfg = short("baseline");
        for opts in [
            ConvergeOptions {
                tolerance: 0.0,
                ..Default::default()
            },
            ConvergeOptions {
                max_iterations: 0,
                ..Default::default()
            },
            ConvergeOptions {
                gain: 0.0,
                ..Default::default()
            },
            ConvergeOptions {
                gain: 1.5,
                ..Default::default()
            },
        ] {
            match run(cfg.clone(), &opts) {
                Err(FaircrowdError::Usage { .. }) => {}
                other => panic!("expected Usage error for {opts:?}, got {other:?}"),
            }
        }
    }
}
