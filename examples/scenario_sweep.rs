//! Scenario sweep: the paper's validation matrix in one grid.
//!
//! Runs every assignment policy against three catalog scenarios across
//! four seeds on a worker pool, then prints the per-cell aggregate
//! table — per-axiom pass rates folded across seeds — and shows how an
//! enforcement stack shifts a hostile scenario's scores.
//!
//! ```sh
//! cargo run --release --example scenario_sweep
//! ```

use faircrowd::prelude::*;
use faircrowd::sweep::run_grid;

fn main() -> Result<(), FaircrowdError> {
    let jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Axes: 8 policies × 3 scenarios × 4 seeds = 96 audited markets.
    let grid = SweepGrid::parse(
        "policy=*;scenario=baseline,spam_campaign,worker_churn;seed=0..4;rounds=24",
    )?;
    println!(
        "sweeping {} cases on {jobs} thread(s)…\n",
        grid.expand()?.len()
    );
    let result = run_grid(&grid, jobs)?;
    print!("{}", result.render_table());

    // Same idea along the enforcement axis: how much does each repair
    // stack buy on the churn-heavy opaque market?
    let repairs = SweepGrid::parse(
        "scenario=worker_churn;seed=0..4;rounds=24;enforce=none,transparency,parity+grace+transparency",
    )?;
    let repaired = run_grid(&repairs, jobs)?;
    println!("\nenforcement ladder on worker_churn:\n");
    print!("{}", repaired.render_table());

    println!("\n(machine-readable: --format json|csv via `faircrowd sweep`)");
    Ok(())
}
