//! Shared fixtures for the persistence/codec integration suites:
//! an adversarial random-trace generator covering every event kind and
//! contribution type the schema encodes.

use faircrowd::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A messy random trace covering every event kind and contribution
/// type, structured enough for every axiom's quantifier domain to be
/// non-trivial. (Broader than the simulator's output on purpose: the
/// schema must round-trip anything a platform could legally log.)
pub fn random_trace(seed: u64, n_workers: usize, n_tasks: usize, n_subs: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace {
        disclosure: match rng.gen_range(0..3u8) {
            0 => DisclosureSet::fully_transparent(),
            1 => DisclosureSet::opaque(),
            _ => faircrowd::core::enforce::minimal_transparent_set(),
        },
        ..Trace::default()
    };
    let n_skills = 5;

    for i in 0..n_workers {
        let mut skills = SkillVector::with_len(n_skills);
        for s in 0..n_skills {
            if rng.gen_bool(0.4) {
                skills.set(SkillId::new(s as u32), true);
            }
        }
        let declared = DeclaredAttrs::new()
            .with(
                "region",
                AttrValue::Text(["north", "south"][rng.gen_range(0..2usize)].into()),
            )
            .with("age", AttrValue::Int(rng.gen_range(18..70i64)))
            .with("adult", AttrValue::Bool(true))
            .with(
                "hours",
                AttrValue::Real(f64::from(rng.gen_range(1..40u32)) / 2.0),
            );
        let mut worker = Worker::new(WorkerId::new(i as u32), declared, skills);
        worker.computed.tasks_submitted = rng.gen_range(0..200u64);
        worker.computed.quality_estimate = f64::from(rng.gen_range(0..100u32)) / 100.0;
        worker.computed.total_earnings = Credits::from_millicents(rng.gen_range(0..1_000_000i64));
        if rng.gen_bool(0.2) {
            worker.computed.extra.insert("hits".into(), 3.5);
        }
        trace.workers.push(worker);
        if rng.gen_bool(0.15) {
            trace
                .ground_truth
                .malicious_workers
                .insert(WorkerId::new(i as u32));
        }
    }
    for i in 0..2u32 {
        let mut r = Requester::new(RequesterId::new(i), format!("r{i}"));
        r.approved = rng.gen_range(0..50u64);
        r.rejected = rng.gen_range(0..20u64);
        trace.requesters.push(r);
    }
    for i in 0..n_tasks {
        let mut skills = SkillVector::with_len(n_skills);
        for s in 0..n_skills {
            if rng.gen_bool(0.3) {
                skills.set(SkillId::new(s as u32), true);
            }
        }
        let kind = match rng.gen_range(0..4u8) {
            0 => TaskKind::Labeling { classes: 3 },
            1 => TaskKind::FreeText,
            2 => TaskKind::Ranking { items: 4 },
            _ => TaskKind::Survey,
        };
        let conditions = if rng.gen_bool(0.5) {
            faircrowd::model::task::TaskConditions::fully_disclosed(
                Credits::from_dollars(6),
                SimDuration::from_days(1),
            )
        } else {
            faircrowd::model::task::TaskConditions::default()
        };
        trace.tasks.push(
            faircrowd::model::task::TaskBuilder::new(
                TaskId::new(i as u32),
                RequesterId::new(rng.gen_range(0..2u32)),
                skills,
                Credits::from_cents(rng.gen_range(1..50i64)),
            )
            .campaign(CampaignId::new(rng.gen_range(0..3u32)))
            .kind(kind)
            .conditions(conditions)
            .build(),
        );
        if rng.gen_bool(0.6) {
            trace
                .ground_truth
                .true_labels
                .insert(TaskId::new(i as u32), rng.gen_range(0..3u8));
        }
    }

    let mut clock = 0u64;
    let mut tick = |rng: &mut StdRng| {
        clock += rng.gen_range(0..5u64);
        SimTime::from_secs(clock)
    };
    if n_workers > 0 && n_tasks > 0 {
        let any_worker = |rng: &mut StdRng| WorkerId::new(rng.gen_range(0..n_workers) as u32);
        let any_task = |rng: &mut StdRng| TaskId::new(rng.gen_range(0..n_tasks) as u32);
        for _ in 0..(n_workers * 2) {
            let (worker, task) = (any_worker(&mut rng), any_task(&mut rng));
            let t = tick(&mut rng);
            trace
                .events
                .push(t, EventKind::TaskVisible { task, worker });
        }
        for i in 0..n_subs {
            let (worker, task) = (any_worker(&mut rng), any_task(&mut rng));
            let contribution = match rng.gen_range(0..4u8) {
                0 => Contribution::Label(rng.gen_range(0..3u8)),
                1 => Contribution::Text("the quick brown fox".into()),
                2 => Contribution::Ranking(vec![0, 2, 1, 3]),
                _ => Contribution::Numeric(f64::from(rng.gen_range(0..100u32)) / 7.0),
            };
            let start = tick(&mut rng);
            let id = SubmissionId::new(i as u32);
            trace.submissions.push(Submission {
                id,
                task,
                worker,
                contribution,
                started_at: start,
                submitted_at: SimTime::from_secs(start.as_secs() + rng.gen_range(30..600u64)),
            });
            let t = tick(&mut rng);
            trace.events.push(
                t,
                EventKind::SubmissionReceived {
                    submission: id,
                    task,
                    worker,
                },
            );
            match rng.gen_range(0..4u8) {
                0 => {
                    let t = tick(&mut rng);
                    trace.events.push(
                        t,
                        EventKind::PaymentIssued {
                            submission: id,
                            task,
                            worker,
                            amount: Credits::from_millicents(rng.gen_range(0..20_000i64)),
                        },
                    );
                }
                1 => {
                    let t = tick(&mut rng);
                    trace.events.push(
                        t,
                        EventKind::SubmissionRejected {
                            submission: id,
                            task,
                            worker,
                            feedback: rng.gen_bool(0.5).then(|| "too noisy".to_owned()),
                        },
                    );
                }
                _ => {}
            }
        }
        // One of everything else, so every encoder arm is exercised.
        let w = any_worker(&mut rng);
        let t0 = any_task(&mut rng);
        let r = RequesterId::new(0);
        let pairs: Vec<(EventKind, SimTime)> = vec![
            EventKind::TaskPosted {
                task: t0,
                requester: r,
            },
            EventKind::TaskAccepted {
                task: t0,
                worker: w,
            },
            EventKind::WorkStarted {
                task: t0,
                worker: w,
            },
            EventKind::SessionStarted { worker: w },
            EventKind::DisclosureShown {
                worker: w,
                item: DisclosureItem::WorkerAcceptanceRatio,
            },
            EventKind::BonusPromised {
                worker: w,
                requester: r,
                amount: Credits::from_cents(3),
            },
            EventKind::BonusPaid {
                worker: w,
                requester: r,
                amount: Credits::from_cents(3),
            },
            EventKind::BonusReneged {
                worker: w,
                requester: r,
                amount: Credits::from_cents(2),
            },
            EventKind::TaskCanceled {
                task: t0,
                reason: faircrowd::model::event::CancelReason::Withdrawn,
            },
            EventKind::WorkInterrupted {
                task: t0,
                worker: w,
                invested: SimDuration::from_secs(rng.gen_range(1..500u64)),
                compensated: rng.gen_bool(0.5),
            },
            EventKind::WorkerFlagged {
                worker: w,
                score: f64::from(rng.gen_range(0..100u32)) / 100.0,
                detector: "spam".into(),
            },
            EventKind::SessionEnded { worker: w },
            EventKind::WorkerQuit {
                worker: w,
                reason: faircrowd::model::event::QuitReason::Frustration,
            },
        ]
        .into_iter()
        .map(|kind| {
            let t = tick(&mut rng);
            (kind, t)
        })
        .collect();
        for (kind, t) in pairs {
            trace.events.push(t, kind);
        }
    }
    trace.horizon = SimTime::from_secs(clock + 1);
    trace
}
