//! The TPL recursive-descent parser.

use crate::ast::{AudienceExpr, AudienceRef, Condition, Decl, Document, Policy};
use crate::error::{LangError, Phase, Span};
use crate::lexer::{SpannedToken, Token};

/// Parse a token stream into a document.
pub fn parse(tokens: &[SpannedToken], source: &str) -> Result<Document, LangError> {
    let mut p = Parser {
        tokens,
        pos: 0,
        source,
    };
    let mut policies = Vec::new();
    while !p.at_end() {
        policies.push(p.policy()?);
    }
    if policies.is_empty() {
        return Err(LangError::other("empty document: no policies"));
    }
    Ok(Document { policies })
}

struct Parser<'a> {
    tokens: &'a [SpannedToken],
    pos: usize,
    source: &'a str,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&'a SpannedToken> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<&'a SpannedToken> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    fn last_span(&self) -> Span {
        self.tokens
            .last()
            .map(|t| t.span)
            .unwrap_or(Span::new(0, 0))
    }

    fn error_here(&self, message: impl Into<String>) -> LangError {
        let span = self.peek().map(|t| t.span).unwrap_or(self.last_span());
        LangError::at(Phase::Parse, message, span, self.source)
    }

    fn expect(&mut self, want: &Token) -> Result<&'a SpannedToken, LangError> {
        match self.peek() {
            Some(t) if &t.token == want => Ok(self.advance().expect("peeked")),
            Some(t) => Err(self.error_here(format!(
                "expected {}, found {}",
                want.describe(),
                t.token.describe()
            ))),
            None => {
                Err(self.error_here(format!("expected {}, found end of input", want.describe())))
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), LangError> {
        match self.peek() {
            Some(SpannedToken {
                token: Token::Ident(name),
                span,
            }) => {
                self.advance();
                Ok((name.clone(), *span))
            }
            Some(t) => {
                Err(self.error_here(format!("expected {what}, found {}", t.token.describe())))
            }
            None => Err(self.error_here(format!("expected {what}, found end of input"))),
        }
    }

    fn policy(&mut self) -> Result<Policy, LangError> {
        self.expect(&Token::Policy)?;
        let (name, name_span) = match self.peek() {
            Some(SpannedToken {
                token: Token::Str(s),
                span,
            }) => {
                self.advance();
                (s.clone(), *span)
            }
            _ => return Err(self.error_here("expected a quoted policy name")),
        };
        self.expect(&Token::LBrace)?;
        let mut decls = Vec::new();
        loop {
            match self.peek().map(|t| &t.token) {
                Some(Token::RBrace) => {
                    self.advance();
                    break;
                }
                Some(Token::Audience) => decls.push(self.audience_def()?),
                Some(Token::Disclose) => decls.push(self.disclose()?),
                Some(Token::Require) => decls.push(self.require()?),
                Some(_) => {
                    return Err(self.error_here("expected `audience`, `disclose`, `require` or `}`"))
                }
                None => {
                    return Err(self.error_here("unclosed policy block: missing `}`"));
                }
            }
        }
        Ok(Policy {
            name,
            name_span,
            decls,
        })
    }

    fn audience_def(&mut self) -> Result<Decl, LangError> {
        self.expect(&Token::Audience)?;
        let (name, name_span) = self.expect_ident("an audience name")?;
        self.expect(&Token::Eq)?;
        let expr = match self.peek().map(|t| &t.token) {
            Some(Token::Public) => {
                self.advance();
                AudienceExpr::Public
            }
            Some(Token::Subject) => {
                self.advance();
                AudienceExpr::Subject
            }
            Some(Token::Role) => {
                self.advance();
                self.expect(&Token::LParen)?;
                let (role, span) = match self.peek() {
                    Some(SpannedToken {
                        token: Token::Ident(r),
                        span,
                    }) => {
                        let out = (r.clone(), *span);
                        self.advance();
                        out
                    }
                    // `requester` is a keyword but also a valid role name
                    Some(SpannedToken {
                        token: Token::Requester,
                        span,
                    }) => {
                        let out = ("requester".to_owned(), *span);
                        self.advance();
                        out
                    }
                    _ => return Err(self.error_here("expected a role name")),
                };
                self.expect(&Token::RParen)?;
                AudienceExpr::Role { role, span }
            }
            _ => return Err(self.error_here("expected `public`, `subject` or `role(...)`")),
        };
        self.expect(&Token::Semi)?;
        Ok(Decl::AudienceDef {
            name,
            name_span,
            expr,
        })
    }

    fn disclose(&mut self) -> Result<Decl, LangError> {
        self.expect(&Token::Disclose)?;
        let (item, item_span) = self.expect_ident("a disclosure item path")?;
        self.expect(&Token::To)?;
        let audience = match self.peek() {
            Some(SpannedToken {
                token: Token::Public,
                span,
            }) => {
                let r = AudienceRef {
                    name: "public".into(),
                    span: *span,
                };
                self.advance();
                r
            }
            Some(SpannedToken {
                token: Token::Subject,
                span,
            }) => {
                let r = AudienceRef {
                    name: "subject".into(),
                    span: *span,
                };
                self.advance();
                r
            }
            Some(SpannedToken {
                token: Token::Ident(name),
                span,
            }) => {
                let r = AudienceRef {
                    name: name.clone(),
                    span: *span,
                };
                self.advance();
                r
            }
            _ => return Err(self.error_here("expected an audience after `to`")),
        };
        let condition = match self.peek().map(|t| &t.token) {
            Some(Token::When) => {
                self.advance();
                let (context, span) = self.expect_ident("a context name after `when`")?;
                Condition::When { context, span }
            }
            Some(Token::Always) => {
                self.advance();
                Condition::Always
            }
            _ => Condition::Always,
        };
        self.expect(&Token::Semi)?;
        Ok(Decl::Disclose {
            item,
            item_span,
            audience,
            condition,
        })
    }

    fn require(&mut self) -> Result<Decl, LangError> {
        self.expect(&Token::Require)?;
        self.expect(&Token::Requester)?;
        self.expect(&Token::Discloses)?;
        let (item, item_span) = self.expect_ident("a required item")?;
        let before = match self.peek().map(|t| &t.token) {
            Some(Token::Before) => {
                self.advance();
                let (phase, _) = self.expect_ident("a phase name after `before`")?;
                Some(phase)
            }
            _ => None,
        };
        self.expect(&Token::Semi)?;
        Ok(Decl::Require {
            item,
            item_span,
            before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(source: &str) -> Document {
        parse(&lex(source).unwrap(), source).unwrap()
    }

    fn parse_err(source: &str) -> LangError {
        match lex(source) {
            Ok(tokens) => parse(&tokens, source).unwrap_err(),
            Err(e) => e,
        }
    }

    #[test]
    fn parses_full_policy() {
        let doc = parse_ok(
            r#"
            policy "crowdflower" {
                audience workers = role(worker);
                audience everyone = public;
                disclose task.rating to everyone when browsing;
                disclose worker.quality_estimate to subject always;
                require requester discloses rejection_criteria before posting;
            }
            "#,
        );
        assert_eq!(doc.policies.len(), 1);
        let p = &doc.policies[0];
        assert_eq!(p.name, "crowdflower");
        assert_eq!(p.decls.len(), 5);
        assert!(matches!(p.decls[0], Decl::AudienceDef { .. }));
        assert!(matches!(p.decls[2], Decl::Disclose { .. }));
        assert!(matches!(p.decls[4], Decl::Require { .. }));
    }

    #[test]
    fn condition_defaults_to_always() {
        let doc = parse_ok(r#"policy "p" { disclose task.rating to public; }"#);
        match &doc.policies[0].decls[0] {
            Decl::Disclose { condition, .. } => assert_eq!(condition, &Condition::Always),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multiple_policies_in_one_document() {
        let doc = parse_ok(
            r#"policy "a" { disclose task.rating to public; }
               policy "b" { disclose task.rating to public; }"#,
        );
        assert_eq!(doc.policies.len(), 2);
        assert_eq!(doc.policies[1].name, "b");
    }

    #[test]
    fn role_requester_is_allowed() {
        let doc = parse_ok(r#"policy "p" { audience reqs = role(requester); }"#);
        match &doc.policies[0].decls[0] {
            Decl::AudienceDef { expr, .. } => {
                assert!(matches!(expr, AudienceExpr::Role { role, .. } if role == "requester"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_semicolon_is_a_parse_error() {
        let err = parse_err(r#"policy "p" { disclose task.rating to public }"#);
        assert!(err.message.contains("`;`"), "{}", err.message);
    }

    #[test]
    fn unclosed_block_reported() {
        let err = parse_err(r#"policy "p" { disclose task.rating to public;"#);
        assert!(err.message.contains("missing `}`"), "{}", err.message);
    }

    #[test]
    fn unquoted_name_rejected() {
        let err = parse_err("policy nope { }");
        assert!(err.message.contains("quoted policy name"));
    }

    #[test]
    fn garbage_decl_rejected_with_position() {
        let err = parse_err(r#"policy "p" { banana; }"#);
        assert!(err.message.contains("expected `audience`"));
        assert!(err.context.is_some());
    }

    #[test]
    fn empty_document_rejected() {
        let err = parse_err("   # nothing but a comment\n");
        assert!(err.message.contains("empty document"));
    }

    #[test]
    fn require_without_before() {
        let doc = parse_ok(r#"policy "p" { require requester discloses hourly_wage; }"#);
        match &doc.policies[0].decls[0] {
            Decl::Require { before, item, .. } => {
                assert!(before.is_none());
                assert_eq!(item, "hourly_wage");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
