//! Min-cost max-flow for degree-constrained bipartite b-matching.
//!
//! The worker-centric policy needs a *b-matching*: each worker may take up
//! to `capacity` tasks, each task accepts up to `slots` workers, and any
//! (worker, task) pair may be used **at most once**. Clone-expansion into
//! a plain assignment problem cannot express the at-most-once constraint
//! (the Hungarian solver happily puts three clones of one worker on three
//! clones of the same task). The natural formulation is a flow network:
//!
//! ```text
//! source --cap=capacity--> worker --cap=1, cost=-weight--> task --cap=slots--> sink
//! ```
//!
//! Successive-shortest-path min-cost flow, augmenting only while the
//! shortest path has negative cost, yields the maximum-weight b-matching
//! (not necessarily maximum cardinality — a zero-weight edge is never
//! taken, which is what "maximise worker preference" means).
//!
//! Bellman–Ford path search keeps the implementation simple and handles
//! the negative edge costs directly; our graphs are small (hundreds of
//! nodes), so the O(F·V·E) bound is comfortable.

/// One directed edge in the residual graph.
#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    rev: usize, // index of the reverse edge in graph[to]
    cap: i64,
    cost: f64,
}

/// A min-cost-flow network builder/solver.
#[derive(Debug, Default)]
pub struct MinCostFlow {
    graph: Vec<Vec<Edge>>,
}

impl MinCostFlow {
    /// A network with `n` nodes.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            graph: vec![Vec::new(); n],
        }
    }

    /// Add a directed edge with capacity and per-unit cost. Returns
    /// `(from, index)` so callers can inspect flow afterwards.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64, cost: f64) -> (usize, usize) {
        let fwd = Edge {
            to,
            rev: self.graph[to].len(),
            cap,
            cost,
        };
        let bwd = Edge {
            to: from,
            rev: self.graph[from].len(),
            cap: 0,
            cost: -cost,
        };
        self.graph[from].push(fwd);
        let idx = self.graph[from].len() - 1;
        self.graph[to].push(bwd);
        (from, idx)
    }

    /// Flow pushed through an edge returned by `add_edge`: the reverse
    /// edge's residual capacity.
    pub fn flow_on(&self, handle: (usize, usize)) -> i64 {
        let (from, idx) = handle;
        let e = &self.graph[from][idx];
        self.graph[e.to][e.rev].cap
    }

    /// Push flow along negative-cost shortest paths from `source` to
    /// `sink` until no negative-cost augmenting path remains. Returns
    /// `(flow, total_cost)`.
    pub fn run_negative(&mut self, source: usize, sink: usize) -> (i64, f64) {
        let n = self.graph.len();
        let mut total_flow = 0i64;
        let mut total_cost = 0.0f64;
        loop {
            // Bellman–Ford shortest path by cost.
            let mut dist = vec![f64::INFINITY; n];
            let mut in_queue = vec![false; n];
            let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
            dist[source] = 0.0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(source);
            in_queue[source] = true;
            while let Some(u) = queue.pop_front() {
                in_queue[u] = false;
                let du = dist[u];
                for (ei, e) in self.graph[u].iter().enumerate() {
                    if e.cap > 0 && du + e.cost < dist[e.to] - 1e-12 {
                        dist[e.to] = du + e.cost;
                        prev[e.to] = Some((u, ei));
                        if !in_queue[e.to] {
                            queue.push_back(e.to);
                            in_queue[e.to] = true;
                        }
                    }
                }
            }
            if dist[sink] >= -1e-12 || prev[sink].is_none() {
                break; // no improving path left
            }
            // bottleneck along the path
            let mut bottleneck = i64::MAX;
            let mut v = sink;
            while let Some((u, ei)) = prev[v] {
                bottleneck = bottleneck.min(self.graph[u][ei].cap);
                v = u;
            }
            // apply
            let mut v = sink;
            while let Some((u, ei)) = prev[v] {
                let rev = self.graph[u][ei].rev;
                self.graph[u][ei].cap -= bottleneck;
                self.graph[v][rev].cap += bottleneck;
                v = u;
            }
            total_flow += bottleneck;
            total_cost += dist[sink] * bottleneck as f64;
        }
        (total_flow, total_cost)
    }
}

/// Maximum-weight bipartite b-matching with per-pair multiplicity 1.
///
/// `weights[w][t]` is the value of pairing worker `w` with task `t`
/// (`f64::NEG_INFINITY` = forbidden); `capacities[w]` bounds the worker's
/// degree, `slots[t]` the task's. Only strictly positive-weight pairs are
/// ever selected. Returns the chosen pairs in deterministic order.
pub fn max_weight_b_matching(
    weights: &[Vec<f64>],
    capacities: &[u32],
    slots: &[u32],
) -> Vec<(usize, usize)> {
    let n_workers = weights.len();
    let n_tasks = slots.len();
    debug_assert_eq!(capacities.len(), n_workers);
    if n_workers == 0 || n_tasks == 0 {
        return Vec::new();
    }
    // node layout: 0 = source, 1..=W workers, W+1..=W+T tasks, last = sink
    let source = 0usize;
    let sink = n_workers + n_tasks + 1;
    let mut net = MinCostFlow::new(sink + 1);
    for (w, &cap) in capacities.iter().enumerate() {
        net.add_edge(source, 1 + w, i64::from(cap), 0.0);
    }
    let mut pair_handles = Vec::new();
    for (w, row) in weights.iter().enumerate() {
        debug_assert_eq!(row.len(), n_tasks);
        for (t, &weight) in row.iter().enumerate() {
            if weight > 0.0 && weight.is_finite() {
                let h = net.add_edge(1 + w, 1 + n_workers + t, 1, -weight);
                pair_handles.push((w, t, h));
            }
        }
    }
    for (t, &s) in slots.iter().enumerate() {
        net.add_edge(1 + n_workers + t, sink, i64::from(s), 0.0);
    }
    net.run_negative(source, sink);
    pair_handles
        .into_iter()
        .filter(|&(_, _, h)| net.flow_on(h) > 0)
        .map(|(w, t, _)| (w, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pair() {
        let pairs = max_weight_b_matching(&[vec![2.0]], &[1], &[1]);
        assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn respects_pair_multiplicity() {
        // One task with 3 slots; one eager worker with capacity 3 plus a
        // second worker. The pair (w0, t0) may be used at most once, so
        // the optimum is both workers once each — the case that defeated
        // clone-expansion Hungarian matching.
        let weights = vec![vec![2.0], vec![2.0]];
        let pairs = max_weight_b_matching(&weights, &[3, 1], &[3]);
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(0, 0)));
        assert!(pairs.contains(&(1, 0)));
    }

    #[test]
    fn respects_capacities_and_slots() {
        // 2 workers × 3 tasks, worker 0 capacity 2, tasks 1 slot each
        let weights = vec![vec![5.0, 4.0, 3.0], vec![5.0, 4.0, 3.0]];
        let pairs = max_weight_b_matching(&weights, &[2, 1], &[1, 1, 1]);
        assert_eq!(pairs.len(), 3);
        let w0: Vec<_> = pairs.iter().filter(|(w, _)| *w == 0).collect();
        assert_eq!(w0.len(), 2, "worker 0 uses her capacity");
        // total weight is optimal: w0 takes two best she can, w1 the rest
        // optimum = 5 + 4 + 3 = 12 whichever way split
    }

    #[test]
    fn prefers_heavier_edges() {
        // worker 0 must choose: t0 (10) or t1 (1); capacity 1
        let weights = vec![vec![10.0, 1.0]];
        let pairs = max_weight_b_matching(&weights, &[1], &[1, 1]);
        assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn crossover_beats_greedy() {
        // greedy would give w0 task 0 (9) and leave w1 with 1; optimum
        // crosses: w0→t1 (8), w1→t0 (8)
        let weights = vec![vec![9.0, 8.0], vec![8.0, 1.0]];
        let pairs = max_weight_b_matching(&weights, &[1, 1], &[1, 1]);
        let total: f64 = pairs.iter().map(|&(w, t)| weights[w][t]).sum();
        assert_eq!(total, 16.0);
    }

    #[test]
    fn zero_and_forbidden_edges_unused() {
        let weights = vec![vec![0.0, f64::NEG_INFINITY, 3.0]];
        let pairs = max_weight_b_matching(&weights, &[3], &[1, 1, 1]);
        assert_eq!(pairs, vec![(0, 2)]);
    }

    #[test]
    fn empty_inputs() {
        assert!(max_weight_b_matching(&[], &[], &[1]).is_empty());
        let w: Vec<Vec<f64>> = vec![vec![]];
        assert!(max_weight_b_matching(&w, &[1], &[]).is_empty());
    }

    #[test]
    fn flow_network_primitives() {
        let mut net = MinCostFlow::new(3);
        let e = net.add_edge(0, 1, 2, -1.0);
        net.add_edge(1, 2, 1, -1.0);
        let (flow, cost) = net.run_negative(0, 2);
        assert_eq!(flow, 1);
        assert!((cost + 2.0).abs() < 1e-9);
        assert_eq!(net.flow_on(e), 1);
    }
}
