//! Round-robin assignment.
//!
//! An equitable-by-construction baseline: full qualified visibility, and
//! assignments dealt one at a time to each worker in turn, so no worker
//! accumulates tasks while another starves. Deterministic given the input
//! (no RNG use) — useful as the fairness anchor in E1.

use crate::policy::{AssignInput, AssignmentOutcome, AssignmentPolicy};
use rand::RngCore;
use std::collections::{BTreeMap, BTreeSet};

/// Deal tasks to workers in rotation.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl AssignmentPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn assign(&mut self, input: &AssignInput, _rng: &mut dyn RngCore) -> AssignmentOutcome {
        let mut outcome = AssignmentOutcome::default();
        for w in &input.workers {
            for t in &input.tasks {
                if w.qualifies(t) {
                    outcome.show(w.id, t.id);
                }
            }
        }
        let mut slots: BTreeMap<_, u32> = input.tasks.iter().map(|t| (t.id, t.slots)).collect();
        let mut capacity: Vec<u32> = input.workers.iter().map(|w| w.capacity).collect();
        let mut taken: Vec<BTreeSet<_>> = vec![BTreeSet::new(); input.workers.len()];

        loop {
            let mut progressed = false;
            for (wi, w) in input.workers.iter().enumerate() {
                if capacity[wi] == 0 {
                    continue;
                }
                // the first (lowest-id) qualified open task not yet taken
                let next = input
                    .tasks
                    .iter()
                    .find(|t| w.qualifies(t) && slots[&t.id] > 0 && !taken[wi].contains(&t.id));
                if let Some(t) = next {
                    *slots.get_mut(&t.id).expect("slot entry") -= 1;
                    capacity[wi] -= 1;
                    taken[wi].insert(t.id);
                    outcome.assign(w.id, t.id);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::fixtures::small_market;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    #[test]
    fn feasible_and_fills_slots() {
        let m = small_market();
        let o = RoundRobin.assign(&m, &mut StdRng::seed_from_u64(0));
        assert!(o.check_feasible(&m).is_empty());
        assert_eq!(o.assignments.len(), 4, "all slots fillable in this market");
    }

    #[test]
    fn spreads_assignments_across_workers() {
        let m = small_market();
        let o = RoundRobin.assign(&m, &mut StdRng::seed_from_u64(0));
        let mut per_worker: BTreeMap<_, usize> = BTreeMap::new();
        for (w, _) in &o.assignments {
            *per_worker.entry(*w).or_insert(0) += 1;
        }
        // Rotation guarantee: nobody receives a second task until every
        // worker has had a first-round turn. w3 only qualifies for t0,
        // whose two slots fill during round one, so she may go empty —
        // but the spread among the served must stay within one task.
        let served_max = *per_worker.values().max().unwrap();
        let served_min = *per_worker.values().min().unwrap();
        assert!(served_max - served_min <= 1, "{per_worker:?}");
        assert!(per_worker.len() >= 3, "{per_worker:?}");
        // first three assignments are three distinct workers (round one)
        let first_round: std::collections::BTreeSet<_> =
            o.assignments.iter().take(3).map(|(w, _)| *w).collect();
        assert_eq!(first_round.len(), 3);
    }

    #[test]
    fn ignores_rng_entirely() {
        let m = small_market();
        let a = RoundRobin.assign(&m, &mut StdRng::seed_from_u64(1));
        let b = RoundRobin.assign(&m, &mut StdRng::seed_from_u64(999));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_market() {
        let o = RoundRobin.assign(&AssignInput::default(), &mut StdRng::seed_from_u64(0));
        assert!(o.assignments.is_empty());
        assert!(o.visibility.is_empty());
    }
}
