//! `undercut_churn`: price adjustment in a churning, rejection-heavy
//! market.
//!
//! The mirror image of `price_war`: an opaque platform with arbitrary
//! rejections keeps frustrating workers out of the market, so campaigns
//! *starve* rather than fill. The same undercutting controller now runs
//! in reverse — requesters whose fill rates sit below target sweeten
//! their rewards iteration over iteration, bidding for a shrinking
//! crowd. The fixed point shows whether price alone can buy back the
//! labour that opacity churned away (it cannot; retention is not a
//! price problem — the §3.1.2 argument, rendered emergent).

use crate::config::{
    ApprovalPolicy, CampaignSpec, ScenarioConfig, StrategyChoice, WorkerPopulation,
};
use faircrowd_model::disclosure::DisclosureSet;

/// The `undercut_churn` preset.
pub fn config() -> ScenarioConfig {
    let mut population = WorkerPopulation::diligent(24);
    population.participation = 0.65;
    ScenarioConfig {
        seed: 42,
        rounds: 60,
        n_skills: 6,
        workers: vec![population],
        campaigns: vec![
            CampaignSpec::labeling("acme", 70, 8),
            CampaignSpec::labeling("initech", 55, 9),
        ],
        disclosure: DisclosureSet::opaque(),
        approval: ApprovalPolicy::RandomReject {
            reject_prob: 0.15,
            give_feedback: false,
        },
        strategy: StrategyChoice::PriceUndercut,
        ..Default::default()
    }
}
