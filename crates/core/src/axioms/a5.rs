//! Axiom 5 — worker fairness in task completion.
//!
//! *"A worker who started completing a task should not be interrupted."*
//!
//! This is the §3.1.1 survey-cancellation scenario: a requester reaches
//! her target and cancels, leaving mid-task workers unpaid for their
//! effort. Every `WorkInterrupted` audit event is a violation witness;
//! compensated interruptions count at half severity (the worker still
//! lost the task but not the time). The score is the fraction of started
//! work items that ran to completion, weighted accordingly.

use crate::axiom::{Axiom, AxiomId, AxiomReport, ViolationCollector};
use crate::index::TraceIndex;
use faircrowd_model::similarity::SimilarityConfig;

/// Checker for Axiom 5.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoInterruption;

impl Axiom for NoInterruption {
    fn id(&self) -> AxiomId {
        AxiomId::A5NoInterruption
    }

    fn check(
        &self,
        ix: &TraceIndex<'_>,
        _cfg: &SimilarityConfig,
        max_witnesses: usize,
    ) -> AxiomReport {
        let started = ix.work_started();
        if started == 0 {
            return AxiomReport::vacuous(self.id(), "no work was started in the trace");
        }

        let mut collector = ViolationCollector::new(self.id(), max_witnesses);
        let mut weighted = 0.0f64;
        let mut uncompensated = 0usize;
        let mut compensated = 0usize;
        for intr in ix.interruptions() {
            let severity = if intr.compensated {
                compensated += 1;
                0.5
            } else {
                uncompensated += 1;
                1.0
            };
            weighted += severity;
            collector.push(
                severity,
                format!(
                    "worker {} was interrupted on task {} after investing {}{}",
                    intr.worker,
                    intr.task,
                    intr.invested,
                    if intr.compensated {
                        " (partially compensated)"
                    } else {
                        " (unpaid)"
                    }
                ),
            );
        }

        AxiomReport {
            axiom: self.id(),
            score: (1.0 - weighted / started as f64).clamp(0.0, 1.0),
            checked: started,
            violation_count: collector.total,
            truncated: collector.truncated(),
            violations: collector.items,
            notes: vec![format!(
                "{started} work items started; {uncompensated} interrupted unpaid, \
                 {compensated} interrupted with partial pay"
            )],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::fixtures::*;
    use faircrowd_model::event::EventKind;
    use faircrowd_model::time::{SimDuration, SimTime};
    use faircrowd_model::trace::Trace;

    fn cfg() -> SimilarityConfig {
        SimilarityConfig::default()
    }

    fn start(trace: &mut Trace, at: u64, task_id: u32, worker_id: u32) {
        trace.events.push(
            SimTime::from_secs(at),
            EventKind::WorkStarted {
                task: t(task_id),
                worker: w(worker_id),
            },
        );
    }

    fn interrupt(trace: &mut Trace, at: u64, task_id: u32, worker_id: u32, compensated: bool) {
        trace.events.push(
            SimTime::from_secs(at),
            EventKind::WorkInterrupted {
                task: t(task_id),
                worker: w(worker_id),
                invested: SimDuration::from_mins(3),
                compensated,
            },
        );
    }

    #[test]
    fn uninterrupted_work_scores_one() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        start(&mut trace, 10, 0, 0);
        start(&mut trace, 10, 0, 1);
        let r = NoInterruption.check_trace(&trace, &cfg(), 10);
        assert!((r.score - 1.0).abs() < 1e-12);
        assert_eq!(r.checked, 2);
        assert!(r.holds());
    }

    #[test]
    fn unpaid_interruption_is_full_violation() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        start(&mut trace, 10, 0, 0);
        start(&mut trace, 10, 0, 1);
        interrupt(&mut trace, 20, 0, 1, false);
        let r = NoInterruption.check_trace(&trace, &cfg(), 10);
        assert!((r.score - 0.5).abs() < 1e-12);
        assert_eq!(r.violation_count, 1);
        assert!((r.violations[0].severity - 1.0).abs() < 1e-12);
        assert!(r.violations[0].description.contains("unpaid"));
    }

    #[test]
    fn compensated_interruption_is_half_violation() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        start(&mut trace, 10, 0, 0);
        start(&mut trace, 10, 0, 1);
        interrupt(&mut trace, 20, 0, 1, true);
        let r = NoInterruption.check_trace(&trace, &cfg(), 10);
        assert!((r.score - 0.75).abs() < 1e-12);
        assert!((r.violations[0].severity - 0.5).abs() < 1e-12);
        assert!(r.violations[0].description.contains("compensated"));
    }

    #[test]
    fn no_work_is_vacuous() {
        let trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        let r = NoInterruption.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.checked, 0);
        assert_eq!(r.score, 1.0);
    }

    #[test]
    fn score_floors_at_zero() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        start(&mut trace, 10, 0, 0);
        interrupt(&mut trace, 20, 0, 0, false);
        interrupt(&mut trace, 21, 0, 0, false); // pathological double event
        let r = NoInterruption.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.score, 0.0);
    }
}
