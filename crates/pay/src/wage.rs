//! Effective wages and wage-inequality statistics.
//!
//! The transparency tools the paper surveys (Crowd-Workers \[3\], Turkbench
//! \[6\]) exist to disclose **expected hourly wages**; the fairness
//! literature it cites (\[2\], \[17\]) frames wage discrimination as the core
//! harm. This module computes effective hourly wages from payments and
//! invested time, and inequality indices over the resulting distribution.

use faircrowd_model::money::Credits;
use faircrowd_model::stats;
use faircrowd_model::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Effective hourly wage: earnings divided by invested time. `None` when
/// no time was invested (a wage is meaningless without work).
pub fn hourly_wage(earned: Credits, worked: SimDuration) -> Option<Credits> {
    let hours = worked.as_hours_f64();
    if hours <= 0.0 {
        return None;
    }
    Some(earned.mul_f64(1.0 / hours))
}

/// Distribution statistics over a set of wages (dollars/hour as `f64` for
/// the indices; exact money stays in [`Credits`] upstream).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WageStats {
    /// Number of workers measured.
    pub n: usize,
    /// Mean hourly wage in dollars.
    pub mean: f64,
    /// Median hourly wage in dollars.
    pub median: f64,
    /// 10th percentile (the "worst-off worker" view fairness cares about).
    pub p10: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Gini coefficient of the wage distribution.
    pub gini: f64,
    /// Theil T index.
    pub theil: f64,
    /// Jain's fairness index.
    pub jain: f64,
}

impl WageStats {
    /// Compute statistics from per-worker hourly wages.
    pub fn from_wages(wages: &[Credits]) -> WageStats {
        let xs: Vec<f64> = wages.iter().map(|c| c.as_dollars_f64()).collect();
        WageStats {
            n: xs.len(),
            mean: stats::mean(&xs),
            median: stats::median(&xs),
            p10: stats::percentile(&xs, 10.0),
            p90: stats::percentile(&xs, 90.0),
            gini: stats::gini(&xs),
            theil: stats::theil(&xs),
            jain: stats::jain_index(&xs),
        }
    }

    /// Compute statistics from (earned, worked) pairs, skipping workers
    /// with no invested time.
    pub fn from_earnings(pairs: &[(Credits, SimDuration)]) -> WageStats {
        let wages: Vec<Credits> = pairs
            .iter()
            .filter_map(|&(earned, worked)| hourly_wage(earned, worked))
            .collect();
        Self::from_wages(&wages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hourly_wage_basic() {
        // 30 cents for 15 minutes -> $1.20/h
        let w = hourly_wage(Credits::from_cents(30), SimDuration::from_mins(15)).unwrap();
        assert_eq!(w, Credits::from_cents(120));
        assert!(hourly_wage(Credits::from_cents(30), SimDuration::ZERO).is_none());
    }

    #[test]
    fn stats_on_equal_wages() {
        let wages = vec![Credits::from_dollars(6); 5];
        let s = WageStats::from_wages(&wages);
        assert_eq!(s.n, 5);
        assert!((s.mean - 6.0).abs() < 1e-9);
        assert!((s.gini).abs() < 1e-9);
        assert!((s.jain - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_detect_inequality() {
        let unequal = vec![
            Credits::from_dollars(1),
            Credits::from_dollars(1),
            Credits::from_dollars(20),
        ];
        let s = WageStats::from_wages(&unequal);
        assert!(s.gini > 0.3);
        assert!(s.jain < 0.7);
        assert!(s.theil > 0.0);
        assert!(s.p90 > s.p10);
    }

    #[test]
    fn from_earnings_skips_zero_time() {
        let pairs = vec![
            (Credits::from_cents(60), SimDuration::from_mins(30)), // $1.20/h
            (Credits::from_cents(100), SimDuration::ZERO),         // skipped
        ];
        let s = WageStats::from_earnings(&pairs);
        assert_eq!(s.n, 1);
        assert!((s.mean - 1.2).abs() < 1e-9);
    }

    #[test]
    fn empty_input() {
        let s = WageStats::from_wages(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.jain, 1.0);
    }
}
