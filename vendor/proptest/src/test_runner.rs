//! Test-runner configuration and the deterministic per-test generator.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many randomised cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator for a named test (FNV-1a of the name).
pub fn rng_for(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}
