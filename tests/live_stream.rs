//! The batch ≡ streaming acceptance criterion: the [`LiveAuditor`]'s
//! closing report is **bit-identical** to the batch audit engine's.
//!
//! The tentpole promise of the streaming-audit subsystem is that
//! watching a stream loses nothing against reading the finished world:
//! a trace ingested one event at a time — directly, or through the
//! incremental JSONL reader `faircrowd watch` uses — closes on exactly
//! the `FairnessReport` (scores, violation witnesses, notes, rendered
//! text) that `AuditEngine::run_indexed` produces over the same trace.
//! Pinned three ways:
//!
//! * deterministically, for **every catalog scenario**, via both the
//!   direct ingest path and the JSONL streaming-reader path;
//! * for the live simulation path, where `Pipeline::run_live` audits
//!   each round as the market runs;
//! * property-based, over adversarial random traces exercising every
//!   event kind and contribution type.
//!
//! On top of bit-identity, the monitor stream is checked for
//! *prefix-completeness*: every violating pair the batch report counts
//! for Axioms 1–3 was announced by a live finding at some prefix, and
//! Axiom 5 findings match the batch witnesses one for one.

use faircrowd::core::live::FindingOrigin;
use faircrowd::core::persist::{self, TraceFormat};
use faircrowd::core::report::render_report;
use faircrowd::model::trace_io::JsonlReader;
use faircrowd::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stream a finished trace into a fresh auditor (entities first, then
/// every event in order), without finalizing.
fn stream_direct(trace: &Trace) -> (LiveAuditor, Vec<LiveFinding>) {
    let mut auditor = LiveAuditor::new(AuditConfig::default()).max_live_findings(usize::MAX);
    let mut findings = auditor.ingest_trace(trace).expect("well-formed stream");
    findings.extend(auditor.finalize());
    (auditor, findings)
}

/// Stream a trace the way `faircrowd watch` does: encode to JSONL, feed
/// the reader line by line, route each record into the auditor.
fn stream_jsonl(trace: &Trace) -> LiveAuditor {
    let text = persist::encode(trace, TraceFormat::Jsonl);
    let mut reader = JsonlReader::new();
    let mut auditor = LiveAuditor::new(AuditConfig::default()).max_live_findings(usize::MAX);
    let mut header_applied = false;
    for line in text.lines() {
        match reader.feed_line(line).expect("well-formed line") {
            None => {
                if !header_applied {
                    if let Some(header) = reader.header() {
                        auditor.apply_header(header);
                        header_applied = true;
                    }
                }
            }
            Some(record) => {
                auditor.apply_record(record).expect("well-formed stream");
            }
        }
    }
    assert!(header_applied, "JSONL stream must carry a header");
    auditor.finalize();
    auditor
}

#[test]
fn every_catalog_scenario_streams_bit_identically() {
    for name in faircrowd::sim::catalog::NAMES {
        // Rounds are capped so the debug-build suite stays fast; every
        // scenario's structure (populations, campaigns, disclosure,
        // detection) is exercised unchanged. The CI smoke step watches
        // the native-scale baseline through the release binary.
        let pipeline = Pipeline::new()
            .scenario_name(name)
            .expect("catalog name resolves")
            .configure(|c| c.rounds = c.rounds.min(12));
        let trace = pipeline.simulate().expect("catalog scenario simulates");
        let batch = AuditEngine::with_defaults().run(&trace);
        let batch_wages = pipeline.replay(&trace).expect("in-memory audit").wages;

        let (direct, findings) = stream_direct(&trace);
        let live = direct.final_report();
        assert_eq!(live, batch, "{name}: direct stream must be bit-identical");
        assert_eq!(
            render_report(&live),
            render_report(&batch),
            "{name}: rendered report must be byte-identical"
        );
        assert_eq!(direct.final_wages(), batch_wages, "{name}: wages");
        assert_eq!(direct.trace(), &trace, "{name}: accumulated world");

        let jsonl = stream_jsonl(&trace);
        assert_eq!(
            jsonl.final_report(),
            batch,
            "{name}: JSONL-reader stream must be bit-identical"
        );

        prefix_completeness(&batch, &findings, name);
    }
}

/// Every violating pair the batch report counts for A1–A3 must have
/// been announced live at the prefix where it first became true, and
/// A5 witnesses match one for one.
fn prefix_completeness(batch: &FairnessReport, findings: &[LiveFinding], name: &str) {
    let live_count = |id: AxiomId| {
        findings
            .iter()
            .filter(|f| f.violation.axiom == id)
            .filter(|f| matches!(f.origin, FindingOrigin::Event { .. }))
            .count()
    };
    for id in [
        AxiomId::A1WorkerAssignment,
        AxiomId::A2RequesterAssignment,
        AxiomId::A3Compensation,
    ] {
        let batch_count = batch.axiom(id).map_or(0, |r| r.violation_count);
        assert!(
            live_count(id) >= batch_count,
            "{name}: {id} live findings ({}) must cover every batch violation ({batch_count})",
            live_count(id)
        );
    }
    let a5 = AxiomId::A5NoInterruption;
    assert_eq!(
        live_count(a5),
        batch.axiom(a5).map_or(0, |r| r.violation_count),
        "{name}: every interruption is its own witness, live and batch"
    );
}

#[test]
fn run_live_equals_run_across_scenarios() {
    // The during-simulation path: monitors watch each round as the
    // market runs (with worker attributes still evolving), and the
    // closing report must still be the batch report of the same run.
    for name in [
        "baseline",
        "spam_campaign",
        "worker_churn",
        "budget_starved",
    ] {
        let pipeline = Pipeline::new()
            .scenario_name(name)
            .unwrap()
            .configure(|c| c.rounds = c.rounds.min(12));
        let batch = pipeline.clone().run().unwrap();
        let live = pipeline.run_live(|_| {}).unwrap();
        assert_eq!(live.artifacts.report, batch.baseline.report, "{name}");
        assert_eq!(live.artifacts.trace, batch.baseline.trace, "{name}");
        assert_eq!(live.artifacts.wages, batch.baseline.wages, "{name}");
        assert_eq!(live.artifacts.summary, batch.baseline.summary, "{name}");
    }
}

#[test]
fn spam_campaign_streams_detection_findings_with_seqs() {
    // The scenario with ground-truth spammers and an active detector:
    // live findings must attribute flags to their events and carry the
    // end-state detection verdicts at finalize.
    let pipeline = Pipeline::new()
        .scenario_name("spam_campaign")
        .unwrap()
        .configure(|c| c.rounds = c.rounds.min(16));
    let trace = pipeline.simulate().unwrap();
    let (_, findings) = stream_direct(&trace);
    assert!(
        !findings.is_empty(),
        "spam campaign must produce live findings"
    );
    for f in &findings {
        match f.origin {
            FindingOrigin::Event { seq, .. } => {
                assert!((seq as usize) < trace.events.len(), "seq in range");
            }
            FindingOrigin::Setup | FindingOrigin::EndOfStream { .. } => {}
        }
    }
    // Findings arrive in non-decreasing seq order within the event phase.
    let seqs: Vec<u64> = findings.iter().filter_map(LiveFinding::seq).collect();
    assert!(seqs.windows(2).all(|w| w[0] <= w[1]), "stream order");
}

/// A messy random trace covering every event kind and contribution
/// type (a compact sibling of the `trace_replay` generator), valid by
/// construction: `EventLog::push` assigns dense seqs and the clock
/// never regresses.
fn random_trace(seed: u64, n_workers: usize, n_tasks: usize, n_subs: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace {
        disclosure: match rng.gen_range(0..3u8) {
            0 => DisclosureSet::fully_transparent(),
            1 => DisclosureSet::opaque(),
            _ => faircrowd::core::enforce::minimal_transparent_set(),
        },
        ..Trace::default()
    };
    let n_skills = 4;
    for i in 0..n_workers {
        let mut skills = SkillVector::with_len(n_skills);
        for s in 0..n_skills {
            if rng.gen_bool(0.45) {
                skills.set(SkillId::new(s as u32), true);
            }
        }
        let declared = DeclaredAttrs::new().with(
            "region",
            AttrValue::Text(["north", "south"][rng.gen_range(0..2usize)].into()),
        );
        let worker = Worker::new(WorkerId::new(i as u32), declared, skills);
        trace.workers.push(worker);
        if rng.gen_bool(0.15) {
            trace
                .ground_truth
                .malicious_workers
                .insert(WorkerId::new(i as u32));
        }
    }
    for i in 0..2u32 {
        trace
            .requesters
            .push(Requester::new(RequesterId::new(i), format!("r{i}")));
    }
    for i in 0..n_tasks {
        let mut skills = SkillVector::with_len(n_skills);
        for s in 0..n_skills {
            if rng.gen_bool(0.3) {
                skills.set(SkillId::new(s as u32), true);
            }
        }
        trace.tasks.push(
            faircrowd::model::task::TaskBuilder::new(
                TaskId::new(i as u32),
                RequesterId::new(rng.gen_range(0..2u32)),
                skills,
                Credits::from_cents(rng.gen_range(1..30i64)),
            )
            .build(),
        );
    }
    let mut clock = 0u64;
    let mut tick = |rng: &mut StdRng| {
        clock += rng.gen_range(0..5u64);
        SimTime::from_secs(clock)
    };
    if n_workers > 0 && n_tasks > 0 {
        let any_worker = |rng: &mut StdRng| WorkerId::new(rng.gen_range(0..n_workers) as u32);
        let any_task = |rng: &mut StdRng| TaskId::new(rng.gen_range(0..n_tasks) as u32);
        for _ in 0..n_tasks {
            let t = tick(&mut rng);
            let task = any_task(&mut rng);
            trace.events.push(
                t,
                EventKind::TaskPosted {
                    task,
                    requester: RequesterId::new(rng.gen_range(0..2u32)),
                },
            );
        }
        for _ in 0..(n_workers * 3) {
            let (worker, task) = (any_worker(&mut rng), any_task(&mut rng));
            let t = tick(&mut rng);
            trace
                .events
                .push(t, EventKind::TaskVisible { task, worker });
        }
        for i in 0..n_subs {
            let (worker, task) = (any_worker(&mut rng), any_task(&mut rng));
            let contribution = match rng.gen_range(0..4u8) {
                0 => Contribution::Label(rng.gen_range(0..3u8)),
                1 => Contribution::Text("the quick brown fox".into()),
                2 => Contribution::Ranking(vec![0, 2, 1, 3]),
                _ => Contribution::Numeric(f64::from(rng.gen_range(0..100u32)) / 7.0),
            };
            let start = tick(&mut rng);
            let id = SubmissionId::new(i as u32);
            trace.submissions.push(Submission {
                id,
                task,
                worker,
                contribution,
                started_at: start,
                submitted_at: SimTime::from_secs(start.as_secs() + rng.gen_range(30..600u64)),
            });
            let t = tick(&mut rng);
            trace.events.push(
                t,
                EventKind::SubmissionReceived {
                    submission: id,
                    task,
                    worker,
                },
            );
            if rng.gen_bool(0.4) {
                let t = tick(&mut rng);
                trace.events.push(
                    t,
                    EventKind::PaymentIssued {
                        submission: id,
                        task,
                        worker,
                        amount: Credits::from_millicents(rng.gen_range(0..20_000i64)),
                    },
                );
            }
        }
        let w = any_worker(&mut rng);
        let t0 = any_task(&mut rng);
        let extras = vec![
            EventKind::SessionStarted { worker: w },
            EventKind::DisclosureShown {
                worker: w,
                item: DisclosureItem::WorkerAcceptanceRatio,
            },
            EventKind::WorkStarted {
                task: t0,
                worker: w,
            },
            EventKind::WorkInterrupted {
                task: t0,
                worker: w,
                invested: SimDuration::from_secs(rng.gen_range(1..500u64)),
                compensated: rng.gen_bool(0.5),
            },
            EventKind::WorkerFlagged {
                worker: w,
                score: f64::from(rng.gen_range(0..100u32)) / 100.0,
                detector: "spam".into(),
            },
            EventKind::BonusPaid {
                worker: w,
                requester: RequesterId::new(0),
                amount: Credits::from_cents(3),
            },
            EventKind::SessionEnded { worker: w },
            EventKind::WorkerQuit {
                worker: w,
                reason: faircrowd::model::event::QuitReason::Frustration,
            },
        ];
        for kind in extras {
            let t = tick(&mut rng);
            trace.events.push(t, kind);
        }
    }
    trace.horizon = SimTime::from_secs(clock + 1);
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Streaming any legal trace — directly or through the JSONL reader
    /// — closes on the batch report, bit for bit.
    #[test]
    fn random_traces_stream_bit_identically(
        seed in 0u64..1_000_000,
        n_workers in 0usize..25,
        n_tasks in 0usize..15,
        n_subs in 0usize..30,
    ) {
        let trace = random_trace(seed, n_workers, n_tasks, n_subs);
        prop_assert!(trace.validate().is_empty(), "generator must emit valid traces");
        let batch = AuditEngine::with_defaults().run(&trace);
        let (direct, findings) = stream_direct(&trace);
        prop_assert_eq!(&direct.final_report(), &batch, "direct stream");
        prop_assert_eq!(direct.trace(), &trace, "accumulated world");
        let jsonl = stream_jsonl(&trace);
        prop_assert_eq!(&jsonl.final_report(), &batch, "JSONL-reader stream");
        // Prefix-completeness holds on arbitrary traces too.
        for id in [AxiomId::A1WorkerAssignment, AxiomId::A2RequesterAssignment, AxiomId::A3Compensation] {
            let live = findings.iter().filter(|f| f.violation.axiom == id).count();
            let batch_count = batch.axiom(id).map_or(0, |r| r.violation_count);
            prop_assert!(live >= batch_count, "{}: live {} < batch {}", id, live, batch_count);
        }
    }
}

/// A valid trace whose entity ids are hostile to the live monitors'
/// arena-backed rows: most ids are dense, a few land far past the lazy
/// bitset's growth bound and must take the ordered-set fallback.
/// Exposure and pay asymmetries straddle the dense/sparse boundary so
/// the per-event pair scans actually compare sparse entities against
/// dense ones.
fn sparse_id_trace() -> Trace {
    let mut trace = Trace {
        disclosure: DisclosureSet::fully_transparent(),
        ..Trace::default()
    };
    let wids = [0u32, 3, 70_000, 1_000_000, 1_000_007];
    let tids = [1u32, 5, 90_000, 2_000_000];
    let mut skills = SkillVector::with_len(4);
    skills.set(SkillId::new(0), true);
    for &w in &wids {
        let declared = DeclaredAttrs::new().with("region", AttrValue::Text("north".to_owned()));
        trace
            .workers
            .push(Worker::new(WorkerId::new(w), declared, skills.clone()));
    }
    for i in 0..2 {
        trace
            .requesters
            .push(Requester::new(RequesterId::new(i), format!("r{i}")));
    }
    for (i, &t) in tids.iter().enumerate() {
        trace.tasks.push(
            faircrowd::model::task::TaskBuilder::new(
                TaskId::new(t),
                RequesterId::new((i % 2) as u32),
                skills.clone(),
                Credits::from_cents(10),
            )
            .build(),
        );
        trace.ground_truth.true_labels.insert(TaskId::new(t), 1);
    }
    let mut clock = 0u64;
    for (i, &w) in wids.iter().enumerate() {
        let seen = if i < 2 { tids.len() } else { 1 };
        for &t in tids.iter().take(seen) {
            clock += 1;
            trace.events.push(
                SimTime::from_secs(clock),
                EventKind::TaskVisible {
                    task: TaskId::new(t),
                    worker: WorkerId::new(w),
                },
            );
        }
    }
    for (i, (w, paid)) in [(wids[0], true), (wids[3], false)].iter().enumerate() {
        let id = SubmissionId::new(i as u32);
        let task = TaskId::new(tids[0]);
        let worker = WorkerId::new(*w);
        clock += 1;
        trace.submissions.push(Submission {
            id,
            task,
            worker,
            contribution: Contribution::Label(1),
            started_at: SimTime::from_secs(clock),
            submitted_at: SimTime::from_secs(clock + 60),
        });
        clock += 100;
        trace.events.push(
            SimTime::from_secs(clock),
            EventKind::SubmissionReceived {
                submission: id,
                task,
                worker,
            },
        );
        if *paid {
            clock += 1;
            trace.events.push(
                SimTime::from_secs(clock),
                EventKind::PaymentIssued {
                    submission: id,
                    task,
                    worker,
                    amount: Credits::from_cents(10),
                },
            );
        }
    }
    trace.horizon = SimTime::from_secs(clock + 1);
    trace
}

/// The sparse-id fallback must be invisible to every streaming path:
/// direct ingest, the JSONL reader, and a checkpoint/resume cycle cut
/// mid-stream all close on the batch report bit for bit — and the
/// asymmetries are visible, so the equalities aren't about empty
/// reports.
#[test]
fn sparse_ids_stream_and_checkpoint_bit_identically() {
    use faircrowd::core::checkpoint;
    let trace = sparse_id_trace();
    assert!(trace.validate().is_empty(), "{:?}", trace.validate());
    let batch = AuditEngine::with_defaults().run(&trace);
    assert!(
        batch.score_of(AxiomId::A1WorkerAssignment) < 1.0,
        "exposure asymmetry across the sparse boundary must be visible"
    );

    let (direct, _) = stream_direct(&trace);
    assert_eq!(direct.final_report(), batch, "direct stream");
    assert_eq!(direct.trace(), &trace, "accumulated world");
    let jsonl = stream_jsonl(&trace);
    assert_eq!(jsonl.final_report(), batch, "JSONL-reader stream");

    // Checkpoint mid-stream: the snapshot carries sparse-id rows and
    // pair state through encode → decode → resume.
    let text = persist::encode(&trace, TraceFormat::Jsonl);
    let lines: Vec<&str> = text.lines().collect();
    for cut in [lines.len() / 2, lines.len() * 3 / 4] {
        let mut reader = JsonlReader::new();
        let mut auditor = LiveAuditor::new(AuditConfig::default()).max_live_findings(usize::MAX);
        let mut header_applied = false;
        let mut feed =
            |line: &str, reader: &mut JsonlReader, auditor: &mut LiveAuditor| match reader
                .feed_line(line)
                .expect("well-formed line")
            {
                None => {
                    if !header_applied {
                        if let Some(header) = reader.header() {
                            auditor.apply_header(header);
                            header_applied = true;
                        }
                    }
                }
                Some(record) => {
                    auditor.apply_record(record).expect("well-formed stream");
                }
            };
        for line in &lines[..cut] {
            feed(line, &mut reader, &mut auditor);
        }
        let ckpt = auditor.checkpoint(reader.lines_fed() as u64);
        let decoded = checkpoint::decode(&checkpoint::encode(&ckpt)).expect("roundtrip");
        assert_eq!(decoded, ckpt, "cut {cut}: checkpoint roundtrips");
        let mut resumed = LiveAuditor::resume(AuditConfig::default(), &decoded).expect("resumes");
        let mut reader =
            JsonlReader::resume(decoded.jsonl_header(), decoded.source_lines() as usize);
        for line in &lines[cut..] {
            match reader.feed_line(line).expect("well-formed line") {
                None => {}
                Some(record) => {
                    resumed.apply_record(record).expect("well-formed stream");
                }
            }
        }
        resumed.finalize();
        assert_eq!(
            resumed.final_report(),
            batch,
            "cut {cut}: resumed stream must close on the batch report"
        );
    }
}
