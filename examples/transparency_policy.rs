//! The declarative transparency language end to end.
//!
//! Writes a custom platform policy in TPL, compiles it, renders the
//! worker-facing description, audits its axiom coverage, compares it
//! against the real-platform catalog, and shows the compiler diagnostics
//! on a broken policy.
//!
//! ```sh
//! cargo run --example transparency_policy
//! ```

use faircrowd::lang::{catalog, compare, compile_one, render};
use faircrowd::FaircrowdError;

const MY_POLICY: &str = r#"
# A mid-transparency platform: generous to workers about themselves,
# quiet about requesters.
policy "my-platform" {
    audience crowd = role(worker);

    disclose worker.acceptance_ratio  to subject always;
    disclose worker.quality_estimate  to subject always;
    disclose worker.history           to subject always;
    disclose worker.earnings          to subject always;
    disclose task.rating              to crowd   when browsing;

    require requester discloses rejection_criteria  before posting;
    require requester discloses payment_schedule    before posting;
}
"#;

const BROKEN_POLICY: &str = r#"
policy "oops" {
    disclose worker.shoe_size to everyone;
}
"#;

fn main() -> Result<(), FaircrowdError> {
    // 1. Compile. `?` works because TPL diagnostics convert into the
    //    workspace-wide `FaircrowdError`.
    let mine = compile_one(MY_POLICY)?;
    println!(
        "compiled policy `{}` with {} rules\n",
        mine.name,
        mine.rule_count()
    );

    // 2. Human-readable rendering — the worker-facing view (§3.3.2).
    print!("{}", render::render_policy(&mine));

    // 3. Axiom coverage: how far is this from the paper's obligations?
    let set = mine.disclosure_set();
    println!(
        "\naxiom-6 (requester transparency) coverage: {:.0}%",
        set.axiom6_coverage() * 100.0
    );
    println!(
        "axiom-7 (platform transparency) coverage: {:.0}%",
        set.axiom7_coverage() * 100.0
    );

    // 4. Cross-platform comparison against the catalog (§3.3.2's
    //    "easy comparison across platforms").
    println!();
    for name in ["amt", "crowdflower", "faircrowd-full"] {
        let other = catalog::get(name)?;
        let cmp = compare(&mine, &other);
        println!(
            "vs {:<15} grant-similarity {:.2}   (axiom-6 {:.2} vs {:.2}; axiom-7 {:.2} vs {:.2})",
            other.name,
            cmp.grant_similarity(),
            cmp.axiom6.0,
            cmp.axiom6.1,
            cmp.axiom7.0,
            cmp.axiom7.1,
        );
    }

    // 5. Diagnostics: the compiler rejects schema violations with spans.
    println!("\ncompiling a broken policy:\n");
    match compile_one(BROKEN_POLICY) {
        Ok(_) => unreachable!("shoe sizes are not in the schema"),
        Err(e) => println!("{e}"),
    }
    Ok(())
}
