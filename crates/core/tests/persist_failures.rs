//! Failure modes of the trace persistence layer.
//!
//! Every way a trace file can be bad — truncated mid-value, wrong
//! schema, unsupported version, dangling entity references, tampered
//! event log — must surface as a descriptive [`FaircrowdError`], never
//! a panic. These tests drive [`faircrowd_core::persist::load`] (the
//! path untrusted files come through) over systematically corrupted
//! copies of a valid simulator-produced trace.

use faircrowd_core::persist::{self, TraceFormat};
use faircrowd_model::error::FaircrowdError;
use faircrowd_model::ids::{SubmissionId, TaskId, WorkerId};
use faircrowd_sim::{CampaignSpec, ScenarioConfig, Simulation, WorkerPopulation};
use std::path::PathBuf;

/// A real (small) simulator trace, so the corruptions hit realistic
/// structure rather than a hand-minimised fixture.
fn sim_trace() -> faircrowd_model::trace::Trace {
    Simulation::new(ScenarioConfig {
        seed: 7,
        rounds: 10,
        workers: vec![WorkerPopulation::diligent(6)],
        campaigns: vec![CampaignSpec::labeling("acme", 8, 6)],
        ..Default::default()
    })
    .run()
}

/// Write `text` to a fresh temp file and load it back.
fn load_text(name: &str, text: &str) -> Result<faircrowd_model::trace::Trace, FaircrowdError> {
    let path: PathBuf = std::env::temp_dir().join(format!("fc_fail_{name}"));
    std::fs::write(&path, text).unwrap();
    let result = persist::load(&path);
    std::fs::remove_file(&path).ok();
    result
}

#[test]
fn valid_files_load_in_both_formats() {
    let trace = sim_trace();
    for (name, format) in [
        ("ok.json", TraceFormat::Json),
        ("ok.jsonl", TraceFormat::Jsonl),
    ] {
        let loaded = load_text(name, &persist::encode(&trace, format)).unwrap();
        assert_eq!(loaded, trace, "{name}");
    }
}

#[test]
fn truncated_json_is_a_persist_error() {
    let text = persist::encode(&sim_trace(), TraceFormat::Json);
    // Cut the file at several depths; every cut must error, not panic.
    for fraction in [0.1, 0.5, 0.9, 0.999] {
        let cut = (text.len() as f64 * fraction) as usize;
        let cut = (0..=cut).rev().find(|&i| text.is_char_boundary(i)).unwrap();
        let err = load_text("trunc.json", &text[..cut]).unwrap_err();
        assert!(
            matches!(err, FaircrowdError::Persist { .. }),
            "cut at {cut}: {err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("fc_fail_trunc.json"), "no path in: {msg}");
    }
}

#[test]
fn truncated_jsonl_errors_or_fails_validation() {
    let text = persist::encode(&sim_trace(), TraceFormat::Jsonl);
    // Cutting mid-line breaks the JSON of that line.
    let cut = text.len() * 2 / 3;
    let cut = (0..=cut).rev().find(|&i| text.is_char_boundary(i)).unwrap();
    let err = load_text("trunc.jsonl", &text[..cut]).unwrap_err();
    assert!(
        matches!(
            err,
            FaircrowdError::Persist { .. } | FaircrowdError::InvalidTrace { .. }
        ),
        "{err:?}"
    );
    // Dropping whole trailing lines keeps each line parseable, but the
    // events the simulator logged about now-missing submissions make
    // the referential-integrity pass fail.
    let lines: Vec<&str> = text.lines().collect();
    let header_only = lines[..1].join("\n");
    let empty = load_text("headeronly.jsonl", &header_only).unwrap();
    assert!(
        empty.workers.is_empty(),
        "header-only file is an empty trace"
    );
}

#[test]
fn unknown_schema_version_is_rejected_with_both_versions_named() {
    let trace = sim_trace();
    for format in [TraceFormat::Json, TraceFormat::Jsonl] {
        let text = persist::encode(&trace, format).replace("\"version\": 1", "\"version\": 99");
        // Compact JSONL spells it without the space.
        let text = text.replace("\"version\":1", "\"version\":99");
        let err = load_text("version.json", &text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("version 99"), "{format:?}: {msg}");
        assert!(msg.contains("version 1"), "{format:?}: {msg}");
    }
}

#[test]
fn foreign_schema_is_rejected() {
    let err = load_text(
        "foreign.json",
        r#"{"schema": "someone-elses-log", "version": 1}"#,
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("someone-elses-log"), "{msg}");
    assert!(msg.contains("faircrowd-trace"), "{msg}");
}

#[test]
fn not_json_at_all_is_a_persist_error() {
    for (name, text) in [
        ("empty.json", ""),
        ("garbage.json", "this is not a trace"),
        ("csv.json", "worker,task\n0,1\n"),
    ] {
        let err = load_text(name, text).unwrap_err();
        assert!(
            matches!(err, FaircrowdError::Persist { .. }),
            "{name}: {err:?}"
        );
    }
}

#[test]
fn dangling_submission_references_fail_validation() {
    let mut trace = sim_trace();
    trace
        .submissions
        .push(faircrowd_model::contribution::Submission {
            id: SubmissionId::new(9999),
            task: TaskId::new(4242),
            worker: WorkerId::new(4242),
            contribution: faircrowd_model::contribution::Contribution::Label(0),
            started_at: faircrowd_model::time::SimTime::from_secs(1),
            submitted_at: faircrowd_model::time::SimTime::from_secs(2),
        });
    for format in [TraceFormat::Json, TraceFormat::Jsonl] {
        let err = load_text("dangling.json", &persist::encode(&trace, format)).unwrap_err();
        let FaircrowdError::InvalidTrace { problems } = &err else {
            panic!("{format:?}: expected InvalidTrace, got {err:?}");
        };
        let all = problems.join("; ");
        assert!(all.contains("unknown worker w4242"), "{format:?}: {all}");
        assert!(all.contains("unknown task t4242"), "{format:?}: {all}");
    }
}

#[test]
fn dangling_payment_fails_validation() {
    let mut trace = sim_trace();
    trace.events.push(
        trace.horizon,
        faircrowd_model::event::EventKind::PaymentIssued {
            submission: SubmissionId::new(31337),
            task: TaskId::new(0),
            worker: WorkerId::new(0),
            amount: faircrowd_model::money::Credits::from_cents(1),
        },
    );
    let err = load_text("ghostpay.json", &persist::encode(&trace, TraceFormat::Json)).unwrap_err();
    let FaircrowdError::InvalidTrace { problems } = &err else {
        panic!("expected InvalidTrace, got {err:?}");
    };
    assert!(
        problems.iter().any(|p| p.contains("sub31337")),
        "{problems:?}"
    );
}

#[test]
fn corrupted_field_types_name_the_record() {
    let text = persist::encode(&sim_trace(), TraceFormat::Json);
    // Replace the first task's numeric reward with a string, whatever
    // its value is.
    let key = "\"reward\": ";
    let at = text.find(key).expect("every task has a reward") + key.len();
    let end = at + text[at..].find([',', '\n']).unwrap();
    let corrupted = format!("{}\"lots\"{}", &text[..at], &text[end..]);
    let err = load_text("badfield.json", &corrupted).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("task record"), "{msg}");
    assert!(msg.contains("`reward`"), "{msg}");
}
