//! Strategic agents iterated to a fixed point: the `super_turkers`
//! marketplace (§2's elite-worker concentration) re-simulated under the
//! proportional controller until no agent wants to move, with the
//! iteration history and the audit of the settled market printed — and
//! the same config frozen (`static` strategy) for contrast.
//!
//! ```sh
//! cargo run --example strategy_convergence
//! ```

use faircrowd::prelude::*;
use faircrowd::sim::{catalog, StrategyChoice};

fn main() -> Result<(), FaircrowdError> {
    let mut cfg = catalog::get("super_turkers")?;
    cfg.rounds = 24; // keep the demo quick; the catalog default runs longer

    // The strategic run: simulate → feed realized wages/acceptance back
    // into per-agent strategy state → re-simulate, until the residual
    // drops under the tolerance.
    let converged = Pipeline::new().scenario(cfg.clone()).run_converged()?;

    println!(
        "super_turkers: {} strategy, {} iterations to a fixed point\n",
        converged.config.strategy.label(),
        converged.iterations
    );
    println!("iter   residual   retention   approval");
    for step in &converged.history {
        println!(
            "{:>4}   {:>8.6}   {:>8.1}%   {:>7.1}%",
            step.iteration,
            step.residual,
            step.summary.retention * 100.0,
            step.summary.approval_rate * 100.0,
        );
    }

    // The same market with agents frozen at their initial
    // parameterisation — what every audit in this repo meant before the
    // strategy layer existed.
    let frozen = Pipeline::new()
        .scenario(cfg)
        .strategy(StrategyChoice::Static)
        .run()?;

    let settled = &converged.artifacts;
    println!(
        "\n              frozen (static)   settled (fixed point)\n\
         retention     {:>13.1}%   {:>19.1}%\n\
         fairness      {:>14.2}   {:>20.2}\n\
         transparency  {:>14.2}   {:>20.2}",
        frozen.baseline.summary.retention * 100.0,
        settled.summary.retention * 100.0,
        frozen.baseline.report.fairness_score(),
        settled.report.fairness_score(),
        frozen.baseline.report.transparency_score(),
        settled.report.transparency_score(),
    );

    println!(
        "\nThe audit of the settled market is the honest one: Super-Turkers \
         redirect effort toward qualification-gated, high-reward campaigns \
         until their wage expectations match what the platform actually \
         pays, and the audit above describes that equilibrium — not \
         the hand-picked round-zero parameterisation."
    );
    Ok(())
}
