//! The Vuurens 40%-spam scenario (Axiom 4).
//!
//! Simulates a labeling campaign where 40% of the workforce is malicious
//! (random, uniform and semi-random spammers), evaluates the detection
//! stack, and shows how filtering flagged workers repairs answer quality.
//!
//! ```sh
//! cargo run --example spam_campaign
//! ```

use faircrowd::model::contribution::Contribution;
use faircrowd::model::ids::WorkerId;
use faircrowd::prelude::*;
use faircrowd::quality::answers::AnswerSet;
use faircrowd::quality::dawid_skene::DawidSkene;
use faircrowd::quality::majority::{majority_vote, weighted_majority_vote};
use faircrowd::quality::metrics::{label_accuracy, DetectionCounts};
use faircrowd::quality::spam::{SpamDetector, WorkerArchetype};
use std::collections::{BTreeMap, BTreeSet};

fn main() -> Result<(), FaircrowdError> {
    // 30 honest workers, 20 spammers — the paper's §2.1 observation that
    // "nearly 40% of the answers … were from malicious users". The
    // pipeline simulates and runs the Axiom-4 audit in one pass; the
    // detection analysis below digs into the trace it returns.
    let result = Pipeline::new()
        .scenario(ScenarioConfig {
            seed: 2017,
            rounds: 48,
            n_skills: 0,
            workers: vec![
                WorkerPopulation::diligent(30),
                WorkerPopulation::of(WorkerArchetype::RandomSpammer, 7),
                WorkerPopulation::of(WorkerArchetype::UniformSpammer, 7),
                WorkerPopulation::of(WorkerArchetype::SemiRandomSpammer, 6),
            ],
            campaigns: vec![CampaignSpec {
                assignments_per_task: 5,
                ..CampaignSpec::labeling("acme", 80, 10)
            }],
            ..Default::default()
        })
        .axioms(&[AxiomId::A4MaliceDetection])
        .run()?;
    let trace = &result.baseline.trace;

    // Rebuild the answer matrix (and the timing evidence for the speed
    // signal) from the trace.
    let mut answers = AnswerSet::new(2);
    let mut durations: BTreeMap<WorkerId, Vec<_>> = BTreeMap::new();
    for s in &trace.submissions {
        if let Contribution::Label(l) = s.contribution {
            answers.record(s.worker, s.task, l);
            if let Some(task) = trace.task(s.task) {
                durations
                    .entry(s.worker)
                    .or_default()
                    .push((s.work_duration(), task.est_duration));
            }
        }
    }
    let truth = &trace.ground_truth.true_labels;
    let malicious: BTreeSet<WorkerId> = trace.ground_truth.malicious_workers.clone();
    let universe: BTreeSet<WorkerId> = trace.submissions.iter().map(|s| s.worker).collect();
    println!(
        "{} answers from {} workers ({} genuinely malicious)\n",
        answers.len(),
        universe.len(),
        malicious.intersection(&universe).count()
    );

    // Raw aggregation quality.
    let raw = label_accuracy(&majority_vote(&answers), truth);
    println!("majority-vote accuracy, nobody filtered:   {raw:.3}");

    // Detect with the full agreement/repetition/speed detector…
    let detector = SpamDetector::default();
    let flagged: BTreeSet<WorkerId> = detector
        .flag(&answers, Some(&durations))
        .into_iter()
        .collect();
    let counts = DetectionCounts::evaluate(&flagged, &malicious, &universe);
    println!(
        "\nspam detector: flagged {} workers (precision {:.2}, recall {:.2}, F1 {:.2})",
        flagged.len(),
        counts.precision(),
        counts.recall(),
        counts.f1()
    );

    // …silence them, and re-aggregate.
    let weights: BTreeMap<WorkerId, f64> = flagged.iter().map(|&w| (w, 0.0)).collect();
    let filtered = label_accuracy(&weighted_majority_vote(&answers, &weights), truth);
    println!("majority-vote accuracy, flagged silenced:  {filtered:.3}");

    // Dawid–Skene does detection and aggregation in one shot.
    let ds = DawidSkene::default().run(&answers);
    let ds_acc = label_accuracy(&ds.labels, truth);
    println!("dawid–skene accuracy (joint inference):    {ds_acc:.3}");

    // Axiom 4 verdict from the pipeline's audit (uses the platform's own
    // detection sweeps recorded in the trace).
    let a4 = result
        .baseline
        .report
        .axiom(AxiomId::A4MaliceDetection)
        .expect("A4 was requested");
    println!(
        "\nAxiom 4 (requesters can detect malice): score {:.2} — {}",
        a4.score,
        a4.notes.first().cloned().unwrap_or_default()
    );
    Ok(())
}
