//! Dense, id-indexed arena maps — the hash-free entity tables behind
//! the audit indexes.
//!
//! The newtype ids ([`crate::ids`]) are small integers handed out by
//! [`crate::ids::IdGen`] counters, so in every trace the simulator or a
//! real platform produces they are *dense*: worker 0, worker 1, …. A
//! `BTreeMap<WorkerId, _>` (or a hash map) pays a pointer chase or a
//! hash per probe for what is morally an array index. [`DenseIdMap`]
//! stores values in a `Vec` indexed directly by the raw id, turning the
//! per-event probes of the audit hot paths (the A1/A2 pair scans, the
//! live monitor's per-event folds) into one bounds check and a branch.
//!
//! Untrusted traces can legally carry *sparse* ids (a platform that
//! shards its id space, a tampered file). A plain `Vec` would let one
//! record with id `4_000_000_000` allocate gigabytes, so the arena
//! bounds its dense region: a key may only grow the `Vec` while the new
//! size stays within `16 × (occupied + 64)` slots; keys beyond that
//! land in a `BTreeMap` spill. Dense traces never touch the spill;
//! hostile ones degrade to tree probes instead of exhausting memory.
//!
//! Iteration is always in ascending id order (the dense region first,
//! then the spill, whose keys are invariantly larger), so encoders and
//! reports that used to iterate a `BTreeMap` stay byte-identical.
//!
//! ```
//! use faircrowd_model::arena::DenseIdMap;
//! use faircrowd_model::ids::WorkerId;
//!
//! let mut earnings: DenseIdMap<WorkerId, i64> = DenseIdMap::new();
//! earnings.insert(WorkerId::new(3), 250);
//! *earnings.entry(WorkerId::new(3)) += 50;
//! assert_eq!(earnings.get(WorkerId::new(3)), Some(&300));
//! assert_eq!(earnings.get(WorkerId::new(7)), None);
//! ```

use std::collections::BTreeMap;
use std::marker::PhantomData;

use crate::ids::{CampaignId, RequesterId, SkillId, SubmissionId, TaskId, WorkerId};

/// A key type backed by a raw `u32` — every newtype id in
/// [`crate::ids`] qualifies. The two conversions must be inverses.
pub trait ArenaKey: Copy + Ord + std::fmt::Debug {
    /// The raw integer behind the id.
    fn raw_index(self) -> u32;
    /// Rebuild the id from its raw integer.
    fn from_raw_index(raw: u32) -> Self;
}

macro_rules! arena_key {
    ($($id:ty),* $(,)?) => {$(
        impl ArenaKey for $id {
            fn raw_index(self) -> u32 {
                self.raw()
            }
            fn from_raw_index(raw: u32) -> Self {
                <$id>::new(raw)
            }
        }
    )*};
}

arena_key!(
    WorkerId,
    TaskId,
    RequesterId,
    SkillId,
    CampaignId,
    SubmissionId
);

/// How far the dense region may grow relative to its occupancy: a new
/// key may extend the `Vec` while `key < 16 × (len + 64)`. Dense id
/// spaces (the only ones honest traces produce) always pass; a hostile
/// outlier id goes to the spill instead of allocating the gap.
fn dense_bound(occupied: usize) -> usize {
    16 * (occupied + 64)
}

/// A map from a dense integer id to `V`: `Vec`-backed for the dense id
/// region, with a `BTreeMap` spill for outlier keys. See the module
/// docs for the growth rule and the ordering guarantee.
#[derive(Clone)]
pub struct DenseIdMap<K, V> {
    slots: Vec<Option<V>>,
    /// Invariant: every spill key is `>= slots.len()`, so chaining the
    /// dense region and the spill iterates in ascending key order.
    spill: BTreeMap<u32, V>,
    len: usize,
    _key: PhantomData<K>,
}

impl<K: ArenaKey, V> DenseIdMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        DenseIdMap {
            slots: Vec::new(),
            spill: BTreeMap::new(),
            len: 0,
            _key: PhantomData,
        }
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value at `key`, if present — one bounds check and a branch
    /// for dense keys.
    #[inline]
    pub fn get(&self, key: K) -> Option<&V> {
        let raw = key.raw_index() as usize;
        match self.slots.get(raw) {
            Some(slot) => slot.as_ref(),
            None => self.spill.get(&key.raw_index()),
        }
    }

    /// Mutable access to the value at `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        let raw = key.raw_index() as usize;
        if raw < self.slots.len() {
            self.slots[raw].as_mut()
        } else {
            self.spill.get_mut(&key.raw_index())
        }
    }

    /// Is `key` present?
    pub fn contains_key(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Insert `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let raw = key.raw_index() as usize;
        if raw < self.slots.len() {
            let old = self.slots[raw].replace(value);
            if old.is_none() {
                self.len += 1;
            }
            return old;
        }
        if raw < dense_bound(self.len) {
            self.grow_to(raw + 1);
            debug_assert!(self.slots[raw].is_none());
            self.slots[raw] = Some(value);
            self.len += 1;
            return None;
        }
        let old = self.spill.insert(key.raw_index(), value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// The value at `key`, inserting `f()` first when absent — the
    /// arena's `entry(...).or_insert_with(...)`.
    pub fn get_or_insert_with(&mut self, key: K, f: impl FnOnce() -> V) -> &mut V {
        let raw = key.raw_index() as usize;
        if raw >= self.slots.len() {
            if raw < dense_bound(self.len) {
                self.grow_to(raw + 1);
            } else {
                let len = &mut self.len;
                return self.spill.entry(key.raw_index()).or_insert_with(|| {
                    *len += 1;
                    f()
                });
            }
        }
        let slot = &mut self.slots[raw];
        if slot.is_none() {
            *slot = Some(f());
            self.len += 1;
        }
        slot.as_mut().expect("slot was just filled")
    }

    /// The value at `key`, defaulting it in first when absent.
    pub fn entry(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        self.get_or_insert_with(key, V::default)
    }

    /// Grow the dense region to `new_len` slots, absorbing any spill
    /// keys the region now covers (restores the ordering invariant).
    fn grow_to(&mut self, new_len: usize) {
        if new_len <= self.slots.len() {
            return;
        }
        self.slots.resize_with(new_len, || None);
        // `BTreeMap` has no drain-range; split at the boundary and put
        // the still-spilled tail back.
        let still_spilled = self.spill.split_off(&(new_len as u32));
        for (raw, value) in std::mem::replace(&mut self.spill, still_spilled) {
            self.slots[raw as usize] = Some(value);
        }
    }

    /// Iterate `(key, &value)` in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(raw, slot)| Some((K::from_raw_index(raw as u32), slot.as_ref()?)))
            .chain(
                self.spill
                    .iter()
                    .map(|(&raw, v)| (K::from_raw_index(raw), v)),
            )
    }

    /// Iterate the keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterate the values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// The whole map as an owned `BTreeMap` (for callers that promise a
    /// tree-map view, e.g. [`crate::trace::Trace::visibility_map`]).
    pub fn to_btree_map(&self) -> BTreeMap<K, V>
    where
        V: Clone,
    {
        self.iter().map(|(k, v)| (k, v.clone())).collect()
    }
}

impl<K: ArenaKey, V> Default for DenseIdMap<K, V> {
    fn default() -> Self {
        DenseIdMap::new()
    }
}

impl<K: ArenaKey, V: PartialEq> PartialEq for DenseIdMap<K, V> {
    /// Content equality: same keys, same values — how the backing is
    /// split between dense region and spill is not observable.
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self
                .iter()
                .zip(other.iter())
                .all(|((ka, va), (kb, vb))| ka == kb && va == vb)
    }
}

impl<K: ArenaKey, V: std::fmt::Debug> std::fmt::Debug for DenseIdMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: ArenaKey, V> FromIterator<(K, V)> for DenseIdMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = DenseIdMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(raw: u32) -> WorkerId {
        WorkerId::new(raw)
    }

    #[test]
    fn insert_get_overwrite() {
        let mut m: DenseIdMap<WorkerId, &str> = DenseIdMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(w(2), "a"), None);
        assert_eq!(m.insert(w(0), "b"), None);
        assert_eq!(m.insert(w(2), "c"), Some("a"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(w(2)), Some(&"c"));
        assert_eq!(m.get(w(1)), None);
        assert!(m.contains_key(w(0)));
        *m.get_mut(w(0)).unwrap() = "d";
        assert_eq!(m.get(w(0)), Some(&"d"));
    }

    #[test]
    fn entry_defaults_like_a_map_entry() {
        let mut m: DenseIdMap<TaskId, Vec<u32>> = DenseIdMap::new();
        m.entry(TaskId::new(5)).push(1);
        m.entry(TaskId::new(5)).push(2);
        assert_eq!(m.get(TaskId::new(5)), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iteration_is_ascending_and_merges_the_spill() {
        let mut m: DenseIdMap<WorkerId, u32> = DenseIdMap::new();
        // An outlier far past the growth bound spills…
        let outlier = u32::MAX - 1;
        m.insert(w(outlier), 99);
        m.insert(w(3), 3);
        m.insert(w(0), 0);
        let keys: Vec<u32> = m.keys().map(|k| k.raw()).collect();
        assert_eq!(keys, vec![0, 3, outlier]);
        assert_eq!(m.values().copied().collect::<Vec<_>>(), vec![0, 3, 99]);
        assert_eq!(m.get(w(outlier)), Some(&99));
    }

    #[test]
    fn hostile_outlier_does_not_allocate_the_gap() {
        let mut m: DenseIdMap<SubmissionId, u8> = DenseIdMap::new();
        m.insert(SubmissionId::new(4_000_000_000), 1);
        m.insert(SubmissionId::new(0), 2);
        // The dense region never grew to cover the outlier.
        assert!(m.slots.len() < 1024, "slots = {}", m.slots.len());
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(SubmissionId::new(4_000_000_000)), Some(&1));
    }

    #[test]
    fn growth_absorbs_spilled_keys_and_keeps_order() {
        let mut m: DenseIdMap<WorkerId, u32> = DenseIdMap::new();
        // 3000 is past the empty map's bound (16 × 64 = 1024) → spill.
        m.insert(w(3000), 1);
        assert_eq!(m.spill.len(), 1);
        // 300 occupied keys raise the bound past 3000; the next growth
        // must absorb the spilled key into the dense region.
        for i in 0..300 {
            m.insert(w(i), 0);
        }
        m.insert(w(3100), 2);
        assert!(m.spill.is_empty() || m.spill.keys().all(|&k| k as usize >= m.slots.len()));
        let keys: Vec<u32> = m.keys().map(|k| k.raw()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "iteration stays ascending");
        assert_eq!(m.get(w(3000)), Some(&1));
        assert_eq!(m.get(w(3100)), Some(&2));
        assert_eq!(m.len(), 302);
    }

    #[test]
    fn equality_is_by_content_not_backing() {
        // Same content reached via different histories (one spilled,
        // one dense from the start) compares equal.
        let mut a: DenseIdMap<WorkerId, u32> = DenseIdMap::new();
        a.insert(w(2000), 7);
        for i in 0..200 {
            a.insert(w(i), i);
        }
        let mut b: DenseIdMap<WorkerId, u32> = DenseIdMap::new();
        for i in 0..200 {
            b.insert(w(i), i);
        }
        b.insert(w(2000), 7);
        assert_eq!(a, b);
        b.insert(w(2000), 8);
        assert_ne!(a, b);
    }

    #[test]
    fn btree_view_matches_iteration() {
        let m: DenseIdMap<WorkerId, u32> = [(w(4), 4), (w(1), 1)].into_iter().collect();
        let tree = m.to_btree_map();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree[&w(1)], 1);
        assert_eq!(tree[&w(4)], 4);
    }
}
