//! Strongly typed identifiers.
//!
//! The paper's model names each entity by a unique identifier (`id_t`,
//! `id_r`, `id_w`). Newtypes prevent the classic database bug of joining a
//! worker id against a task id. All ids are dense `u32` indices so they can
//! double as vector offsets in hot loops.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw index value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The raw index widened to `usize` for slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

define_id!(
    /// Unique worker identifier (`id_w` in the paper).
    WorkerId,
    "w"
);
define_id!(
    /// Unique task identifier (`id_t` in the paper).
    TaskId,
    "t"
);
define_id!(
    /// Unique requester identifier (`id_r` in the paper).
    RequesterId,
    "r"
);
define_id!(
    /// Unique skill-keyword identifier (index into the skill universe).
    SkillId,
    "s"
);
define_id!(
    /// A campaign groups the tasks a requester posts together (e.g. one
    /// labelling job published as many HITs).
    CampaignId,
    "c"
);
define_id!(
    /// Unique submission identifier (one worker's contribution to one task).
    SubmissionId,
    "sub"
);

/// A compact generator for dense ids, used by builders and the simulator.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct IdGen {
    next: u32,
}

impl IdGen {
    /// A generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Produce the next raw id.
    pub fn next_raw(&mut self) -> u32 {
        let v = self.next;
        self.next = self
            .next
            .checked_add(1)
            .expect("id space exhausted (more than u32::MAX entities)");
        v
    }

    /// Produce the next id of any id type.
    pub fn next_id<T: From<u32>>(&mut self) -> T {
        T::from(self.next_raw())
    }

    /// Number of ids handed out so far.
    pub fn count(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(WorkerId::new(7).to_string(), "w7");
        assert_eq!(TaskId::new(0).to_string(), "t0");
        assert_eq!(RequesterId::new(3).to_string(), "r3");
        assert_eq!(SubmissionId::new(12).to_string(), "sub12");
    }

    #[test]
    fn roundtrip_raw() {
        let id = TaskId::from(42u32);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42usize);
        assert_eq!(u32::from(id), 42);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(WorkerId::new(1));
        set.insert(WorkerId::new(1));
        set.insert(WorkerId::new(2));
        assert_eq!(set.len(), 2);
        assert!(WorkerId::new(1) < WorkerId::new(2));
    }

    #[test]
    fn idgen_is_dense_and_typed() {
        let mut g = IdGen::new();
        let a: WorkerId = g.next_id();
        let b: WorkerId = g.next_id();
        let c: TaskId = g.next_id();
        assert_eq!(a, WorkerId::new(0));
        assert_eq!(b, WorkerId::new(1));
        assert_eq!(c, TaskId::new(2));
        assert_eq!(g.count(), 3);
    }
}
