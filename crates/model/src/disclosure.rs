//! Disclosure items and disclosure sets.
//!
//! The transparency axioms govern *what information is made available to
//! whom*: Axiom 6 obliges requesters to publish working conditions, Axiom 7
//! obliges the platform to disclose each worker's computed attributes. The
//! tools the paper surveys (Turkopticon, Crowd-Workers, Turkbench,
//! CrowdFlower's accuracy panel, forum scripts revealing auto-approval
//! times) each disclose a subset of the same catalogue of items.
//!
//! [`DisclosureItem`] is that catalogue; [`DisclosureSet`] maps items to
//! the [`Audience`]s allowed to see them. The transparency language
//! (`faircrowd-lang`) compiles policies into `DisclosureSet`s, the
//! simulator enacts them, and the Axiom 6/7 checkers measure their
//! coverage.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Who may see a disclosed item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Audience {
    /// Everyone, including people without a platform account.
    Public,
    /// Any logged-in worker.
    Workers,
    /// Any logged-in requester.
    Requesters,
    /// Only the person the data is about (e.g. a worker sees her own
    /// accuracy).
    Subject,
}

impl Audience {
    /// All audiences, for iteration.
    pub const ALL: [Audience; 4] = [
        Audience::Public,
        Audience::Workers,
        Audience::Requesters,
        Audience::Subject,
    ];

    /// Name as used by the transparency language.
    pub fn name(self) -> &'static str {
        match self {
            Audience::Public => "public",
            Audience::Workers => "workers",
            Audience::Requesters => "requesters",
            Audience::Subject => "subject",
        }
    }

    /// Parse a language-level audience name.
    pub fn from_name(s: &str) -> Option<Audience> {
        Audience::ALL.into_iter().find(|a| a.name() == s)
    }
}

impl fmt::Display for Audience {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which side of the platform is responsible for a disclosure item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DisclosureCategory {
    /// Requester-dependent or task-dependent working conditions (Axiom 6).
    Requester,
    /// Platform-computed information (Axiom 7 and worker aids).
    Platform,
}

macro_rules! disclosure_items {
    ($($(#[$doc:meta])* $variant:ident => ($name:literal, $cat:ident)),+ $(,)?) => {
        /// The catalogue of information a crowdsourcing platform or
        /// requester can disclose.
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub enum DisclosureItem {
            $($(#[$doc])* $variant,)+
        }

        impl DisclosureItem {
            /// All items, for iteration.
            pub const ALL: [DisclosureItem; disclosure_items!(@count $($variant)+)] =
                [$(DisclosureItem::$variant,)+];

            /// The dotted name used by the transparency language.
            pub fn name(self) -> &'static str {
                match self {
                    $(DisclosureItem::$variant => $name,)+
                }
            }

            /// Parse a language-level item name.
            pub fn from_name(s: &str) -> Option<DisclosureItem> {
                match s {
                    $($name => Some(DisclosureItem::$variant),)+
                    _ => None,
                }
            }

            /// Who is responsible for disclosing this item.
            pub fn category(self) -> DisclosureCategory {
                match self {
                    $(DisclosureItem::$variant => DisclosureCategory::$cat,)+
                }
            }
        }
    };
    (@count $($x:ident)+) => { 0usize $(+ disclosure_items!(@one $x))+ };
    (@one $x:ident) => { 1usize };
}

disclosure_items! {
    /// Effective hourly wage of a task (Axiom 6; Crowd-Workers/Turkbench).
    HourlyWage => ("requester.hourly_wage", Requester),
    /// Time between submission and the pay/reject decision (Axiom 6).
    PaymentDelay => ("requester.payment_delay", Requester),
    /// Recruitment criteria: who may take the task (Axiom 6).
    RecruitmentCriteria => ("requester.recruitment_criteria", Requester),
    /// Rejection criteria: when work will be rejected (Axiom 6).
    RejectionCriteria => ("requester.rejection_criteria", Requester),
    /// How contributions are evaluated (Axiom 6).
    EvaluationScheme => ("requester.evaluation_scheme", Requester),
    /// A worker's acceptance ratio (Axiom 7, named in the paper).
    WorkerAcceptanceRatio => ("worker.acceptance_ratio", Platform),
    /// A worker's estimated quality/accuracy (Axiom 7; CrowdFlower panel).
    WorkerQualityEstimate => ("worker.quality_estimate", Platform),
    /// A worker's submission/approval/rejection history (Axiom 7).
    WorkerHistory => ("worker.history", Platform),
    /// Mean time until a worker's submissions are judged (Axiom 7).
    WorkerApprovalLatency => ("worker.approval_latency", Platform),
    /// A worker's lifetime earnings (Axiom 7).
    WorkerEarnings => ("worker.earnings", Platform),
    /// A worker's session count (Axiom 7).
    WorkerSessions => ("worker.sessions", Platform),
    /// Community rating of a requester (Turkopticon).
    RequesterRating => ("requester.rating", Platform),
    /// Per-task community rating (CrowdFlower task browsing).
    TaskRating => ("task.rating", Platform),
    /// Time until automatic approval of a submission (forum scripts).
    AutoApprovalTime => ("platform.auto_approval_time", Platform),
    /// Progress and worker statistics for a requester's own campaigns.
    CampaignProgress => ("requester.campaign_progress", Platform),
}

impl fmt::Display for DisclosureItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl DisclosureItem {
    /// The items Axiom 7 requires the platform to disclose to each worker
    /// (her computed attributes `C_w`).
    pub const AXIOM7_REQUIRED: [DisclosureItem; 6] = [
        DisclosureItem::WorkerAcceptanceRatio,
        DisclosureItem::WorkerQualityEstimate,
        DisclosureItem::WorkerHistory,
        DisclosureItem::WorkerApprovalLatency,
        DisclosureItem::WorkerEarnings,
        DisclosureItem::WorkerSessions,
    ];

    /// The items Axiom 6 requires requesters to make available to workers.
    pub const AXIOM6_REQUIRED: [DisclosureItem; 5] = [
        DisclosureItem::HourlyWage,
        DisclosureItem::PaymentDelay,
        DisclosureItem::RecruitmentCriteria,
        DisclosureItem::RejectionCriteria,
        DisclosureItem::EvaluationScheme,
    ];
}

/// A set of disclosure grants: which items are visible to which audiences.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisclosureSet {
    grants: BTreeSet<(DisclosureItem, Audience)>,
}

impl DisclosureSet {
    /// The empty (fully opaque) disclosure set.
    pub fn opaque() -> Self {
        Self::default()
    }

    /// A fully transparent set: every item public.
    pub fn fully_transparent() -> Self {
        let mut s = Self::default();
        for item in DisclosureItem::ALL {
            s.grant(item, Audience::Public);
        }
        s
    }

    /// Grant an audience access to an item.
    pub fn grant(&mut self, item: DisclosureItem, audience: Audience) {
        self.grants.insert((item, audience));
    }

    /// Builder-style grant.
    pub fn with(mut self, item: DisclosureItem, audience: Audience) -> Self {
        self.grant(item, audience);
        self
    }

    /// Is `item` visible to `viewer`? A `Public` grant admits every
    /// audience; a `Workers`/`Requesters` grant admits the matching role
    /// and the subject when the subject has that role (the subject of a
    /// worker attribute *is* a worker, so a Workers grant covers her).
    pub fn allows(&self, item: DisclosureItem, viewer: Audience) -> bool {
        if self.grants.contains(&(item, Audience::Public)) {
            return true;
        }
        if self.grants.contains(&(item, viewer)) {
            return true;
        }
        // Subject access is implied by a grant to the subject's own role
        // for worker.* items.
        viewer == Audience::Subject
            && item.name().starts_with("worker.")
            && self.grants.contains(&(item, Audience::Workers))
    }

    /// Number of grants.
    pub fn len(&self) -> usize {
        self.grants.len()
    }

    /// True when nothing is disclosed.
    pub fn is_empty(&self) -> bool {
        self.grants.is_empty()
    }

    /// Iterate all grants in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (DisclosureItem, Audience)> + '_ {
        self.grants.iter().copied()
    }

    /// Coverage of Axiom 7: fraction of the required worker attributes
    /// that the worker herself can see.
    pub fn axiom7_coverage(&self) -> f64 {
        let covered = DisclosureItem::AXIOM7_REQUIRED
            .iter()
            .filter(|&&i| self.allows(i, Audience::Subject))
            .count();
        covered as f64 / DisclosureItem::AXIOM7_REQUIRED.len() as f64
    }

    /// Coverage of Axiom 6 at the platform level: fraction of the required
    /// working-condition items visible to workers.
    pub fn axiom6_coverage(&self) -> f64 {
        let covered = DisclosureItem::AXIOM6_REQUIRED
            .iter()
            .filter(|&&i| self.allows(i, Audience::Workers))
            .count();
        covered as f64 / DisclosureItem::AXIOM6_REQUIRED.len() as f64
    }

    /// Items granted to `viewer` (directly or via Public), in order.
    pub fn items_for(&self, viewer: Audience) -> Vec<DisclosureItem> {
        DisclosureItem::ALL
            .into_iter()
            .filter(|&i| self.allows(i, viewer))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_names_roundtrip() {
        for item in DisclosureItem::ALL {
            assert_eq!(DisclosureItem::from_name(item.name()), Some(item));
        }
        assert_eq!(DisclosureItem::from_name("nope"), None);
    }

    #[test]
    fn audience_names_roundtrip() {
        for a in Audience::ALL {
            assert_eq!(Audience::from_name(a.name()), Some(a));
        }
        assert_eq!(Audience::from_name("martians"), None);
    }

    #[test]
    fn public_grant_admits_everyone() {
        let s = DisclosureSet::opaque().with(DisclosureItem::TaskRating, Audience::Public);
        for viewer in Audience::ALL {
            assert!(s.allows(DisclosureItem::TaskRating, viewer));
        }
        assert!(!s.allows(DisclosureItem::HourlyWage, Audience::Public));
    }

    #[test]
    fn role_grant_is_role_scoped() {
        let s =
            DisclosureSet::opaque().with(DisclosureItem::CampaignProgress, Audience::Requesters);
        assert!(s.allows(DisclosureItem::CampaignProgress, Audience::Requesters));
        assert!(!s.allows(DisclosureItem::CampaignProgress, Audience::Workers));
        assert!(!s.allows(DisclosureItem::CampaignProgress, Audience::Public));
    }

    #[test]
    fn workers_grant_implies_subject_for_worker_items() {
        let s =
            DisclosureSet::opaque().with(DisclosureItem::WorkerAcceptanceRatio, Audience::Workers);
        assert!(s.allows(DisclosureItem::WorkerAcceptanceRatio, Audience::Subject));
        // but not for non-worker items
        let s2 = DisclosureSet::opaque().with(DisclosureItem::TaskRating, Audience::Workers);
        assert!(!s2.allows(DisclosureItem::TaskRating, Audience::Subject));
    }

    #[test]
    fn axiom7_coverage_counts_subject_visible_attrs() {
        assert_eq!(DisclosureSet::opaque().axiom7_coverage(), 0.0);
        assert_eq!(DisclosureSet::fully_transparent().axiom7_coverage(), 1.0);
        let partial = DisclosureSet::opaque()
            .with(DisclosureItem::WorkerAcceptanceRatio, Audience::Subject)
            .with(DisclosureItem::WorkerQualityEstimate, Audience::Subject)
            .with(DisclosureItem::WorkerHistory, Audience::Subject);
        assert!((partial.axiom7_coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn axiom6_coverage() {
        assert_eq!(DisclosureSet::opaque().axiom6_coverage(), 0.0);
        let s = DisclosureSet::opaque()
            .with(DisclosureItem::HourlyWage, Audience::Workers)
            .with(DisclosureItem::RejectionCriteria, Audience::Public);
        assert!((s.axiom6_coverage() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn items_for_is_deterministic() {
        let s = DisclosureSet::fully_transparent();
        let items = s.items_for(Audience::Public);
        assert_eq!(items.len(), DisclosureItem::ALL.len());
        let again = s.items_for(Audience::Public);
        assert_eq!(items, again);
    }

    #[test]
    fn categories() {
        assert_eq!(
            DisclosureItem::HourlyWage.category(),
            DisclosureCategory::Requester
        );
        assert_eq!(
            DisclosureItem::WorkerEarnings.category(),
            DisclosureCategory::Platform
        );
    }
}
