//! Quickstart: the whole scenario → simulate → audit → report loop in
//! one `Pipeline` call.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use faircrowd::prelude::*;

fn main() -> Result<(), FaircrowdError> {
    // A small marketplace: 20 diligent workers, one requester posting a
    // binary-labeling campaign, transparent platform, fair approvals.
    // The policy comes from the registry — swap the name to re-run the
    // whole experiment under a different assignment algorithm.
    println!("running 48 market-hours with 20 workers and 40 tasks…\n");
    let result = Pipeline::new()
        .scenario(ScenarioConfig {
            seed: 42,
            rounds: 48,
            workers: vec![WorkerPopulation::diligent(20)],
            campaigns: vec![CampaignSpec::labeling("acme", 40, 10)],
            ..Default::default()
        })
        .policy_name("self_selection")?
        .run()?;

    // The result carries the trace (the complete observable record), the
    // market summary, and the seven-axiom audit; render() prints them.
    print!("{}", result.render());

    let report = result.report();
    if report.all_hold() {
        println!("\nverdict: this platform configuration is fair and transparent.");
    } else {
        println!(
            "\nverdict: {} axiom violation(s) — see the witnesses above.",
            report.total_violations()
        );
    }
    Ok(())
}
