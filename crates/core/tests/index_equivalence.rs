//! Equivalence of the indexed, blocked, parallel audit and the naive
//! reference implementation.
//!
//! The `TraceIndex` refactor promises that blocking and parallel axiom
//! fan-out are **lossless**: for any trace, the reports — scores, holds,
//! violation witnesses, truncation, notes — are bit-identical to the
//! retained naive path ([`faircrowd_core::axioms::naive`]). These
//! property tests generate adversarial random traces (deliberately
//! larger than the index's exhaustive-scan fallback, so the blocking
//! buckets actually engage) and assert exact `FairnessReport` equality
//! across all three execution modes, under all three similarity regimes.

use faircrowd_core::{AuditConfig, AuditEngine, AxiomId, SimilarityConfig};
use faircrowd_model::attributes::{AttrValue, DeclaredAttrs};
use faircrowd_model::contribution::{Contribution, Submission};
use faircrowd_model::disclosure::DisclosureSet;
use faircrowd_model::event::{EventKind, QuitReason};
use faircrowd_model::ids::{RequesterId, SkillId, SubmissionId, TaskId, WorkerId};
use faircrowd_model::money::Credits;
use faircrowd_model::requester::Requester;
use faircrowd_model::skills::SkillVector;
use faircrowd_model::task::TaskBuilder;
use faircrowd_model::time::{SimDuration, SimTime};
use faircrowd_model::trace::Trace;
use faircrowd_model::worker::Worker;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_SKILLS: usize = 6;

/// A messy random trace: random entities, visibility, submissions,
/// payments, flags, interruptions, sessions and ground truth — enough
/// structure to exercise every axiom's quantifier domain.
fn random_trace(seed: u64, n_workers: usize, n_tasks: usize, n_subs: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace {
        disclosure: match rng.gen_range(0..3u8) {
            0 => DisclosureSet::fully_transparent(),
            1 => DisclosureSet::opaque(),
            _ => faircrowd_core::enforce::minimal_transparent_set(),
        },
        ..Trace::default()
    };

    let regions = ["north", "south"];
    for i in 0..n_workers {
        let mut skills = SkillVector::with_len(N_SKILLS);
        for s in 0..N_SKILLS {
            if rng.gen_bool(0.4) {
                skills.set(SkillId::new(s as u32), true);
            }
        }
        let declared = DeclaredAttrs::new().with(
            "region",
            AttrValue::Text(regions[rng.gen_range(0..regions.len())].to_owned()),
        );
        trace
            .workers
            .push(Worker::new(WorkerId::new(i as u32), declared, skills));
        if rng.gen_bool(0.15) {
            trace
                .ground_truth
                .malicious_workers
                .insert(WorkerId::new(i as u32));
        }
    }

    for i in 0..3 {
        trace
            .requesters
            .push(Requester::new(RequesterId::new(i), format!("r{i}")));
    }

    for i in 0..n_tasks {
        let mut skills = SkillVector::with_len(N_SKILLS);
        for s in 0..N_SKILLS {
            if rng.gen_bool(0.3) {
                skills.set(SkillId::new(s as u32), true);
            }
        }
        let reward = [10i64, 11, 12, 50][rng.gen_range(0..4usize)];
        trace.tasks.push(
            TaskBuilder::new(
                TaskId::new(i as u32),
                RequesterId::new(rng.gen_range(0..3u32)),
                skills,
                Credits::from_cents(reward),
            )
            .build(),
        );
        if rng.gen_bool(0.7) {
            trace
                .ground_truth
                .true_labels
                .insert(TaskId::new(i as u32), rng.gen_range(0..3u8));
        }
    }

    let mut clock = 0u64;
    let mut tick = |rng: &mut StdRng| {
        clock += rng.gen_range(0..5u64);
        SimTime::from_secs(clock)
    };

    // Visibility + sessions + disclosures.
    if n_workers > 0 && n_tasks > 0 {
        for _ in 0..(n_workers * 3) {
            let worker = WorkerId::new(rng.gen_range(0..n_workers) as u32);
            let task = TaskId::new(rng.gen_range(0..n_tasks) as u32);
            let t = tick(&mut rng);
            trace
                .events
                .push(t, EventKind::TaskVisible { task, worker });
        }
    }
    for i in 0..n_workers {
        if rng.gen_bool(0.8) {
            let worker = WorkerId::new(i as u32);
            let t = tick(&mut rng);
            trace.events.push(t, EventKind::SessionStarted { worker });
            if rng.gen_bool(0.6) {
                let t = tick(&mut rng);
                trace.events.push(
                    t,
                    EventKind::DisclosureShown {
                        worker,
                        item: faircrowd_model::disclosure::DisclosureItem::WorkerAcceptanceRatio,
                    },
                );
            }
        }
    }

    // Work started / interrupted.
    if n_workers > 0 && n_tasks > 0 {
        for _ in 0..n_workers {
            let worker = WorkerId::new(rng.gen_range(0..n_workers) as u32);
            let task = TaskId::new(rng.gen_range(0..n_tasks) as u32);
            let t = tick(&mut rng);
            trace
                .events
                .push(t, EventKind::WorkStarted { task, worker });
            if rng.gen_bool(0.25) {
                let t = tick(&mut rng);
                trace.events.push(
                    t,
                    EventKind::WorkInterrupted {
                        task,
                        worker,
                        invested: SimDuration::from_secs(rng.gen_range(1..600u64)),
                        compensated: rng.gen_bool(0.5),
                    },
                );
            }
        }
    }

    // Submissions + payments + flags + quits.
    let texts = [
        "the quick brown fox jumps over the lazy dog",
        "the quick brown fox jumped over the lazy dogs",
        "completely unrelated gibberish zzz qqq xyzzy",
    ];
    if n_workers > 0 && n_tasks > 0 {
        for i in 0..n_subs {
            let worker = WorkerId::new(rng.gen_range(0..n_workers) as u32);
            let task = TaskId::new(rng.gen_range(0..n_tasks) as u32);
            let contribution = match rng.gen_range(0..4u8) {
                0 | 1 => Contribution::Label(rng.gen_range(0..3u8)),
                2 => Contribution::Text(texts[rng.gen_range(0..texts.len())].to_owned()),
                _ => Contribution::Numeric(f64::from(rng.gen_range(0..5u32))),
            };
            let start = tick(&mut rng);
            let id = SubmissionId::new(i as u32);
            trace.submissions.push(Submission {
                id,
                task,
                worker,
                contribution,
                started_at: start,
                submitted_at: SimTime::from_secs(start.as_secs() + rng.gen_range(30..600u64)),
            });
            if rng.gen_bool(0.6) {
                let amount = Credits::from_cents([0i64, 5, 10, 10, 10][rng.gen_range(0..5usize)]);
                let t = tick(&mut rng);
                trace.events.push(
                    t,
                    EventKind::PaymentIssued {
                        submission: id,
                        task,
                        worker,
                        amount,
                    },
                );
            }
        }
        for _ in 0..(n_workers / 4) {
            let worker = WorkerId::new(rng.gen_range(0..n_workers) as u32);
            let t = tick(&mut rng);
            trace.events.push(
                t,
                EventKind::WorkerFlagged {
                    worker,
                    score: 0.9,
                    detector: "test".to_owned(),
                },
            );
        }
        for _ in 0..(n_workers / 6) {
            let worker = WorkerId::new(rng.gen_range(0..n_workers) as u32);
            let t = tick(&mut rng);
            trace.events.push(
                t,
                EventKind::WorkerQuit {
                    worker,
                    reason: QuitReason::Frustration,
                },
            );
        }
    }

    trace.horizon = SimTime::from_secs(clock + 1);
    trace
}

fn regime(which: u8) -> SimilarityConfig {
    match which {
        0 => SimilarityConfig::default(),
        1 => SimilarityConfig::lenient(),
        _ => SimilarityConfig::exact(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline guarantee: indexed+blocked+parallel ≡ indexed serial
    /// ≡ naive, as full `FairnessReport` equality (PartialEq covers
    /// scores, checked counts, violations, truncation and notes).
    #[test]
    fn indexed_blocked_parallel_audit_matches_naive(
        seed in 0u64..1_000_000,
        n_workers in 0usize..60,
        n_tasks in 0usize..48,
        n_subs in 0usize..70,
        which_regime in 0u8..3,
        max_witnesses in 0usize..6,
    ) {
        let trace = random_trace(seed, n_workers, n_tasks, n_subs);
        let similarity = regime(which_regime);
        let parallel = AuditEngine::new(AuditConfig {
            similarity: similarity.clone(),
            max_witnesses,
            parallel: true,
        });
        let serial = AuditEngine::new(AuditConfig {
            similarity,
            max_witnesses,
            parallel: false,
        });
        let naive = parallel.run_naive(&trace, &AxiomId::ALL);
        prop_assert_eq!(&parallel.run(&trace), &naive);
        prop_assert_eq!(&serial.run(&trace), &naive);
    }

    /// The same guarantee holds when the audit flows through a reused
    /// index (the pipeline's enforce → re-audit path).
    #[test]
    fn rebuilt_index_audits_like_a_fresh_one(
        seed in 0u64..1_000_000,
        n_workers in 33usize..50, // past the exhaustive-scan fallback
        n_tasks in 33usize..44,
    ) {
        use faircrowd_core::TraceIndex;
        let trace = random_trace(seed, n_workers, n_tasks, 40);
        let engine = AuditEngine::with_defaults();
        let first = TraceIndex::new(&trace);
        let warmup = engine.run_indexed(&first, &AxiomId::ALL);

        // A payments-only mutation: entity slices carry over.
        let mut paid = trace.clone();
        if let Some(s) = paid.submissions.first() {
            let (sid, task, worker) = (s.id, s.task, s.worker);
            paid.events.push(
                paid.horizon,
                EventKind::PaymentIssued { submission: sid, task, worker, amount: Credits::from_cents(3) },
            );
        }
        let reused = first.rebuilt_for(&paid);
        prop_assert_eq!(
            &engine.run_indexed(&reused, &AxiomId::ALL),
            &engine.run_naive(&paid, &AxiomId::ALL)
        );
        prop_assert_eq!(&warmup, &engine.run_naive(&trace, &AxiomId::ALL));
    }
}

/// A valid trace whose entity ids are hostile to the arena-backed
/// index: most ids sit in the dense range, a few land far past the
/// dense bound and must spill. Exposure and pay asymmetries straddle
/// the dense/spill boundary so the pair scans actually compare spilled
/// entities against dense ones.
fn sparse_id_trace() -> Trace {
    let mut trace = Trace {
        disclosure: DisclosureSet::fully_transparent(),
        ..Trace::default()
    };
    let wids = [0u32, 3, 70_000, 1_000_000, 1_000_007];
    let tids = [1u32, 5, 90_000, 2_000_000];
    let mut skills = SkillVector::with_len(4);
    skills.set(SkillId::new(0), true);
    for &w in &wids {
        let declared = DeclaredAttrs::new().with("region", AttrValue::Text("north".to_owned()));
        trace
            .workers
            .push(Worker::new(WorkerId::new(w), declared, skills.clone()));
    }
    for i in 0..2 {
        trace
            .requesters
            .push(Requester::new(RequesterId::new(i), format!("r{i}")));
    }
    for (i, &t) in tids.iter().enumerate() {
        trace.tasks.push(
            TaskBuilder::new(
                TaskId::new(t),
                RequesterId::new((i % 2) as u32),
                skills.clone(),
                Credits::from_cents(10),
            )
            .build(),
        );
        trace.ground_truth.true_labels.insert(TaskId::new(t), 1);
    }
    let mut clock = 0u64;
    // Dense workers see every task; spilled workers see only the first
    // — similar workers with divergent exposure on both sides of the
    // arena boundary.
    for (i, &w) in wids.iter().enumerate() {
        let seen = if i < 2 { tids.len() } else { 1 };
        for &t in tids.iter().take(seen) {
            clock += 1;
            trace.events.push(
                SimTime::from_secs(clock),
                EventKind::TaskVisible {
                    task: TaskId::new(t),
                    worker: WorkerId::new(w),
                },
            );
        }
    }
    // Equal work from a dense and a spilled worker; only the dense one
    // is paid.
    for (i, (w, paid)) in [(wids[0], true), (wids[3], false)].iter().enumerate() {
        let id = SubmissionId::new(i as u32);
        let task = TaskId::new(tids[0]);
        let worker = WorkerId::new(*w);
        clock += 1;
        trace.submissions.push(Submission {
            id,
            task,
            worker,
            contribution: Contribution::Label(1),
            started_at: SimTime::from_secs(clock),
            submitted_at: SimTime::from_secs(clock + 60),
        });
        clock += 100;
        trace.events.push(
            SimTime::from_secs(clock),
            EventKind::SubmissionReceived {
                submission: id,
                task,
                worker,
            },
        );
        if *paid {
            clock += 1;
            trace.events.push(
                SimTime::from_secs(clock),
                EventKind::PaymentIssued {
                    submission: id,
                    task,
                    worker,
                    amount: Credits::from_cents(10),
                },
            );
        }
    }
    trace.horizon = SimTime::from_secs(clock + 1);
    trace
}

/// Hostile sparse ids force the index's dense arenas to spill; the
/// spill path must be invisible: indexed (parallel and serial) remains
/// bit-identical to the naive oracle, and the trace is adversarial
/// enough that the equality is not vacuously about empty reports.
#[test]
fn sparse_ids_spill_out_of_the_arena_but_audit_identically() {
    let trace = sparse_id_trace();
    assert!(trace.validate().is_empty(), "{:?}", trace.validate());
    let engine = AuditEngine::with_defaults();
    let serial = AuditEngine::new(AuditConfig {
        parallel: false,
        ..AuditConfig::default()
    });
    let naive = engine.run_naive(&trace, &AxiomId::ALL);
    assert_eq!(engine.run(&trace), naive, "parallel ≠ naive on sparse ids");
    assert_eq!(serial.run(&trace), naive, "serial ≠ naive on sparse ids");
    assert!(
        naive.score_of(AxiomId::A1WorkerAssignment) < 1.0,
        "exposure asymmetry across the spill boundary must be visible"
    );
    assert!(
        naive.score_of(AxiomId::A3Compensation) < 1.0,
        "pay asymmetry involving a spilled worker must be visible"
    );
}

/// Deterministic end-to-end pin: simulator-produced traces from the
/// scenario catalog audit identically through every path.
#[test]
fn catalog_traces_audit_identically_across_paths() {
    for (name, scale) in [("baseline", 1.0), ("spam_campaign", 1.0), ("baseline", 2.0)] {
        let config = faircrowd_sim::catalog::get(name)
            .expect("catalog name")
            .at_scale(scale);
        let trace = faircrowd_sim::Simulation::new(config).run();
        let engine = AuditEngine::with_defaults();
        let serial = AuditEngine::new(AuditConfig {
            parallel: false,
            ..AuditConfig::default()
        });
        let naive = engine.run_naive(&trace, &AxiomId::ALL);
        assert_eq!(engine.run(&trace), naive, "{name}@{scale} parallel ≠ naive");
        assert_eq!(serial.run(&trace), naive, "{name}@{scale} serial ≠ naive");
    }
}
