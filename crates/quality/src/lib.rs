//! # faircrowd-quality
//!
//! Truth inference and malicious-worker detection.
//!
//! Axiom 4 of the paper states that *"requesters must be able to detect
//! workers behaving maliciously during task completion"*, motivated by
//! Vuurens et al.'s observation that nearly 40% of the answers they
//! received from AMT were from malicious users (§2.1). This crate is the
//! substrate behind that axiom:
//!
//! * [`answers`] — the answer matrix shared by every algorithm;
//! * [`aggregate`] — the string-keyed aggregator registry (`majority`,
//!   `weighted_majority`, `parity_constrained`) the sweep and frontier
//!   engines select consensus methods from;
//! * [`majority`] — (weighted) majority-vote aggregation;
//! * [`dawid_skene`] — EM over worker confusion matrices (Dawid–Skene
//!   style truth inference), the classic quality-estimation algorithm;
//! * [`kos`] — Karger–Oh–Shah iterative message-passing decoding for
//!   binary tasks (the inference half of the budget-optimal scheme the
//!   paper cites as \[11\]);
//! * [`gold`] — gold/honeypot question screening;
//! * [`spam`] — Vuurens-style agreement- and behaviour-based spam scoring
//!   with the spammer taxonomy used by the simulator;
//! * [`metrics`] — precision/recall/F1, accuracy, ROC-AUC.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod answers;
pub mod dawid_skene;
pub mod gold;
pub mod kos;
pub mod majority;
pub mod metrics;
pub mod spam;

pub use aggregate::{
    parity_constrained_vote, parity_gap, AggregateContext, AggregatorChoice, DEFAULT_PARITY_GAP,
};
pub use answers::{Answer, AnswerSet};
pub use dawid_skene::{DawidSkene, DawidSkeneResult};
pub use gold::GoldSet;
pub use majority::{majority_vote, weighted_majority_vote};
pub use spam::{SpamDetector, SpamScore, WorkerArchetype};
