//! Property tests for the data-model invariants the axioms lean on:
//! exact money arithmetic, bounded/symmetric similarity kernels, and
//! inequality-index sanity.

use faircrowd_model::money::Credits;
use faircrowd_model::ranking::{kendall_tau, ndcg, ranking_similarity};
use faircrowd_model::skills::SkillVector;
use faircrowd_model::stats;
use faircrowd_model::text::ngram_cosine;
use proptest::prelude::*;

fn small_credits() -> impl Strategy<Value = Credits> {
    (-1_000_000i64..1_000_000).prop_map(Credits::from_millicents)
}

fn skill_vec() -> impl Strategy<Value = SkillVector> {
    prop::collection::vec(prop::bool::ANY, 0..96).prop_map(SkillVector::from_bools)
}

fn permutation(n: usize) -> impl Strategy<Value = Vec<u16>> {
    Just((0..n as u16).collect::<Vec<u16>>()).prop_shuffle()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn credits_split_evenly_is_exact_and_tight(
        total in small_credits(),
        n in 1usize..40,
    ) {
        let shares = total.split_evenly(n);
        prop_assert_eq!(shares.len(), n);
        prop_assert_eq!(shares.iter().copied().sum::<Credits>(), total);
        let max = shares.iter().map(|c| c.millicents()).max().unwrap();
        let min = shares.iter().map(|c| c.millicents()).min().unwrap();
        prop_assert!(max - min <= 1, "shares must differ by at most one millicent");
    }

    #[test]
    fn credits_arithmetic_is_consistent(a in small_credits(), b in small_credits()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) - b, a);
        prop_assert_eq!(a.abs_diff(b), b.abs_diff(a));
        prop_assert_eq!(a.max(b).millicents(), a.millicents().max(b.millicents()));
        prop_assert_eq!(-(-a), a);
    }

    #[test]
    fn credits_mul_f64_scales_monotonically(
        a in 0i64..1_000_000,
        f1 in 0.0f64..2.0,
        f2 in 0.0f64..2.0,
    ) {
        let c = Credits::from_millicents(a);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(c.mul_f64(lo) <= c.mul_f64(hi));
        prop_assert_eq!(c.mul_f64(1.0), c);
        prop_assert_eq!(c.mul_f64(0.0), Credits::ZERO);
    }

    #[test]
    fn skill_kernels_bounded_symmetric_reflexive(a in skill_vec(), b in skill_vec()) {
        for (sa, sb) in [
            (a.cosine(&b), b.cosine(&a)),
            (a.jaccard(&b), b.jaccard(&a)),
            (a.dice(&b), b.dice(&a)),
        ] {
            prop_assert!((0.0..=1.0).contains(&sa));
            prop_assert!((sa - sb).abs() < 1e-12);
        }
        prop_assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
        prop_assert!((a.jaccard(&a) - 1.0).abs() < 1e-12);
        prop_assert_eq!(a.hamming(&b), b.hamming(&a));
        prop_assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn covers_is_a_partial_order_with_intersection_counts(a in skill_vec(), b in skill_vec()) {
        // covers ⇒ intersection equals the covered set's count
        if a.covers(&b) {
            prop_assert_eq!(a.intersection_count(&b), b.count());
        }
        // reflexive
        prop_assert!(a.covers(&a));
        // union/intersection bounds
        prop_assert!(a.intersection_count(&b) <= a.count().min(b.count()));
        prop_assert!(a.union_count(&b) >= a.count().max(b.count()));
        prop_assert_eq!(
            a.union_count(&b) + a.intersection_count(&b),
            a.count() + b.count()
        );
    }

    #[test]
    fn gini_bounds_and_invariances(xs in prop::collection::vec(0.0f64..1e6, 0..60)) {
        let g = stats::gini(&xs);
        prop_assert!((0.0..=1.0).contains(&g));
        // permutation invariance
        let mut rev = xs.clone();
        rev.reverse();
        prop_assert!((stats::gini(&rev) - g).abs() < 1e-9);
        // scale invariance (when non-degenerate)
        if xs.iter().sum::<f64>() > 0.0 {
            let scaled: Vec<f64> = xs.iter().map(|x| x * 3.0).collect();
            prop_assert!((stats::gini(&scaled) - g).abs() < 1e-9);
        }
    }

    #[test]
    fn jain_and_gini_agree_on_equality(x in 0.1f64..1e4, n in 1usize..40) {
        let xs = vec![x; n];
        prop_assert!(stats::gini(&xs).abs() < 1e-9);
        prop_assert!((stats::jain_index(&xs) - 1.0).abs() < 1e-9);
        prop_assert!(stats::theil(&xs).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_monotone(
        xs in prop::collection::vec(-1e6f64..1e6, 1..50),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(stats::percentile(&xs, lo) <= stats::percentile(&xs, hi) + 1e-9);
    }

    #[test]
    fn ngram_cosine_bounded_symmetric(a in ".{0,60}", b in ".{0,60}") {
        let s = ngram_cosine(&a, &b, 3);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - ngram_cosine(&b, &a, 3)).abs() < 1e-12);
        prop_assert!((ngram_cosine(&a, &a, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_similarity_identity_and_bounds(perm in permutation(8)) {
        prop_assert!((ranking_similarity(&perm, &perm) - 1.0).abs() < 1e-9);
        let identity: Vec<u16> = (0..8).collect();
        let s = ranking_similarity(&perm, &identity);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - ranking_similarity(&identity, &perm)).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_bounds_and_reversal(perm in permutation(7)) {
        let identity: Vec<u16> = (0..7).collect();
        let tau = kendall_tau(&perm, &identity);
        prop_assert!((-1.0..=1.0).contains(&tau));
        // reversing one argument negates tau
        let mut reversed = perm.clone();
        reversed.reverse();
        let tau_rev = kendall_tau(&reversed, &identity);
        prop_assert!((tau + tau_rev).abs() < 1e-9);
    }

    #[test]
    fn ndcg_is_maximised_by_the_ideal_ranking(
        rels in prop::collection::vec(0.0f64..5.0, 1..10),
    ) {
        // ideal ranking: items sorted by relevance descending
        let mut idx: Vec<u16> = (0..rels.len() as u16).collect();
        idx.sort_by(|&a, &b| {
            rels[b as usize].partial_cmp(&rels[a as usize]).unwrap()
        });
        let ideal = ndcg(&idx, &rels);
        prop_assert!((ideal - 1.0).abs() < 1e-9);
        // any other ranking scores at most 1
        let mut worst = idx.clone();
        worst.reverse();
        prop_assert!(ndcg(&worst, &rels) <= 1.0 + 1e-9);
    }
}
