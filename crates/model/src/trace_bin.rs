//! The binary on-disk encoding for [`Trace`] — `.fcb` files.
//!
//! JSON keeps the audit trail human-readable, but BENCH_traceio.json
//! puts its codec an order of magnitude under the hardware; a platform
//! retaining months of event logs (the premise of the paper's
//! transparency axioms — audits run over *recorded* traces) needs a
//! wire format that decodes at memory speed. This module is that
//! format: length-prefixed, varint-packed, columnar where it pays.
//!
//! ## Layout
//!
//! ```text
//! magic            8 bytes: 89 'F' 'C' 'B' 0D 0A 1A 0A
//! schema name      varint length + UTF-8 ("faircrowd-trace")
//! schema version   varint
//! horizon          varint seconds
//! workers          varint count, then one record each
//! tasks            varint count, then one record each
//! requesters       varint count, then one record each
//! submissions      varint count, then one record each
//! events           varint count, then three columns (times, seqs,
//!                  kind tags) followed by the per-event payload stream
//! disclosure       varint count of (item, audience) index pairs
//! ground truth     malicious workers + true labels
//! <end>            decoding past this point is "trailing garbage"
//! ```
//!
//! The PNG-style magic (high bit set, embedded CRLF and ^Z) makes a
//! binary trace unmistakable to the text sniffers and catches newline
//! translation corruption in the first eight bytes. Ids are raw-`u32`
//! varints, money is zigzag-varint millicents, instants and durations
//! are varint seconds, floats are their IEEE-754 bits little-endian —
//! exactly the JSON schema's value conventions, re-spelled in binary,
//! so the two formats decode to identical [`Trace`]s and share
//! [`SCHEMA_NAME`]/[`SCHEMA_VERSION`].
//!
//! Decoding never panics and never trusts a length: every read is
//! bounds-checked against the remaining input and every defect surfaces
//! as a [`FaircrowdError::Persist`] naming the offending byte offset
//! (truncation, foreign magic, an unknown tag, a varint running past
//! ten bytes, an id overflowing `u32`). Referential integrity is left
//! to [`Trace::ensure_valid`], run by the file loader in
//! `faircrowd-core::persist` — the same three-gate contract as the JSON
//! path.

use crate::attributes::{AttrValue, ComputedAttrs, DeclaredAttrs};
use crate::contribution::{Contribution, Submission};
use crate::disclosure::{Audience, DisclosureItem, DisclosureSet};
use crate::error::FaircrowdError;
use crate::event::{CancelReason, Event, EventKind, EventLog, QuitReason};
use crate::ids::{CampaignId, RequesterId, SkillId, SubmissionId, TaskId, WorkerId};
use crate::money::Credits;
use crate::requester::Requester;
use crate::skills::SkillVector;
use crate::task::{Task, TaskConditions, TaskKind};
use crate::time::{SimDuration, SimTime};
use crate::trace::{GroundTruth, Trace};
use crate::trace_io::{SCHEMA_NAME, SCHEMA_VERSION};
use crate::worker::Worker;

/// The eight bytes every `.fcb` file starts with.
pub const MAGIC: [u8; 8] = [0x89, b'F', b'C', b'B', 0x0D, 0x0A, 0x1A, 0x0A];

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Encode a trace into the binary form.
pub fn trace_to_bytes(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(&MAGIC);
    put_str(&mut out, SCHEMA_NAME);
    put_u64(&mut out, SCHEMA_VERSION);
    put_u64(&mut out, trace.horizon.as_secs());
    put_u64(&mut out, trace.workers.len() as u64);
    for w in &trace.workers {
        put_worker(&mut out, w);
    }
    put_u64(&mut out, trace.tasks.len() as u64);
    for t in &trace.tasks {
        put_task(&mut out, t);
    }
    put_u64(&mut out, trace.requesters.len() as u64);
    for r in &trace.requesters {
        put_requester(&mut out, r);
    }
    put_u64(&mut out, trace.submissions.len() as u64);
    for s in &trace.submissions {
        put_submission(&mut out, s);
    }
    put_events(&mut out, &trace.events);
    put_disclosure(&mut out, &trace.disclosure);
    put_ground_truth(&mut out, &trace.ground_truth);
    out
}

fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_u64(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_credits(out: &mut Vec<u8>, c: Credits) {
    put_i64(out, c.millicents());
}

fn put_skills(out: &mut Vec<u8>, s: &SkillVector) {
    let n = s.len();
    put_u64(out, n as u64);
    let mut byte = 0u8;
    for i in 0..n {
        if s.get(SkillId::new(i as u32)) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !n.is_multiple_of(8) {
        out.push(byte);
    }
}

fn put_worker(out: &mut Vec<u8>, w: &Worker) {
    put_u64(out, u64::from(w.id.raw()));
    put_u64(out, w.declared.len() as u64);
    for (key, value) in w.declared.iter() {
        put_str(out, key);
        match value {
            AttrValue::Bool(b) => {
                out.push(0);
                out.push(u8::from(*b));
            }
            AttrValue::Int(i) => {
                out.push(1);
                put_i64(out, *i);
            }
            AttrValue::Real(r) => {
                out.push(2);
                put_f64(out, *r);
            }
            AttrValue::Text(t) => {
                out.push(3);
                put_str(out, t);
            }
        }
    }
    let c = &w.computed;
    put_f64(out, c.acceptance_ratio);
    put_u64(out, c.tasks_approved);
    put_u64(out, c.tasks_rejected);
    put_u64(out, c.tasks_submitted);
    put_f64(out, c.quality_estimate);
    put_u64(out, c.mean_approval_latency.as_secs());
    put_credits(out, c.total_earnings);
    put_u64(out, c.sessions);
    put_u64(out, c.extra.len() as u64);
    for (key, value) in &c.extra {
        put_str(out, key);
        put_f64(out, *value);
    }
    put_skills(out, &w.skills);
}

fn put_task(out: &mut Vec<u8>, t: &Task) {
    put_u64(out, u64::from(t.id.raw()));
    put_u64(out, u64::from(t.requester.raw()));
    put_u64(out, u64::from(t.campaign.raw()));
    put_skills(out, &t.skills);
    put_credits(out, t.reward);
    match t.kind {
        TaskKind::Labeling { classes } => {
            out.push(0);
            out.push(classes);
        }
        TaskKind::FreeText => out.push(1),
        TaskKind::Ranking { items } => {
            out.push(2);
            out.push(items);
        }
        TaskKind::Survey => out.push(3),
    }
    put_u64(out, u64::from(t.assignments_wanted));
    put_u64(out, t.est_duration.as_secs());
    let c = &t.conditions;
    let mask = u8::from(c.stated_hourly_wage.is_some())
        | u8::from(c.stated_payment_delay.is_some()) << 1
        | u8::from(c.recruitment_criteria.is_some()) << 2
        | u8::from(c.rejection_criteria.is_some()) << 3
        | u8::from(c.evaluation_scheme.is_some()) << 4;
    out.push(mask);
    if let Some(wage) = c.stated_hourly_wage {
        put_credits(out, wage);
    }
    if let Some(delay) = c.stated_payment_delay {
        put_u64(out, delay.as_secs());
    }
    for text in [
        &c.recruitment_criteria,
        &c.rejection_criteria,
        &c.evaluation_scheme,
    ]
    .into_iter()
    .flatten()
    {
        put_str(out, text);
    }
}

fn put_requester(out: &mut Vec<u8>, r: &Requester) {
    put_u64(out, u64::from(r.id.raw()));
    put_str(out, &r.name);
    put_u64(out, r.approved);
    put_u64(out, r.rejected);
    put_u64(out, r.rejections_with_feedback);
    put_u64(out, r.mean_decision_latency.as_secs());
    put_u64(out, r.bonuses_promised);
    put_u64(out, r.bonuses_paid);
}

fn put_submission(out: &mut Vec<u8>, s: &Submission) {
    put_u64(out, u64::from(s.id.raw()));
    put_u64(out, u64::from(s.task.raw()));
    put_u64(out, u64::from(s.worker.raw()));
    match &s.contribution {
        Contribution::Label(l) => {
            out.push(0);
            out.push(*l);
        }
        Contribution::Text(t) => {
            out.push(1);
            put_str(out, t);
        }
        Contribution::Ranking(r) => {
            out.push(2);
            put_u64(out, r.len() as u64);
            for &item in r {
                put_u64(out, u64::from(item));
            }
        }
        Contribution::Numeric(n) => {
            out.push(3);
            put_f64(out, *n);
        }
    }
    put_u64(out, s.started_at.as_secs());
    put_u64(out, s.submitted_at.as_secs());
}

/// Event-kind wire tags, in [`EventKind`] declaration order.
fn kind_tag(kind: &EventKind) -> u8 {
    match kind {
        EventKind::TaskPosted { .. } => 0,
        EventKind::TaskVisible { .. } => 1,
        EventKind::TaskAccepted { .. } => 2,
        EventKind::WorkStarted { .. } => 3,
        EventKind::SubmissionReceived { .. } => 4,
        EventKind::SubmissionApproved { .. } => 5,
        EventKind::SubmissionRejected { .. } => 6,
        EventKind::PaymentIssued { .. } => 7,
        EventKind::BonusPromised { .. } => 8,
        EventKind::BonusPaid { .. } => 9,
        EventKind::BonusReneged { .. } => 10,
        EventKind::TaskCanceled { .. } => 11,
        EventKind::WorkInterrupted { .. } => 12,
        EventKind::WorkerFlagged { .. } => 13,
        EventKind::DisclosureShown { .. } => 14,
        EventKind::SessionStarted { .. } => 15,
        EventKind::SessionEnded { .. } => 16,
        EventKind::WorkerQuit { .. } => 17,
    }
}

fn put_events(out: &mut Vec<u8>, log: &EventLog) {
    put_u64(out, log.len() as u64);
    // Three scalar columns first: same-shaped values compress the
    // varint stream (deltas of times/seqs are short) and let a decoder
    // run tight per-column loops before touching the payload stream.
    for e in log.iter() {
        put_u64(out, e.time.as_secs());
    }
    for e in log.iter() {
        put_u64(out, e.seq);
    }
    for e in log.iter() {
        out.push(kind_tag(&e.kind));
    }
    for e in log.iter() {
        put_event_payload(out, &e.kind);
    }
}

fn put_event_payload(out: &mut Vec<u8>, kind: &EventKind) {
    match kind {
        EventKind::TaskPosted { task, requester } => {
            put_u64(out, u64::from(task.raw()));
            put_u64(out, u64::from(requester.raw()));
        }
        EventKind::TaskVisible { task, worker }
        | EventKind::TaskAccepted { task, worker }
        | EventKind::WorkStarted { task, worker } => {
            put_u64(out, u64::from(task.raw()));
            put_u64(out, u64::from(worker.raw()));
        }
        EventKind::SubmissionReceived {
            submission,
            task,
            worker,
        }
        | EventKind::SubmissionApproved {
            submission,
            task,
            worker,
        } => {
            put_u64(out, u64::from(submission.raw()));
            put_u64(out, u64::from(task.raw()));
            put_u64(out, u64::from(worker.raw()));
        }
        EventKind::SubmissionRejected {
            submission,
            task,
            worker,
            feedback,
        } => {
            put_u64(out, u64::from(submission.raw()));
            put_u64(out, u64::from(task.raw()));
            put_u64(out, u64::from(worker.raw()));
            match feedback {
                Some(text) => {
                    out.push(1);
                    put_str(out, text);
                }
                None => out.push(0),
            }
        }
        EventKind::PaymentIssued {
            submission,
            task,
            worker,
            amount,
        } => {
            put_u64(out, u64::from(submission.raw()));
            put_u64(out, u64::from(task.raw()));
            put_u64(out, u64::from(worker.raw()));
            put_credits(out, *amount);
        }
        EventKind::BonusPromised {
            worker,
            requester,
            amount,
        }
        | EventKind::BonusPaid {
            worker,
            requester,
            amount,
        }
        | EventKind::BonusReneged {
            worker,
            requester,
            amount,
        } => {
            put_u64(out, u64::from(worker.raw()));
            put_u64(out, u64::from(requester.raw()));
            put_credits(out, *amount);
        }
        EventKind::TaskCanceled { task, reason } => {
            put_u64(out, u64::from(task.raw()));
            out.push(match reason {
                CancelReason::TargetReached => 0,
                CancelReason::BudgetExhausted => 1,
                CancelReason::Withdrawn => 2,
            });
        }
        EventKind::WorkInterrupted {
            task,
            worker,
            invested,
            compensated,
        } => {
            put_u64(out, u64::from(task.raw()));
            put_u64(out, u64::from(worker.raw()));
            put_u64(out, invested.as_secs());
            out.push(u8::from(*compensated));
        }
        EventKind::WorkerFlagged {
            worker,
            score,
            detector,
        } => {
            put_u64(out, u64::from(worker.raw()));
            put_f64(out, *score);
            put_str(out, detector);
        }
        EventKind::DisclosureShown { worker, item } => {
            put_u64(out, u64::from(worker.raw()));
            out.push(item_index(*item));
        }
        EventKind::SessionStarted { worker } | EventKind::SessionEnded { worker } => {
            put_u64(out, u64::from(worker.raw()));
        }
        EventKind::WorkerQuit { worker, reason } => {
            put_u64(out, u64::from(worker.raw()));
            out.push(match reason {
                QuitReason::Frustration => 0,
                QuitReason::NaturalChurn => 1,
            });
        }
    }
}

fn item_index(item: DisclosureItem) -> u8 {
    DisclosureItem::ALL
        .iter()
        .position(|&i| i == item)
        .expect("every DisclosureItem appears in ALL") as u8
}

fn audience_index(audience: Audience) -> u8 {
    Audience::ALL
        .iter()
        .position(|&a| a == audience)
        .expect("every Audience appears in ALL") as u8
}

fn put_disclosure(out: &mut Vec<u8>, set: &DisclosureSet) {
    put_u64(out, set.len() as u64);
    for (item, audience) in set.iter() {
        out.push(item_index(item));
        out.push(audience_index(audience));
    }
}

fn put_ground_truth(out: &mut Vec<u8>, gt: &GroundTruth) {
    put_u64(out, gt.malicious_workers.len() as u64);
    for w in &gt.malicious_workers {
        put_u64(out, u64::from(w.raw()));
    }
    put_u64(out, gt.true_labels.len() as u64);
    for (t, l) in &gt.true_labels {
        put_u64(out, u64::from(t.raw()));
        out.push(*l);
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Decode a trace from its binary form, checking the magic, schema name
/// and version first. Every malformed shape — truncation, an unknown
/// tag, a varint past ten bytes — surfaces as a
/// [`FaircrowdError::Persist`] naming the byte offset; referential
/// integrity is left to [`Trace::ensure_valid`].
pub fn trace_from_bytes(bytes: &[u8]) -> Result<Trace, FaircrowdError> {
    let mut cur = Cursor { bytes, pos: 0 };
    cur.magic()?;
    let name = cur.string("schema name")?;
    if name != SCHEMA_NAME {
        return Err(FaircrowdError::persist(format!(
            "binary trace declares schema `{name}`, not `{SCHEMA_NAME}`"
        )));
    }
    let version = cur.u64("schema version")?;
    if version != SCHEMA_VERSION {
        return Err(FaircrowdError::persist(format!(
            "unsupported schema version {version} (this build reads version {SCHEMA_VERSION})"
        )));
    }
    let mut trace = Trace {
        horizon: SimTime::from_secs(cur.u64("horizon")?),
        ..Trace::default()
    };
    let n = cur.count("worker count")?;
    trace.workers.reserve(n.min(cur.remaining()));
    for i in 0..n {
        trace
            .workers
            .push(cur.worker().map_err(|e| in_record("worker", i, e))?);
    }
    let n = cur.count("task count")?;
    trace.tasks.reserve(n.min(cur.remaining()));
    for i in 0..n {
        trace
            .tasks
            .push(cur.task().map_err(|e| in_record("task", i, e))?);
    }
    let n = cur.count("requester count")?;
    trace.requesters.reserve(n.min(cur.remaining()));
    for i in 0..n {
        trace
            .requesters
            .push(cur.requester().map_err(|e| in_record("requester", i, e))?);
    }
    let n = cur.count("submission count")?;
    trace.submissions.reserve(n.min(cur.remaining()));
    for i in 0..n {
        trace.submissions.push(
            cur.submission()
                .map_err(|e| in_record("submission", i, e))?,
        );
    }
    trace.events = cur.events()?;
    trace.disclosure = cur.disclosure()?;
    trace.ground_truth = cur.ground_truth()?;
    if cur.pos != cur.bytes.len() {
        return Err(FaircrowdError::persist(format!(
            "binary trace: {} byte(s) of trailing garbage at byte {}",
            cur.bytes.len() - cur.pos,
            cur.pos
        )));
    }
    Ok(trace)
}

/// Does this byte buffer start with the `.fcb` magic? (The sniff the
/// loaders use before routing to [`trace_from_bytes`] — a binary trace
/// can never be confused with UTF-8 JSON because the first byte has
/// its high bit set.)
pub fn sniff_binary(bytes: &[u8]) -> bool {
    bytes.starts_with(&MAGIC)
}

/// Tag a decode error with the record it happened in — paid only on the
/// error path, so the per-record hot loop never formats context.
fn in_record(kind: &str, i: usize, e: FaircrowdError) -> FaircrowdError {
    FaircrowdError::persist(format!("{e} (in {kind} record {i})"))
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, what: impl std::fmt::Display) -> FaircrowdError {
        FaircrowdError::persist(format!("binary trace: {what} at byte {}", self.pos))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn magic(&mut self) -> Result<(), FaircrowdError> {
        if self.bytes.len() < MAGIC.len() {
            return Err(FaircrowdError::persist(format!(
                "binary trace: file is {} byte(s) long, shorter than the 8-byte magic",
                self.bytes.len()
            )));
        }
        if self.bytes[..MAGIC.len()] != MAGIC {
            return Err(FaircrowdError::persist(
                "not a faircrowd binary trace (magic bytes missing)",
            ));
        }
        self.pos = MAGIC.len();
        Ok(())
    }

    fn byte(&mut self, what: &str) -> Result<u8, FaircrowdError> {
        let Some(&b) = self.bytes.get(self.pos) else {
            return Err(self.err(format_args!("unexpected end of file reading {what}")));
        };
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], FaircrowdError> {
        if self.remaining() < n {
            return Err(self.err(format_args!(
                "unexpected end of file reading {what} ({n} byte(s) wanted, {} left)",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u64(&mut self, what: &str) -> Result<u64, FaircrowdError> {
        let start = self.pos;
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err(format_args!("unexpected end of file reading {what}")));
            };
            self.pos += 1;
            if self.pos - start > 10 || (shift == 63 && b > 1) {
                self.pos = start;
                return Err(self.err(format_args!("varint overflow in {what}")));
            }
            value |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    fn i64(&mut self, what: &str) -> Result<i64, FaircrowdError> {
        let z = self.u64(what)?;
        Ok((z >> 1) as i64 ^ -((z & 1) as i64))
    }

    fn count(&mut self, what: &str) -> Result<usize, FaircrowdError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| self.err(format_args!("{what} {v} overflows this platform")))
    }

    fn id32(&mut self, what: &str) -> Result<u32, FaircrowdError> {
        let v = self.u64(what)?;
        u32::try_from(v).map_err(|_| self.err(format_args!("{what} {v} overflows a 32-bit id")))
    }

    fn u8tag(&mut self, what: &str, limit: u8) -> Result<u8, FaircrowdError> {
        let pos = self.pos;
        let b = self.byte(what)?;
        if b >= limit {
            self.pos = pos;
            return Err(self.err(format_args!("unknown {what} tag {b}")));
        }
        Ok(b)
    }

    fn bool(&mut self, what: &str) -> Result<bool, FaircrowdError> {
        Ok(self.u8tag(what, 2)? == 1)
    }

    fn f64(&mut self, what: &str) -> Result<f64, FaircrowdError> {
        let bytes = self.take(8, what)?;
        Ok(f64::from_bits(u64::from_le_bytes(
            bytes.try_into().expect("take returned 8 bytes"),
        )))
    }

    fn string(&mut self, what: &str) -> Result<String, FaircrowdError> {
        let len = self.count(what)?;
        let start = self.pos;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes).map(str::to_owned).map_err(|e| {
            FaircrowdError::persist(format!(
                "binary trace: {what} is not UTF-8 at byte {}",
                start + e.valid_up_to()
            ))
        })
    }

    fn secs(&mut self, what: &str) -> Result<SimTime, FaircrowdError> {
        Ok(SimTime::from_secs(self.u64(what)?))
    }

    fn duration(&mut self, what: &str) -> Result<SimDuration, FaircrowdError> {
        Ok(SimDuration::from_secs(self.u64(what)?))
    }

    fn credits(&mut self, what: &str) -> Result<Credits, FaircrowdError> {
        Ok(Credits::from_millicents(self.i64(what)?))
    }

    fn skills(&mut self, what: &str) -> Result<SkillVector, FaircrowdError> {
        let n = self.count(what)?;
        let packed = self.take(n.div_ceil(8), what)?;
        Ok(SkillVector::from_bools(
            (0..n).map(|i| packed[i / 8] >> (i % 8) & 1 == 1),
        ))
    }

    fn worker(&mut self) -> Result<Worker, FaircrowdError> {
        let id = WorkerId::new(self.id32("worker id")?);
        let mut declared = DeclaredAttrs::new();
        let attrs = self.count("declared attr count")?;
        for _ in 0..attrs {
            let key = self.string("declared attr key")?;
            let value = match self.u8tag("declared attr", 4)? {
                0 => AttrValue::Bool(self.bool("declared bool")?),
                1 => AttrValue::Int(self.i64("declared int")?),
                2 => AttrValue::Real(self.f64("declared real")?),
                _ => AttrValue::Text(self.string("declared text")?),
            };
            declared.set(&key, value);
        }
        let computed = ComputedAttrs {
            acceptance_ratio: self.f64("acceptance_ratio")?,
            tasks_approved: self.u64("tasks_approved")?,
            tasks_rejected: self.u64("tasks_rejected")?,
            tasks_submitted: self.u64("tasks_submitted")?,
            quality_estimate: self.f64("quality_estimate")?,
            mean_approval_latency: self.duration("mean_approval_latency")?,
            total_earnings: self.credits("total_earnings")?,
            sessions: self.u64("sessions")?,
            extra: {
                let n = self.count("extra attr count")?;
                let mut extra = std::collections::BTreeMap::new();
                for _ in 0..n {
                    let key = self.string("extra attr key")?;
                    extra.insert(key, self.f64("extra attr value")?);
                }
                extra
            },
        };
        let skills = self.skills("worker skills")?;
        Ok(Worker {
            id,
            declared,
            computed,
            skills,
        })
    }

    fn task(&mut self) -> Result<Task, FaircrowdError> {
        let id = TaskId::new(self.id32("task id")?);
        let requester = RequesterId::new(self.id32("task requester")?);
        let campaign = CampaignId::new(self.id32("task campaign")?);
        let skills = self.skills("task skills")?;
        let reward = self.credits("task reward")?;
        let kind = match self.u8tag("task kind", 4)? {
            0 => TaskKind::Labeling {
                classes: self.byte("labeling classes")?,
            },
            1 => TaskKind::FreeText,
            2 => TaskKind::Ranking {
                items: self.byte("ranking items")?,
            },
            _ => TaskKind::Survey,
        };
        let assignments_wanted = self.id32("assignments_wanted")?;
        let est_duration = self.duration("est_duration")?;
        let mask = self.byte("task-conditions mask")?;
        if mask >= 1 << 5 {
            self.pos -= 1;
            return Err(self.err("unknown task-conditions bits"));
        }
        let conditions = TaskConditions {
            stated_hourly_wage: (mask & 1 != 0)
                .then(|| self.credits("stated_hourly_wage"))
                .transpose()?,
            stated_payment_delay: (mask & 2 != 0)
                .then(|| self.duration("stated_payment_delay"))
                .transpose()?,
            recruitment_criteria: (mask & 4 != 0)
                .then(|| self.string("recruitment_criteria"))
                .transpose()?,
            rejection_criteria: (mask & 8 != 0)
                .then(|| self.string("rejection_criteria"))
                .transpose()?,
            evaluation_scheme: (mask & 16 != 0)
                .then(|| self.string("evaluation_scheme"))
                .transpose()?,
        };
        Ok(Task {
            id,
            requester,
            campaign,
            skills,
            reward,
            kind,
            assignments_wanted,
            est_duration,
            conditions,
        })
    }

    fn requester(&mut self) -> Result<Requester, FaircrowdError> {
        Ok(Requester {
            id: RequesterId::new(self.id32("requester id")?),
            name: self.string("requester name")?,
            approved: self.u64("approved")?,
            rejected: self.u64("rejected")?,
            rejections_with_feedback: self.u64("rejections_with_feedback")?,
            mean_decision_latency: self.duration("mean_decision_latency")?,
            bonuses_promised: self.u64("bonuses_promised")?,
            bonuses_paid: self.u64("bonuses_paid")?,
        })
    }

    fn submission(&mut self) -> Result<Submission, FaircrowdError> {
        let id = SubmissionId::new(self.id32("submission id")?);
        let task = TaskId::new(self.id32("submission task")?);
        let worker = WorkerId::new(self.id32("submission worker")?);
        let contribution =
            match self.u8tag("contribution", 4)? {
                0 => Contribution::Label(self.byte("label")?),
                1 => Contribution::Text(self.string("contribution text")?),
                2 => {
                    let n = self.count("ranking length")?;
                    let mut ranking = Vec::with_capacity(n.min(self.remaining()));
                    for _ in 0..n {
                        let v = self.u64("ranking item")?;
                        ranking.push(u16::try_from(v).map_err(|_| {
                            self.err(format_args!("ranking item {v} overflows u16"))
                        })?);
                    }
                    Contribution::Ranking(ranking)
                }
                _ => Contribution::Numeric(self.f64("numeric contribution")?),
            };
        Ok(Submission {
            id,
            task,
            worker,
            contribution,
            started_at: self.secs("started_at")?,
            submitted_at: self.secs("submitted_at")?,
        })
    }

    fn events(&mut self) -> Result<EventLog, FaircrowdError> {
        let n = self.count("event count")?;
        let cap = n.min(self.remaining());
        let mut times = Vec::with_capacity(cap);
        for _ in 0..n {
            times.push(self.secs("event time column")?);
        }
        let mut seqs = Vec::with_capacity(cap);
        for _ in 0..n {
            seqs.push(self.u64("event seq column")?);
        }
        let tags = self.take(n, "event kind column")?;
        let mut events = Vec::with_capacity(cap);
        for (&tag, (time, seq)) in tags.iter().zip(times.into_iter().zip(seqs)) {
            let kind = self.event_kind(tag)?;
            events.push(Event { time, seq, kind });
        }
        Ok(EventLog::from_events(events))
    }

    fn event_kind(&mut self, tag: u8) -> Result<EventKind, FaircrowdError> {
        let task = |cur: &mut Self| Ok(TaskId::new(cur.id32("event task id")?));
        let worker = |cur: &mut Self| Ok(WorkerId::new(cur.id32("event worker id")?));
        let submission = |cur: &mut Self| Ok(SubmissionId::new(cur.id32("event submission id")?));
        Ok(match tag {
            0 => EventKind::TaskPosted {
                task: task(self)?,
                requester: RequesterId::new(self.id32("event requester id")?),
            },
            1 => EventKind::TaskVisible {
                task: task(self)?,
                worker: worker(self)?,
            },
            2 => EventKind::TaskAccepted {
                task: task(self)?,
                worker: worker(self)?,
            },
            3 => EventKind::WorkStarted {
                task: task(self)?,
                worker: worker(self)?,
            },
            4 => EventKind::SubmissionReceived {
                submission: submission(self)?,
                task: task(self)?,
                worker: worker(self)?,
            },
            5 => EventKind::SubmissionApproved {
                submission: submission(self)?,
                task: task(self)?,
                worker: worker(self)?,
            },
            6 => EventKind::SubmissionRejected {
                submission: submission(self)?,
                task: task(self)?,
                worker: worker(self)?,
                feedback: match self.bool("feedback flag")? {
                    true => Some(self.string("rejection feedback")?),
                    false => None,
                },
            },
            7 => EventKind::PaymentIssued {
                submission: submission(self)?,
                task: task(self)?,
                worker: worker(self)?,
                amount: self.credits("payment amount")?,
            },
            8..=10 => {
                let w = worker(self)?;
                let requester = RequesterId::new(self.id32("event requester id")?);
                let amount = self.credits("bonus amount")?;
                match tag {
                    8 => EventKind::BonusPromised {
                        worker: w,
                        requester,
                        amount,
                    },
                    9 => EventKind::BonusPaid {
                        worker: w,
                        requester,
                        amount,
                    },
                    _ => EventKind::BonusReneged {
                        worker: w,
                        requester,
                        amount,
                    },
                }
            }
            11 => EventKind::TaskCanceled {
                task: task(self)?,
                reason: match self.u8tag("cancel reason", 3)? {
                    0 => CancelReason::TargetReached,
                    1 => CancelReason::BudgetExhausted,
                    _ => CancelReason::Withdrawn,
                },
            },
            12 => EventKind::WorkInterrupted {
                task: task(self)?,
                worker: worker(self)?,
                invested: self.duration("invested")?,
                compensated: self.bool("compensated")?,
            },
            13 => EventKind::WorkerFlagged {
                worker: worker(self)?,
                score: self.f64("flag score")?,
                detector: self.string("flag detector")?,
            },
            14 => EventKind::DisclosureShown {
                worker: worker(self)?,
                item: self.item()?,
            },
            15 => EventKind::SessionStarted {
                worker: worker(self)?,
            },
            16 => EventKind::SessionEnded {
                worker: worker(self)?,
            },
            17 => EventKind::WorkerQuit {
                worker: worker(self)?,
                reason: match self.u8tag("quit reason", 2)? {
                    0 => QuitReason::Frustration,
                    _ => QuitReason::NaturalChurn,
                },
            },
            _ => {
                return Err(self.err(format_args!("unknown event kind tag {tag}")));
            }
        })
    }

    fn item(&mut self) -> Result<DisclosureItem, FaircrowdError> {
        let limit = DisclosureItem::ALL.len() as u8;
        let ix = self.u8tag("disclosure item", limit)?;
        Ok(DisclosureItem::ALL[usize::from(ix)])
    }

    fn disclosure(&mut self) -> Result<DisclosureSet, FaircrowdError> {
        let n = self.count("disclosure count")?;
        let mut set = DisclosureSet::default();
        for _ in 0..n {
            let item = self.item()?;
            let limit = Audience::ALL.len() as u8;
            let audience = Audience::ALL[usize::from(self.u8tag("audience", limit)?)];
            set.grant(item, audience);
        }
        Ok(set)
    }

    fn ground_truth(&mut self) -> Result<GroundTruth, FaircrowdError> {
        let mut gt = GroundTruth::default();
        let n = self.count("malicious worker count")?;
        for _ in 0..n {
            gt.malicious_workers
                .insert(WorkerId::new(self.id32("malicious worker")?));
        }
        let n = self.count("true label count")?;
        for _ in 0..n {
            let task = TaskId::new(self.id32("true label task")?);
            gt.true_labels.insert(task, self.byte("true label")?);
        }
        Ok(gt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_roundtrip_across_the_whole_range() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut cur = Cursor {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(cur.u64("probe").expect("valid varint"), v);
            assert_eq!(cur.pos, buf.len(), "no trailing bytes for {v}");
        }
    }

    #[test]
    fn zigzag_roundtrips_signed_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123_456_789] {
            let mut buf = Vec::new();
            put_i64(&mut buf, v);
            let mut cur = Cursor {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(cur.i64("probe").expect("valid zigzag"), v);
        }
    }

    #[test]
    fn varint_overflow_is_a_positioned_error_not_a_panic() {
        let bytes = [0xffu8; 11];
        let mut cur = Cursor {
            bytes: &bytes,
            pos: 0,
        };
        let err = cur.u64("probe").expect_err("11 continuation bytes");
        assert!(err.to_string().contains("varint overflow"), "got: {err}");
        // An unterminated but in-range varint is truncation instead.
        let bytes = [0x80u8, 0x80];
        let mut cur = Cursor {
            bytes: &bytes,
            pos: 0,
        };
        let err = cur.u64("probe").expect_err("unterminated varint");
        assert!(err.to_string().contains("unexpected end"), "got: {err}");
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = Trace::default();
        let bytes = trace_to_bytes(&trace);
        assert!(sniff_binary(&bytes));
        let back = trace_from_bytes(&bytes).expect("decodes");
        assert_eq!(back, trace);
    }

    #[test]
    fn skills_pack_to_bits_and_back() {
        for n in [0usize, 1, 7, 8, 9, 64, 65] {
            let v = SkillVector::from_bools((0..n).map(|i| i % 3 == 0));
            let mut buf = Vec::new();
            put_skills(&mut buf, &v);
            assert_eq!(buf.len(), varint_len(n as u64) + n.div_ceil(8));
            let mut cur = Cursor {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(cur.skills("probe").expect("valid"), v);
        }
    }

    fn varint_len(v: u64) -> usize {
        let mut buf = Vec::new();
        put_u64(&mut buf, v);
        buf.len()
    }

    #[test]
    fn foreign_magic_is_named() {
        let err = trace_from_bytes(b"PK\x03\x04not a trace").expect_err("zip magic");
        assert!(err.to_string().contains("magic"), "got: {err}");
        let err = trace_from_bytes(b"\x89FCB").expect_err("short file");
        assert!(err.to_string().contains("shorter"), "got: {err}");
    }

    #[test]
    fn future_version_is_rejected_by_name() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        put_str(&mut bytes, SCHEMA_NAME);
        put_u64(&mut bytes, SCHEMA_VERSION + 41);
        let err = trace_from_bytes(&bytes).expect_err("future version");
        assert!(
            err.to_string()
                .contains("unsupported schema version 42 (this build reads version 1)"),
            "got: {err}"
        );
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = trace_to_bytes(&Trace::default());
        bytes.extend_from_slice(b"oops");
        let err = trace_from_bytes(&bytes).expect_err("trailing bytes");
        assert!(err.to_string().contains("trailing garbage"), "got: {err}");
    }

    #[test]
    fn hostile_counts_do_not_preallocate() {
        // A tiny file claiming u64::MAX workers must fail on truncation,
        // not abort allocating a zettabyte vector.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        put_str(&mut bytes, SCHEMA_NAME);
        put_u64(&mut bytes, SCHEMA_VERSION);
        put_u64(&mut bytes, 0); // horizon
        put_u64(&mut bytes, u64::MAX); // worker count
        let err = trace_from_bytes(&bytes).expect_err("no workers follow");
        assert!(err.to_string().contains("unexpected end"), "got: {err}");
    }
}
