//! Dawid–Skene truth inference.
//!
//! The classic EM algorithm for aggregating noisy categorical labels:
//! alternately estimate (E-step) a posterior distribution over each task's
//! true label given per-worker confusion matrices, and (M-step) re-estimate
//! each worker's confusion matrix and the class priors given the
//! posteriors. The per-worker reliability it produces is the platform's
//! `quality_estimate` computed attribute and one of the E3 detectors.
//!
//! Laplace smoothing keeps confusion matrices strictly positive, which
//! guarantees well-defined posteriors for any input.

use crate::answers::AnswerSet;
use crate::majority::majority_vote;
use faircrowd_model::ids::{TaskId, WorkerId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Dawid–Skene configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DawidSkene {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on the max absolute posterior change.
    pub tolerance: f64,
    /// Laplace smoothing pseudo-count for confusion rows and priors.
    pub smoothing: f64,
}

impl Default for DawidSkene {
    fn default() -> Self {
        DawidSkene {
            max_iters: 100,
            tolerance: 1e-6,
            smoothing: 0.01,
        }
    }
}

/// The output of a Dawid–Skene run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DawidSkeneResult {
    /// Posterior distribution over labels per task.
    pub posteriors: BTreeMap<TaskId, Vec<f64>>,
    /// MAP label per task.
    pub labels: BTreeMap<TaskId, u8>,
    /// Per-worker reliability: prior-weighted diagonal mass of the
    /// estimated confusion matrix (probability the worker reports the true
    /// label).
    pub reliability: BTreeMap<WorkerId, f64>,
    /// Estimated class priors.
    pub priors: Vec<f64>,
    /// EM iterations actually run.
    pub iterations: usize,
    /// Whether the run converged before `max_iters`.
    pub converged: bool,
}

impl DawidSkene {
    /// Run EM on an answer set. Returns an empty result for an empty set.
    pub fn run(&self, answers: &AnswerSet) -> DawidSkeneResult {
        let k = answers.classes() as usize;
        let tasks = answers.tasks();
        let workers = answers.workers();
        if tasks.is_empty() || workers.is_empty() {
            return DawidSkeneResult {
                posteriors: BTreeMap::new(),
                labels: BTreeMap::new(),
                reliability: BTreeMap::new(),
                priors: vec![1.0 / k as f64; k],
                iterations: 0,
                converged: true,
            };
        }

        let task_index: BTreeMap<TaskId, usize> =
            tasks.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let worker_index: BTreeMap<WorkerId, usize> =
            workers.iter().enumerate().map(|(i, &w)| (w, i)).collect();
        // flat answer list in index space
        let flat: Vec<(usize, usize, usize)> = answers
            .answers()
            .iter()
            .map(|a| {
                (
                    worker_index[&a.worker],
                    task_index[&a.task],
                    a.label as usize,
                )
            })
            .collect();
        let answers_by_task: Vec<Vec<(usize, usize)>> = {
            let mut v = vec![Vec::new(); tasks.len()];
            for &(w, t, l) in &flat {
                v[t].push((w, l));
            }
            v
        };

        // Initialise posteriors from majority vote (hard assignment,
        // slightly softened so EM cannot start from a degenerate point).
        let mv = majority_vote(answers);
        let mut posteriors: Vec<Vec<f64>> = tasks
            .iter()
            .map(|t| {
                let mut p = vec![0.1 / (k as f64 - 1.0).max(1.0); k];
                let lab = mv.get(t).copied().unwrap_or(0) as usize;
                p[lab] = 0.9;
                normalize(&mut p);
                p
            })
            .collect();

        let mut confusion = vec![vec![vec![0.0; k]; k]; workers.len()];
        let mut priors = vec![1.0 / k as f64; k];
        let mut iterations = 0;
        let mut converged = false;

        for iter in 0..self.max_iters {
            iterations = iter + 1;
            // M-step: priors and confusion matrices from posteriors.
            for p in priors.iter_mut() {
                *p = self.smoothing;
            }
            for post in &posteriors {
                for (j, &pj) in post.iter().enumerate() {
                    priors[j] += pj;
                }
            }
            normalize(&mut priors);

            for w_conf in confusion.iter_mut() {
                for row in w_conf.iter_mut() {
                    for cell in row.iter_mut() {
                        *cell = self.smoothing;
                    }
                }
            }
            for &(w, t, l) in &flat {
                for (j, &pj) in posteriors[t].iter().enumerate() {
                    confusion[w][j][l] += pj;
                }
            }
            for w_conf in confusion.iter_mut() {
                for row in w_conf.iter_mut() {
                    normalize(row);
                }
            }

            // E-step: posteriors from priors and confusion matrices, in
            // log space for numerical stability.
            let mut max_delta = 0.0f64;
            for (t, group) in answers_by_task.iter().enumerate() {
                let mut logp: Vec<f64> = priors.iter().map(|&p| p.ln()).collect();
                for &(w, l) in group {
                    for (j, lp) in logp.iter_mut().enumerate() {
                        *lp += confusion[w][j][l].ln();
                    }
                }
                let mut p = softmax(&logp);
                std::mem::swap(&mut posteriors[t], &mut p);
                for (a, b) in posteriors[t].iter().zip(&p) {
                    max_delta = max_delta.max((a - b).abs());
                }
            }
            if max_delta < self.tolerance {
                converged = true;
                break;
            }
        }

        // Reliability: prior-weighted diagonal of each confusion matrix.
        let reliability: BTreeMap<WorkerId, f64> = workers
            .iter()
            .enumerate()
            .map(|(wi, &w)| {
                let r: f64 = (0..k).map(|j| priors[j] * confusion[wi][j][j]).sum();
                (w, r)
            })
            .collect();

        let labels: BTreeMap<TaskId, u8> = tasks
            .iter()
            .enumerate()
            .map(|(ti, &t)| {
                let best = posteriors[ti]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("posterior NaN"))
                    .map(|(i, _)| i as u8)
                    .unwrap_or(0);
                (t, best)
            })
            .collect();

        DawidSkeneResult {
            posteriors: tasks
                .iter()
                .enumerate()
                .map(|(ti, &t)| (t, posteriors[ti].clone()))
                .collect(),
            labels,
            reliability,
            priors,
            iterations,
            converged,
        }
    }
}

fn normalize(p: &mut [f64]) {
    let s: f64 = p.iter().sum();
    if s > 0.0 {
        for x in p.iter_mut() {
            *x /= s;
        }
    } else if !p.is_empty() {
        let u = 1.0 / p.len() as f64;
        for x in p.iter_mut() {
            *x = u;
        }
    }
}

fn softmax(logp: &[f64]) -> Vec<f64> {
    let m = logp.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut p: Vec<f64> = logp.iter().map(|&l| (l - m).exp()).collect();
    normalize(&mut p);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn w(i: u32) -> WorkerId {
        WorkerId::new(i)
    }
    fn t(i: u32) -> TaskId {
        TaskId::new(i)
    }

    /// Synthetic crowd: `good` accurate workers and `bad` random spammers
    /// label `n_tasks` binary tasks.
    fn synthetic(n_tasks: u32, good: u32, bad: u32, acc: f64, seed: u64) -> (AnswerSet, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth: Vec<u8> = (0..n_tasks).map(|_| rng.gen_range(0..2u8)).collect();
        let mut s = AnswerSet::new(2);
        for ti in 0..n_tasks {
            for wi in 0..good {
                let correct = rng.gen_bool(acc);
                let label = if correct {
                    truth[ti as usize]
                } else {
                    1 - truth[ti as usize]
                };
                s.record(w(wi), t(ti), label);
            }
            for wi in 0..bad {
                s.record(w(good + wi), t(ti), rng.gen_range(0..2u8));
            }
        }
        (s, truth)
    }

    #[test]
    fn recovers_truth_on_clean_data() {
        let (s, truth) = synthetic(40, 5, 0, 0.95, 7);
        let res = DawidSkene::default().run(&s);
        let correct = truth
            .iter()
            .enumerate()
            .filter(|(i, &tl)| res.labels[&t(*i as u32)] == tl)
            .count();
        assert!(correct >= 38, "only {correct}/40 correct");
        assert!(res.converged);
    }

    #[test]
    fn separates_reliable_from_spammers() {
        let (s, _) = synthetic(60, 6, 4, 0.9, 11);
        let res = DawidSkene::default().run(&s);
        let good_mean: f64 = (0..6).map(|i| res.reliability[&w(i)]).sum::<f64>() / 6.0;
        let bad_mean: f64 = (6..10).map(|i| res.reliability[&w(i)]).sum::<f64>() / 4.0;
        assert!(
            good_mean > bad_mean + 0.2,
            "good {good_mean:.3} vs bad {bad_mean:.3}"
        );
    }

    #[test]
    fn beats_majority_under_random_spam() {
        // 4 good at 0.85 vs 5 unbiased random spammers: DS learns to
        // downweight the spammers and should not lose to plain majority.
        // (Note: *coordinated* uniform spammers who outnumber honest
        // workers defeat both MV and MV-initialised EM — that
        // information-theoretic limit is exercised in E3, not asserted
        // away here.)
        let mut rng = StdRng::seed_from_u64(3);
        let n = 80u32;
        let truth: Vec<u8> = (0..n).map(|_| rng.gen_range(0..2u8)).collect();
        let mut s = AnswerSet::new(2);
        for ti in 0..n {
            for wi in 0..4u32 {
                let label = if rng.gen_bool(0.85) {
                    truth[ti as usize]
                } else {
                    1 - truth[ti as usize]
                };
                s.record(w(wi), t(ti), label);
            }
            for wi in 4..9u32 {
                s.record(w(wi), t(ti), rng.gen_range(0..2u8));
            }
        }
        let ds = DawidSkene::default().run(&s);
        let mv = majority_vote(&s);
        let acc = |labels: &BTreeMap<TaskId, u8>| {
            truth
                .iter()
                .enumerate()
                .filter(|(i, &tl)| labels.get(&t(*i as u32)) == Some(&tl))
                .count() as f64
                / n as f64
        };
        let ds_acc = acc(&ds.labels);
        let mv_acc = acc(&mv);
        assert!(
            ds_acc >= mv_acc,
            "DS {ds_acc:.3} should not lose to MV {mv_acc:.3}"
        );
        assert!(ds_acc > 0.75, "DS accuracy too low: {ds_acc:.3}");
    }

    #[test]
    fn empty_input_is_fine() {
        let res = DawidSkene::default().run(&AnswerSet::new(2));
        assert!(res.labels.is_empty());
        assert!(res.converged);
        assert_eq!(res.priors.len(), 2);
    }

    #[test]
    fn posteriors_are_distributions() {
        let (s, _) = synthetic(20, 4, 2, 0.9, 5);
        let res = DawidSkene::default().run(&s);
        for p in res.posteriors.values() {
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
        for &r in res.reliability.values() {
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn respects_iteration_cap() {
        let (s, _) = synthetic(30, 5, 3, 0.8, 13);
        let cfg = DawidSkene {
            max_iters: 2,
            tolerance: 0.0,
            ..Default::default()
        };
        let res = cfg.run(&s);
        assert_eq!(res.iterations, 2);
        assert!(!res.converged);
    }

    #[test]
    fn softmax_normalizes_extreme_logits() {
        let p = softmax(&[-1000.0, 0.0, -1000.0]);
        assert!((p[1] - 1.0).abs() < 1e-9);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
