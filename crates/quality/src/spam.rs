//! Spam scoring and the spammer taxonomy.
//!
//! Vuurens, de Vries and Eickhoff (*How much spam can you take?*, SIGIR
//! CIR 2011 — cited as \[20\] in the paper) analysed crowdsourced relevance
//! judgements, found ~40% of answers came from malicious users, and
//! classified workers into behavioural archetypes. This module implements
//! both sides of that study:
//!
//! * [`WorkerArchetype`] — the taxonomy, used by the simulator to generate
//!   ground-truth behaviour;
//! * [`SpamDetector`] — agreement-, repetition- and speed-based spam
//!   scores, combined into a single suspicion score per worker.

use crate::answers::AnswerSet;
use faircrowd_model::ids::WorkerId;
use faircrowd_model::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Behavioural worker archetypes, after Vuurens et al.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkerArchetype {
    /// Works carefully; high accuracy.
    Diligent,
    /// Works carelessly; mediocre accuracy, but in good faith.
    Sloppy,
    /// Answers uniformly at random.
    RandomSpammer,
    /// Always gives the same answer (first label / first option).
    UniformSpammer,
    /// Answers properly sometimes, randomly otherwise, to evade detection.
    SemiRandomSpammer,
}

impl WorkerArchetype {
    /// All archetypes, for iteration and workforce mixes.
    pub const ALL: [WorkerArchetype; 5] = [
        WorkerArchetype::Diligent,
        WorkerArchetype::Sloppy,
        WorkerArchetype::RandomSpammer,
        WorkerArchetype::UniformSpammer,
        WorkerArchetype::SemiRandomSpammer,
    ];

    /// Whether the archetype is malicious in the Axiom-4 sense. Sloppy
    /// workers are low-quality but in good faith.
    pub fn is_malicious(self) -> bool {
        matches!(
            self,
            WorkerArchetype::RandomSpammer
                | WorkerArchetype::UniformSpammer
                | WorkerArchetype::SemiRandomSpammer
        )
    }

    /// Name for reports.
    pub fn name(self) -> &'static str {
        match self {
            WorkerArchetype::Diligent => "diligent",
            WorkerArchetype::Sloppy => "sloppy",
            WorkerArchetype::RandomSpammer => "random-spammer",
            WorkerArchetype::UniformSpammer => "uniform-spammer",
            WorkerArchetype::SemiRandomSpammer => "semi-random-spammer",
        }
    }
}

/// The component and combined suspicion scores for one worker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpamScore {
    /// 1 − leave-one-out agreement with consensus (high = disagreeing).
    pub disagreement: f64,
    /// Label-repetition score: 1 − normalised answer entropy (high =
    /// always the same answer — the uniform-spammer signature).
    pub repetition: f64,
    /// Fraction of answers submitted implausibly fast (< 20% of the
    /// estimated honest duration). 0 when timing data is unavailable.
    pub speed: f64,
    /// Weighted combination in `[0, 1]`.
    pub combined: f64,
    /// Answers observed for this worker.
    pub answers: usize,
}

/// Agreement/repetition/speed spam detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpamDetector {
    /// Weight of the disagreement component.
    pub w_disagreement: f64,
    /// Weight of the repetition component.
    pub w_repetition: f64,
    /// Weight of the speed component.
    pub w_speed: f64,
    /// Combined score at or above this flags the worker.
    pub threshold: f64,
    /// Ignore workers with fewer answers than this (not enough evidence).
    pub min_answers: usize,
}

impl Default for SpamDetector {
    fn default() -> Self {
        SpamDetector {
            w_disagreement: 0.6,
            w_repetition: 0.25,
            w_speed: 0.15,
            threshold: 0.5,
            min_answers: 3,
        }
    }
}

impl SpamDetector {
    /// Score every worker with enough answers. `durations` optionally maps
    /// workers to (actual, estimated-honest) duration pairs for the speed
    /// signal.
    pub fn score(
        &self,
        answers: &AnswerSet,
        durations: Option<&BTreeMap<WorkerId, Vec<(SimDuration, SimDuration)>>>,
    ) -> BTreeMap<WorkerId, SpamScore> {
        let by_task = answers.by_task();
        let by_worker = answers.by_worker();
        let classes = answers.classes() as usize;

        // Leave-one-out agreement per worker.
        let mut agree_num: BTreeMap<WorkerId, f64> = BTreeMap::new();
        let mut agree_den: BTreeMap<WorkerId, f64> = BTreeMap::new();
        for group in by_task.values() {
            if group.len() < 2 {
                continue; // no peers to compare against
            }
            let mut hist = vec![0u32; classes];
            for a in group {
                hist[a.label as usize] += 1;
            }
            for a in group {
                // consensus of the *other* workers
                let mut h = hist.clone();
                h[a.label as usize] -= 1;
                let peer_best = h
                    .iter()
                    .enumerate()
                    .max_by(|x, y| x.1.cmp(y.1).then(y.0.cmp(&x.0)))
                    .map(|(i, _)| i as u8)
                    .unwrap_or(0);
                *agree_den.entry(a.worker).or_insert(0.0) += 1.0;
                if a.label == peer_best {
                    *agree_num.entry(a.worker).or_insert(0.0) += 1.0;
                }
            }
        }

        let mut out = BTreeMap::new();
        for (&worker, group) in &by_worker {
            if group.len() < self.min_answers {
                continue;
            }
            let disagreement = match (agree_num.get(&worker), agree_den.get(&worker)) {
                (num, Some(&den)) if den > 0.0 => 1.0 - num.copied().unwrap_or(0.0) / den,
                _ => 0.0, // never had peers: no agreement evidence
            };

            // Repetition: 1 - H(answer distribution)/log2(classes)
            let mut hist = vec![0f64; classes];
            for a in group {
                hist[a.label as usize] += 1.0;
            }
            let n = group.len() as f64;
            let entropy: f64 = hist
                .iter()
                .filter(|&&c| c > 0.0)
                .map(|&c| {
                    let p = c / n;
                    -p * p.log2()
                })
                .sum();
            let max_entropy = (classes as f64).log2();
            let repetition = if max_entropy > 0.0 {
                (1.0 - entropy / max_entropy).clamp(0.0, 1.0)
            } else {
                0.0
            };

            let speed = durations
                .and_then(|d| d.get(&worker))
                .map(|pairs| {
                    if pairs.is_empty() {
                        0.0
                    } else {
                        let fast = pairs
                            .iter()
                            .filter(|(actual, est)| actual.as_secs() * 5 < est.as_secs())
                            .count();
                        fast as f64 / pairs.len() as f64
                    }
                })
                .unwrap_or(0.0);

            let wsum = self.w_disagreement + self.w_repetition + self.w_speed;
            let combined = if wsum > 0.0 {
                ((self.w_disagreement * disagreement
                    + self.w_repetition * repetition
                    + self.w_speed * speed)
                    / wsum)
                    .clamp(0.0, 1.0)
            } else {
                0.0
            };

            out.insert(
                worker,
                SpamScore {
                    disagreement,
                    repetition,
                    speed,
                    combined,
                    answers: group.len(),
                },
            );
        }
        out
    }

    /// Workers whose combined score reaches the threshold.
    pub fn flag(
        &self,
        answers: &AnswerSet,
        durations: Option<&BTreeMap<WorkerId, Vec<(SimDuration, SimDuration)>>>,
    ) -> Vec<WorkerId> {
        self.score(answers, durations)
            .into_iter()
            .filter(|(_, s)| s.combined >= self.threshold)
            .map(|(w, _)| w)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircrowd_model::ids::TaskId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn w(i: u32) -> WorkerId {
        WorkerId::new(i)
    }
    fn t(i: u32) -> TaskId {
        TaskId::new(i)
    }

    /// 5 diligent (90%), 1 random spammer, 1 uniform spammer over n tasks.
    fn mixed_crowd(n: u32, seed: u64) -> AnswerSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = AnswerSet::new(2);
        for ti in 0..n {
            let truth: u8 = rng.gen_range(0..2);
            for wi in 0..5u32 {
                let label = if rng.gen_bool(0.9) { truth } else { 1 - truth };
                s.record(w(wi), t(ti), label);
            }
            s.record(w(5), t(ti), rng.gen_range(0..2u8)); // random
            s.record(w(6), t(ti), 0); // uniform
        }
        s
    }

    #[test]
    fn spammers_score_higher_than_diligent() {
        let s = mixed_crowd(60, 9);
        let scores = SpamDetector::default().score(&s, None);
        let diligent_max = (0..5)
            .map(|i| scores[&w(i)].combined)
            .fold(0.0f64, f64::max);
        assert!(scores[&w(5)].combined > diligent_max);
        assert!(scores[&w(6)].combined > diligent_max);
    }

    #[test]
    fn uniform_spammer_has_high_repetition() {
        let s = mixed_crowd(60, 10);
        let scores = SpamDetector::default().score(&s, None);
        assert!(scores[&w(6)].repetition > 0.9);
        assert!(scores[&w(0)].repetition < 0.5);
    }

    #[test]
    fn flagging_catches_spammers_not_diligent() {
        let s = mixed_crowd(80, 11);
        let flagged = SpamDetector::default().flag(&s, None);
        assert!(flagged.contains(&w(5)) || flagged.contains(&w(6)));
        for i in 0..5 {
            assert!(!flagged.contains(&w(i)), "diligent w{i} wrongly flagged");
        }
    }

    #[test]
    fn speed_signal_counts_fast_answers() {
        let mut s = AnswerSet::new(2);
        for ti in 0..5 {
            s.record(w(0), t(ti), 0);
            s.record(w(1), t(ti), 0);
        }
        let mut durations = BTreeMap::new();
        let est = SimDuration::from_mins(5);
        durations.insert(
            w(0),
            vec![(SimDuration::from_secs(10), est); 5], // implausibly fast
        );
        durations.insert(w(1), vec![(SimDuration::from_mins(4), est); 5]);
        let det = SpamDetector::default();
        let scores = det.score(&s, Some(&durations));
        assert!((scores[&w(0)].speed - 1.0).abs() < 1e-12);
        assert_eq!(scores[&w(1)].speed, 0.0);
        assert!(scores[&w(0)].combined > scores[&w(1)].combined);
    }

    #[test]
    fn min_answers_gates_scoring() {
        let mut s = AnswerSet::new(2);
        s.record(w(0), t(0), 0);
        s.record(w(1), t(0), 0);
        let scores = SpamDetector::default().score(&s, None);
        assert!(scores.is_empty(), "one answer each is not enough evidence");
    }

    #[test]
    fn lone_worker_has_no_disagreement_evidence() {
        let mut s = AnswerSet::new(2);
        for ti in 0..5 {
            s.record(w(0), t(ti), 1);
        }
        let scores = SpamDetector::default().score(&s, None);
        assert_eq!(scores[&w(0)].disagreement, 0.0);
        // repetition still fires (always answers 1)
        assert!(scores[&w(0)].repetition > 0.9);
    }

    #[test]
    fn archetype_taxonomy() {
        assert!(!WorkerArchetype::Diligent.is_malicious());
        assert!(!WorkerArchetype::Sloppy.is_malicious());
        assert!(WorkerArchetype::RandomSpammer.is_malicious());
        assert!(WorkerArchetype::UniformSpammer.is_malicious());
        assert!(WorkerArchetype::SemiRandomSpammer.is_malicious());
        assert_eq!(WorkerArchetype::ALL.len(), 5);
        assert_eq!(WorkerArchetype::Sloppy.name(), "sloppy");
    }

    #[test]
    fn scores_are_bounded() {
        let s = mixed_crowd(40, 13);
        for score in SpamDetector::default().score(&s, None).values() {
            for v in [
                score.disagreement,
                score.repetition,
                score.speed,
                score.combined,
            ] {
                assert!((0.0..=1.0).contains(&v), "score out of bounds: {v}");
            }
        }
    }
}
