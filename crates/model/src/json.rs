//! A minimal, dependency-free JSON value with a lossless number
//! representation.
//!
//! The workspace builds hermetically (the vendored `serde` shim is a
//! no-op derive; see `vendor/README.md`), so trace persistence carries
//! its own JSON layer. Two properties matter more than generality:
//!
//! 1. **Lossless integers.** Money is `i64` millicents and event
//!    sequence numbers are `u64`; an `f64`-backed number type would
//!    silently corrupt them past 2⁵³. [`Json::Num`] therefore stores the
//!    *lexical token* and converts on access, so `i64`/`u64`/`f64` all
//!    round-trip exactly.
//! 2. **Deterministic output.** Object members keep insertion order and
//!    floats print via Rust's shortest-round-trip `Display`, so encoding
//!    the same trace twice is byte-identical — the property the replay
//!    acceptance tests pin.
//!
//! The parser is a recursive-descent reader over the full JSON grammar
//! (strings with `\uXXXX` escapes and surrogate pairs included) with a
//! depth limit instead of unbounded recursion, and reports positions in
//! its error messages so a truncated trace file names where it broke.

use std::fmt;
use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. Trace files nest a handful
/// of levels; anything deeper is malformed input, not data.
const MAX_DEPTH: usize = 128;

/// A JSON value. Numbers keep their lexical form (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its token so integers survive losslessly.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number from an `i64` (lossless).
    pub fn int(v: i64) -> Json {
        Json::Num(v.to_string())
    }

    /// A number from a `u64` (lossless).
    pub fn uint(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A number from an `f64`. Finite values use Rust's shortest
    /// round-trip form; non-finite values are encoded as the strings
    /// `"NaN"` / `"inf"` / `"-inf"` (JSON has no literal for them) and
    /// [`Json::as_f64`] reads those back.
    pub fn float(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else if v.is_nan() {
            Json::Str("NaN".to_owned())
        } else if v > 0.0 {
            Json::Str("inf".to_owned())
        } else {
            Json::Str("-inf".to_owned())
        }
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// The value as `i64`, when it is a number token that parses as one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The value as `u64`, when it is a number token that parses as one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f64`: any number token, or the non-finite string
    /// spellings written by [`Json::float`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(t) => t.parse().ok(),
            Json::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// The value as `&str`, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as object members, when it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Look up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Serialise compactly (no whitespace) — the JSONL record form.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialise with two-space indentation — the whole-file form.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(t) => out.push_str(t),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (one value, possibly surrounded by
    /// whitespace). Errors name the byte offset they occurred at.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!(
                "trailing content after the JSON value at byte {}",
                p.pos
            ));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {} (input ends at byte {})",
                b as char,
                self.pos,
                self.bytes.len()
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        match self.peek() {
            None => Err(format!("unexpected end of input at byte {}", self.pos)),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte `{}` at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("malformed number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("malformed number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("malformed number at byte {start}"));
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII")
            .to_owned();
        Ok(Json::Num(token))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(format!("unterminated string at byte {}", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(lone_surrogate(self.pos));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(lone_surrogate(self.pos));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(lone_surrogate(self.pos));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| lone_surrogate(self.pos))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| lone_surrogate(self.pos))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced
                        }
                        _ => {
                            return Err(format!("invalid escape at byte {}", self.pos));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path (the overwhelmingly common case).
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte character: the input is a &str, so
                    // `pos` sits on a char boundary and the O(1) slice
                    // + chars() yields exactly one scalar. (Never
                    // re-validate the tail here — that turns parsing
                    // into O(n²) on megabyte traces.)
                    let c = self.text[self.pos..]
                        .chars()
                        .next()
                        .expect("non-empty rest on a char boundary");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(format!("invalid \\u escape at byte {}", self.pos)),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

fn lone_surrogate(pos: usize) -> String {
    format!("invalid \\u surrogate at byte {pos}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(&Json::parse(&text).unwrap(), v, "through {text}");
        }
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&Json::Null);
        roundtrip(&Json::Bool(true));
        roundtrip(&Json::Bool(false));
        roundtrip(&Json::str("hello \"quoted\" \\ \n tab\t ünïcode 🎉"));
        roundtrip(&Json::int(i64::MIN));
        roundtrip(&Json::uint(u64::MAX));
    }

    #[test]
    fn integers_are_lossless() {
        // Beyond f64's 2^53 mantissa — the reason Num stores the token.
        let big = 9_007_199_254_740_993i64; // 2^53 + 1
        let v = Json::int(big);
        assert_eq!(Json::parse(&v.to_compact()).unwrap().as_i64(), Some(big));
        assert_eq!(Json::uint(u64::MAX).as_u64(), Some(u64::MAX));
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1, 1.0 / 3.0, 6.02e23, -0.0, 1e-308] {
            let v = Json::float(x);
            let back = Json::parse(&v.to_compact()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        assert!(Json::float(f64::NAN).as_f64().unwrap().is_nan());
        assert_eq!(Json::float(f64::INFINITY).as_f64(), Some(f64::INFINITY));
    }

    #[test]
    fn containers_roundtrip_and_preserve_order() {
        let v = Json::Obj(vec![
            ("zebra".into(), Json::int(1)),
            (
                "alpha".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true)]),
            ),
            (
                "nested".into(),
                Json::Obj(vec![("k".into(), Json::str("v"))]),
            ),
        ]);
        roundtrip(&v);
        // Insertion order survives serialisation (determinism).
        let text = v.to_compact();
        assert!(text.find("zebra").unwrap() < text.find("alpha").unwrap());
    }

    #[test]
    fn accessors_and_get() {
        let v = Json::parse(r#"{"a": 1, "b": "x", "c": [true], "d": 1.5}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("d").unwrap().as_f64(), Some(1.5));
        assert!(v.get("missing").is_none());
        assert_eq!(v.kind(), "object");
    }

    #[test]
    fn escapes_parse() {
        let v = Json::parse(r#""a\u0041\n\t\"\\ \u00e9 \ud83c\udf89""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\t\"\\ é 🎉"));
    }

    #[test]
    fn malformed_inputs_error_with_position() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\": }",
            "tru",
            "1.",
            "1e",
            "\"unterminated",
            "{\"a\":1} extra",
            "01x",
            "\"\\u12\"",
            "\"\\ud800\"",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.contains("byte"), "`{bad}` -> {err}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(400) + &"]".repeat(400);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
    }
}
