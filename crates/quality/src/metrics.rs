//! Detection and aggregation metrics.
//!
//! E3 evaluates detectors by precision/recall/F1 against the simulator's
//! ground-truth spammer set and by the accuracy of aggregated answers
//! before/after filtering; E6 uses label accuracy as its contribution-
//! quality measure (§4.1).

use faircrowd_model::ids::{TaskId, WorkerId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Binary-classification counts for a detector run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionCounts {
    /// Malicious workers correctly flagged.
    pub true_positives: usize,
    /// Honest workers wrongly flagged.
    pub false_positives: usize,
    /// Malicious workers missed.
    pub false_negatives: usize,
    /// Honest workers correctly left alone.
    pub true_negatives: usize,
}

impl DetectionCounts {
    /// Compare a flagged set against ground truth over a worker universe.
    pub fn evaluate(
        flagged: &BTreeSet<WorkerId>,
        malicious: &BTreeSet<WorkerId>,
        universe: &BTreeSet<WorkerId>,
    ) -> Self {
        let mut c = DetectionCounts::default();
        for w in universe {
            match (flagged.contains(w), malicious.contains(w)) {
                (true, true) => c.true_positives += 1,
                (true, false) => c.false_positives += 1,
                (false, true) => c.false_negatives += 1,
                (false, false) => c.true_negatives += 1,
            }
        }
        c
    }

    /// Precision; 1.0 when nothing was flagged (no false alarms).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall; 1.0 when there was nothing to find.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall); 0.0 when both
    /// are zero.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Fraction of tasks whose aggregated label matches the truth, over the
/// tasks present in `truth`; 1.0 when `truth` is empty. Tasks missing from
/// `predicted` count as wrong (the aggregator failed to answer them).
pub fn label_accuracy(predicted: &BTreeMap<TaskId, u8>, truth: &BTreeMap<TaskId, u8>) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let correct = truth
        .iter()
        .filter(|(t, &l)| predicted.get(t) == Some(&l))
        .count();
    correct as f64 / truth.len() as f64
}

/// Area under the ROC curve for scored binary outcomes `(score, is_positive)`.
/// Computed via the rank-sum (Mann–Whitney) formulation with tie handling.
/// Returns 0.5 when either class is absent (no ranking information).
pub fn roc_auc(scored: &[(f64, bool)]) -> f64 {
    let positives = scored.iter().filter(|(_, y)| *y).count();
    let negatives = scored.len() - positives;
    if positives == 0 || negatives == 0 {
        return 0.5;
    }
    // ranks with ties averaged
    let mut indexed: Vec<(f64, bool)> = scored.to_vec();
    indexed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN score in AUC"));
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < indexed.len() {
        let mut j = i;
        while j + 1 < indexed.len() && indexed[j + 1].0 == indexed[i].0 {
            j += 1;
        }
        // average rank for the tie group, 1-based
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for item in indexed.iter().take(j + 1).skip(i) {
            if item.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let p = positives as f64;
    let n = negatives as f64;
    (rank_sum_pos - p * (p + 1.0) / 2.0) / (p * n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u32) -> WorkerId {
        WorkerId::new(i)
    }
    fn t(i: u32) -> TaskId {
        TaskId::new(i)
    }
    fn ws(ids: &[u32]) -> BTreeSet<WorkerId> {
        ids.iter().map(|&i| w(i)).collect()
    }

    #[test]
    fn detection_counts_partition_universe() {
        let c = DetectionCounts::evaluate(&ws(&[0, 1]), &ws(&[1, 2]), &ws(&[0, 1, 2, 3]));
        assert_eq!(c.true_positives, 1); // w1
        assert_eq!(c.false_positives, 1); // w0
        assert_eq!(c.false_negatives, 1); // w2
        assert_eq!(c.true_negatives, 1); // w3
        assert!((c.precision() - 0.5).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_precision_recall() {
        let none_flagged = DetectionCounts::evaluate(&ws(&[]), &ws(&[1]), &ws(&[0, 1]));
        assert_eq!(none_flagged.precision(), 1.0);
        assert_eq!(none_flagged.recall(), 0.0);
        let nothing_to_find = DetectionCounts::evaluate(&ws(&[]), &ws(&[]), &ws(&[0, 1]));
        assert_eq!(nothing_to_find.recall(), 1.0);
        assert_eq!(nothing_to_find.f1(), 1.0);
    }

    #[test]
    fn label_accuracy_counts_matches() {
        let mut pred = BTreeMap::new();
        pred.insert(t(0), 1u8);
        pred.insert(t(1), 0u8);
        let mut truth = BTreeMap::new();
        truth.insert(t(0), 1u8);
        truth.insert(t(1), 1u8);
        truth.insert(t(2), 0u8); // missing from pred -> wrong
        assert!((label_accuracy(&pred, &truth) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(label_accuracy(&pred, &BTreeMap::new()), 1.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let perfect = [(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        assert!((roc_auc(&perfect) - 1.0).abs() < 1e-12);
        let inverted = [(0.1, true), (0.2, true), (0.8, false), (0.9, false)];
        assert!(roc_auc(&inverted).abs() < 1e-12);
    }

    #[test]
    fn auc_handles_ties_and_degenerate_classes() {
        let all_same = [(0.5, true), (0.5, false), (0.5, true), (0.5, false)];
        assert!((roc_auc(&all_same) - 0.5).abs() < 1e-12);
        assert_eq!(roc_auc(&[(0.3, true)]), 0.5);
        assert_eq!(roc_auc(&[]), 0.5);
    }

    #[test]
    fn auc_intermediate_value() {
        // one inversion among 2x2
        let scored = [(0.9, true), (0.4, true), (0.6, false), (0.1, false)];
        // pairs: (0.9 vs 0.6) ok, (0.9 vs 0.1) ok, (0.4 vs 0.6) bad, (0.4 vs 0.1) ok
        assert!((roc_auc(&scored) - 0.75).abs() < 1e-12);
    }
}
