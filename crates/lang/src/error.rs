//! Diagnostics.
//!
//! Every phase reports a [`LangError`] carrying a byte span into the
//! source; `Display` renders the offending line with a caret, the way a
//! compiler should.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Span {
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Span {
    /// Construct a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A single-point span.
    pub fn point(at: usize) -> Self {
        Span {
            start: at,
            end: at + 1,
        }
    }
}

/// Which phase produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Tokenisation.
    Lex,
    /// Parsing.
    Parse,
    /// Semantic checking.
    Check,
    /// Anything else (API misuse).
    Other,
}

/// A language error with location and context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LangError {
    /// Producing phase.
    pub phase: Phase,
    /// What went wrong.
    pub message: String,
    /// Where (absent for `Other`).
    pub span: Option<Span>,
    /// The source line containing the error, pre-extracted for display.
    pub context: Option<(usize, String, usize)>, // (line number 1-based, line text, column 0-based)
}

impl LangError {
    /// An error at a span within `source`.
    pub fn at(phase: Phase, message: impl Into<String>, span: Span, source: &str) -> Self {
        let mut line_start = 0usize;
        let mut line_no = 1usize;
        for (i, b) in source.bytes().enumerate() {
            if i >= span.start {
                break;
            }
            if b == b'\n' {
                line_start = i + 1;
                line_no += 1;
            }
        }
        let line_end = source[line_start..]
            .find('\n')
            .map(|i| line_start + i)
            .unwrap_or(source.len());
        let line = source[line_start..line_end].to_owned();
        let col = span.start.saturating_sub(line_start);
        LangError {
            phase,
            message: message.into(),
            span: Some(span),
            context: Some((line_no, line, col)),
        }
    }

    /// A location-free error.
    pub fn other(message: impl Into<String>) -> Self {
        LangError {
            phase: Phase::Other,
            message: message.into(),
            span: None,
            context: None,
        }
    }
}

impl From<LangError> for faircrowd_model::FaircrowdError {
    /// Carry the full rendered diagnostic (caret line included) into the
    /// workspace error type, so `?` in `Pipeline`/CLI code keeps the
    /// compiler-grade message.
    fn from(err: LangError) -> Self {
        faircrowd_model::FaircrowdError::Lang {
            message: err.to_string(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix = match self.phase {
            Phase::Lex => "lex error",
            Phase::Parse => "parse error",
            Phase::Check => "check error",
            Phase::Other => "error",
        };
        write!(f, "{prefix}: {}", self.message)?;
        if let Some((line_no, line, col)) = &self.context {
            writeln!(f)?;
            writeln!(f, "  --> line {line_no}, column {}", col + 1)?;
            writeln!(f, "   | {line}")?;
            write!(f, "   | {}^", " ".repeat(*col))?;
        }
        Ok(())
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_constructors() {
        let s = Span::new(3, 7);
        assert_eq!(s.start, 3);
        assert_eq!(s.end, 7);
        assert_eq!(Span::point(5), Span::new(5, 6));
    }

    #[test]
    fn error_locates_line_and_column() {
        let source = "line one\nline two oops here\nline three";
        let at = source.find("oops").unwrap();
        let err = LangError::at(Phase::Parse, "unexpected word", Span::point(at), source);
        let (line_no, line, col) = err.context.clone().unwrap();
        assert_eq!(line_no, 2);
        assert_eq!(line, "line two oops here");
        assert_eq!(col, 9);
        let shown = err.to_string();
        assert!(shown.contains("parse error: unexpected word"));
        assert!(shown.contains("line 2, column 10"));
        assert!(shown.contains("^"));
    }

    #[test]
    fn other_errors_have_no_context() {
        let err = LangError::other("bad call");
        assert!(err.span.is_none());
        assert_eq!(err.to_string(), "error: bad call");
    }
}
