//! String-keyed label-aggregator registry.
//!
//! The quality counterpart of the assignment-policy registry: sweeps,
//! the frontier engine and the CLI select *how consensus labels are
//! inferred* by name, exactly as they select assignment policies. Three
//! aggregators are registered:
//!
//! * `majority` — plain [`majority_vote`];
//! * `weighted_majority` — [`weighted_majority_vote`] under the
//!   caller-supplied per-worker reliability weights;
//! * `parity_constrained` — demographic-parity-constrained aggregation
//!   (Singer et al., *Optimal Fair Aggregation under Demographic Parity
//!   Constraints*): consensus whose per-group agreement rates over the
//!   workers' declared groups differ by at most a bounded gap.
//!
//! Names resolve through the same canonicalisation as every other
//! registry ([`faircrowd_model::names::canonical`]); unknown names
//! report [`FaircrowdError::UnknownAggregator`] listing the registry.

use crate::answers::AnswerSet;
use crate::majority::{majority_vote, weighted_majority_vote};
use faircrowd_model::error::FaircrowdError;
use faircrowd_model::ids::{TaskId, WorkerId};
use faircrowd_model::names::canonical;
use std::collections::BTreeMap;

/// Canonical names of the registered aggregators, in presentation order.
pub const NAMES: [&str; 3] = ["majority", "weighted_majority", "parity_constrained"];

/// Default demographic-parity gap bound for the `parity_constrained`
/// registry entry: group agreement rates may differ by at most this.
pub const DEFAULT_PARITY_GAP: f64 = 0.1;

/// Worker-side context an aggregator may consult: reliability weights
/// (`weighted_majority`) and declared demographic groups
/// (`parity_constrained`). Both maps may be sparse — unlisted workers
/// weigh 1.0 and belong to no group.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AggregateContext {
    /// Per-worker reliability weights; missing workers weigh 1.0.
    pub weights: BTreeMap<WorkerId, f64>,
    /// Per-worker declared group keys; ungrouped workers do not
    /// constrain parity.
    pub groups: BTreeMap<WorkerId, String>,
}

/// Which label aggregator a run uses. An enum (rather than a trait
/// object) so sweep cases stay comparable and serialisable by name.
#[derive(Debug, Clone, PartialEq)]
pub enum AggregatorChoice {
    /// Plain majority vote.
    Majority,
    /// Reliability-weighted majority vote.
    WeightedMajority,
    /// Demographic-parity-constrained vote with the given gap bound.
    ParityConstrained {
        /// Maximum allowed spread between per-group agreement rates.
        max_gap: f64,
    },
}

impl AggregatorChoice {
    /// Resolve a registry name (any [`canonical`] spelling) into the
    /// choice, with [`DEFAULT_PARITY_GAP`] for `parity_constrained`.
    /// Unknown names report [`FaircrowdError::UnknownAggregator`]
    /// listing the registry.
    pub fn by_name(name: &str) -> Result<Self, FaircrowdError> {
        match canonical(name).as_str() {
            "majority" => Ok(AggregatorChoice::Majority),
            "weighted_majority" => Ok(AggregatorChoice::WeightedMajority),
            "parity_constrained" => Ok(AggregatorChoice::ParityConstrained {
                max_gap: DEFAULT_PARITY_GAP,
            }),
            _ => Err(FaircrowdError::UnknownAggregator {
                name: name.to_owned(),
                available: NAMES.iter().map(|n| (*n).to_owned()).collect(),
            }),
        }
    }

    /// Short display name for tables.
    pub fn label(&self) -> String {
        match self {
            AggregatorChoice::Majority => "majority".into(),
            AggregatorChoice::WeightedMajority => "weighted-majority".into(),
            AggregatorChoice::ParityConstrained { .. } => "parity-constrained".into(),
        }
    }

    /// Infer consensus labels. The tie rule of [`majority_vote`]
    /// applies throughout: a task without a strict winner is absent.
    pub fn aggregate(&self, answers: &AnswerSet, ctx: &AggregateContext) -> BTreeMap<TaskId, u8> {
        match self {
            AggregatorChoice::Majority => majority_vote(answers),
            AggregatorChoice::WeightedMajority => weighted_majority_vote(answers, &ctx.weights),
            AggregatorChoice::ParityConstrained { max_gap } => {
                parity_constrained_vote(answers, &ctx.groups, *max_gap)
            }
        }
    }
}

/// The demographic-parity spread of a consensus: per group, the
/// fraction of that group's answers **on decided tasks** agreeing with
/// the consensus; the gap is `max − min` over groups with at least one
/// such answer. Returns 0.0 with fewer than two participating groups
/// (parity over one group is vacuous).
pub fn parity_gap(
    answers: &AnswerSet,
    groups: &BTreeMap<WorkerId, String>,
    consensus: &BTreeMap<TaskId, u8>,
) -> f64 {
    let mut stats: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for a in answers.answers() {
        let Some(group) = groups.get(&a.worker) else {
            continue;
        };
        let Some(&label) = consensus.get(&a.task) else {
            continue;
        };
        let entry = stats.entry(group.as_str()).or_insert((0, 0));
        entry.0 += usize::from(a.label == label);
        entry.1 += 1;
    }
    let rates: Vec<f64> = stats
        .values()
        .filter(|(_, total)| *total > 0)
        .map(|(agree, total)| *agree as f64 / *total as f64)
        .collect();
    if rates.len() < 2 {
        return 0.0;
    }
    let max = rates.iter().cloned().fold(f64::MIN, f64::max);
    let min = rates.iter().cloned().fold(f64::MAX, f64::min);
    max - min
}

/// Demographic-parity-constrained majority vote: start from the plain
/// majority consensus, then withdraw consensus from whole tasks —
/// greedily, the task whose removal shrinks the [`parity_gap`] most,
/// lowest task id on ties — until the gap is within `max_gap`.
/// Withdrawing every decided task yields a vacuous gap of 0.0, so the
/// bound always holds on the output (the quality cost of the dropped
/// coverage is exactly what the policy frontier charts).
pub fn parity_constrained_vote(
    answers: &AnswerSet,
    groups: &BTreeMap<WorkerId, String>,
    max_gap: f64,
) -> BTreeMap<TaskId, u8> {
    let max_gap = max_gap.max(0.0);
    let mut consensus = majority_vote(answers);

    // Per-task, per-group (agreeing, total) answer counts, plus the
    // global tallies — kept incremental so each greedy step is
    // O(tasks × groups), not a rescan of the answer matrix.
    let mut per_task: BTreeMap<TaskId, BTreeMap<String, (i64, i64)>> = BTreeMap::new();
    let mut global: BTreeMap<String, (i64, i64)> = BTreeMap::new();
    for a in answers.answers() {
        let Some(group) = groups.get(&a.worker) else {
            continue;
        };
        let Some(&label) = consensus.get(&a.task) else {
            continue;
        };
        let agree = i64::from(a.label == label);
        let t = per_task
            .entry(a.task)
            .or_default()
            .entry(group.clone())
            .or_insert((0, 0));
        t.0 += agree;
        t.1 += 1;
        let g = global.entry(group.clone()).or_insert((0, 0));
        g.0 += agree;
        g.1 += 1;
    }

    let gap_of = |global: &BTreeMap<String, (i64, i64)>| -> f64 {
        let rates: Vec<f64> = global
            .values()
            .filter(|(_, total)| *total > 0)
            .map(|(agree, total)| *agree as f64 / *total as f64)
            .collect();
        if rates.len() < 2 {
            return 0.0;
        }
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    };

    const EPS: f64 = 1e-12;
    while gap_of(&global) > max_gap + EPS {
        // The decided task whose withdrawal minimises the residual gap.
        let mut best: Option<(f64, TaskId)> = None;
        for (task, contrib) in &per_task {
            let mut hypothetical = global.clone();
            for (group, (agree, total)) in contrib {
                let g = hypothetical.get_mut(group).expect("group in global");
                g.0 -= agree;
                g.1 -= total;
            }
            let gap = gap_of(&hypothetical);
            if best
                .as_ref()
                .is_none_or(|(bg, bt)| gap < bg - EPS || (gap <= bg + EPS && task < bt))
            {
                best = Some((gap, *task));
            }
        }
        let Some((_, task)) = best else { break };
        let contrib = per_task.remove(&task).expect("task tracked");
        for (group, (agree, total)) in contrib {
            let g = global.get_mut(&group).expect("group in global");
            g.0 -= agree;
            g.1 -= total;
        }
        consensus.remove(&task);
    }
    consensus
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u32) -> WorkerId {
        WorkerId::new(i)
    }
    fn t(i: u32) -> TaskId {
        TaskId::new(i)
    }

    fn set(rows: &[(u32, u32, u8)], classes: u8) -> AnswerSet {
        let mut s = AnswerSet::new(classes);
        for &(wi, ti, l) in rows {
            s.record(w(wi), t(ti), l);
        }
        s
    }

    fn two_groups(n: u32) -> BTreeMap<WorkerId, String> {
        (0..n)
            .map(|i| (w(i), if i % 2 == 0 { "even" } else { "odd" }.to_owned()))
            .collect()
    }

    #[test]
    fn every_registry_name_resolves_and_labels() {
        for name in NAMES {
            let choice = AggregatorChoice::by_name(name).unwrap();
            assert!(!choice.label().is_empty());
            // Hyphenated and cased spellings resolve identically.
            let respelled = name.replace('_', "-").to_uppercase();
            assert_eq!(AggregatorChoice::by_name(&respelled).unwrap(), choice);
        }
    }

    #[test]
    fn unknown_names_list_the_registry() {
        let err = AggregatorChoice::by_name("median").unwrap_err();
        match &err {
            FaircrowdError::UnknownAggregator { name, available } => {
                assert_eq!(name, "median");
                assert_eq!(available.len(), NAMES.len());
            }
            other => panic!("wrong error: {other}"),
        }
        let text = err.to_string();
        for name in NAMES {
            assert!(text.contains(name), "{text}");
        }
    }

    #[test]
    fn majority_and_weighted_choices_delegate() {
        let s = set(&[(0, 0, 1), (1, 0, 0), (2, 0, 0)], 2);
        let ctx = AggregateContext {
            weights: BTreeMap::from([(w(0), 5.0)]),
            groups: BTreeMap::new(),
        };
        assert_eq!(
            AggregatorChoice::Majority.aggregate(&s, &ctx),
            majority_vote(&s)
        );
        assert_eq!(
            AggregatorChoice::WeightedMajority.aggregate(&s, &ctx)[&t(0)],
            1,
            "weights must reach the weighted aggregator"
        );
    }

    #[test]
    fn parity_gap_measures_group_spread() {
        // t0: both groups agree with consensus; t1: only "even" does.
        let s = set(&[(0, 0, 1), (1, 0, 1), (0, 1, 0), (1, 1, 1), (2, 1, 0)], 2);
        let groups = two_groups(3);
        let consensus = majority_vote(&s);
        assert_eq!(consensus[&t(1)], 0);
        let gap = parity_gap(&s, &groups, &consensus);
        // even: 3/3 agree; odd: 1/2 agree -> gap 0.5
        assert!((gap - 0.5).abs() < 1e-12, "{gap}");
        // One group only: vacuous.
        let one: BTreeMap<_, _> = groups.into_iter().take(1).collect();
        assert_eq!(parity_gap(&s, &one, &consensus), 0.0);
    }

    #[test]
    fn parity_constrained_vote_enforces_the_bound() {
        let s = set(&[(0, 0, 1), (1, 0, 1), (0, 1, 0), (1, 1, 1), (2, 1, 0)], 2);
        let groups = two_groups(3);
        let unconstrained = majority_vote(&s);
        assert!(parity_gap(&s, &groups, &unconstrained) > 0.1);
        let fair = parity_constrained_vote(&s, &groups, 0.1);
        assert!(parity_gap(&s, &groups, &fair) <= 0.1 + 1e-9);
        // The biased task was withdrawn, the balanced one kept.
        assert!(fair.contains_key(&t(0)));
        assert!(!fair.contains_key(&t(1)));
    }

    #[test]
    fn loose_bound_leaves_majority_untouched() {
        let s = set(&[(0, 0, 1), (1, 0, 1), (0, 1, 0), (1, 1, 1), (2, 1, 0)], 2);
        let groups = two_groups(3);
        assert_eq!(parity_constrained_vote(&s, &groups, 1.0), majority_vote(&s));
        // No groups at all: parity is vacuous, majority passes through.
        assert_eq!(
            parity_constrained_vote(&s, &BTreeMap::new(), 0.0),
            majority_vote(&s)
        );
    }
}
