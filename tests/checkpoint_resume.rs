//! The checkpoint/restore acceptance criterion: *checkpoint at any seq
//! → serialize → load → resume → finish the stream* is **bit-identical**
//! to the uninterrupted audit — findings, final report, wages — and
//! therefore (by the PR 5 oracle) to `AuditEngine::run_indexed` over
//! the same trace.
//!
//! Pinned three ways:
//!
//! * deterministically, for **every catalog scenario**, cutting the
//!   JSONL stream at several line positions (just past the header, a
//!   quarter, half, three quarters, and end-of-stream) and pushing each
//!   checkpoint through the full `encode` → `decode` → `ensure_valid`
//!   → `resume` cycle;
//! * for the direct ingest path, cutting at raw event boundaries (no
//!   JSONL in the loop), including seq 0 and the final seq;
//! * property-based, over adversarial random traces and random cut
//!   positions.

use faircrowd::core::checkpoint;
use faircrowd::core::persist::{self, TraceFormat};
use faircrowd::core::report::render_report;
use faircrowd::model::trace_io::JsonlReader;
use faircrowd::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The uninterrupted reference: stream the whole trace, finalize, and
/// keep everything the cycle must reproduce.
struct Reference {
    findings: Vec<LiveFinding>,
    report: FairnessReport,
    wages: Option<faircrowd::pay::wage::WageStats>,
}

fn reference(trace: &Trace) -> Reference {
    let mut auditor = LiveAuditor::new(AuditConfig::default()).max_live_findings(usize::MAX);
    let mut findings = auditor.ingest_trace(trace).expect("well-formed stream");
    findings.extend(auditor.finalize());
    Reference {
        findings,
        report: auditor.final_report(),
        wages: auditor.final_wages(),
    }
}

/// Feed `lines` into a fresh auditor the way `faircrowd watch` does.
fn stream_prefix(lines: &[&str]) -> (LiveAuditor, JsonlReader) {
    let mut reader = JsonlReader::new();
    let mut auditor = LiveAuditor::new(AuditConfig::default()).max_live_findings(usize::MAX);
    let mut header_applied = false;
    for line in lines {
        match reader.feed_line(line).expect("well-formed line") {
            None => {
                if !header_applied {
                    if let Some(header) = reader.header() {
                        auditor.apply_header(header);
                        header_applied = true;
                    }
                }
            }
            Some(record) => {
                auditor.apply_record(record).expect("well-formed stream");
            }
        }
    }
    (auditor, reader)
}

/// The full cycle at one cut: stream `lines[..cut]`, checkpoint,
/// serialize, load back, resume, stream the rest, finalize — then
/// assert bit-identity against the uninterrupted reference.
fn cycle_at(lines: &[&str], cut: usize, want: &Reference, tag: &str) {
    let (first_life, reader) = stream_prefix(&lines[..cut]);
    let ckpt = first_life.checkpoint(reader.lines_fed() as u64);
    ckpt.ensure_valid().expect("fresh checkpoint is valid");

    // Serialize → parse: the decoded checkpoint is the one we wrote.
    let text = checkpoint::encode(&ckpt);
    let decoded = checkpoint::decode(&text).expect("roundtrip decodes");
    assert_eq!(
        decoded, ckpt,
        "{tag}: checkpoint roundtrips bit-identically"
    );

    // Second life: resume and finish the stream. A restarted tailer
    // re-reads the file from the start, so feed ALL lines — the resumed
    // reader's consumed prefix is skipped by count, never re-decoded.
    let mut auditor =
        LiveAuditor::resume(AuditConfig::default(), &decoded).expect("checkpoint resumes");
    assert_eq!(auditor.resumed_events(), decoded.seq(), "{tag}: seq base");
    let mut reader = JsonlReader::resume(decoded.jsonl_header(), decoded.source_lines() as usize);
    let mut header_applied = true;
    for line in &lines[cut..] {
        match reader.feed_line(line).expect("well-formed line") {
            None => {
                if !header_applied {
                    if let Some(header) = reader.header() {
                        auditor.apply_header(header);
                        header_applied = true;
                    }
                }
            }
            Some(record) => {
                auditor.apply_record(record).expect("well-formed stream");
            }
        }
    }
    let tail: Vec<LiveFinding> = auditor.finalize();
    let complete: Vec<LiveFinding> = decoded
        .findings()
        .iter()
        .cloned()
        .chain(
            auditor.findings()[decoded.findings().len()..]
                .iter()
                .cloned(),
        )
        .collect();
    assert_eq!(
        complete, want.findings,
        "{tag}: restored + fresh findings must equal the uninterrupted stream"
    );
    assert!(
        tail.iter().all(|f| complete.contains(f)),
        "{tag}: finalize findings are part of the history"
    );
    assert_eq!(
        auditor.final_report(),
        want.report,
        "{tag}: final report must be bit-identical"
    );
    assert_eq!(
        render_report(&auditor.final_report()),
        render_report(&want.report),
        "{tag}: rendered report must be byte-identical"
    );
    assert_eq!(auditor.final_wages(), want.wages, "{tag}: wages");
}

#[test]
fn every_catalog_scenario_survives_checkpoint_cycles() {
    for name in faircrowd::sim::catalog::NAMES {
        let pipeline = Pipeline::new()
            .scenario_name(name)
            .expect("catalog name resolves")
            .configure(|c| c.rounds = c.rounds.min(12));
        let trace = pipeline.simulate().expect("catalog scenario simulates");
        let batch = AuditEngine::with_defaults().run(&trace);
        let want = reference(&trace);
        assert_eq!(want.report, batch, "{name}: reference equals batch engine");

        let jsonl = persist::encode(&trace, TraceFormat::Jsonl);
        let lines: Vec<&str> = jsonl.lines().collect();
        // Just past the header, three interior cuts, and end-of-stream
        // (a restart after the file stopped growing).
        let cuts = [
            1,
            lines.len() / 4,
            lines.len() / 2,
            lines.len() * 3 / 4,
            lines.len(),
        ];
        for cut in cuts {
            cycle_at(&lines, cut.max(1), &want, &format!("{name}@{cut}"));
        }
    }
}

#[test]
fn direct_ingest_checkpoints_at_every_event_boundary_region() {
    // No JSONL in the loop: entities declared up front, a checkpoint
    // taken mid-events, the rest ingested by seq. Covers seq 0 (all
    // entities, no events yet) and the final seq.
    let pipeline = Pipeline::new()
        .scenario_name("spam_campaign")
        .unwrap()
        .configure(|c| c.rounds = c.rounds.min(10));
    let trace = pipeline.simulate().unwrap();
    let want = reference(&trace);
    let n = trace.events.len();
    for cut in [0, 1, n / 3, 2 * n / 3, n.saturating_sub(1), n] {
        let mut first = LiveAuditor::new(AuditConfig::default()).max_live_findings(usize::MAX);
        first.set_horizon(trace.horizon);
        first.set_disclosure(trace.disclosure.clone());
        first.set_ground_truth(trace.ground_truth.clone());
        for w in &trace.workers {
            first.add_worker(w.clone());
        }
        for t in &trace.tasks {
            first.add_task(t.clone());
        }
        for r in &trace.requesters {
            first.add_requester(r.clone());
        }
        for s in &trace.submissions {
            first.add_submission(s.clone());
        }
        for e in trace.events.iter().take(cut) {
            first.ingest(e.clone()).unwrap();
        }
        let ckpt = first.checkpoint(0);
        let decoded = checkpoint::decode(&checkpoint::encode(&ckpt)).unwrap();
        let mut second = LiveAuditor::resume(AuditConfig::default(), &decoded).unwrap();
        for e in trace.events.iter().skip(cut) {
            second.ingest(e.clone()).unwrap();
        }
        second.finalize();
        assert_eq!(second.final_report(), want.report, "cut {cut}");
        assert_eq!(second.final_wages(), want.wages, "cut {cut}");
        assert_eq!(second.findings().len(), want.findings.len(), "cut {cut}");
    }
}

/// The `live_stream` random-trace generator, reduced: enough event-kind
/// and contribution coverage to stress every mirror the checkpoint
/// serializes.
fn random_trace(seed: u64, n_workers: usize, n_tasks: usize, n_subs: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace {
        disclosure: match rng.gen_range(0..3u8) {
            0 => DisclosureSet::fully_transparent(),
            1 => DisclosureSet::opaque(),
            _ => faircrowd::core::enforce::minimal_transparent_set(),
        },
        ..Trace::default()
    };
    let n_skills = 4;
    for i in 0..n_workers {
        let mut skills = SkillVector::with_len(n_skills);
        for s in 0..n_skills {
            if rng.gen_bool(0.45) {
                skills.set(SkillId::new(s as u32), true);
            }
        }
        trace.workers.push(Worker::new(
            WorkerId::new(i as u32),
            DeclaredAttrs::new(),
            skills,
        ));
        if rng.gen_bool(0.15) {
            trace
                .ground_truth
                .malicious_workers
                .insert(WorkerId::new(i as u32));
        }
    }
    for i in 0..2u32 {
        trace
            .requesters
            .push(Requester::new(RequesterId::new(i), format!("r{i}")));
    }
    for i in 0..n_tasks {
        let mut skills = SkillVector::with_len(n_skills);
        for s in 0..n_skills {
            if rng.gen_bool(0.3) {
                skills.set(SkillId::new(s as u32), true);
            }
        }
        trace.tasks.push(
            faircrowd::model::task::TaskBuilder::new(
                TaskId::new(i as u32),
                RequesterId::new(rng.gen_range(0..2u32)),
                skills,
                Credits::from_cents(rng.gen_range(1..30i64)),
            )
            .build(),
        );
    }
    let mut clock = 0u64;
    let mut tick = |rng: &mut StdRng| {
        clock += rng.gen_range(0..5u64);
        SimTime::from_secs(clock)
    };
    if n_workers > 0 && n_tasks > 0 {
        let any_worker = |rng: &mut StdRng| WorkerId::new(rng.gen_range(0..n_workers) as u32);
        let any_task = |rng: &mut StdRng| TaskId::new(rng.gen_range(0..n_tasks) as u32);
        for _ in 0..(n_workers * 2) {
            let (worker, task) = (any_worker(&mut rng), any_task(&mut rng));
            let t = tick(&mut rng);
            trace
                .events
                .push(t, EventKind::TaskVisible { task, worker });
        }
        for i in 0..n_subs {
            let (worker, task) = (any_worker(&mut rng), any_task(&mut rng));
            let contribution = match rng.gen_range(0..3u8) {
                0 => Contribution::Label(rng.gen_range(0..3u8)),
                1 => Contribution::Text("the quick brown fox".into()),
                _ => Contribution::Numeric(f64::from(rng.gen_range(0..100u32)) / 7.0),
            };
            let start = tick(&mut rng);
            let id = SubmissionId::new(i as u32);
            trace.submissions.push(Submission {
                id,
                task,
                worker,
                contribution,
                started_at: start,
                submitted_at: SimTime::from_secs(start.as_secs() + rng.gen_range(30..600u64)),
            });
            let t = tick(&mut rng);
            trace.events.push(
                t,
                EventKind::SubmissionReceived {
                    submission: id,
                    task,
                    worker,
                },
            );
            if rng.gen_bool(0.4) {
                let t = tick(&mut rng);
                trace.events.push(
                    t,
                    EventKind::PaymentIssued {
                        submission: id,
                        task,
                        worker,
                        amount: Credits::from_millicents(rng.gen_range(0..20_000i64)),
                    },
                );
            }
        }
        let w = any_worker(&mut rng);
        let t0 = any_task(&mut rng);
        let extras = vec![
            EventKind::SessionStarted { worker: w },
            EventKind::WorkStarted {
                task: t0,
                worker: w,
            },
            EventKind::WorkInterrupted {
                task: t0,
                worker: w,
                invested: SimDuration::from_secs(rng.gen_range(1..500u64)),
                compensated: rng.gen_bool(0.5),
            },
            EventKind::WorkerFlagged {
                worker: w,
                score: f64::from(rng.gen_range(0..100u32)) / 100.0,
                detector: "spam".into(),
            },
            EventKind::SessionEnded { worker: w },
            EventKind::WorkerQuit {
                worker: w,
                reason: faircrowd::model::event::QuitReason::NaturalChurn,
            },
        ];
        for kind in extras {
            let t = tick(&mut rng);
            trace.events.push(t, kind);
        }
    }
    trace.horizon = SimTime::from_secs(clock + 1);
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checkpointing any legal stream at any line survives the full
    /// serialize → load → resume cycle bit-identically.
    #[test]
    fn random_checkpoint_cuts_are_bit_identical(
        seed in 0u64..1_000_000,
        n_workers in 1usize..15,
        n_tasks in 1usize..10,
        n_subs in 0usize..20,
        cut_frac in 0.0f64..1.0,
    ) {
        let trace = random_trace(seed, n_workers, n_tasks, n_subs);
        prop_assert!(trace.validate().is_empty(), "generator must emit valid traces");
        let want = reference(&trace);
        let jsonl = persist::encode(&trace, TraceFormat::Jsonl);
        let lines: Vec<&str> = jsonl.lines().collect();
        let cut = ((lines.len() as f64 * cut_frac) as usize).clamp(1, lines.len());
        cycle_at(&lines, cut, &want, &format!("seed {seed} cut {cut}"));
    }
}
