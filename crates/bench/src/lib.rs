//! # faircrowd-bench
//!
//! Shared machinery for the experiment suite (E1–E7 in EXPERIMENTS.md)
//! that executes the paper's §4 validation agenda — objective fairness
//! and transparency measures over controlled simulated marketplaces:
//! scenario presets, multi-seed averaging, and formatting helpers. Each
//! experiment lives in `benches/` as a `harness = false` target so that
//! `cargo bench` regenerates every table the project reports; the
//! `perf_*` targets micro-benchmark the hot paths (assignment, audit,
//! TPL, truth inference, and the parallel sweep engine).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use faircrowd_core::report::{Align, TextTable};

use faircrowd_model::trace::Trace;
use faircrowd_sim::{ScenarioConfig, Simulation};

/// The standard seeds experiments average over. Three seeds keeps every
/// experiment under a few seconds while damping run-to-run noise; the
/// tables report means.
pub const SEEDS: [u64; 3] = [11, 42, 1337];

/// Run one scenario per seed and collect the traces.
pub fn run_seeds<F>(mut configure: F) -> Vec<Trace>
where
    F: FnMut(u64) -> ScenarioConfig,
{
    SEEDS
        .iter()
        .map(|&seed| Simulation::new(configure(seed)).run())
        .collect()
}

/// Mean of an f64 iterator (0.0 when empty).
pub fn mean<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Format a fraction with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a fraction with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Print an experiment banner.
pub fn banner(id: &str, title: &str, paper_source: &str) {
    println!("\n=== {id}: {title} ===");
    println!("paper source: {paper_source}\n");
}

/// Scenario presets shared across experiments.
pub mod presets {
    use faircrowd_model::disclosure::DisclosureSet;
    use faircrowd_quality::spam::WorkerArchetype;
    use faircrowd_sim::{
        ApprovalPolicy, CampaignSpec, CancellationPolicy, PolicyChoice, ScenarioConfig,
        WorkerPopulation,
    };

    /// A mid-sized labeling market: 40 diligent + 8 sloppy workers, two
    /// requesters posting comparable campaigns (so Axiom 2 has pairs to
    /// quantify over), 48 rounds.
    ///
    /// Participation is pinned to 1.0: E1 is a *controlled* experiment in
    /// the §4.1 sense — session behaviour is held constant so that any
    /// exposure difference is attributable to the assignment policy, not
    /// to who happened to log in.
    pub fn labeling_market(seed: u64, policy: PolicyChoice) -> ScenarioConfig {
        let full_time = |mut p: WorkerPopulation| {
            p.participation = 1.0;
            p
        };
        ScenarioConfig {
            seed,
            rounds: 48,
            n_skills: 6,
            workers: vec![
                full_time(WorkerPopulation::diligent(40)),
                full_time(WorkerPopulation::of(WorkerArchetype::Sloppy, 8)),
            ],
            campaigns: vec![
                CampaignSpec::labeling("acme", 60, 10),
                CampaignSpec::labeling("globex", 60, 10),
            ],
            policy,
            disclosure: DisclosureSet::fully_transparent(),
            approval: ApprovalPolicy::QualityThreshold {
                threshold: 0.5,
                noise: 0.1,
                give_feedback: true,
            },
            cancellation: CancellationPolicy::RunToCompletion,
            ..Default::default()
        }
    }

    /// A spam-heavy market with the given malicious fraction of a
    /// 50-worker crowd (the Vuurens scenario at `fraction = 0.4`).
    pub fn spam_market(seed: u64, malicious_fraction: f64) -> ScenarioConfig {
        let total = 50u32;
        let malicious = (total as f64 * malicious_fraction).round() as u32;
        let honest = total - malicious;
        let third = malicious / 3;
        ScenarioConfig {
            seed,
            rounds: 48,
            n_skills: 0,
            workers: vec![
                WorkerPopulation::diligent(honest),
                WorkerPopulation::of(WorkerArchetype::RandomSpammer, third),
                WorkerPopulation::of(WorkerArchetype::UniformSpammer, third),
                WorkerPopulation::of(WorkerArchetype::SemiRandomSpammer, malicious - 2 * third),
            ],
            campaigns: vec![CampaignSpec {
                assignments_per_task: 5,
                ..CampaignSpec::labeling("acme", 80, 10)
            }],
            policy: PolicyChoice::SelfSelection,
            disclosure: DisclosureSet::fully_transparent(),
            ..Default::default()
        }
    }

    /// The §3.1.1 survey scenario: a requester posts far more HITs than
    /// needed and may cancel at her target.
    pub fn survey_market(seed: u64, cancellation: CancellationPolicy) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            rounds: 48,
            n_skills: 0,
            workers: vec![WorkerPopulation::diligent(30)],
            campaigns: vec![CampaignSpec {
                target_approved: Some(60),
                assignments_per_task: 2,
                ..CampaignSpec::labeling("survey-co", 120, 12)
            }],
            policy: PolicyChoice::SelfSelection,
            disclosure: DisclosureSet::fully_transparent(),
            cancellation,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircrowd_sim::PolicyChoice;

    #[test]
    fn presets_produce_valid_traces() {
        let traces = run_seeds(|s| presets::labeling_market(s, PolicyChoice::SelfSelection));
        assert_eq!(traces.len(), SEEDS.len());
        for t in &traces {
            assert!(t.validate().is_empty());
            assert!(!t.submissions.is_empty());
        }
    }

    #[test]
    fn spam_market_has_requested_fraction() {
        let cfg = presets::spam_market(1, 0.4);
        let total: u32 = cfg.workers.iter().map(|p| p.count).sum();
        let bad: u32 = cfg
            .workers
            .iter()
            .filter(|p| p.archetype.is_malicious())
            .map(|p| p.count)
            .sum();
        assert_eq!(total, 50);
        assert_eq!(bad, 20);
    }

    #[test]
    fn helpers() {
        assert_eq!(mean([1.0, 3.0]), 2.0);
        assert_eq!(mean(std::iter::empty::<f64>()), 0.0);
        assert_eq!(f3(0.12349), "0.123");
        assert_eq!(f2(0.5), "0.50");
    }
}
