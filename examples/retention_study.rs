//! The transparency→retention controlled experiment (§1, §4.1) in
//! miniature: the same imperfect market run on an opaque platform and on
//! a transparent one, with the worker-experience ledger printed side by
//! side.
//!
//! ```sh
//! cargo run --example retention_study
//! ```

use faircrowd::core::metrics;
use faircrowd::model::disclosure::DisclosureSet;
use faircrowd::model::event::{EventKind, QuitReason};
use faircrowd::model::task::TaskConditions;
use faircrowd::prelude::*;

fn market(seed: u64, disclosure: DisclosureSet) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        rounds: 96,
        n_skills: 0,
        workers: vec![WorkerPopulation::diligent(30)],
        campaigns: vec![CampaignSpec {
            assignments_per_task: 3,
            conditions: TaskConditions::default(), // requester discloses nothing
            ..CampaignSpec::labeling("acme", 250, 10)
        }],
        disclosure,
        // ordinary imperfect approvals, never explained
        approval: ApprovalPolicy::QualityThreshold {
            threshold: 0.6,
            noise: 0.15,
            give_feedback: false,
        },
        ..Default::default()
    }
}

fn study(label: &str, disclosure: DisclosureSet) -> Result<(), FaircrowdError> {
    let mut retention = 0.0;
    let mut transparency = 0.0;
    let mut quits = 0usize;
    let mut frustration_quits = 0usize;
    let mut sessions = 0usize;
    let seeds = [3u64, 5, 8];
    for &seed in &seeds {
        // One pipeline per seed: simulate, validate, and audit just the
        // two transparency axioms this study manipulates.
        let result = Pipeline::new()
            .scenario(market(seed, disclosure.clone()))
            .axioms(&[
                AxiomId::A6RequesterTransparency,
                AxiomId::A7PlatformTransparency,
            ])
            .run()?;
        let trace = &result.baseline.trace;
        retention += metrics::retention(&faircrowd::core::TraceIndex::new(trace));
        transparency += result.baseline.report.transparency_score();
        for e in trace.events.iter() {
            match e.kind {
                EventKind::WorkerQuit { reason, .. } => {
                    quits += 1;
                    if reason == QuitReason::Frustration {
                        frustration_quits += 1;
                    }
                }
                EventKind::SessionStarted { .. } => sessions += 1,
                _ => {}
            }
        }
    }
    let n = seeds.len() as f64;
    println!(
        "{label:<14} axiom-6/7 score {:>4.2}   retention {:>5.1}%   quits {:>4.1}/run (frustration {:>4.1})   sessions {:>6.1}/run",
        transparency / n,
        retention / n * 100.0,
        quits as f64 / n,
        frustration_quits as f64 / n,
        sessions as f64 / n,
    );
    Ok(())
}

fn main() -> Result<(), FaircrowdError> {
    println!(
        "same market, same imperfect requester (no feedback on rejections);\n\
         only the platform's disclosure configuration changes:\n"
    );
    study("opaque", DisclosureSet::opaque())?;
    study(
        "axioms-only",
        faircrowd::core::enforce::minimal_transparent_set(),
    )?;
    study("transparent", DisclosureSet::fully_transparent())?;

    println!(
        "\nThe paper's §1 claim — better transparency, less frustration, better \
         retention — holds under the documented behavioural model: workers on \
         the opaque platform accumulate opacity anxiety on top of unexplained \
         rejections and leave; the same workers under full disclosure stay. \
         Note that the minimal Axiom-6/7 disclosure set already captures the \
         entire retention benefit — the extra community-rating items in the \
         full policy add nothing the frustration model responds to."
    );
    Ok(())
}
