//! Property tests for truth inference: aggregators are deterministic,
//! bounded, permutation-invariant, and degrade sensibly.

use faircrowd_model::ids::{TaskId, WorkerId};
use faircrowd_quality::aggregate::{parity_constrained_vote, parity_gap, AggregatorChoice, NAMES};
use faircrowd_quality::answers::AnswerSet;
use faircrowd_quality::dawid_skene::DawidSkene;
use faircrowd_quality::kos;
use faircrowd_quality::majority::{agreement_rates, majority_vote};
use faircrowd_quality::metrics::roc_auc;
use faircrowd_quality::spam::SpamDetector;
use proptest::prelude::*;

fn groups_strategy() -> impl Strategy<Value = std::collections::BTreeMap<WorkerId, String>> {
    // Eight workers (matching answers_strategy), each declaring one of
    // three groups or none.
    prop::collection::vec(0usize..4, 8).prop_map(|picks| {
        picks
            .into_iter()
            .enumerate()
            .filter_map(|(i, g)| {
                ["north", "south", "east"]
                    .get(g)
                    .map(|name| (WorkerId::new(i as u32), (*name).to_owned()))
            })
            .collect()
    })
}

fn answers_strategy() -> impl Strategy<Value = AnswerSet> {
    prop::collection::vec((0u32..8, 0u32..12, 0u8..2), 0..80).prop_map(|rows| {
        let mut set = AnswerSet::new(2);
        let mut seen = std::collections::BTreeSet::new();
        for (w, t, l) in rows {
            // one answer per (worker, task), like a real platform
            if seen.insert((w, t)) {
                set.record(WorkerId::new(w), TaskId::new(t), l);
            }
        }
        set
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn majority_vote_is_order_invariant(answers in answers_strategy()) {
        let mv = majority_vote(&answers);
        // rebuild in reverse insertion order
        let mut reversed = AnswerSet::new(2);
        for a in answers.answers().iter().rev() {
            reversed.record(a.worker, a.task, a.label);
        }
        prop_assert_eq!(majority_vote(&reversed), mv.clone());
        // every answered task gets a label in range
        for (task, label) in &mv {
            prop_assert!(*label < 2);
            prop_assert!(answers.by_task().contains_key(task));
        }
    }

    #[test]
    fn parity_constrained_vote_satisfies_the_gap_bound(
        answers in answers_strategy(),
        groups in groups_strategy(),
        max_gap in 0.0f64..0.5,
    ) {
        let consensus = parity_constrained_vote(&answers, &groups, max_gap);
        let gap = parity_gap(&answers, &groups, &consensus);
        prop_assert!(
            gap <= max_gap + 1e-9,
            "gap {gap} exceeds bound {max_gap} on {} decided tasks",
            consensus.len()
        );
        // Constrained consensus only ever withdraws majority decisions,
        // never invents new ones.
        let unconstrained = majority_vote(&answers);
        for (task, label) in &consensus {
            prop_assert_eq!(unconstrained.get(task), Some(label));
        }
    }

    #[test]
    fn aggregator_registry_round_trips_every_spelling(
        which in 0usize..NAMES.len(),
        upper in prop::bool::ANY,
        hyphen in prop::bool::ANY,
    ) {
        let mut spelling = NAMES[which].to_owned();
        if hyphen {
            spelling = spelling.replace('_', "-");
        }
        if upper {
            spelling = spelling.to_uppercase();
        }
        let choice = AggregatorChoice::by_name(&spelling).unwrap();
        prop_assert_eq!(
            AggregatorChoice::by_name(NAMES[which]).unwrap(),
            choice.clone()
        );
        prop_assert_eq!(choice.label().replace('-', "_"), NAMES[which]);
    }

    #[test]
    fn agreement_rates_are_bounded(answers in answers_strategy()) {
        for (_, rate) in agreement_rates(&answers) {
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }

    #[test]
    fn dawid_skene_outputs_are_probabilities(answers in answers_strategy()) {
        let res = DawidSkene::default().run(&answers);
        for p in res.posteriors.values() {
            let sum: f64 = p.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
            prop_assert!(p.iter().all(|&x| (-1e-9..=1.0 + 1e-9).contains(&x)));
        }
        for &r in res.reliability.values() {
            prop_assert!((0.0..=1.0).contains(&r));
        }
        let sum: f64 = res.priors.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        // labels only for answered tasks
        prop_assert_eq!(res.labels.len(), answers.tasks().len());
    }

    #[test]
    fn kos_decode_is_total_and_bounded(answers in answers_strategy(), iters in 1usize..12) {
        let res = kos::decode(&answers, iters);
        prop_assert_eq!(res.labels.len(), answers.tasks().len());
        for &label in res.labels.values() {
            prop_assert!(label < 2);
        }
        for &m in res.margins.values() {
            prop_assert!(m >= 0.0);
            prop_assert!(m.is_finite());
        }
    }

    #[test]
    fn spam_scores_stay_in_unit_interval(answers in answers_strategy()) {
        for (_, score) in SpamDetector::default().score(&answers, None) {
            prop_assert!((0.0..=1.0).contains(&score.combined));
            prop_assert!((0.0..=1.0).contains(&score.disagreement));
            prop_assert!((0.0..=1.0).contains(&score.repetition));
            prop_assert_eq!(score.speed, 0.0, "no timing data supplied");
        }
    }

    #[test]
    fn auc_is_invariant_to_monotone_score_transforms(
        scored in prop::collection::vec((0.0f64..1.0, prop::bool::ANY), 0..40)
    ) {
        let auc = roc_auc(&scored);
        prop_assert!((0.0..=1.0).contains(&auc));
        // strictly monotone transform preserves ranking hence AUC
        let transformed: Vec<(f64, bool)> =
            scored.iter().map(|&(s, y)| (s * 3.0 + 1.0, y)).collect();
        prop_assert!((roc_auc(&transformed) - auc).abs() < 1e-9);
    }
}
