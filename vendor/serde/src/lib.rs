//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in a hermetic environment with no registry
//! access, and the workspace crates only ever use serde through
//! `#[derive(Serialize, Deserialize)]` — nothing is actually serialised
//! today. This shim therefore provides the two derive macros as no-ops so
//! the annotations stay in place (and keep documenting intent) while the
//! build stays dependency-free. Swapping in real serde later is a
//! one-line change in the workspace manifest.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`. Registers the `#[serde(...)]`
/// helper attribute so field annotations like `#[serde(default)]` parse.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`. Registers the `#[serde(...)]`
/// helper attribute so field annotations like `#[serde(default)]` parse.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
