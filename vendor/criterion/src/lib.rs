//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's `perf_*` benches use —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`criterion_group!`] and
//! [`criterion_main!`] — with plain wall-clock timing: each benchmark
//! runs a calibration pass then `sample_size` timed samples and reports
//! the median per-iteration time. No statistics beyond that; the point
//! is that `cargo bench` runs and prints comparable numbers offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to the measured closure; collects timed iterations.
pub struct Bencher {
    samples: usize,
    median_ns: f64,
}

impl Bencher {
    /// Time `routine`, running enough iterations per sample to be
    /// measurable, and record the median per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: aim for samples of at least ~1ms or 10 iterations.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            ((Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1) as usize).min(10_000);

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = per_iter[per_iter.len() / 2];
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            median_ns: f64::NAN,
        };
        f(&mut bencher);
        report(&self.name, &id.id, bencher.median_ns);
        self
    }

    /// Run one benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, median_ns: f64) {
    let (value, unit) = if median_ns >= 1e9 {
        (median_ns / 1e9, "s")
    } else if median_ns >= 1e6 {
        (median_ns / 1e6, "ms")
    } else if median_ns >= 1e3 {
        (median_ns / 1e3, "µs")
    } else {
        (median_ns, "ns")
    };
    println!("{group}/{id:<32} median {value:8.2} {unit}/iter");
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut ran = 0usize;
        group.bench_function("id", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(ran > 0);
    }
}
