//! P6 — Trace persistence throughput and the sweep simulation cache.
//!
//! Criterion view of the two workloads `traceio_baseline` pins in
//! `BENCH_traceio.json`: encoding/decoding the baseline catalog trace
//! in both schema formats, and an enforcement-axis sweep with the
//! baseline-simulation cache on vs off (cells differing only on the
//! `enforce` stack share one simulated trace; outputs are
//! byte-identical either way — only wall-clock moves).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faircrowd::core::persist::{self, TraceFormat};
use faircrowd::sweep::{run_grid_opts, SweepGrid};
use faircrowd::Pipeline;
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let trace = Pipeline::new()
        .scenario_name("baseline")
        .expect("catalog name")
        .simulate()
        .expect("baseline simulates");
    let mut group = c.benchmark_group(format!("trace_codec_{}_events", trace.events.len()));
    group.sample_size(20);
    for (label, format) in [("json", TraceFormat::Json), ("jsonl", TraceFormat::Jsonl)] {
        let text = persist::encode(&trace, format);
        group.bench_with_input(BenchmarkId::new("encode", label), &format, |b, &format| {
            b.iter(|| black_box(persist::encode(black_box(&trace), format)));
        });
        group.bench_with_input(BenchmarkId::new("decode", label), &text, |b, text| {
            b.iter(|| black_box(persist::decode(black_box(text)).expect("decode")));
        });
    }
    group.finish();
}

fn bench_sweep_cache(c: &mut Criterion) {
    let grid = SweepGrid::parse("scenario=baseline;seed=0..2;enforce=none,transparency,grace")
        .expect("grid parses");
    let jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut group = c.benchmark_group("sweep_enforce_axis");
    group.sample_size(10);
    for (label, reuse) in [("uncached", false), ("cached", true)] {
        group.bench_with_input(BenchmarkId::new("sim", label), &reuse, |b, &reuse| {
            b.iter(|| {
                let result = run_grid_opts(black_box(&grid), jobs, reuse).expect("sweep runs");
                black_box(result.groups.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_sweep_cache);
criterion_main!(benches);
