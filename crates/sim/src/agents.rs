//! Agent state: workers with frustration/retention dynamics.
//!
//! The paper's central behavioural claims are: *"a crowdsourcing platform
//! that provides better transparency would generate less frustration among
//! workers and see better worker retention"* (§1) and that fairness level
//! shows up in *contribution quality* (§4.1). Since we simulate workers
//! instead of running the proposed user study, those claims become an
//! explicit, documented behavioural model:
//!
//! * every worker carries a **frustration** level in `[0, 1]`;
//! * unfair/opaque experiences raise it — unexplained rejections hurt
//!   more than explained ones, uncompensated interruption hurts most,
//!   reneged bonuses hurt, and *operating in the dark* (low disclosure
//!   coverage) adds a per-session anxiety term;
//! * frustration decays slowly and drives both the **quit hazard**
//!   (retention, E7) and **motivation** = 1 − frustration, which feeds the
//!   effective accuracy of good-faith workers (quality, E6).
//!
//! The constants are modelling choices, not paper constants (the paper
//! has none); E6/E7 read out the *shape* — monotone responses and
//! orderings — rather than absolute values.

use faircrowd_model::worker::Worker;
use faircrowd_quality::spam::WorkerArchetype;
use serde::{Deserialize, Serialize};

/// Frustration increments for each bad experience.
pub mod frustration {
    /// Rejection with no explanation (§3.1.2 requester opacity).
    pub const REJECTED_NO_FEEDBACK: f64 = 0.18;
    /// Rejection with an explanation.
    pub const REJECTED_WITH_FEEDBACK: f64 = 0.06;
    /// Interrupted mid-task without compensation (Axiom 5 violation).
    pub const INTERRUPTED_UNPAID: f64 = 0.25;
    /// Interrupted but compensated for invested time.
    pub const INTERRUPTED_PAID: f64 = 0.08;
    /// A promised bonus was not paid.
    pub const BONUS_RENEGED: f64 = 0.20;
    /// Per-session anxiety at a fully opaque platform (scaled by
    /// 1 − disclosure coverage).
    pub const OPACITY_PER_SESSION: f64 = 0.02;
    /// Multiplicative decay per round.
    pub const DECAY: f64 = 0.995;
    /// Frustration below this never causes quitting.
    pub const QUIT_KNEE: f64 = 0.5;
    /// Slope of the quit hazard above the knee.
    pub const QUIT_SLOPE: f64 = 0.45;
    /// Baseline natural churn per session, independent of treatment.
    pub const NATURAL_CHURN: f64 = 0.0005;
}

/// A worker's live state inside the simulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerState {
    /// The platform-visible worker record.
    pub worker: Worker,
    /// Ground-truth behavioural archetype.
    pub archetype: WorkerArchetype,
    /// Intrinsic accuracy before motivation effects.
    pub base_accuracy: f64,
    /// Probability of being online each round.
    pub participation: f64,
    /// Tasks acceptable per round.
    pub capacity_per_round: u32,
    /// Current frustration in `[0, 1]`.
    pub frustration: f64,
    /// Has the worker quit for good?
    pub quit: bool,
    /// Is the worker in a session this round?
    pub online: bool,
    /// Total seconds of work performed (for wage statistics).
    pub seconds_worked: u64,
    /// Whether the first-session disclosures were already shown.
    pub disclosures_shown: bool,
}

impl WorkerState {
    /// Wrap a worker record with behavioural state.
    pub fn new(
        worker: Worker,
        archetype: WorkerArchetype,
        base_accuracy: f64,
        participation: f64,
        capacity_per_round: u32,
    ) -> Self {
        WorkerState {
            worker,
            archetype,
            base_accuracy,
            participation,
            capacity_per_round,
            frustration: 0.0,
            quit: false,
            online: false,
            seconds_worked: 0,
            disclosures_shown: false,
        }
    }

    /// Motivation = 1 − frustration.
    pub fn motivation(&self) -> f64 {
        (1.0 - self.frustration).clamp(0.0, 1.0)
    }

    /// Register a bad experience.
    pub fn add_frustration(&mut self, amount: f64) {
        self.frustration = (self.frustration + amount).clamp(0.0, 1.0);
    }

    /// Per-round decay.
    pub fn decay_frustration(&mut self) {
        self.frustration *= frustration::DECAY;
    }

    /// Probability of quitting at the end of a session: a hinge on
    /// frustration plus natural churn.
    pub fn quit_hazard(&self) -> f64 {
        let f = self.frustration;
        let hinge = (f - frustration::QUIT_KNEE).max(0.0) * frustration::QUIT_SLOPE;
        (hinge + frustration::NATURAL_CHURN).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircrowd_model::attributes::DeclaredAttrs;
    use faircrowd_model::ids::WorkerId;
    use faircrowd_model::skills::SkillVector;

    fn state() -> WorkerState {
        WorkerState::new(
            Worker::new(
                WorkerId::new(0),
                DeclaredAttrs::new(),
                SkillVector::with_len(4),
            ),
            WorkerArchetype::Diligent,
            0.9,
            0.8,
            4,
        )
    }

    #[test]
    fn fresh_worker_is_content() {
        let s = state();
        assert_eq!(s.frustration, 0.0);
        assert_eq!(s.motivation(), 1.0);
        assert!(s.quit_hazard() < 0.001 + 1e-9);
        assert!(!s.quit);
    }

    #[test]
    fn frustration_accumulates_and_clamps() {
        let mut s = state();
        for _ in 0..10 {
            s.add_frustration(frustration::INTERRUPTED_UNPAID);
        }
        assert_eq!(s.frustration, 1.0);
        assert_eq!(s.motivation(), 0.0);
    }

    #[test]
    fn hazard_is_zero_below_knee_and_grows_above() {
        let mut s = state();
        s.frustration = 0.3;
        assert!(s.quit_hazard() < 0.001);
        s.frustration = 0.8;
        let h_mid = s.quit_hazard();
        s.frustration = 1.0;
        let h_max = s.quit_hazard();
        assert!(h_mid > 0.1);
        assert!(h_max > h_mid);
    }

    #[test]
    fn decay_reduces_frustration() {
        let mut s = state();
        s.frustration = 0.5;
        for _ in 0..100 {
            s.decay_frustration();
        }
        assert!(s.frustration < 0.5 && s.frustration > 0.25);
    }

    #[test]
    fn feedback_softens_rejection() {
        // model-shape guards: if someone retunes the constants, the
        // qualitative ordering the experiments rely on must survive
        let no_fb = frustration::REJECTED_NO_FEEDBACK;
        let with_fb = frustration::REJECTED_WITH_FEEDBACK;
        let (unpaid, paid) = (
            frustration::INTERRUPTED_UNPAID,
            frustration::INTERRUPTED_PAID,
        );
        assert!(no_fb > 2.0 * with_fb);
        assert!(unpaid > paid);
    }
}
