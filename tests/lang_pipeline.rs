//! Language-pipeline integration and property tests: generated TPL
//! sources compile to exactly the grants they denote, the catalog stays
//! coherent with the audit engine, and diagnostics point at real spans.

use faircrowd::lang::{catalog, compare, compile, compile_one, render};
use faircrowd::model::disclosure::{Audience, DisclosureItem};
use proptest::prelude::*;

#[test]
fn catalog_policies_audit_consistently() {
    // A simulated platform configured by a TPL catalog policy must audit
    // at exactly the coverage the policy promises: catalog → scenario →
    // Pipeline → A7 score.
    use faircrowd::core::AxiomId;
    use faircrowd::model::task::TaskConditions;
    use faircrowd::prelude::*;

    for name in ["amt", "crowdflower", "faircrowd-full"] {
        let policy = catalog::get(name).expect("catalog policy");
        let expected = policy.disclosure_set().axiom7_coverage();
        let mut cfg = ScenarioConfig {
            seed: 77,
            rounds: 12,
            workers: vec![WorkerPopulation::diligent(8)],
            campaigns: vec![CampaignSpec::labeling("acme", 10, 10)],
            disclosure: policy.disclosure_set(),
            ..Default::default()
        };
        for c in &mut cfg.campaigns {
            c.conditions = TaskConditions::default();
        }
        let result = Pipeline::new()
            .scenario(cfg)
            .axioms(&[AxiomId::A7PlatformTransparency])
            .run()
            .expect("catalog-configured market runs");
        let a7 = result
            .baseline
            .report
            .score_of(AxiomId::A7PlatformTransparency);
        assert!(
            (a7 - expected).abs() < 1e-9,
            "{name}: audit saw {a7:.3}, policy promises {expected:.3}"
        );
    }
}

#[test]
fn error_spans_point_into_the_source() {
    let source = r#"policy "p" {
    disclose worker.acceptance_ratio to subject;
    disclose task.rating to nobody_home;
}"#;
    let err = compile(source).unwrap_err();
    let span = err.span.expect("check errors carry spans");
    assert_eq!(&source[span.start..span.end], "nobody_home");
    let (line, text, _col) = err.context.expect("context extracted");
    assert_eq!(line, 3);
    assert!(text.contains("nobody_home"));
}

#[test]
fn render_and_compare_compose() {
    let policies = catalog::compile_all().unwrap();
    for a in &policies {
        // rendering never panics and mentions each rule
        let text = render::render_policy(a);
        assert!(text.lines().count() >= a.rule_count().min(1));
        for b in &policies {
            let cmp = compare(a, b);
            let sim = cmp.grant_similarity();
            assert!((0.0..=1.0).contains(&sim));
            if a.name == b.name {
                assert!((sim - 1.0).abs() < 1e-12);
            }
            // comparison is symmetric up to side swap
            let rev = compare(b, a);
            assert_eq!(cmp.shared.len(), rev.shared.len());
            assert_eq!(cmp.only_left.len(), rev.only_right.len());
        }
    }
}

/// Strategy: a random set of (item, audience) disclose rules.
fn rules_strategy() -> impl Strategy<Value = Vec<(DisclosureItem, Audience)>> {
    let item = prop::sample::select(DisclosureItem::ALL.to_vec());
    let audience = prop::sample::select(vec![
        Audience::Public,
        Audience::Workers,
        Audience::Requesters,
        Audience::Subject,
    ]);
    prop::collection::vec((item, audience), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated sources compile, and the compiled grant set allows
    /// exactly what the rules said (with Public subsuming everyone).
    #[test]
    fn generated_policies_compile_to_their_grants(rules in rules_strategy()) {
        let mut source = String::from("policy \"generated\" {\n");
        for (item, audience) in &rules {
            source.push_str(&format!(
                "    disclose {} to {};\n",
                item.name(),
                audience.name()
            ));
        }
        source.push('}');
        let policy = compile_one(&source).expect("generated policy compiles");
        let set = policy.disclosure_set();
        for (item, audience) in &rules {
            prop_assert!(
                set.allows(*item, *audience),
                "{} to {} lost in compilation",
                item.name(),
                audience.name()
            );
        }
        // and nothing leaks to Public unless granted to Public
        for item in DisclosureItem::ALL {
            let granted_public = rules
                .iter()
                .any(|(i, a)| *i == item && *a == Audience::Public);
            prop_assert_eq!(set.allows(item, Audience::Public), granted_public);
        }
    }

    /// Round-trip law: compile(print(p)) has the same rules and grants.
    #[test]
    fn print_compile_roundtrip(rules in rules_strategy()) {
        let mut source = String::from("policy \"generated\" {\n");
        for (item, audience) in &rules {
            source.push_str(&format!(
                "    disclose {} to {};\n",
                item.name(),
                audience.name()
            ));
        }
        source.push('}');
        let policy = compile_one(&source).unwrap();
        let printed = faircrowd::lang::printer::print_policy(&policy);
        let reparsed = compile_one(&printed).expect("printed policy re-compiles");
        prop_assert_eq!(&policy.rules, &reparsed.rules);
        prop_assert_eq!(policy.disclosure_set(), reparsed.disclosure_set());
    }

    /// Rendering a generated policy produces one sentence per rule.
    #[test]
    fn rendering_is_total(rules in rules_strategy()) {
        let mut source = String::from("policy \"generated\" {\n");
        for (item, audience) in &rules {
            source.push_str(&format!(
                "    disclose {} to {};\n",
                item.name(),
                audience.name()
            ));
        }
        source.push('}');
        let policy = compile_one(&source).unwrap();
        let text = render::render_policy(&policy);
        if rules.is_empty() {
            prop_assert!(text.contains("discloses nothing"));
        } else {
            prop_assert_eq!(text.lines().count(), rules.len() + 1);
        }
    }
}
