//! P4 — Transparency-language pipeline cost.
//!
//! Criterion micro-benchmark: lexing+parsing+checking the largest catalog
//! policy, rendering it to human-readable text, computing its disclosure
//! set, and comparing two policies. Policies must be cheap enough to
//! evaluate on every page load; this bench demonstrates they are.

use criterion::{criterion_group, criterion_main, Criterion};
use faircrowd_lang::{catalog, compare, compile, render};
use faircrowd_model::similarity::SimilarityConfig;
use faircrowd_model::skills::SkillVector;
use faircrowd_model::text::ngram_cosine;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let source = catalog::FAIRCROWD_FULL;
    let policy = faircrowd_lang::compile_one(source).unwrap();
    let other = catalog::by_name("crowdflower").unwrap();
    let mut group = c.benchmark_group("tpl");
    group.bench_function("compile_faircrowd_full", |b| {
        b.iter(|| black_box(compile(black_box(source)).unwrap()))
    });
    group.bench_function("render_policy", |b| {
        b.iter(|| black_box(render::render_policy(black_box(&policy))))
    });
    group.bench_function("disclosure_set", |b| {
        b.iter(|| black_box(black_box(&policy).disclosure_set()))
    });
    group.bench_function("compare_policies", |b| {
        b.iter(|| black_box(compare(black_box(&policy), black_box(&other))))
    });
    group.finish();
}

fn bench_similarity_kernels(c: &mut Criterion) {
    // The similarity kernels the axioms hammer: 256-bit skill cosine and
    // trigram text cosine on realistic contribution sizes.
    let a = SkillVector::from_bools((0..256).map(|i| i % 3 == 0));
    let b = SkillVector::from_bools((0..256).map(|i| i % 5 == 0));
    let text_a = "the committee approved the annual budget proposal after a long debate \
                  about infrastructure spending priorities for the coming fiscal year";
    let text_b = "the committee approved an annual budget proposal after long debates \
                  about infrastructure spending priorities for the next fiscal year";
    let cfg = SimilarityConfig::default();
    let mut group = c.benchmark_group("similarity_kernels");
    group.bench_function("skill_cosine_256", |b_| {
        b_.iter(|| black_box(black_box(&a).cosine(black_box(&b))))
    });
    group.bench_function("skill_measure_dispatch", |b_| {
        b_.iter(|| black_box(cfg.skill_measure.score(black_box(&a), black_box(&b))))
    });
    group.bench_function("trigram_cosine_140chars", |b_| {
        b_.iter(|| black_box(ngram_cosine(black_box(text_a), black_box(text_b), 3)))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_similarity_kernels);
criterion_main!(benches);
