//! Trace files: write, load, validate — the audit-external-logs path.
//!
//! The paper's transparency tools run over *recorded* platform logs, so
//! the audit engine must accept traces that did not come from the
//! in-process simulator. This module is that boundary: it writes a
//! [`Trace`] in the versioned schema of
//! [`faircrowd_model::trace_io`] and loads one back through three
//! gates, each reporting a [`FaircrowdError`] (never a panic):
//!
//! 1. **Parse** — malformed or truncated JSON/JSONL names the byte or
//!    line where it broke ([`FaircrowdError::Persist`]);
//! 2. **Schema** — a wrong schema name or an unsupported version is
//!    rejected before any record is decoded;
//! 3. **Referential integrity** — [`Trace::ensure_valid`] runs over the
//!    decoded trace, so dangling worker/task/submission ids and a
//!    tampered event log surface as [`FaircrowdError::InvalidTrace`]
//!    with every problem listed.
//!
//! Formats: [`TraceFormat::Json`] is one pretty-printed object (easy to
//! read and diff); [`TraceFormat::Jsonl`] is a header line plus one
//! compact record per line (what a platform would append into);
//! [`TraceFormat::Binary`] is the varint-packed `.fcb` form of
//! [`faircrowd_model::trace_bin`] (same schema version, decodes at
//! memory speed). [`save`] picks by file extension (`.jsonl`, `.fcb`,
//! anything else → JSON); [`load`] sniffs the content, so every format
//! loads from any path.
//!
//! ```
//! use faircrowd_core::persist;
//! use faircrowd_model::trace::Trace;
//!
//! let trace = Trace::default();
//! let text = persist::encode(&trace, persist::TraceFormat::Jsonl);
//! let back = persist::decode(&text)?;
//! assert_eq!(back, trace);
//! let bytes = persist::encode_bytes(&trace, persist::TraceFormat::Binary);
//! assert_eq!(persist::decode_bytes(&bytes)?, trace);
//! # Ok::<(), faircrowd_model::FaircrowdError>(())
//! ```

use faircrowd_model::error::FaircrowdError;
use faircrowd_model::json::Json;
use faircrowd_model::trace::Trace;
use faircrowd_model::trace_bin;
use faircrowd_model::trace_io;
use std::path::Path;

/// The three encodings of the versioned trace schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One pretty-printed JSON object.
    Json,
    /// A schema header line followed by one compact record per line.
    Jsonl,
    /// The length-prefixed binary form (`.fcb`).
    Binary,
}

impl TraceFormat {
    /// The format implied by a path: `.jsonl` means JSONL, `.fcb` means
    /// binary, anything else (including no extension) means whole-file
    /// JSON.
    pub fn for_path(path: &Path) -> TraceFormat {
        match path.extension().and_then(|e| e.to_str()) {
            Some("jsonl") => TraceFormat::Jsonl,
            Some("fcb") => TraceFormat::Binary,
            _ => TraceFormat::Json,
        }
    }
}

/// Encode a trace to a string in the given **text** format.
///
/// # Panics
///
/// Panics on [`TraceFormat::Binary`] — a binary trace is not text; use
/// [`encode_bytes`], which handles all three formats.
pub fn encode(trace: &Trace, format: TraceFormat) -> String {
    match format {
        TraceFormat::Json => {
            let mut text = trace_io::trace_to_json(trace).to_pretty();
            text.push('\n');
            text
        }
        TraceFormat::Jsonl => trace_io::trace_to_jsonl(trace),
        TraceFormat::Binary => {
            panic!("binary traces have no text form; use persist::encode_bytes")
        }
    }
}

/// Encode a trace to bytes in any format (the text formats are their
/// UTF-8 bytes).
pub fn encode_bytes(trace: &Trace, format: TraceFormat) -> Vec<u8> {
    match format {
        TraceFormat::Json | TraceFormat::Jsonl => encode(trace, format).into_bytes(),
        TraceFormat::Binary => trace_bin::trace_to_bytes(trace),
    }
}

/// Decode a trace from a string, sniffing the format from the content:
/// a first line that is a complete JSON object carrying
/// `"format": "jsonl"` selects the JSONL reader, anything else is read
/// as one whole-file JSON object. Schema name/version are checked;
/// referential integrity is **not** (see [`load`], which is the path
/// untrusted files come through).
pub fn decode(text: &str) -> Result<Trace, FaircrowdError> {
    if sniff_jsonl(text) {
        return trace_io::trace_from_jsonl(text);
    }
    let json = Json::parse(text).map_err(FaircrowdError::persist)?;
    trace_io::trace_from_json(&json)
}

/// Decode a trace from raw file bytes, sniffing the format from the
/// content: the `.fcb` magic selects the binary decoder; anything else
/// must be UTF-8 text and goes through [`decode`]'s JSON/JSONL sniff.
/// Schema name/version are checked; referential integrity is **not**
/// (see [`load`], which is the path untrusted files come through).
pub fn decode_bytes(bytes: &[u8]) -> Result<Trace, FaircrowdError> {
    if trace_bin::sniff_binary(bytes) {
        return trace_bin::trace_from_bytes(bytes);
    }
    let text = std::str::from_utf8(bytes).map_err(|e| {
        FaircrowdError::persist(format!(
            "trace file is neither a binary trace nor UTF-8 text (invalid byte at offset {})",
            e.valid_up_to()
        ))
    })?;
    decode(text)
}

/// Does the first non-empty line look like a complete JSONL header?
fn sniff_jsonl(text: &str) -> bool {
    let Some(first) = text.lines().find(|l| !l.trim().is_empty()) else {
        return false;
    };
    match Json::parse(first) {
        Ok(header) => header.get("format").and_then(Json::as_str) == Some("jsonl"),
        Err(_) => false,
    }
}

/// Write a trace to `path` in the format implied by its extension
/// (`.jsonl` → JSONL, `.fcb` → binary, else JSON). I/O failures carry
/// the path.
pub fn save(trace: &Trace, path: impl AsRef<Path>) -> Result<(), FaircrowdError> {
    let path = path.as_ref();
    let bytes = encode_bytes(trace, TraceFormat::for_path(path));
    std::fs::write(path, bytes).map_err(|e| FaircrowdError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

/// Load and **validate** a trace from `path`: read, sniff the format,
/// decode under the schema-version check, then run the referential
/// integrity pass ([`Trace::ensure_valid`]). Every failure mode is a
/// descriptive [`FaircrowdError`] carrying the path — truncated files,
/// wrong schema versions and dangling ids never panic.
pub fn load(path: impl AsRef<Path>) -> Result<Trace, FaircrowdError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| FaircrowdError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    let trace = decode_bytes(&bytes).map_err(|e| e.at_path(path.display()))?;
    trace.ensure_valid()?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircrowd_model::attributes::DeclaredAttrs;
    use faircrowd_model::contribution::{Contribution, Submission};
    use faircrowd_model::event::EventKind;
    use faircrowd_model::ids::{RequesterId, SubmissionId, TaskId, WorkerId};
    use faircrowd_model::money::Credits;
    use faircrowd_model::requester::Requester;
    use faircrowd_model::skills::SkillVector;
    use faircrowd_model::task::TaskBuilder;
    use faircrowd_model::time::SimTime;
    use faircrowd_model::worker::Worker;

    fn small_trace() -> Trace {
        let mut trace = Trace::default();
        trace.workers.push(Worker::new(
            WorkerId::new(0),
            DeclaredAttrs::new(),
            SkillVector::with_len(2),
        ));
        trace
            .requesters
            .push(Requester::new(RequesterId::new(0), "acme"));
        trace.tasks.push(
            TaskBuilder::new(
                TaskId::new(0),
                RequesterId::new(0),
                SkillVector::with_len(2),
                Credits::from_cents(10),
            )
            .build(),
        );
        trace.submissions.push(Submission {
            id: SubmissionId::new(0),
            task: TaskId::new(0),
            worker: WorkerId::new(0),
            contribution: Contribution::Label(1),
            started_at: SimTime::from_secs(5),
            submitted_at: SimTime::from_secs(65),
        });
        trace.events.push(
            SimTime::from_secs(70),
            EventKind::PaymentIssued {
                submission: SubmissionId::new(0),
                task: TaskId::new(0),
                worker: WorkerId::new(0),
                amount: Credits::from_cents(10),
            },
        );
        trace.horizon = SimTime::from_secs(100);
        trace
    }

    #[test]
    fn save_load_roundtrips_both_formats() {
        let trace = small_trace();
        let dir = std::env::temp_dir();
        for name in [
            "fc_persist_test.trace.json",
            "fc_persist_test.trace.jsonl",
            "fc_persist_test.trace.fcb",
        ] {
            let path = dir.join(name);
            save(&trace, &path).unwrap();
            assert_eq!(load(&path).unwrap(), trace, "{name}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn decode_sniffs_any_format_regardless_of_extension() {
        let trace = small_trace();
        assert_eq!(decode(&encode(&trace, TraceFormat::Json)).unwrap(), trace);
        assert_eq!(decode(&encode(&trace, TraceFormat::Jsonl)).unwrap(), trace);
        for format in [TraceFormat::Json, TraceFormat::Jsonl, TraceFormat::Binary] {
            assert_eq!(
                decode_bytes(&encode_bytes(&trace, format)).unwrap(),
                trace,
                "{format:?}"
            );
        }
    }

    #[test]
    fn non_utf8_non_binary_bytes_are_a_persist_error() {
        let err = decode_bytes(&[0xff, 0xfe, 0x00, 0x41]).unwrap_err();
        assert!(matches!(err, FaircrowdError::Persist { .. }), "{err:?}");
        assert!(
            err.to_string().contains("neither a binary trace nor UTF-8"),
            "{err}"
        );
    }

    #[test]
    #[should_panic(expected = "use persist::encode_bytes")]
    fn text_encode_of_binary_panics_with_guidance() {
        encode(&Trace::default(), TraceFormat::Binary);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load("/nonexistent/fc_no_such_dir/trace.json").unwrap_err();
        assert!(matches!(err, FaircrowdError::Io { .. }), "{err:?}");
        assert!(err.to_string().contains("fc_no_such_dir"), "{err}");
    }

    #[test]
    fn format_for_path() {
        assert_eq!(
            TraceFormat::for_path(Path::new("a/b/t.jsonl")),
            TraceFormat::Jsonl
        );
        assert_eq!(
            TraceFormat::for_path(Path::new("a/b/t.json")),
            TraceFormat::Json
        );
        assert_eq!(
            TraceFormat::for_path(Path::new("a/b/t.fcb")),
            TraceFormat::Binary
        );
        assert_eq!(TraceFormat::for_path(Path::new("bare")), TraceFormat::Json);
    }
}
