//! Property tests for reward splitting and wage statistics — the money
//! paths where a single lost millicent would make audits lie.

use faircrowd_model::money::Credits;
use faircrowd_model::time::SimDuration;
use faircrowd_pay::scheme::{
    split_equal, split_proportional, CompensationScheme, PayContext, QualityBased,
};
use faircrowd_pay::wage::{hourly_wage, WageStats};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn proportional_split_is_exact_for_any_weights(
        total in 0i64..5_000_000,
        weights in prop::collection::vec(0.0f64..100.0, 1..20),
    ) {
        let total = Credits::from_millicents(total);
        let shares = split_proportional(total, &weights);
        prop_assert_eq!(shares.len(), weights.len());
        prop_assert_eq!(shares.iter().copied().sum::<Credits>(), total);
        prop_assert!(shares.iter().all(|s| s.millicents() >= 0));
    }

    #[test]
    fn proportional_split_orders_by_weight(
        total in 1000i64..1_000_000,
        w_small in 0.1f64..5.0,
        delta in 0.5f64..5.0,
    ) {
        let total = Credits::from_millicents(total);
        let shares = split_proportional(total, &[w_small, w_small + delta]);
        prop_assert!(
            shares[0] <= shares[1],
            "heavier weight must never earn less: {shares:?}"
        );
    }

    #[test]
    fn equal_split_equals_uniform_proportional(
        total in 0i64..1_000_000,
        n in 1usize..15,
    ) {
        let total = Credits::from_millicents(total);
        let equal = split_equal(total, n);
        let uniform = split_proportional(total, &vec![1.0; n]);
        // both are exact and maximally even; totals must agree and the
        // per-share spread of each stays within one millicent
        prop_assert_eq!(
            equal.iter().copied().sum::<Credits>(),
            uniform.iter().copied().sum::<Credits>()
        );
        for shares in [&equal, &uniform] {
            let max = shares.iter().map(|c| c.millicents()).max().unwrap();
            let min = shares.iter().map(|c| c.millicents()).min().unwrap();
            prop_assert!(max - min <= 1);
        }
    }

    #[test]
    fn quality_ramp_is_monotone_and_bounded(
        reward in 0i64..100_000,
        floor in 0.0f64..0.9,
        width in 0.01f64..0.5,
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let scheme = QualityBased {
            floor,
            full_quality: (floor + width).min(1.0),
        };
        let ctx = |q: f64| PayContext {
            task_reward: Credits::from_millicents(reward),
            quality: q,
            work_duration: SimDuration::from_mins(5),
        };
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let pay_lo = scheme.payout(&ctx(lo));
        let pay_hi = scheme.payout(&ctx(hi));
        prop_assert!(pay_lo <= pay_hi, "quality pay must be monotone");
        prop_assert!(pay_hi <= Credits::from_millicents(reward));
        prop_assert!(pay_lo >= Credits::ZERO);
    }

    #[test]
    fn hourly_wage_scales_linearly(
        earned in 0i64..1_000_000,
        minutes in 1u64..600,
    ) {
        let earned = Credits::from_millicents(earned);
        let wage = hourly_wage(earned, SimDuration::from_mins(minutes)).unwrap();
        // double the time, (about) half the wage — exact up to rounding
        let half = hourly_wage(earned, SimDuration::from_mins(minutes * 2)).unwrap();
        let expect = wage.millicents() / 2;
        prop_assert!((half.millicents() - expect).abs() <= 1);
    }

    #[test]
    fn hourly_wage_is_the_exactly_rounded_quotient(
        earned in -1_000_000_000i64..1_000_000_000,
        secs in 1u64..1_000_000,
    ) {
        // The division must be exactly rounded: |wage·secs − earned·3600|
        // can never exceed half the divisor. The old f64-reciprocal path
        // violated this (double rounding).
        let wage = hourly_wage(Credits::from_millicents(earned), SimDuration::from_secs(secs))
            .unwrap();
        let residue = i128::from(wage.millicents()) * i128::from(secs)
            - i128::from(earned) * 3600;
        prop_assert!(
            2 * residue.abs() <= i128::from(secs),
            "not exactly rounded: wage {wage:?}, residue {residue}"
        );
    }

    #[test]
    fn wage_times_time_roundtrips_within_one_millicent(
        earned in 0i64..5_000_000,
        minutes in 1u64..61,
    ) {
        // Up to an hour of work, wage × time reconstructs the earnings
        // to within one millicent.
        let worked = SimDuration::from_mins(minutes);
        let wage = hourly_wage(Credits::from_millicents(earned), worked).unwrap();
        let back = (i128::from(wage.millicents()) * i128::from(worked.as_secs()) + 1800) / 3600;
        prop_assert!(
            (back - i128::from(earned)).abs() <= 1,
            "wage {wage:?} × {minutes}min reconstructs {back}, expected ≈{earned}"
        );
    }

    #[test]
    fn wage_stats_are_bounded_and_consistent(
        wages in prop::collection::vec(0i64..10_000_000, 0..30),
    ) {
        let wages: Vec<Credits> = wages.into_iter().map(Credits::from_millicents).collect();
        match WageStats::from_wages(&wages) {
            // An empty distribution has no statistics — in particular it
            // no longer reports gini 0 / jain 1 ("perfect fairness").
            None => prop_assert!(wages.is_empty()),
            Some(s) => {
                prop_assert_eq!(s.n, wages.len());
                prop_assert!((0.0..=1.0).contains(&s.gini));
                prop_assert!(s.jain > 0.0 && s.jain <= 1.0 + 1e-9);
                prop_assert!(s.p10 <= s.median + 1e-9);
                prop_assert!(s.median <= s.p90 + 1e-9);
                prop_assert!(s.min() <= s.mean + 1e-9);
            }
        }
    }
}

/// Tiny extension trait so the property above reads naturally.
trait MinOfStats {
    fn min(&self) -> f64;
}
impl MinOfStats for WageStats {
    fn min(&self) -> f64 {
        self.p10.min(self.median)
    }
}
