//! E7 — Worker retention as a function of transparency.
//!
//! Paper source: §1 ("a crowdsourcing platform that provides better
//! transparency would generate less frustration among workers and see
//! better worker retention") and §4.1 (retention as the objective measure
//! for transparency).
//!
//! The same imperfect-but-ordinary market (some rejections, no feedback
//! lever tied to the treatment) runs under increasing disclosure
//! coverage, from fully opaque to the catalog's fair-by-design policy.
//! The series is the paper's proposed controlled experiment: disclosure
//! coverage in, retention out.

use faircrowd_bench::{banner, f2, f3, mean, run_seeds, TextTable};
use faircrowd_core::{metrics, AuditEngine, AxiomId, TraceIndex};
use faircrowd_lang::catalog;
use faircrowd_model::disclosure::{Audience, DisclosureItem, DisclosureSet};
use faircrowd_model::event::{EventKind, QuitReason};
use faircrowd_quality::spam::WorkerArchetype;
use faircrowd_sim::{ApprovalPolicy, CampaignSpec, PolicyChoice, ScenarioConfig, WorkerPopulation};

fn market(seed: u64, disclosure: DisclosureSet) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        rounds: 120,
        n_skills: 0,
        workers: vec![
            WorkerPopulation::diligent(40),
            WorkerPopulation::of(WorkerArchetype::Sloppy, 8),
        ],
        campaigns: vec![CampaignSpec {
            assignments_per_task: 3,
            // task-level conditions are opaque so Axiom 6 coverage comes
            // entirely from the platform treatment under test
            conditions: faircrowd_model::task::TaskConditions::default(),
            ..CampaignSpec::labeling("acme", 400, 10)
        }],
        policy: PolicyChoice::SelfSelection,
        disclosure,
        // an ordinary imperfect requester: real rejections, no feedback —
        // the frustration source transparency has to compensate for
        approval: ApprovalPolicy::QualityThreshold {
            threshold: 0.55,
            noise: 0.15,
            give_feedback: false,
        },
        ..Default::default()
    }
}

/// Disclosure sets of increasing coverage: 0%, ~25%, ~50%, ~75%, 100% of
/// the Axiom-6/7 items, plus the TPL catalog's platform policies.
fn treatments() -> Vec<(String, DisclosureSet)> {
    let all: Vec<DisclosureItem> = DisclosureItem::AXIOM6_REQUIRED
        .into_iter()
        .chain(DisclosureItem::AXIOM7_REQUIRED)
        .collect();
    let graded = |fraction: f64| -> DisclosureSet {
        let n = (all.len() as f64 * fraction).round() as usize;
        let mut set = DisclosureSet::opaque();
        for item in all.iter().take(n) {
            set.grant(*item, Audience::Workers);
        }
        set
    };
    let mut out = vec![
        ("opaque (0%)".to_owned(), DisclosureSet::opaque()),
        ("low (25%)".to_owned(), graded(0.25)),
        ("half (50%)".to_owned(), graded(0.5)),
        ("high (75%)".to_owned(), graded(0.75)),
        ("full (100%)".to_owned(), DisclosureSet::fully_transparent()),
    ];
    for name in ["amt", "amt+turkopticon", "crowdflower", "faircrowd-full"] {
        let policy = catalog::by_name(name).expect("catalog policy");
        out.push((format!("tpl:{name}"), policy.disclosure_set()));
    }
    out
}

fn main() {
    banner(
        "E7",
        "worker retention vs disclosure coverage",
        "paper §1 transparency→retention claim; §4.1 retention measure; Axioms 6-7",
    );

    let engine = AuditEngine::with_defaults();
    let mut table = TextTable::new([
        "treatment",
        "A6",
        "A7",
        "retention",
        "frustration-quits",
        "sessions/worker",
    ])
    .numeric();

    for (label, disclosure) in treatments() {
        let traces = run_seeds(|seed| market(seed, disclosure.clone()));
        let indexes: Vec<TraceIndex> = traces.iter().map(TraceIndex::new).collect();
        let a6 = mean(indexes.iter().map(|ix| {
            engine
                .run_indexed(ix, &[AxiomId::A6RequesterTransparency])
                .score_of(AxiomId::A6RequesterTransparency)
        }));
        let a7 = mean(indexes.iter().map(|ix| {
            engine
                .run_indexed(ix, &[AxiomId::A7PlatformTransparency])
                .score_of(AxiomId::A7PlatformTransparency)
        }));
        let retention = mean(indexes.iter().map(metrics::retention));
        let frustration_quits = mean(traces.iter().map(|t| {
            t.events.count_where(|k| {
                matches!(
                    k,
                    EventKind::WorkerQuit {
                        reason: QuitReason::Frustration,
                        ..
                    }
                )
            }) as f64
        }));
        let sessions = mean(traces.iter().map(|t| {
            t.events
                .count_where(|k| matches!(k, EventKind::SessionStarted { .. })) as f64
                / t.workers.len() as f64
        }));
        table.row([
            label,
            f3(a6),
            f3(a7),
            f3(retention),
            f2(frustration_quits),
            f2(sessions),
        ]);
    }

    print!("{}", table.render());
    println!(
        "\nreading: retention rises monotonically with disclosure coverage \
         (the paper's §1 claim, reproduced under the documented frustration \
         model); the TPL rows place real platforms on the same scale — stock \
         AMT near the opaque end, the fair-by-design policy at the top."
    );
}
