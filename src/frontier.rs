//! The policy frontier: quality/fairness Pareto analysis over a
//! policy × aggregator × enforcement grid.
//!
//! The paper's central claim is that fairness interventions are not
//! free — exposure parity, wage floors and parity-constrained
//! aggregation each trade label quality or requester cost for worker
//! fairness. This module makes the trade-off *chartable*: it runs a
//! [`SweepGrid`] whose interesting axes are the assignment policy, the
//! consensus aggregator and the enforcement stack, scores every cell
//! on three objectives —
//!
//! * **quality** ↑ — consensus accuracy against the simulator's gold
//!   labels ([`crate::sweep::consensus_accuracy`]; undecided tasks
//!   count as wrong, so withdrawn coverage is paid for);
//! * **wage Gini** ↓ — earnings inequality across workers;
//! * **violations** ↓ — total axiom violations from the audit;
//!
//! — and extracts the **Pareto-dominant set**: the cells no other cell
//! beats on every objective at once. Everything downstream of
//! [`run_grid_observed`] is deterministic (same table for any
//! `--jobs`), so the frontier is too.
//!
//! Cells that lack a measurement (no labeling ground truth, or no paid
//! wages) are listed but never *on* the frontier and never dominate —
//! the frontier charts measured trade-offs, not fabricated ones.
//!
//! ```
//! use faircrowd::frontier;
//!
//! let grid = frontier::frontier_grid("policy=round_robin,kos;aggregator=majority;\
//!                                     enforce=none;rounds=6")?;
//! let result = frontier::run_frontier(&grid, 2)?;
//! // One frontier point per sweep cell: 2 policies × 1 aggregator × 1 stack.
//! assert_eq!(result.points.len(), result.sweep.groups.len());
//! assert_eq!(result.points.len(), 2);
//! assert!(!result.frontier().is_empty());
//! # Ok::<(), faircrowd::FaircrowdError>(())
//! ```

use crate::core::report::TextTable;
use crate::model::FaircrowdError;
use crate::pipeline::Enforcement;
use crate::sweep::{run_grid_observed, CellHook, SweepGrid, SweepResult};
use faircrowd_assign::registry;
use std::fmt::Write as _;

/// Parse a grid spec for a frontier run: the same `axis=value;…`
/// grammar as [`SweepGrid::parse`], with frontier defaults for the
/// axes left unset — **every** registry policy, **every** registered
/// aggregator, and the `none` vs `parity` enforcement contrast. (A
/// plain sweep defaults each of those axes to a single point instead.)
pub fn frontier_grid(spec: &str) -> Result<SweepGrid, FaircrowdError> {
    let mut grid = SweepGrid::parse(spec)?;
    if grid.policies.is_none() {
        grid.policies = Some(registry::NAMES.iter().map(|n| (*n).to_owned()).collect());
    }
    if grid.aggregators.is_none() {
        grid.aggregators = Some(
            crate::quality::aggregate::NAMES
                .iter()
                .map(|n| (*n).to_owned())
                .collect(),
        );
    }
    if grid.enforcements.is_none() {
        grid.enforcements = Some(vec![Vec::new(), vec![Enforcement::ExposureParity]]);
    }
    Ok(grid)
}

/// One grid cell as a point in objective space.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Scenario the cell ran.
    pub scenario: String,
    /// Effective policy label.
    pub policy: String,
    /// Effective aggregator label.
    pub aggregator: String,
    /// Enforcement-stack label.
    pub enforce: String,
    /// Scale factor.
    pub scale: f64,
    /// Consensus accuracy against gold (mean across seeds); `None`
    /// when no seed had labeling ground truth.
    pub quality: Option<f64>,
    /// Wage Gini (mean across seeds that paid wages); `None` when no
    /// seed paid for invested time.
    pub wage_gini: Option<f64>,
    /// Total axiom violations across the cell's seeds.
    pub violations: usize,
    /// Is this point in the Pareto-dominant set?
    pub on_frontier: bool,
}

impl FrontierPoint {
    /// Is every objective measured? Only measured points can dominate
    /// or sit on the frontier.
    pub fn measured(&self) -> bool {
        self.quality.is_some() && self.wage_gini.is_some()
    }

    /// Does `self` Pareto-dominate `other`: at least as good on every
    /// objective (quality ↑, Gini ↓, violations ↓) and strictly better
    /// on one? Unmeasured points neither dominate nor are compared.
    pub fn dominates(&self, other: &FrontierPoint) -> bool {
        let (Some(q1), Some(g1), Some(q2), Some(g2)) =
            (self.quality, self.wage_gini, other.quality, other.wage_gini)
        else {
            return false;
        };
        let no_worse = q1 >= q2 && g1 <= g2 && self.violations <= other.violations;
        let better = q1 > q2 || g1 < g2 || self.violations < other.violations;
        no_worse && better
    }
}

/// The frontier analysis of one grid: every cell as an objective-space
/// point (grid order), plus the underlying sweep for drill-down.
#[derive(Debug, Clone)]
pub struct FrontierResult {
    /// One point per sweep cell, in grid order, with frontier flags.
    pub points: Vec<FrontierPoint>,
    /// The sweep the points were scored from.
    pub sweep: SweepResult,
}

/// Run the frontier analysis: sweep the grid, score every cell,
/// extract the Pareto-dominant set. Deterministic for any `jobs`.
pub fn run_frontier(grid: &SweepGrid, jobs: usize) -> Result<FrontierResult, FaircrowdError> {
    run_frontier_observed(grid, jobs, None)
}

/// [`run_frontier`] with the sweep's per-cell completion hook (the
/// CLI's `--progress`). The hook observes; outputs are unchanged.
pub fn run_frontier_observed(
    grid: &SweepGrid,
    jobs: usize,
    on_done: CellHook<'_>,
) -> Result<FrontierResult, FaircrowdError> {
    let sweep = run_grid_observed(grid, jobs, true, on_done)?;
    let mut points: Vec<FrontierPoint> = sweep
        .groups
        .iter()
        .map(|g| FrontierPoint {
            scenario: g.scenario.clone(),
            policy: g.policy.clone(),
            aggregator: g.aggregator.clone(),
            enforce: g.enforce.clone(),
            scale: g.scale,
            quality: (g.consensus.n > 0).then_some(g.consensus.mean),
            wage_gini: (g.wage_mean.n > 0).then_some(g.wage_gini.mean),
            violations: g.aggregate.total_violations,
            on_frontier: false,
        })
        .collect();
    mark_frontier(&mut points);
    Ok(FrontierResult { points, sweep })
}

/// Flag the Pareto-dominant subset: measured points not dominated by
/// any other point. Order-independent (dominance is a property of the
/// point set), so the flags are deterministic in grid order.
pub fn mark_frontier(points: &mut [FrontierPoint]) {
    let snapshot = points.to_vec();
    for p in points.iter_mut() {
        p.on_frontier = p.measured() && !snapshot.iter().any(|q| q.dominates(p));
    }
}

impl FrontierResult {
    /// The Pareto-dominant points, in grid order.
    pub fn frontier(&self) -> Vec<&FrontierPoint> {
        self.points.iter().filter(|p| p.on_frontier).collect()
    }

    /// Render every point as an aligned table, frontier members marked
    /// `*` in the first column.
    pub fn render_table(&self) -> String {
        let mut table = TextTable::new([
            "pareto",
            "scenario",
            "policy",
            "aggregator",
            "enforce",
            "scale",
            "quality",
            "wage-gini",
            "violations",
        ])
        .numeric();
        let measure = |v: Option<f64>| match v {
            None => "-".to_owned(),
            Some(v) => format!("{v:.3}"),
        };
        for p in &self.points {
            table.row([
                if p.on_frontier { "*" } else { "" }.to_owned(),
                p.scenario.clone(),
                p.policy.clone(),
                p.aggregator.clone(),
                p.enforce.clone(),
                format!("{}", p.scale),
                measure(p.quality),
                measure(p.wage_gini),
                p.violations.to_string(),
            ]);
        }
        table.render()
    }

    /// Serialise the points (frontier flags included) as JSON. Like the
    /// sweep exports, a pure function of the grid — byte-identical for
    /// any worker count.
    pub fn to_json(&self) -> String {
        let measure = |v: Option<f64>| match v {
            None => "null".to_owned(),
            Some(v) if v.fract() == 0.0 && v.is_finite() => format!("{v:.1}"),
            Some(v) => format!("{v}"),
        };
        let mut out = String::from("{\n  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"scenario\": \"{}\", \"policy\": \"{}\", \"aggregator\": \"{}\", \
                 \"enforce\": \"{}\", \"scale\": {}, \"quality\": {}, \"wage_gini\": {}, \
                 \"violations\": {}, \"on_frontier\": {}}}",
                p.scenario,
                p.policy,
                p.aggregator,
                p.enforce,
                measure(Some(p.scale)),
                measure(p.quality),
                measure(p.wage_gini),
                p.violations,
                p.on_frontier,
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"frontier_size\": {}\n}}\n",
            self.points.iter().filter(|p| p.on_frontier).count()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(quality: Option<f64>, gini: Option<f64>, violations: usize) -> FrontierPoint {
        FrontierPoint {
            scenario: "baseline".into(),
            policy: "p".into(),
            aggregator: "majority".into(),
            enforce: "none".into(),
            scale: 1.0,
            quality,
            wage_gini: gini,
            violations,
            on_frontier: false,
        }
    }

    #[test]
    fn dominance_needs_strict_improvement_somewhere() {
        let a = point(Some(0.9), Some(0.2), 3);
        let b = point(Some(0.8), Some(0.2), 3);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "a point never dominates its equal");
        // Incomparable: each wins one objective.
        let c = point(Some(0.95), Some(0.5), 3);
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
    }

    #[test]
    fn unmeasured_points_never_dominate_or_join_the_frontier() {
        let mut points = vec![
            point(None, Some(0.0), 0),
            point(Some(1.0), None, 0),
            point(Some(0.5), Some(0.5), 9),
        ];
        mark_frontier(&mut points);
        assert!(!points[0].on_frontier);
        assert!(!points[1].on_frontier);
        assert!(points[2].on_frontier, "the only measured point survives");
    }

    #[test]
    fn frontier_keeps_exactly_the_undominated_set() {
        let mut points = vec![
            point(Some(0.9), Some(0.3), 2), // dominated by [2]
            point(Some(0.7), Some(0.1), 5), // frontier: best gini
            point(Some(0.9), Some(0.2), 1), // frontier: dominates [0]
            point(Some(0.6), Some(0.4), 9), // dominated by everything measured
        ];
        mark_frontier(&mut points);
        let flags: Vec<bool> = points.iter().map(|p| p.on_frontier).collect();
        assert_eq!(flags, vec![false, true, true, false]);
        // Ties survive together: duplicate an undominated point.
        let mut tied = vec![points[2].clone(), points[2].clone()];
        mark_frontier(&mut tied);
        assert!(tied[0].on_frontier && tied[1].on_frontier);
    }

    #[test]
    fn frontier_grid_fills_frontier_defaults_only_when_unset() {
        let grid = frontier_grid("rounds=6").unwrap();
        assert_eq!(
            grid.policies.as_deref().unwrap().len(),
            registry::NAMES.len()
        );
        assert_eq!(
            grid.aggregators.as_deref().unwrap().len(),
            crate::quality::aggregate::NAMES.len()
        );
        assert_eq!(grid.enforcements.as_deref().unwrap().len(), 2);
        let grid = frontier_grid("policy=kos;aggregator=majority;enforce=none;rounds=6").unwrap();
        assert_eq!(grid.policies.as_deref().unwrap(), ["kos"]);
        assert_eq!(grid.aggregators.as_deref().unwrap(), ["majority"]);
        assert_eq!(grid.enforcements.as_deref().unwrap(), [Vec::new()]);
        // Malformed specs propagate the sweep parser's errors.
        assert!(frontier_grid("orbit=1").is_err());
    }

    #[test]
    fn frontier_runs_deterministically_across_jobs() {
        let grid = frontier_grid(
            "scenario=baseline;rounds=8;policy=self_selection,round_robin;\
             aggregator=majority,parity_constrained;enforce=none",
        )
        .unwrap();
        let serial = run_frontier(&grid, 1).unwrap();
        let parallel = run_frontier(&grid, 4).unwrap();
        assert_eq!(serial.points, parallel.points);
        assert_eq!(serial.render_table(), parallel.render_table());
        assert_eq!(serial.to_json(), parallel.to_json());
        // 2 policies × 2 aggregators × 1 stack, all measured on baseline.
        assert_eq!(serial.points.len(), 4);
        assert!(serial.points.iter().all(FrontierPoint::measured));
        let frontier = serial.frontier();
        assert!(!frontier.is_empty(), "a measured grid has a frontier");
        // Frontier invariant: no point dominates a frontier member.
        for f in &frontier {
            assert!(!serial.points.iter().any(|p| p.dominates(f)));
        }
        // And every off-frontier measured point is dominated by someone.
        for p in serial.points.iter().filter(|p| !p.on_frontier) {
            assert!(serial.points.iter().any(|q| q.dominates(p)));
        }
        assert!(serial.to_json().contains("\"frontier_size\""));
        assert!(serial.render_table().starts_with("pareto"));
    }
}
