//! The export → replay acceptance criterion: auditing a persisted trace
//! is **bit-identical** to auditing the in-memory one.
//!
//! The tentpole promise of the persistence subsystem is that nothing is
//! lost at the file boundary — a trace simulated, written, loaded and
//! replayed produces exactly the `FairnessReport` (scores, violation
//! witnesses, notes, rendered text) the in-memory pipeline produced.
//! Pinned two ways:
//!
//! * deterministically, for **every catalog scenario** in both file
//!   formats;
//! * property-based, over adversarial random traces exercising every
//!   event kind and contribution type the schema encodes.

use faircrowd::core::persist::{self, TraceFormat};
use faircrowd::core::report::render_report;
use faircrowd::prelude::*;
use proptest::prelude::*;

mod common;
use common::random_trace;

#[test]
fn every_catalog_scenario_replays_bit_identically() {
    for name in faircrowd::sim::catalog::NAMES {
        // Rounds are capped so the debug-build suite stays fast; every
        // scenario's structure (populations, campaigns, disclosure,
        // detection) is exercised unchanged. The CI smoke step replays
        // the native-scale baseline through the release binary.
        let pipeline = Pipeline::new()
            .scenario_name(name)
            .expect("catalog name resolves")
            .configure(|c| c.rounds = c.rounds.min(12));
        let trace = pipeline.simulate().expect("catalog scenario simulates");
        let in_memory = pipeline.replay(&trace).expect("in-memory audit");

        for format in [TraceFormat::Json, TraceFormat::Jsonl] {
            let path = std::env::temp_dir().join(format!(
                "fc_replay_{name}.{}",
                if format == TraceFormat::Jsonl {
                    "jsonl"
                } else {
                    "json"
                }
            ));
            persist::save(&trace, &path).expect("save");
            let loaded = persist::load(&path).expect("load");
            std::fs::remove_file(&path).ok();

            assert_eq!(loaded, trace, "{name} {format:?}: trace round-trip");
            let replayed = pipeline.replay(&loaded).expect("replayed audit");
            assert_eq!(
                replayed.report, in_memory.report,
                "{name} {format:?}: report must be bit-identical"
            );
            assert_eq!(
                render_report(&replayed.report),
                render_report(&in_memory.report),
                "{name} {format:?}: rendered report must be byte-identical"
            );
            assert_eq!(replayed.summary, in_memory.summary, "{name} {format:?}");
            assert_eq!(replayed.wages, in_memory.wages, "{name} {format:?}");
        }
    }
}

#[test]
fn replay_matches_the_full_pipeline_run() {
    // `Pipeline::run` and `export` + `Pipeline::replay` must agree:
    // same scenario, same seed, same report.
    let pipeline = Pipeline::new().seed(9).rounds(16);
    let run_report = pipeline.clone().run().unwrap().baseline.report;
    let text = persist::encode(&pipeline.simulate().unwrap(), TraceFormat::Jsonl);
    let replayed = pipeline.replay(&persist::decode(&text).unwrap()).unwrap();
    assert_eq!(replayed.report, run_report);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any legal trace round-trips exactly through both encodings, and
    /// the audit of the decoded trace is bit-identical to the audit of
    /// the original.
    #[test]
    fn random_traces_roundtrip_and_replay_identically(
        seed in 0u64..1_000_000,
        n_workers in 0usize..30,
        n_tasks in 0usize..20,
        n_subs in 0usize..40,
    ) {
        let trace = random_trace(seed, n_workers, n_tasks, n_subs);
        prop_assert!(trace.validate().is_empty(), "generator must emit valid traces");
        let engine = AuditEngine::with_defaults();
        let reference = engine.run(&trace);
        for format in [TraceFormat::Json, TraceFormat::Jsonl] {
            let text = persist::encode(&trace, format);
            let decoded = persist::decode(&text);
            prop_assert!(decoded.is_ok(), "{:?} decode: {:?}", format, decoded.err());
            let back = decoded.unwrap();
            prop_assert_eq!(&back, &trace, "{:?} round-trip", format);
            prop_assert_eq!(&engine.run(&back), &reference, "{:?} replayed audit", format);
            // Re-encoding the decoded trace is byte-identical.
            prop_assert_eq!(persist::encode(&back, format), text, "{:?} re-encode", format);
        }
    }
}
