//! Tasks.
//!
//! A task is the paper's tuple `(id_t, id_r, S_t, d_t)` (§3.2): identifier,
//! requester, required-skill vector and reward. We extend the tuple with the
//! operational metadata a real platform carries — the task kind, the number
//! of assignments (HITs) wanted, time budget — and with the **disclosed
//! working conditions** that Axiom 6 (requester transparency) checks for.

use crate::ids::{CampaignId, RequesterId, TaskId};
use crate::money::Credits;
use crate::skills::SkillVector;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// What kind of contribution a task expects. The kind determines which
/// similarity measure Axiom 3 applies to contributions (§3.2.1: n-grams for
/// text, DCG for ranked lists).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Choose one of `k` labels (image recognition, sentiment analysis…).
    Labeling {
        /// Number of label classes.
        classes: u8,
    },
    /// Produce free text (translation, summarisation…).
    FreeText,
    /// Produce a ranking of `items` items.
    Ranking {
        /// Number of items to rank.
        items: u8,
    },
    /// Answer a survey (no ground truth; every good-faith answer is valid).
    Survey,
}

impl TaskKind {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::Labeling { .. } => "labeling",
            TaskKind::FreeText => "free-text",
            TaskKind::Ranking { .. } => "ranking",
            TaskKind::Survey => "survey",
        }
    }
}

/// The requester-dependent and task-dependent working conditions that
/// Axiom 6 requires a requester to make available: "hourly wage and time
/// between submission of work and payment … recruitment criteria and
/// rejection criteria" (§3.2.2). Each field is optional because real
/// requesters routinely omit them — that omission is what the axiom
/// detects.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskConditions {
    /// Expected effective hourly wage, if the requester discloses it.
    pub stated_hourly_wage: Option<Credits>,
    /// Promised time between submission and payment decision.
    pub stated_payment_delay: Option<SimDuration>,
    /// Who may work on the task (qualification text).
    pub recruitment_criteria: Option<String>,
    /// Under which conditions work is rejected.
    pub rejection_criteria: Option<String>,
    /// How contributions are evaluated/scored.
    pub evaluation_scheme: Option<String>,
}

impl TaskConditions {
    /// Fully disclosed conditions (used by fair-by-design scenarios).
    pub fn fully_disclosed(wage: Credits, delay: SimDuration) -> Self {
        TaskConditions {
            stated_hourly_wage: Some(wage),
            stated_payment_delay: Some(delay),
            recruitment_criteria: Some("qualified workers per skill vector".into()),
            rejection_criteria: Some("rejected only when gold checks fail".into()),
            evaluation_scheme: Some("majority agreement with gold checks".into()),
        }
    }

    /// Number of the five Axiom-6 obligations that are disclosed.
    pub fn disclosed_count(&self) -> usize {
        usize::from(self.stated_hourly_wage.is_some())
            + usize::from(self.stated_payment_delay.is_some())
            + usize::from(self.recruitment_criteria.is_some())
            + usize::from(self.rejection_criteria.is_some())
            + usize::from(self.evaluation_scheme.is_some())
    }

    /// Coverage of the Axiom-6 obligations in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        self.disclosed_count() as f64 / 5.0
    }
}

/// A crowdsourcing task: the paper's `(id_t, id_r, S_t, d_t)` plus
/// operational metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Unique task identifier `id_t`.
    pub id: TaskId,
    /// Posting requester `id_r`.
    pub requester: RequesterId,
    /// Campaign the task belongs to.
    pub campaign: CampaignId,
    /// Required-skill vector `S_t`.
    pub skills: SkillVector,
    /// Reward `d_t` paid to a worker who completes the task.
    pub reward: Credits,
    /// Contribution kind expected.
    pub kind: TaskKind,
    /// Distinct workers wanted (assignments / redundancy).
    pub assignments_wanted: u32,
    /// Requester's estimate of honest completion time.
    pub est_duration: SimDuration,
    /// Disclosed working conditions (Axiom 6 input).
    pub conditions: TaskConditions,
}

impl Task {
    /// Reward per estimated hour — the implied hourly wage of the task.
    pub fn implied_hourly_wage(&self) -> Credits {
        let hours = self.est_duration.as_hours_f64();
        if hours <= 0.0 {
            return self.reward;
        }
        self.reward.mul_f64(1.0 / hours)
    }

    /// The paper's Axiom-2 "comparable reward" test: rewards within
    /// `tolerance` (relative) of each other.
    pub fn reward_comparable(&self, other: &Task, tolerance: f64) -> bool {
        let a = self.reward.millicents() as f64;
        let b = other.reward.millicents() as f64;
        let denom = a.abs().max(b.abs());
        if denom == 0.0 {
            return true;
        }
        (a - b).abs() / denom <= tolerance
    }
}

/// Fluent builder so scenario code stays readable.
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    task: Task,
}

impl TaskBuilder {
    /// Start building a task with mandatory fields.
    pub fn new(id: TaskId, requester: RequesterId, skills: SkillVector, reward: Credits) -> Self {
        TaskBuilder {
            task: Task {
                id,
                requester,
                campaign: CampaignId::new(0),
                skills,
                reward,
                kind: TaskKind::Labeling { classes: 2 },
                assignments_wanted: 1,
                est_duration: SimDuration::from_mins(5),
                conditions: TaskConditions::default(),
            },
        }
    }

    /// Set the campaign.
    pub fn campaign(mut self, c: CampaignId) -> Self {
        self.task.campaign = c;
        self
    }

    /// Set the task kind.
    pub fn kind(mut self, k: TaskKind) -> Self {
        self.task.kind = k;
        self
    }

    /// Set the number of assignments wanted.
    pub fn assignments(mut self, n: u32) -> Self {
        self.task.assignments_wanted = n;
        self
    }

    /// Set the estimated honest completion time.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.task.est_duration = d;
        self
    }

    /// Set the disclosed working conditions.
    pub fn conditions(mut self, c: TaskConditions) -> Self {
        self.task.conditions = c;
        self
    }

    /// Finish building.
    pub fn build(self) -> Task {
        self.task
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skills::SkillVector;

    fn t(reward_cents: i64, mins: u64) -> Task {
        TaskBuilder::new(
            TaskId::new(0),
            RequesterId::new(0),
            SkillVector::with_len(4),
            Credits::from_cents(reward_cents),
        )
        .duration(SimDuration::from_mins(mins))
        .build()
    }

    #[test]
    fn implied_hourly_wage() {
        // 10 cents for 5 minutes -> $1.20/hour
        let task = t(10, 5);
        assert_eq!(task.implied_hourly_wage(), Credits::from_cents(120));
        // zero duration falls back to reward
        let z = t(10, 0);
        assert_eq!(z.implied_hourly_wage(), Credits::from_cents(10));
    }

    #[test]
    fn reward_comparability() {
        let a = t(100, 5);
        let b = t(95, 5);
        let c = t(30, 5);
        assert!(a.reward_comparable(&b, 0.10));
        assert!(!a.reward_comparable(&c, 0.10));
        // zero rewards are comparable
        let z1 = t(0, 5);
        let z2 = t(0, 5);
        assert!(z1.reward_comparable(&z2, 0.0));
    }

    #[test]
    fn conditions_coverage() {
        assert_eq!(TaskConditions::default().coverage(), 0.0);
        let full =
            TaskConditions::fully_disclosed(Credits::from_dollars(6), SimDuration::from_days(1));
        assert_eq!(full.disclosed_count(), 5);
        assert!((full.coverage() - 1.0).abs() < 1e-12);
        let partial = TaskConditions {
            rejection_criteria: Some("gold".into()),
            ..Default::default()
        };
        assert!((partial.coverage() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn builder_sets_fields() {
        let task = TaskBuilder::new(
            TaskId::new(7),
            RequesterId::new(2),
            SkillVector::with_len(2),
            Credits::from_cents(15),
        )
        .campaign(CampaignId::new(3))
        .kind(TaskKind::Ranking { items: 5 })
        .assignments(9)
        .build();
        assert_eq!(task.id, TaskId::new(7));
        assert_eq!(task.campaign, CampaignId::new(3));
        assert_eq!(task.assignments_wanted, 9);
        assert_eq!(task.kind.name(), "ranking");
    }

    #[test]
    fn kind_names() {
        assert_eq!(TaskKind::Labeling { classes: 3 }.name(), "labeling");
        assert_eq!(TaskKind::FreeText.name(), "free-text");
        assert_eq!(TaskKind::Survey.name(), "survey");
    }
}
