//! # faircrowd-assign
//!
//! Task-assignment policies and the matching machinery beneath them.
//!
//! §3.1.1 of the paper frames the fairness question: self-appointment
//! "could be characterised as fair because workers have access to the same
//! set of tasks", while optimising algorithms "can be discriminatory" —
//! requester-centric assignment maximises requester gain at workers'
//! expense, worker-centric assignment favours workers. §4.2 sets the
//! agenda this crate serves: *review existing algorithms for task
//! assignment … to assess their discriminatory power*.
//!
//! Every policy implements [`AssignmentPolicy`] and returns both an
//! assignment and the **visibility sets** (which tasks each worker was
//! shown) — the object Axioms 1–2 quantify over.
//!
//! Policies:
//! * [`self_selection`] — post-and-browse (the AMT/CrowdFlower default);
//! * [`round_robin`] — equitable rotation;
//! * [`requester_centric`] — greedy requester-utility maximisation;
//! * [`online_matching`] — Ho–Vaughan-style online assignment (cited as \[8\]);
//! * [`worker_centric`] — optimal matching on worker preference;
//! * [`kos`] — Karger–Oh–Shah (l,r)-regular allocation (cited as \[11\]);
//! * [`budget_diverse`] — budget- and diversity-constrained selection
//!   over declared worker groups (Goel–Faltings);
//! * [`fair_delivery`] — fair-allocation utility balancing (Basık et al.);
//! * [`fair`] — enforcement wrappers (exposure parity, exposure floor)
//!   that repair a base policy's Axiom-1 violations;
//! * [`hungarian`] — exact max-weight bipartite matching substrate.
//!
//! The [`registry`] maps string names (`"round_robin"`, `"kos"`, …) to
//! policy instances so CLIs, benches and sweeps select any of the ten
//! policies by name.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget_diverse;
pub mod fair;
pub mod fair_delivery;
pub mod hungarian;
pub mod kos;
pub mod mcmf;
pub mod online_matching;
pub mod policy;
pub mod registry;
pub mod requester_centric;
pub mod round_robin;
pub mod self_selection;
pub mod worker_centric;

pub use budget_diverse::{select_budget_diverse, BudgetDiverse, Candidate};
pub use fair::{ExposureFloor, ExposureParity};
pub use fair_delivery::FairDelivery;
pub use kos::KosAllocation;
pub use online_matching::OnlineMatching;
pub use policy::{
    preference_score, AssignInput, AssignmentOutcome, AssignmentPolicy, TaskView, WorkerView,
};
pub use requester_centric::RequesterCentric;
pub use round_robin::RoundRobin;
pub use self_selection::SelfSelection;
pub use worker_centric::WorkerCentric;
