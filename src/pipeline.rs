//! The unified end-to-end pipeline: **scenario → simulate → audit →
//! enforce → re-audit → report**.
//!
//! The paper's validation protocol (§4.1) is one repeated loop —
//! configure a scenario, simulate the marketplace, audit the trace
//! against Axioms 1–7, repair, audit again. [`Pipeline`] owns that loop
//! behind a builder API so every caller (CLI, examples, tests, benches,
//! parameter sweeps) composes the crates the same way instead of
//! hand-wiring them:
//!
//! ```
//! use faircrowd::pipeline::{Enforcement, Pipeline};
//!
//! let result = Pipeline::new()
//!     .policy_name("round_robin")?     // registry lookup
//!     .seed(7)
//!     .rounds(24)
//!     .enforce(Enforcement::MinimalTransparency)
//!     .run()?;
//!
//! assert_eq!(result.baseline.report.axioms.len(), 7);
//! let enforced = result.enforced.as_ref().unwrap();
//! assert!(enforced.artifacts.report.transparency_score()
//!     >= result.baseline.report.transparency_score());
//! println!("{}", result.render());
//! # Ok::<(), faircrowd::FaircrowdError>(())
//! ```
//!
//! Every stage is pure configuration until [`Pipeline::run`], which
//! validates the scenario, simulates, validates the trace, audits, and —
//! when enforcements are staged — applies them as config repairs,
//! re-simulates and re-audits, returning both runs for comparison.

use crate::core::live::{LiveAuditor, LiveFinding};
use crate::core::report::render_report;
use crate::core::{metrics, AuditConfig, AuditEngine, AxiomId, FairnessReport, TraceIndex};
use crate::model::trace::GroundTruth;
use crate::model::{FaircrowdError, Trace};
use crate::pay::WageStats;
use crate::sim::converge::{ConvergeOptions, IterationSummary};
use crate::sim::strategy::{StrategyChoice, StrategyState};
use crate::sim::{CancellationPolicy, PolicyChoice, ScenarioConfig, Simulation, TraceSummary};

/// A fairness repair the pipeline applies before its second run. Each
/// variant is a config-level repair targeting one axiom family, per
/// §3.3.1's "enforcing them by design".
#[derive(Debug, Clone, PartialEq)]
pub enum Enforcement {
    /// Wrap the assignment policy in exposure parity (repairs Axiom 1/2).
    ExposureParity,
    /// Wrap the assignment policy in a minimum-exposure floor.
    ExposureFloor(usize),
    /// Raise the disclosure set to at least the minimal Axiom-6/7 floor.
    MinimalTransparency,
    /// Let in-flight work finish on cancellation (repairs Axiom 5).
    GraceFinish,
}

impl Enforcement {
    /// Parse the CLI/grid spelling of an enforcement: `parity`,
    /// `floor:N`, `transparency` or `grace`.
    pub fn parse(raw: &str) -> Result<Self, FaircrowdError> {
        if let Some(min) = raw.strip_prefix("floor:") {
            let min = min.parse().map_err(|_| {
                FaircrowdError::usage(format!("invalid floor size in enforcement `{raw}`"))
            })?;
            return Ok(Enforcement::ExposureFloor(min));
        }
        match raw {
            "parity" => Ok(Enforcement::ExposureParity),
            "transparency" => Ok(Enforcement::MinimalTransparency),
            "grace" => Ok(Enforcement::GraceFinish),
            _ => Err(FaircrowdError::usage(format!(
                "unknown enforcement `{raw}`; expected parity | floor:N | transparency | grace"
            ))),
        }
    }

    /// Short display label.
    pub fn label(&self) -> String {
        match self {
            Enforcement::ExposureParity => "exposure-parity".into(),
            Enforcement::ExposureFloor(n) => format!("exposure-floor({n})"),
            Enforcement::MinimalTransparency => "minimal-transparency".into(),
            Enforcement::GraceFinish => "grace-finish".into(),
        }
    }

    /// Apply this repair to a scenario.
    fn apply(&self, config: &mut ScenarioConfig) {
        match self {
            Enforcement::ExposureParity => {
                let base = config.policy.clone();
                config.policy = PolicyChoice::ParityOver(Box::new(base));
            }
            Enforcement::ExposureFloor(min) => {
                let base = config.policy.clone();
                config.policy = PolicyChoice::FloorOver(Box::new(base), *min);
            }
            Enforcement::MinimalTransparency => {
                crate::core::enforce::grant_minimal_transparency(&mut config.disclosure);
            }
            Enforcement::GraceFinish => {
                config.cancellation = CancellationPolicy::GraceFinish;
            }
        }
    }
}

/// Everything one simulate+audit pass produces.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// The complete observable record of the run.
    pub trace: Trace,
    /// Headline market statistics of the trace.
    pub summary: TraceSummary,
    /// The axiom audit of the trace.
    pub report: FairnessReport,
    /// Effective hourly-wage statistics, `None` when no worker invested
    /// any time (an empty wage distribution has no statistics; see
    /// [`crate::core::metrics::wage_stats`]). Computed off the same
    /// [`TraceIndex`] the audit used.
    pub wages: Option<WageStats>,
}

/// What [`Pipeline::run_live`] returns: the standard run artifacts plus
/// the stream of findings the monitors emitted while the market ran.
#[derive(Debug, Clone)]
pub struct LiveRunArtifacts {
    /// Trace, summary, closing report and wages — the same shape a
    /// batch [`Pipeline::run`] produces for its baseline, with the
    /// report computed by the [`LiveAuditor`] off its incremental
    /// mirrors (bit-identical to the batch audit of the same trace).
    pub artifacts: RunArtifacts,
    /// Every finding emitted during the run, in stream order, capped by
    /// the auditor's in-memory limit.
    pub findings: Vec<LiveFinding>,
    /// Findings past the cap (they still reached the `on_finding`
    /// callback when they fired).
    pub suppressed_findings: usize,
}

/// The enforcement pass of a [`PipelineResult`].
#[derive(Debug, Clone)]
pub struct EnforcedRun {
    /// The repaired scenario that was re-run.
    pub config: ScenarioConfig,
    /// The repairs, in application order.
    pub applied: Vec<Enforcement>,
    /// The re-run's trace, summary and re-audit.
    pub artifacts: RunArtifacts,
}

/// What [`Pipeline::run_converged`] returns: the audit of the
/// fixed-point market, plus the convergence record that produced it.
#[derive(Debug, Clone)]
pub struct ConvergedRun {
    /// The validated scenario that was iterated.
    pub config: ScenarioConfig,
    /// Iterations to the fixed point (1 for the `static` strategy).
    pub iterations: u32,
    /// Per-iteration residuals and market summaries, in order; the last
    /// entry describes the converged trace.
    pub history: Vec<IterationSummary>,
    /// The strategy state at the fixed point — re-simulating the config
    /// under this state reproduces [`ConvergedRun::artifacts`]' trace.
    pub state: StrategyState,
    /// Trace, summary, audit and wages of the **converged** market.
    pub artifacts: RunArtifacts,
}

/// What [`Pipeline::run`] returns.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The validated scenario the baseline ran under.
    pub config: ScenarioConfig,
    /// The baseline simulate+audit pass.
    pub baseline: RunArtifacts,
    /// The enforce+re-audit pass, when enforcements were staged.
    pub enforced: Option<EnforcedRun>,
}

impl PipelineResult {
    /// The final report: the enforced re-audit when present, else the
    /// baseline audit.
    pub fn report(&self) -> &FairnessReport {
        self.enforced
            .as_ref()
            .map_or(&self.baseline.report, |e| &e.artifacts.report)
    }

    /// The final trace (enforced when present, else baseline).
    pub fn trace(&self) -> &Trace {
        self.enforced
            .as_ref()
            .map_or(&self.baseline.trace, |e| &e.artifacts.trace)
    }

    /// The final market summary (enforced when present, else baseline).
    pub fn summary(&self) -> &TraceSummary {
        self.enforced
            .as_ref()
            .map_or(&self.baseline.summary, |e| &e.artifacts.summary)
    }

    /// The final wage statistics (enforced when present, else baseline);
    /// `None` when that run paid for no invested time.
    pub fn wages(&self) -> Option<WageStats> {
        self.enforced
            .as_ref()
            .map_or(self.baseline.wages, |e| e.artifacts.wages)
    }

    /// Render the full result: market summary, baseline report, and —
    /// when enforcement ran — the repairs and the re-audit.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&render_run(
            &format!("policy={}", self.config.policy.label()),
            &self.baseline,
        ));
        if let Some(enforced) = &self.enforced {
            let labels: Vec<String> = enforced.applied.iter().map(Enforcement::label).collect();
            out.push_str(&format!("\nafter enforcement: {}\n\n", labels.join(" + ")));
            out.push_str(&render_run(
                &format!("policy={}", enforced.config.policy.label()),
                &enforced.artifacts,
            ));
            out.push_str(&format!(
                "\noverall score: {:.3} → {:.3}\n",
                self.baseline.report.overall_score(),
                enforced.artifacts.report.overall_score()
            ));
        }
        out
    }
}

fn render_run(heading: &str, artifacts: &RunArtifacts) -> String {
    artifacts.render(heading)
}

impl RunArtifacts {
    /// Render the market summary line and the audit report — the block
    /// `run`, `audit` and `replay` all print, so a replayed trace's
    /// output diffs cleanly against the in-memory pipeline's.
    pub fn render(&self, heading: &str) -> String {
        format!(
            "market ({heading}): {} submissions, {:.0}% approved, {} paid, retention {:.1}%\n\n{}",
            self.summary.submissions,
            self.summary.approval_rate * 100.0,
            self.summary.total_paid,
            self.summary.retention * 100.0,
            render_report(&self.report)
        )
    }
}

/// Builder for the scenario → simulate → audit → enforce → report loop.
///
/// See the [module docs](self) for the canonical example. Defaults:
/// [`ScenarioConfig::default`], [`AuditConfig::default`], all seven
/// axioms, no enforcement.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    scenario: ScenarioConfig,
    audit: AuditConfig,
    axioms: Option<Vec<AxiomId>>,
    enforcements: Vec<Enforcement>,
    converge: ConvergeOptions,
}

impl Pipeline {
    /// A pipeline over the default scenario.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the whole scenario configuration.
    pub fn scenario(mut self, config: ScenarioConfig) -> Self {
        self.scenario = config;
        self
    }

    /// The staged scenario as currently resolved (policy, seed, rounds)
    /// — what [`Pipeline::run`] / [`Pipeline::run_live`] will validate
    /// and simulate. The CLI prints its run headers from this, so they
    /// can never drift from the configuration that actually ran.
    pub fn scenario_config(&self) -> &ScenarioConfig {
        &self.scenario
    }

    /// Tweak the current scenario in place — the ergonomic middle ground
    /// between `scenario()` (wholesale) and one-field setters.
    pub fn configure(mut self, f: impl FnOnce(&mut ScenarioConfig)) -> Self {
        f(&mut self.scenario);
        self
    }

    /// Replace the scenario with a named preset from the catalog
    /// ([`crate::sim::catalog`]): `"baseline"`, `"spam_campaign"`, ….
    pub fn scenario_name(mut self, name: &str) -> Result<Self, FaircrowdError> {
        self.scenario = crate::sim::catalog::get(name)?;
        Ok(self)
    }

    /// Set the assignment policy.
    pub fn policy(mut self, choice: PolicyChoice) -> Self {
        self.scenario.policy = choice;
        self
    }

    /// Set the assignment policy by registry name (`"round_robin"`,
    /// `"kos"`, …); see [`crate::assign::registry`].
    pub fn policy_name(mut self, name: &str) -> Result<Self, FaircrowdError> {
        self.scenario.policy = PolicyChoice::by_name(name)?;
        Ok(self)
    }

    /// Set the agent strategy profile.
    pub fn strategy(mut self, choice: StrategyChoice) -> Self {
        self.scenario.strategy = choice;
        self
    }

    /// Set the agent strategy by registry name (`"static"`,
    /// `"super_turker"`, …); see [`crate::sim::strategy`]. Unknown names
    /// report [`FaircrowdError::UnknownStrategy`] listing the registry.
    pub fn strategy_name(mut self, name: &str) -> Result<Self, FaircrowdError> {
        self.scenario.strategy = StrategyChoice::by_name(name)?;
        Ok(self)
    }

    /// Replace the convergence options (tolerance, iteration cap, gain)
    /// strategic scenarios iterate under.
    pub fn converge_options(mut self, opts: ConvergeOptions) -> Self {
        self.converge = opts;
        self
    }

    /// Set the simulation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Set the number of simulated market rounds.
    pub fn rounds(mut self, rounds: u32) -> Self {
        self.scenario.rounds = rounds;
        self
    }

    /// Replace the audit configuration (similarity regime, witness cap).
    pub fn audit(mut self, config: AuditConfig) -> Self {
        self.audit = config;
        self
    }

    /// Audit only the given axioms (default: all seven).
    pub fn axioms(mut self, ids: &[AxiomId]) -> Self {
        self.axioms = Some(ids.to_vec());
        self
    }

    /// Stage a fairness repair; repairs apply in staging order and
    /// trigger a second simulate+audit pass in [`Pipeline::run`].
    pub fn enforce(mut self, enforcement: Enforcement) -> Self {
        self.enforcements.push(enforcement);
        self
    }

    /// Simulate one scenario into a validated trace — strategy-aware:
    /// a static config is a single simulator pass, a strategic one is
    /// iterated to its fixed point ([`crate::sim::converge`]) and the
    /// **converged** trace is returned. Every simulation the pipeline
    /// performs (run, export, sweep cache, enforcement re-runs) funnels
    /// through here, so "the trace of a scenario" means the same thing
    /// on every path.
    fn simulate_config(&self, config: &ScenarioConfig) -> Result<Trace, FaircrowdError> {
        let trace = if config.strategy == StrategyChoice::Static {
            crate::sim::run(config.clone())
        } else {
            crate::sim::converge::run(config.clone(), &self.converge)?.trace
        };
        trace.ensure_valid()?;
        Ok(trace)
    }

    /// Validate the staged scenario and simulate it into a validated
    /// trace — the export path (`faircrowd export`) and the sweep
    /// engine's simulation cache both call this, so a trace produced
    /// here and fed back through [`Pipeline::run_with_baseline`] or
    /// [`Pipeline::replay`] is exactly the trace [`Pipeline::run`]
    /// would have audited.
    pub fn simulate(&self) -> Result<Trace, FaircrowdError> {
        self.scenario.validate()?;
        self.simulate_config(&self.scenario)
    }

    /// Audit through a pre-built index (the staged axiom subset, or all
    /// seven).
    fn audit_indexed(&self, ix: &TraceIndex<'_>) -> FairnessReport {
        let engine = AuditEngine::new(self.audit.clone());
        match &self.axioms {
            Some(ids) => engine.run_indexed(ix, ids),
            None => engine.run_indexed(ix, &AxiomId::ALL),
        }
    }

    /// Execute the pipeline: validate, simulate, audit, then — when
    /// enforcements are staged — repair the scenario, re-simulate and
    /// re-audit.
    ///
    /// Each trace is indexed exactly once ([`TraceIndex`]); the audit
    /// and the re-audit both read through that index, and the re-audit's
    /// index is built with [`TraceIndex::rebuilt_for`], which carries
    /// over every slice the enforcement did not touch (e.g. a
    /// pure-transparency repair leaves the qualification matrices and
    /// blocking buckets intact). The market summary stays on
    /// [`TraceSummary::of`], which is a single event pass of its own.
    pub fn run(self) -> Result<PipelineResult, FaircrowdError> {
        self.scenario.validate()?;
        let baseline_trace = self.simulate_config(&self.scenario)?;
        self.finish(baseline_trace)
    }

    /// Execute the pipeline's convergence path explicitly: iterate the
    /// staged scenario to its strategy fixed point and audit the
    /// converged market, returning the per-iteration history alongside
    /// the artifacts. Works for any strategy — a `static` scenario
    /// converges in exactly one iteration to the trace [`Pipeline::run`]
    /// audits.
    ///
    /// Enforcements cannot be staged here: a config repair changes the
    /// market the strategies converged against, so "repair then
    /// converge" and "converge then repair" are different claims — stage
    /// the repair on a plain [`Pipeline::run`] of the strategic scenario
    /// instead, which converges both the baseline and the repaired
    /// config.
    pub fn run_converged(self) -> Result<ConvergedRun, FaircrowdError> {
        if !self.enforcements.is_empty() {
            return Err(FaircrowdError::usage(
                "`converge` reports the fixed point of one market; staged enforcement \
                 repairs re-simulate a different one — use `run` (which converges \
                 strategic scenarios on both sides of the enforcement comparison)",
            ));
        }
        self.scenario.validate()?;
        let converged = crate::sim::converge::run(self.scenario.clone(), &self.converge)?;
        converged.trace.ensure_valid()?;
        let artifacts = self.audit_artifacts(converged.trace);
        Ok(ConvergedRun {
            config: self.scenario,
            iterations: converged.iterations,
            history: converged.history,
            state: converged.state,
            artifacts,
        })
    }

    /// Execute the pipeline against a **pre-simulated** baseline trace,
    /// skipping only the baseline simulation: the audit, enforcement
    /// re-simulation and re-audit are identical to [`Pipeline::run`].
    /// The trace must be the output of [`Pipeline::simulate`] on the
    /// same scenario — this is the sweep engine's simulation-cache path,
    /// where grid cells differing only on the enforcement axis share
    /// one simulated baseline instead of re-running the platform.
    pub fn run_with_baseline(self, baseline: Trace) -> Result<PipelineResult, FaircrowdError> {
        self.scenario.validate()?;
        self.finish(baseline)
    }

    /// Audit an externally recorded trace through this pipeline's audit
    /// configuration and staged axiom subset — the **replay** path (load
    /// → index → audit → report, no simulator in the loop). The trace is
    /// validated first; staged enforcements are ignored, since config
    /// repairs cannot be applied to a platform that already ran.
    /// Borrows and clones the trace for the returned artifacts; use
    /// [`Pipeline::replay_owned`] when the caller is done with its copy
    /// (e.g. a trace just loaded from disk) to avoid duplicating a
    /// potentially large log.
    pub fn replay(&self, trace: &Trace) -> Result<RunArtifacts, FaircrowdError> {
        self.replay_owned(trace.clone())
    }

    /// [`Pipeline::replay`] taking ownership — no copy of the trace is
    /// made, which matters exactly on the external-log workload where
    /// recorded traces can be large.
    pub fn replay_owned(&self, trace: Trace) -> Result<RunArtifacts, FaircrowdError> {
        trace.ensure_valid()?;
        Ok(self.audit_artifacts(trace))
    }

    /// Produce only the **final** artifacts: for an enforcement-free
    /// pipeline, the audit of the baseline trace `simulate` yields; with
    /// enforcements staged, the repaired re-simulation and its re-audit
    /// — *skipping the baseline entirely* (neither simulated nor
    /// audited), since nothing of it is returned. `simulate` is called
    /// at most once, and only when the baseline is actually needed.
    ///
    /// This is the sweep engine's cached path: a grid cell folds exactly
    /// the fields of [`RunArtifacts`], so dropping the unread baseline
    /// work changes wall-clock and nothing else (pinned byte-identical
    /// against the full [`Pipeline::run`] by `sweep`'s determinism
    /// tests).
    pub fn run_final_with_baseline(
        self,
        simulate: impl FnOnce() -> Result<Trace, FaircrowdError>,
    ) -> Result<RunArtifacts, FaircrowdError> {
        self.scenario.validate()?;
        if self.enforcements.is_empty() {
            let baseline = simulate()?;
            return Ok(self.audit_artifacts(baseline));
        }
        let mut repaired = self.scenario.clone();
        for enforcement in &self.enforcements {
            enforcement.apply(&mut repaired);
        }
        repaired.validate()?;
        let trace = self.simulate_config(&repaired)?;
        Ok(self.audit_artifacts(trace))
    }

    /// Execute the pipeline **with live auditing**: the staged scenario
    /// is simulated round by round ([`Simulation::run_observed`]), a
    /// [`LiveAuditor`] ingests every round's events as they are logged,
    /// and each violation is handed to `on_finding` at the event that
    /// introduced it — instead of the whole audit running after the
    /// market closed. The closing report comes from the auditor's
    /// incremental mirrors and is bit-identical to what
    /// [`Pipeline::run`] would have reported for the same scenario.
    ///
    /// Enforcements cannot be staged on a live run: config repairs
    /// re-simulate a *different* market, which has its own stream.
    pub fn run_live(
        self,
        mut on_finding: impl FnMut(&LiveFinding),
    ) -> Result<LiveRunArtifacts, FaircrowdError> {
        if !self.enforcements.is_empty() {
            return Err(FaircrowdError::usage(
                "live auditing watches one run as it happens; enforcement repairs \
                 re-simulate a different market — use `run` without --live to compare them",
            ));
        }
        if self.scenario.strategy != StrategyChoice::Static {
            return Err(FaircrowdError::usage(
                "live auditing single-passes one market, but a strategic scenario is \
                 only meaningful at its fixed point — use `converge` to iterate it",
            ));
        }
        self.scenario.validate()?;
        let sim = Simulation::new(self.scenario.clone());
        let mut auditor = LiveAuditor::new(self.audit.clone());
        {
            let setup = sim.live_setup();
            auditor.set_disclosure(setup.disclosure.clone());
            auditor.set_ground_truth(GroundTruth {
                malicious_workers: setup.malicious_workers.clone(),
                true_labels: Default::default(),
            });
            for w in &setup.workers {
                auditor.add_worker((*w).clone());
            }
            for r in setup.requesters {
                auditor.add_requester(r.clone());
            }
        }
        // The observer is infallible; a rejected event (impossible for a
        // simulator-produced stream, which is dense and monotonic by
        // construction) is carried out and re-raised.
        let mut stream_err: Option<FaircrowdError> = None;
        let trace = sim.run_observed(|delta| {
            if stream_err.is_some() {
                return;
            }
            for t in &delta.new_tasks {
                auditor.add_task((*t).clone());
            }
            for s in delta.new_submissions {
                auditor.add_submission(s.clone());
            }
            for e in delta.new_events {
                match auditor.ingest(e.clone()) {
                    Ok(findings) => {
                        for f in &findings {
                            on_finding(f);
                        }
                    }
                    Err(err) => {
                        stream_err = Some(err);
                        return;
                    }
                }
            }
        });
        if let Some(err) = stream_err {
            return Err(err);
        }
        trace.ensure_valid()?;
        // Worker computed attributes evolved while the monitors ran; the
        // closing report is always taken over the end state.
        auditor.adopt_end_state(&trace)?;
        for f in auditor.finalize() {
            on_finding(&f);
        }
        let (report, wages) = match &self.axioms {
            Some(ids) => auditor.final_artifacts(ids),
            None => auditor.final_artifacts(&AxiomId::ALL),
        };
        let summary = TraceSummary::of(&trace);
        Ok(LiveRunArtifacts {
            findings: auditor.findings().to_vec(),
            suppressed_findings: auditor.suppressed_findings(),
            artifacts: RunArtifacts {
                trace,
                summary,
                report,
                wages,
            },
        })
    }

    /// Index, audit and summarise one owned trace.
    fn audit_artifacts(&self, trace: Trace) -> RunArtifacts {
        let ix = TraceIndex::new(&trace);
        let report = self.audit_indexed(&ix);
        let wages = metrics::wage_stats(&ix);
        let summary = TraceSummary::of(&trace);
        drop(ix);
        RunArtifacts {
            trace,
            summary,
            report,
            wages,
        }
    }

    /// Shared tail of [`Pipeline::run`] / [`Pipeline::run_with_baseline`]:
    /// audit the baseline trace and, when enforcements are staged, repair
    /// the scenario, re-simulate and re-audit.
    fn finish(self, baseline_trace: Trace) -> Result<PipelineResult, FaircrowdError> {
        let baseline_ix = TraceIndex::new(&baseline_trace);
        let baseline_report = self.audit_indexed(&baseline_ix);
        let baseline_summary = TraceSummary::of(&baseline_trace);
        let baseline_wages = metrics::wage_stats(&baseline_ix);

        let enforced = if self.enforcements.is_empty() {
            None
        } else {
            let mut repaired = self.scenario.clone();
            for enforcement in &self.enforcements {
                enforcement.apply(&mut repaired);
            }
            repaired.validate()?;
            let trace = self.simulate_config(&repaired)?;
            let ix = baseline_ix.rebuilt_for(&trace);
            let report = self.audit_indexed(&ix);
            let wages = metrics::wage_stats(&ix);
            let summary = TraceSummary::of(&trace);
            drop(ix);
            Some(EnforcedRun {
                config: repaired,
                applied: self.enforcements.clone(),
                artifacts: RunArtifacts {
                    trace,
                    summary,
                    report,
                    wages,
                },
            })
        };
        drop(baseline_ix);

        Ok(PipelineResult {
            config: self.scenario,
            baseline: RunArtifacts {
                trace: baseline_trace,
                summary: baseline_summary,
                report: baseline_report,
                wages: baseline_wages,
            },
            enforced,
        })
    }

    /// Run the identical pipeline once per policy name — the parameter
    /// sweep the CLI's `sweep` command and the benches build on.
    /// Returns `(name, result)` pairs in input order.
    pub fn sweep_policies(
        &self,
        names: &[&str],
    ) -> Result<Vec<(String, PipelineResult)>, FaircrowdError> {
        names
            .iter()
            .map(|name| {
                let result = self.clone().policy_name(name)?.run()?;
                Ok(((*name).to_owned(), result))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_scenarios_before_simulating() {
        let err = Pipeline::new()
            .configure(|c| c.rounds = 0)
            .run()
            .unwrap_err();
        assert!(matches!(err, FaircrowdError::Config { .. }), "{err}");
    }

    #[test]
    fn unknown_policy_names_error_cleanly() {
        let err = Pipeline::new().policy_name("magic").unwrap_err();
        assert!(matches!(err, FaircrowdError::UnknownPolicy { .. }));
    }

    #[test]
    fn enforcement_stages_compose_and_rerun() {
        let result = Pipeline::new()
            .seed(11)
            .rounds(12)
            .enforce(Enforcement::ExposureParity)
            .enforce(Enforcement::GraceFinish)
            .run()
            .unwrap();
        let enforced = result.enforced.expect("second pass must run");
        assert_eq!(enforced.applied.len(), 2);
        assert!(matches!(
            enforced.config.policy,
            PolicyChoice::ParityOver(_)
        ));
        assert_eq!(
            enforced.config.cancellation,
            CancellationPolicy::GraceFinish
        );
        // The baseline config is untouched.
        assert!(matches!(result.config.policy, PolicyChoice::SelfSelection));
    }

    #[test]
    fn axioms_subset_limits_the_report() {
        let result = Pipeline::new()
            .rounds(8)
            .axioms(&[AxiomId::A3Compensation])
            .run()
            .unwrap();
        assert_eq!(result.baseline.report.axioms.len(), 1);
    }

    #[test]
    fn run_with_baseline_equals_run() {
        // The sweep cache's contract: feeding `simulate()`'s trace back
        // through `run_with_baseline` is exactly `run()` — including the
        // enforcement re-simulation and re-audit.
        let pipeline = Pipeline::new()
            .seed(5)
            .rounds(10)
            .enforce(Enforcement::GraceFinish);
        let from_run = pipeline.clone().run().unwrap();
        let trace = pipeline.simulate().unwrap();
        let from_baseline = pipeline.clone().run_with_baseline(trace.clone()).unwrap();
        assert_eq!(from_run.baseline.report, from_baseline.baseline.report);
        assert_eq!(from_run.baseline.wages, from_baseline.baseline.wages);
        let (a, b) = (
            from_run.enforced.as_ref().unwrap(),
            from_baseline.enforced.as_ref().unwrap(),
        );
        assert_eq!(a.artifacts.report, b.artifacts.report);
        // …and the lean final-artifacts path agrees with the full one.
        // With enforcements staged it must not even ask for a baseline.
        let lean = pipeline
            .clone()
            .run_final_with_baseline(|| panic!("enforced lean path must not simulate a baseline"))
            .unwrap();
        assert_eq!(lean.report, a.artifacts.report);
        assert_eq!(lean.summary, a.artifacts.summary);
        assert_eq!(lean.wages, a.artifacts.wages);
        // Without enforcements it audits exactly the supplied baseline.
        let plain = Pipeline::new().seed(5).rounds(10);
        let lean = plain
            .clone()
            .run_final_with_baseline(|| plain.simulate())
            .unwrap();
        assert_eq!(lean.report, plain.clone().run().unwrap().baseline.report);
    }

    #[test]
    fn run_live_matches_run_bit_for_bit() {
        let pipeline = Pipeline::new().seed(9).rounds(10);
        let batch = pipeline.clone().run().unwrap();
        let mut streamed = 0usize;
        let live = pipeline.run_live(|_| streamed += 1).unwrap();
        assert_eq!(live.artifacts.report, batch.baseline.report);
        assert_eq!(live.artifacts.trace, batch.baseline.trace);
        assert_eq!(live.artifacts.summary, batch.baseline.summary);
        assert_eq!(live.artifacts.wages, batch.baseline.wages);
        assert_eq!(
            streamed,
            live.findings.len() + live.suppressed_findings,
            "every finding reaches the callback exactly once"
        );
    }

    #[test]
    fn run_live_rejects_staged_enforcements() {
        let err = Pipeline::new()
            .rounds(8)
            .enforce(Enforcement::GraceFinish)
            .run_live(|_| {})
            .unwrap_err();
        assert!(matches!(err, FaircrowdError::Usage { .. }), "{err}");
        assert!(err.to_string().contains("--live"), "{err}");
    }

    #[test]
    fn run_converged_on_static_matches_run_in_one_iteration() {
        let pipeline = Pipeline::new().seed(5).rounds(10);
        let converged = pipeline.clone().run_converged().unwrap();
        assert_eq!(converged.iterations, 1);
        let run = pipeline.run().unwrap();
        assert_eq!(converged.artifacts.trace, run.baseline.trace);
        assert_eq!(converged.artifacts.report, run.baseline.report);
        assert_eq!(converged.artifacts.wages, run.baseline.wages);
    }

    #[test]
    fn strategic_scenarios_converge_on_every_pipeline_path() {
        // run(), simulate() and run_converged() must all agree on what
        // "the trace of a strategic scenario" is: the converged one.
        let pipeline = Pipeline::new()
            .scenario_name("super_turkers")
            .unwrap()
            .configure(|c| c.rounds = 12);
        let converged = pipeline.clone().run_converged().unwrap();
        assert!(converged.iterations >= 2, "strategic market must iterate");
        assert_eq!(converged.history.len() as u32, converged.iterations);
        assert_eq!(pipeline.simulate().unwrap(), converged.artifacts.trace);
        let run = pipeline.clone().run().unwrap();
        assert_eq!(run.baseline.trace, converged.artifacts.trace);
        assert_eq!(run.baseline.report, converged.artifacts.report);
    }

    #[test]
    fn run_converged_rejects_staged_enforcements() {
        let err = Pipeline::new()
            .rounds(8)
            .enforce(Enforcement::GraceFinish)
            .run_converged()
            .unwrap_err();
        assert!(matches!(err, FaircrowdError::Usage { .. }), "{err}");
        assert!(err.to_string().contains("converge"), "{err}");
    }

    #[test]
    fn run_live_rejects_strategic_scenarios() {
        let err = Pipeline::new()
            .scenario_name("price_war")
            .unwrap()
            .configure(|c| c.rounds = 8)
            .run_live(|_| {})
            .unwrap_err();
        assert!(matches!(err, FaircrowdError::Usage { .. }), "{err}");
        assert!(err.to_string().contains("converge"), "{err}");
    }

    #[test]
    fn unknown_strategy_names_error_cleanly() {
        let err = Pipeline::new().strategy_name("greedy").unwrap_err();
        match &err {
            FaircrowdError::UnknownStrategy { name, available } => {
                assert_eq!(name, "greedy");
                assert!(available.contains(&"super_turker".to_owned()));
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn replay_audits_an_external_trace_without_simulating() {
        let pipeline = Pipeline::new().seed(3).rounds(10);
        let trace = pipeline.simulate().unwrap();
        let replayed = pipeline.replay(&trace).unwrap();
        let run = pipeline.clone().run().unwrap();
        assert_eq!(replayed.report, run.baseline.report);
        assert_eq!(replayed.summary, run.baseline.summary);
        // Replay validates: a corrupted trace errors instead of lying.
        let mut bad = trace;
        bad.submissions[0].worker = crate::model::WorkerId::new(9999);
        assert!(matches!(
            pipeline.replay(&bad),
            Err(FaircrowdError::InvalidTrace { .. })
        ));
    }
}
