//! Quickstart: simulate a crowdsourcing market, audit it against the
//! paper's seven axioms, and print the fairness report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use faircrowd::core::report::render_report;
use faircrowd::prelude::*;

fn main() {
    // A small marketplace: 20 diligent workers, one requester posting a
    // binary-labeling campaign, transparent platform, fair approvals.
    let config = ScenarioConfig {
        seed: 42,
        rounds: 48,
        workers: vec![WorkerPopulation::diligent(20)],
        campaigns: vec![CampaignSpec::labeling("acme", 40, 10)],
        ..Default::default()
    };

    println!("running 48 market-hours with 20 workers and 40 tasks…\n");
    let trace = faircrowd::sim::run(config);

    // The trace is the complete observable record: entity tables, every
    // submission, and the audit event log.
    let summary = TraceSummary::of(&trace);
    println!(
        "market summary: {} submissions from {} active workers, \
         {:.0}% approved, {} paid out, retention {:.1}%\n",
        summary.submissions,
        summary.active_workers,
        summary.approval_rate * 100.0,
        summary.total_paid,
        summary.retention * 100.0,
    );

    // Audit: run all seven axioms under the default threshold-based
    // similarity regime.
    let engine = AuditEngine::with_defaults();
    let report = engine.run(&trace);
    println!("{}", render_report(&report));

    if report.all_hold() {
        println!("verdict: this platform configuration is fair and transparent.");
    } else {
        println!(
            "verdict: {} axiom violation(s) — see the witnesses above.",
            report.total_violations()
        );
    }
}
