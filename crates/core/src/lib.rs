//! # faircrowd-core
//!
//! The paper's primary contribution, executable: the seven **fairness and
//! transparency axioms** of §3.2 as checkers over platform traces, an
//! audit engine that runs them (the "fairness check benchmarks and
//! algorithms" of §3.3.1), the objective fairness metrics of §4.1, and
//! enforcement helpers for building fair platforms *by design*.
//!
//! | Axiom | Statement (abridged) | Checker |
//! |-------|----------------------|---------|
//! | 1 | similar workers get access to the same tasks | [`axioms::a1`] |
//! | 2 | similar tasks are shown to the same workers | [`axioms::a2`] |
//! | 3 | similar contributions to a task earn the same reward | [`axioms::a3`] |
//! | 4 | requesters can detect malicious workers | [`axioms::a4`] |
//! | 5 | started work is not interrupted | [`axioms::a5`] |
//! | 6 | requesters disclose working conditions | [`axioms::a6`] |
//! | 7 | the platform discloses computed worker attributes | [`axioms::a7`] |
//!
//! Similarity is pluggable per the paper ("ranges from perfect equality to
//! threshold-based similarity"): every check takes a
//! [`faircrowd_model::similarity::SimilarityConfig`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod audit;
pub mod axiom;
pub mod axioms;
pub mod checkpoint;
pub mod daemon;
pub mod enforce;
mod fields;
pub mod index;
pub mod live;
pub mod metrics;
pub mod persist;
pub mod report;
pub mod results;

pub use aggregate::{AxiomAggregate, ReportAggregate, ScoreStats};
pub use audit::{AuditConfig, AuditEngine, FairnessReport};
pub use axiom::{Axiom, AxiomId, AxiomReport, Violation};
pub use checkpoint::Checkpoint;
pub use daemon::{AuditDaemon, DaemonConfig, DaemonFinding, DaemonReport, MarketSource};
pub use faircrowd_model::similarity::SimilarityConfig;
pub use index::TraceIndex;
pub use live::{FindingOrigin, LiveAuditor, LiveFinding};
